#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every
# table/figure of the paper (quick scale by default; set
# SKYPREF_BENCH_SCALE=full for the paper's cardinalities).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure

for bench in build/bench/bench_*; do
  echo
  echo "================ $(basename "$bench") ================"
  "$bench"
done

echo
echo "Examples:"
for example in build/examples/*; do
  echo
  echo "================ $(basename "$example") ================"
  "$example"
done
