#!/usr/bin/env bash
# Regenerates the committed benchmark snapshots at the repo root:
#
#   BENCH_exact.json         exact-engine sections of bench_hotpath
#   BENCH_sam.json           scalar Monte-Carlo (Sam) sections
#   BENCH_sam_bitslice.json  bit-sliced engine section
#
# All workloads inside bench_hotpath use pinned seeds, so two runs on
# the same machine differ only by timing noise, never by workload or
# estimate. Quick scale by default; SKYPREF_BENCH_SCALE=full runs the
# paper's cardinalities.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target bench_hotpath -j >/dev/null

"$BUILD_DIR"/bench/bench_hotpath \
    BENCH_exact.json BENCH_sam.json BENCH_sam_bitslice.json

echo "run_benches: wrote BENCH_exact.json BENCH_sam.json BENCH_sam_bitslice.json"
