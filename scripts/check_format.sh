#!/usr/bin/env bash
# Verifies that every C++ file matches the repo .clang-format style.
#
# Usage:
#   scripts/check_format.sh          # check (CI mode)
#   scripts/check_format.sh --fix    # rewrite files in place
#
# If clang-format is not installed the script warns and exits 0; set
# SKYPREF_REQUIRE_CLANG_FORMAT=1 (CI does) to make that a hard error.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  if [[ "${SKYPREF_REQUIRE_CLANG_FORMAT:-0}" == "1" ]]; then
    echo "error: $CLANG_FORMAT not found and SKYPREF_REQUIRE_CLANG_FORMAT=1" >&2
    exit 1
  fi
  echo "warning: $CLANG_FORMAT not found; skipping format check" >&2
  exit 0
fi

mode="--dry-run"
if [[ "${1:-}" == "--fix" ]]; then
  mode="-i"
fi

mapfile -t sources < <(find src tests bench tools examples \
  \( -name '*.cc' -o -name '*.cpp' -o -name '*.h' \) | sort)

echo "clang-format ($mode) over ${#sources[@]} files ..."
"$CLANG_FORMAT" $mode --Werror --style=file "${sources[@]}"
