#!/usr/bin/env bash
# Runs clang-tidy over every library translation unit in src/ using the
# compile database of an existing build tree.
#
# Usage:
#   scripts/run_clang_tidy.sh [build-dir]
#
# The build dir defaults to the first of build/release, build/asan-ubsan,
# build/debug, build that contains a compile_commands.json; configure any
# preset first (`cmake --preset release`). Exits non-zero on findings.
#
# If clang-tidy is not installed the script warns and exits 0 so that
# developer machines without LLVM don't fail the whole check pipeline;
# set SKYPREF_REQUIRE_CLANG_TIDY=1 (CI does) to make a missing binary a
# hard error.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  if [[ "${SKYPREF_REQUIRE_CLANG_TIDY:-0}" == "1" ]]; then
    echo "error: $CLANG_TIDY not found and SKYPREF_REQUIRE_CLANG_TIDY=1" >&2
    exit 1
  fi
  echo "warning: $CLANG_TIDY not found; skipping static analysis" >&2
  exit 0
fi

build_dir="${1:-}"
if [[ -z "$build_dir" ]]; then
  for candidate in build/release build/asan-ubsan build/debug build; do
    if [[ -f "$candidate/compile_commands.json" ]]; then
      build_dir="$candidate"
      break
    fi
  done
fi
if [[ -z "$build_dir" || ! -f "$build_dir/compile_commands.json" ]]; then
  echo "error: no compile_commands.json found; run e.g." >&2
  echo "  cmake --preset release" >&2
  exit 1
fi

echo "clang-tidy ($build_dir) over src/ ..."
mapfile -t sources < <(find src -name '*.cc' | sort)

status=0
for source in "${sources[@]}"; do
  if ! "$CLANG_TIDY" -p "$build_dir" --quiet "$source"; then
    status=1
  fi
done

if [[ $status -ne 0 ]]; then
  echo "clang-tidy: findings above must be fixed (config: .clang-tidy)" >&2
fi
exit $status
