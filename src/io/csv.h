#ifndef SKYPREF_IO_CSV_H_
#define SKYPREF_IO_CSV_H_

/// \file
/// Minimal RFC-4180-style CSV reading and writing: comma separation,
/// double-quote quoting with "" escapes, and tolerance for \r\n line
/// endings. Enough for datasets and preference tables; not a general
/// spreadsheet importer.

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace skypref {

/// Parses one CSV record (no trailing newline). Fails on unterminated
/// quotes or stray characters after a closing quote.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// Parses a whole CSV document into records, skipping blank lines.
/// Quoted fields must not span lines in this implementation.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view document);

/// Serializes one record, quoting fields that need it.
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// Reads an entire file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes a string to a file (truncating).
Status WriteFile(const std::string& path, std::string_view contents);

}  // namespace skypref

#endif  // SKYPREF_IO_CSV_H_
