#include "src/io/csv.h"

#include <fstream>
#include <sstream>

namespace skypref {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  bool field_was_quoted = false;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument(
            "quote in the middle of an unquoted CSV field: " +
            std::string(line));
      }
      in_quotes = true;
      field_was_quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      field_was_quoted = false;
      ++i;
      continue;
    }
    if (field_was_quoted) {
      return Status::InvalidArgument(
          "characters after closing quote in CSV field: " + std::string(line));
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV line: " +
                                   std::string(line));
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view document) {
  std::vector<std::vector<std::string>> records;
  std::size_t start = 0;
  while (start <= document.size()) {
    std::size_t end = document.find('\n', start);
    std::string_view line = end == std::string_view::npos
                                ? document.substr(start)
                                : document.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) {
      SKYPREF_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                               ParseCsvLine(line));
      records.push_back(std::move(fields));
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return records;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& field = fields[i];
    bool needs_quotes = field.find_first_of(",\"\r\n") != std::string::npos;
    if (!needs_quotes) {
      out += field;
      continue;
    }
    out.push_back('"');
    for (char c : field) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure: " + path);
  return buffer.str();
}

Status WriteFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IOError("write failure: " + path);
  return Status::OK();
}

}  // namespace skypref
