#include "src/io/binary_io.h"

#include <cstring>

#include "src/io/csv.h"

namespace skypref {

namespace {

constexpr char kDatasetMagic[4] = {'S', 'K', 'Y', 'D'};
constexpr char kPrefMagic[4] = {'S', 'K', 'Y', 'P'};
constexpr std::uint32_t kVersion = 1;

void PutU32(std::string* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(out, bits);
}

void PutVarint(std::string* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

/// Cursor over an input buffer with truncation checking.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Status ExpectMagic(const char magic[4]) {
    if (bytes_.size() - pos_ < 4 ||
        std::memcmp(bytes_.data() + pos_, magic, 4) != 0) {
      return Status::InvalidArgument("bad or missing magic header");
    }
    pos_ += 4;
    return Status::OK();
  }

  Result<std::uint32_t> ReadU32() {
    SKYPREF_RETURN_IF_ERROR(Need(4));
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  Result<std::uint64_t> ReadU64() {
    SKYPREF_RETURN_IF_ERROR(Need(8));
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  Result<double> ReadF64() {
    SKYPREF_ASSIGN_OR_RETURN(std::uint64_t bits, ReadU64());
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  Result<std::uint64_t> ReadVarint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      SKYPREF_RETURN_IF_ERROR(Need(1));
      unsigned char byte = static_cast<unsigned char>(bytes_[pos_++]);
      if (shift >= 63 && byte > 1) {
        return Status::InvalidArgument("varint overflows 64 bits");
      }
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Need(std::size_t count) {
    if (bytes_.size() - pos_ < count) {
      return Status::InvalidArgument("truncated binary document");
    }
    return Status::OK();
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string DatasetToBinary(const Dataset& data) {
  std::string out;
  out.append(kDatasetMagic, 4);
  PutU32(&out, kVersion);
  PutU64(&out, data.dimensions());
  PutU64(&out, data.size());
  for (ObjectId row = 0; row < data.size(); ++row) {
    for (DimensionId j = 0; j < data.dimensions(); ++j) {
      PutVarint(&out, data.value(row, j));
    }
  }
  return out;
}

Result<Dataset> DatasetFromBinary(std::string_view bytes) {
  Reader reader(bytes);
  SKYPREF_RETURN_IF_ERROR(reader.ExpectMagic(kDatasetMagic));
  SKYPREF_ASSIGN_OR_RETURN(std::uint32_t version, reader.ReadU32());
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported dataset format version " +
                                   std::to_string(version));
  }
  SKYPREF_ASSIGN_OR_RETURN(std::uint64_t dims, reader.ReadU64());
  SKYPREF_ASSIGN_OR_RETURN(std::uint64_t rows, reader.ReadU64());
  if (dims == 0 || dims > (1u << 20)) {
    return Status::InvalidArgument("implausible dimension count");
  }
  Dataset data(static_cast<std::size_t>(dims));
  std::vector<ValueId> row(static_cast<std::size_t>(dims));
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t j = 0; j < dims; ++j) {
      SKYPREF_ASSIGN_OR_RETURN(std::uint64_t cell, reader.ReadVarint());
      if (cell > 0xffffffffULL) {
        return Status::InvalidArgument("cell value exceeds ValueId range");
      }
      row[static_cast<std::size_t>(j)] = static_cast<ValueId>(cell);
    }
    SKYPREF_RETURN_IF_ERROR(data.Append(row));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after dataset payload");
  }
  return data;
}

Status SaveDatasetBinary(const std::string& path, const Dataset& data) {
  return WriteFile(path, DatasetToBinary(data));
}

Result<Dataset> LoadDatasetBinary(const std::string& path) {
  SKYPREF_ASSIGN_OR_RETURN(std::string contents, ReadFile(path));
  return DatasetFromBinary(contents);
}

std::string PreferencesToBinary(const Dataset& data,
                                const PreferenceModel& model) {
  std::string out;
  out.append(kPrefMagic, 4);
  PutU32(&out, kVersion);
  std::uint64_t entries = 0;
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    ValueId bound = data.value_bound(j);
    entries += static_cast<std::uint64_t>(bound) * (bound - 1) / 2;
  }
  PutU64(&out, entries);
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    ValueId bound = data.value_bound(j);
    for (ValueId a = 0; a < bound; ++a) {
      for (ValueId b = a + 1; b < bound; ++b) {
        PrefPair pair = model.GetPair(j, a, b);
        PutU32(&out, j);
        PutU32(&out, a);
        PutU32(&out, b);
        PutF64(&out, pair.less);
        PutF64(&out, pair.greater);
      }
    }
  }
  return out;
}

Result<TablePreferenceModel> PreferencesFromBinary(std::string_view bytes) {
  Reader reader(bytes);
  SKYPREF_RETURN_IF_ERROR(reader.ExpectMagic(kPrefMagic));
  SKYPREF_ASSIGN_OR_RETURN(std::uint32_t version, reader.ReadU32());
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported preference format version " +
                                   std::to_string(version));
  }
  SKYPREF_ASSIGN_OR_RETURN(std::uint64_t entries, reader.ReadU64());
  TablePreferenceModel model;
  for (std::uint64_t e = 0; e < entries; ++e) {
    SKYPREF_ASSIGN_OR_RETURN(std::uint32_t dim, reader.ReadU32());
    SKYPREF_ASSIGN_OR_RETURN(std::uint32_t lo, reader.ReadU32());
    SKYPREF_ASSIGN_OR_RETURN(std::uint32_t hi, reader.ReadU32());
    SKYPREF_ASSIGN_OR_RETURN(double less, reader.ReadF64());
    SKYPREF_ASSIGN_OR_RETURN(double greater, reader.ReadF64());
    SKYPREF_RETURN_IF_ERROR(model.Set(dim, lo, hi, less, greater));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after preference payload");
  }
  return model;
}

}  // namespace skypref
