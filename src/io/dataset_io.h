#ifndef SKYPREF_IO_DATASET_IO_H_
#define SKYPREF_IO_DATASET_IO_H_

/// \file
/// Text formats for datasets and preference tables.
///
/// Dataset CSV: a header row with dimension names followed by one row per
/// object; values are arbitrary strings interned into a Domain on load.
///
/// Preference CSV: header "dimension,value_a,value_b,prob_a_less,
/// prob_b_less" followed by one row per stored pair, using the same
/// dimension and value names as the dataset CSV.

#include <string>

#include "src/model/dataset.h"
#include "src/model/domain.h"
#include "src/model/preference_model.h"
#include "src/util/status.h"

namespace skypref {

struct LoadedDataset {
  Dataset dataset;
  Domain domain;

  LoadedDataset() : dataset(1), domain(std::size_t{1}) {}
};

/// Parses a dataset CSV document.
Result<LoadedDataset> DatasetFromCsv(std::string_view document);

/// Serializes a dataset with its domain back to CSV.
std::string DatasetToCsv(const Dataset& data, const Domain& domain);

/// Loads a dataset CSV from disk.
Result<LoadedDataset> LoadDatasetFile(const std::string& path);

/// Writes a dataset CSV to disk.
Status SaveDatasetFile(const std::string& path, const Dataset& data,
                       const Domain& domain);

/// Parses a preference CSV against the names in \p domain.
Result<TablePreferenceModel> PreferencesFromCsv(std::string_view document,
                                                const Domain& domain);

/// Serializes all pairs of the dataset's value universe from \p model.
std::string PreferencesToCsv(const Dataset& data, const Domain& domain,
                             const PreferenceModel& model);

}  // namespace skypref

#endif  // SKYPREF_IO_DATASET_IO_H_
