#ifndef SKYPREF_IO_BINARY_IO_H_
#define SKYPREF_IO_BINARY_IO_H_

/// \file
/// Compact binary serialization for datasets and preference tables.
///
/// CSV (src/io/dataset_io.h) is the interchange format; for the
/// evaluation-scale datasets (10^5 objects x 5 dimensions) the binary
/// format loads an order of magnitude faster and preserves ValueIds
/// exactly (no re-interning). Layout, all little-endian:
///
///   dataset file:  "SKYD" u32_version u64_dims u64_rows
///                  varint-packed cells (row-major)
///   preference file: "SKYP" u32_version u64_entries
///                  entries of (u32 dim, u32 lo, u32 hi, f64 less,
///                  f64 greater), lo < hi
///
/// Integers use LEB128 varints for the cells (value ids are mostly
/// small); header fields are fixed width. Readers validate magic,
/// version and truncation and return Status on any malformation.

#include <string>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/util/status.h"

namespace skypref {

/// Serializes a dataset to the binary format.
std::string DatasetToBinary(const Dataset& data);

/// Parses a binary dataset document.
Result<Dataset> DatasetFromBinary(std::string_view bytes);

/// Writes / reads a dataset file.
Status SaveDatasetBinary(const std::string& path, const Dataset& data);
Result<Dataset> LoadDatasetBinary(const std::string& path);

/// Serializes every explicitly stored pair of a TablePreferenceModel.
/// (Hashed models need no serialization — they are a seed.)
std::string PreferencesToBinary(const Dataset& data,
                                const PreferenceModel& model);

/// Parses a binary preference document into a table model.
Result<TablePreferenceModel> PreferencesFromBinary(std::string_view bytes);

}  // namespace skypref

#endif  // SKYPREF_IO_BINARY_IO_H_
