#include "src/io/dataset_io.h"

#include <vector>

#include "src/io/csv.h"
#include "src/util/strings.h"

namespace skypref {

Result<LoadedDataset> DatasetFromCsv(std::string_view document) {
  SKYPREF_ASSIGN_OR_RETURN(auto records, ParseCsv(document));
  if (records.empty()) {
    return Status::InvalidArgument("dataset CSV has no header row");
  }
  const std::vector<std::string>& header = records[0];
  if (header.empty()) {
    return Status::InvalidArgument("dataset CSV header is empty");
  }
  LoadedDataset loaded;
  loaded.domain = Domain(std::vector<std::string>(header.begin(), header.end()));
  loaded.dataset = Dataset(header.size());
  std::vector<ValueId> row(header.size());
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != header.size()) {
      return Status::InvalidArgument(
          "dataset CSV row " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(header.size()));
    }
    for (DimensionId j = 0; j < header.size(); ++j) {
      SKYPREF_ASSIGN_OR_RETURN(row[j],
                               loaded.domain.InternValue(j, records[r][j]));
    }
    SKYPREF_RETURN_IF_ERROR(loaded.dataset.Append(row));
  }
  return loaded;
}

std::string DatasetToCsv(const Dataset& data, const Domain& domain) {
  std::string out;
  std::vector<std::string> fields;
  fields.reserve(data.dimensions());
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    fields.push_back(domain.dimension_name(j));
  }
  out += FormatCsvLine(fields);
  out.push_back('\n');
  for (ObjectId i = 0; i < data.size(); ++i) {
    fields.clear();
    for (DimensionId j = 0; j < data.dimensions(); ++j) {
      fields.push_back(domain.value_name(j, data.value(i, j)));
    }
    out += FormatCsvLine(fields);
    out.push_back('\n');
  }
  return out;
}

Result<LoadedDataset> LoadDatasetFile(const std::string& path) {
  SKYPREF_ASSIGN_OR_RETURN(std::string contents, ReadFile(path));
  return DatasetFromCsv(contents);
}

Status SaveDatasetFile(const std::string& path, const Dataset& data,
                       const Domain& domain) {
  return WriteFile(path, DatasetToCsv(data, domain));
}

namespace {
const char kPrefHeader[] = "dimension,value_a,value_b,prob_a_less,prob_b_less";
}  // namespace

Result<TablePreferenceModel> PreferencesFromCsv(std::string_view document,
                                                const Domain& domain) {
  SKYPREF_ASSIGN_OR_RETURN(auto records, ParseCsv(document));
  if (records.empty()) {
    return Status::InvalidArgument("preference CSV has no header row");
  }
  TablePreferenceModel model;
  for (std::size_t r = 1; r < records.size(); ++r) {
    const auto& record = records[r];
    if (record.size() != 5) {
      return Status::InvalidArgument("preference CSV row " +
                                     std::to_string(r) +
                                     " must have 5 fields");
    }
    DimensionId dim = 0;
    bool found = false;
    for (DimensionId j = 0; j < domain.dimensions(); ++j) {
      if (domain.dimension_name(j) == record[0]) {
        dim = j;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("unknown dimension '" + record[0] +
                              "' in preference CSV row " + std::to_string(r));
    }
    SKYPREF_ASSIGN_OR_RETURN(ValueId a, domain.FindValue(dim, record[1]));
    SKYPREF_ASSIGN_OR_RETURN(ValueId b, domain.FindValue(dim, record[2]));
    SKYPREF_ASSIGN_OR_RETURN(double less, ParseDouble(record[3]));
    SKYPREF_ASSIGN_OR_RETURN(double greater, ParseDouble(record[4]));
    SKYPREF_RETURN_IF_ERROR(model.Set(dim, a, b, less, greater));
  }
  return model;
}

std::string PreferencesToCsv(const Dataset& data, const Domain& domain,
                             const PreferenceModel& model) {
  std::string out = kPrefHeader;
  out.push_back('\n');
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    ValueId bound = data.value_bound(j);
    for (ValueId a = 0; a < bound; ++a) {
      for (ValueId b = a + 1; b < bound; ++b) {
        PrefPair pair = model.GetPair(j, a, b);
        out += FormatCsvLine({domain.dimension_name(j),
                              domain.value_name(j, a), domain.value_name(j, b),
                              std::to_string(pair.less),
                              std::to_string(pair.greater)});
        out.push_back('\n');
      }
    }
  }
  return out;
}

}  // namespace skypref
