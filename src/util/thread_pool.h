#ifndef SKYPREF_UTIL_THREAD_POOL_H_
#define SKYPREF_UTIL_THREAD_POOL_H_

/// \file
/// A small fixed-size thread pool with a blocking ParallelFor.
///
/// The solvers use data parallelism at natural grain boundaries (groups
/// of a partition, chunks of sampled worlds, target objects of an
/// all-objects query). Determinism is preserved by deriving each chunk's
/// PRNG seed from the chunk INDEX, never from the executing thread, so
/// results are identical for any thread count including 0 (inline
/// execution).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/thread_annotations.h"

namespace skypref {

class ThreadPool {
 public:
  /// Creates \p threads workers. Zero threads is valid: every task runs
  /// inline on the caller, which keeps single-threaded builds trivial.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, count), distributing indices over the
  /// workers; blocks until all complete. Exceptions must not escape fn
  /// (the library is exception-free; fn reports failures via captured
  /// state).
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn)
      SKYPREF_EXCLUDES(mutex_);

  /// A sensible default: hardware concurrency minus one (the caller's
  /// thread participates via ParallelFor), at least 1.
  static std::size_t DefaultThreads();

 private:
  void WorkerLoop() SKYPREF_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  // Dispatch protocol state. The condition variables wait on the
  // annotated Mutex directly (condition_variable_any + the wrapper's
  // BasicLockable aliases), so every read/write of the guarded fields is
  // provably under mutex_ — clang's -Wthread-safety checks it.
  Mutex mutex_;
  std::condition_variable_any work_available_;
  std::condition_variable_any work_done_;
  // Current ParallelFor batch.
  const std::function<void(std::size_t)>* current_fn_
      SKYPREF_GUARDED_BY(mutex_) = nullptr;
  std::size_t next_index_ SKYPREF_GUARDED_BY(mutex_) = 0;
  std::size_t end_index_ SKYPREF_GUARDED_BY(mutex_) = 0;
  std::size_t in_flight_ SKYPREF_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ SKYPREF_GUARDED_BY(mutex_) = false;
};

}  // namespace skypref

#endif  // SKYPREF_UTIL_THREAD_POOL_H_
