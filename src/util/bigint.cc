#include "src/util/bigint.h"

#include <cstdlib>
#include <utility>

namespace skypref {

namespace {
constexpr std::uint64_t kLimbBase = std::uint64_t{1} << 32;
}  // namespace

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Avoid overflow on INT64_MIN by working in unsigned space.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffu));
    magnitude >>= 32;
  }
  Normalize();
}

BigInt::BigInt(std::uint64_t value) {
  while (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value & 0xffffffffu));
    value >>= 32;
  }
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty BigInt literal");
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) {
    return Status::InvalidArgument("BigInt literal has no digits");
  }
  BigInt value;
  const BigInt ten(std::int64_t{10});
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("bad digit in BigInt: ") + c);
    }
    value = value * ten + BigInt(static_cast<std::int64_t>(c - '0'));
  }
  if (negative && !value.is_zero()) value.negative_ = true;
  return value;
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::CompareMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

std::vector<std::uint32_t> BigInt::AddMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  const auto& longer = a.size() >= b.size() ? a : b;
  const auto& shorter = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> out;
  out.reserve(longer.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    std::uint64_t sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    out.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::SubMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt result;
  if (negative_ == other.negative_) {
    result.limbs_ = AddMagnitude(limbs_, other.limbs_);
    result.negative_ = negative_;
  } else {
    int mag = CompareMagnitude(limbs_, other.limbs_);
    if (mag == 0) return BigInt();
    if (mag > 0) {
      result.limbs_ = SubMagnitude(limbs_, other.limbs_);
      result.negative_ = negative_;
    } else {
      result.limbs_ = SubMagnitude(other.limbs_, limbs_);
      result.negative_ = other.negative_;
    }
  }
  result.Normalize();
  return result;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  if (is_zero() || other.is_zero()) return BigInt();
  BigInt result;
  result.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      std::uint64_t cur = result.limbs_[i + j] + carry +
                          static_cast<std::uint64_t>(limbs_[i]) * other.limbs_[j];
      result.limbs_[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry != 0) {
      std::uint64_t cur = result.limbs_[k] + carry;
      result.limbs_[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  result.negative_ = negative_ != other.negative_;
  result.Normalize();
  return result;
}

void BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                    BigInt* quotient, BigInt* remainder) {
  if (divisor.is_zero()) {
    std::abort();  // division by zero is a programming error
  }
  // Schoolbook binary long division on magnitudes: O(bits * limbs). The
  // library only divides numbers produced by rational normalization, whose
  // sizes stay modest, so simplicity beats Knuth algorithm D here.
  BigInt q, r;
  const std::size_t bits = dividend.BitLength();
  for (std::size_t i = bits; i-- > 0;) {
    // r = r * 2 + bit(i)
    r = r + r;
    std::uint32_t limb = dividend.limbs_[i / 32];
    if ((limb >> (i % 32)) & 1u) r = r + BigInt(std::int64_t{1});
    if (CompareMagnitude(r.limbs_, divisor.limbs_) >= 0) {
      r.limbs_ = SubMagnitude(r.limbs_, divisor.limbs_);
      r.Normalize();
      std::size_t limb_index = i / 32;
      if (q.limbs_.size() <= limb_index) q.limbs_.resize(limb_index + 1, 0);
      q.limbs_[limb_index] |= (std::uint32_t{1} << (i % 32));
    }
  }
  q.Normalize();
  r.Normalize();
  q.negative_ = !q.is_zero() && (dividend.negative_ != divisor.negative_);
  r.negative_ = !r.is_zero() && dividend.negative_;
  if (quotient != nullptr) *quotient = std::move(q);
  if (remainder != nullptr) *remainder = std::move(r);
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q;
  DivMod(*this, other, &q, nullptr);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt r;
  DivMod(*this, other, nullptr, &r);
  return r;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::PowerOfTwo(unsigned exponent) {
  BigInt result;
  result.limbs_.assign(exponent / 32 + 1, 0);
  result.limbs_.back() = std::uint32_t{1} << (exponent % 32);
  return result;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeatedly divide the magnitude by 10^9, collecting 9-digit chunks.
  std::vector<std::uint32_t> mag = limbs_;
  std::string digits;
  while (!mag.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<std::uint32_t>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  return std::string(digits.rbegin(), digits.rend());
}

double BigInt::ToDouble() const {
  double value = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = value * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -value : value;
}

bool BigInt::ToInt64(std::int64_t* out) const {
  if (limbs_.size() > 2) return false;
  std::uint64_t magnitude = 0;
  if (limbs_.size() >= 1) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (magnitude > std::uint64_t{1} << 63) return false;
    *out = static_cast<std::int64_t>(~magnitude + 1);
  } else {
    if (magnitude > static_cast<std::uint64_t>(INT64_MAX)) return false;
    *out = static_cast<std::int64_t>(magnitude);
  }
  return true;
}

std::size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace skypref
