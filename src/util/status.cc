#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace skypref {

namespace {
const std::string& EmptyString() {
  static const std::string* empty = new std::string();
  return *empty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code == StatusCode::kOk) {
    code = StatusCode::kInternal;
    message = "Status constructed with kOk and a message: " + message;
  }
  state_ = std::make_shared<const State>(State{code, std::move(message)});
}

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Fatal: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace skypref
