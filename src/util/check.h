#ifndef SKYPREF_UTIL_CHECK_H_
#define SKYPREF_UTIL_CHECK_H_

/// \file
/// Runtime invariant checks for the exception-free library.
///
/// The solvers compute exact inclusion-exclusion probabilities and
/// multiply per-group survival factors across threads; a silent logic
/// error there produces a plausible-but-wrong number rather than a
/// crash. These macros make wrongness loud where it is cheap to do so:
///
///  * SKYPREF_CHECK(cond)        - always on, aborts with a message.
///    Reserved for corruption that must never ship a wrong answer.
///  * SKYPREF_DCHECK(cond)       - compiled out in Release; fatal in
///    Debug and in sanitizer builds (SKYPREF_SANITIZE defines
///    SKYPREF_ENABLE_DCHECKS, see cmake/Sanitizers.cmake).
///  * SKYPREF_DCHECK_PROB(p)     - DCHECK that p is a probability up to
///    the accumulation tolerance: finite and within [0-eps, 1+eps].
///
/// The library never throws, so the failure path prints to stderr and
/// aborts — the same contract as Status::CheckOK. Checks must not have
/// side effects: in Release builds the condition expression of
/// SKYPREF_DCHECK is not evaluated at all.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/util/status.h"

namespace skypref {

/// Tolerance accepted on emitted probabilities before clamping. The
/// inclusion-exclusion expansion alternates signs over up to 2^n terms;
/// compensated summation keeps the drift far below this bound, so any
/// excursion past it indicates a real bug, not rounding.
inline constexpr double kProbEpsilon = 1e-9;

/// True iff \p p is a valid probability up to kProbEpsilon.
inline bool IsProbability(double p) {
  return std::isfinite(p) && p >= -kProbEpsilon && p <= 1.0 + kProbEpsilon;
}

/// Clamps a probability that passed IsProbability into exactly [0, 1].
inline double ClampProbability(double p) {
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

/// Status-returning probability validation for entry points that must
/// stay recoverable in Release builds (the macros below abort instead).
/// \p what names the value in the error message.
inline Status ValidateProbability(double p, const char* what) {
  if (IsProbability(p)) return Status::OK();
  return Status::Internal(std::string(what) + " = " + std::to_string(p) +
                          " is not a probability (tolerance " +
                          std::to_string(kProbEpsilon) + ")");
}

namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* extra) {
  std::fprintf(stderr, "%s:%d: SKYPREF_CHECK failed: %s%s%s\n", file, line,
               expr, extra[0] != '\0' ? " " : "", extra);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void ProbCheckFailed(const char* file, int line,
                                         const char* expr, double value) {
  std::fprintf(stderr,
               "%s:%d: SKYPREF_CHECK_PROB failed: %s = %.17g is outside "
               "[-%g, 1+%g]\n",
               file, line, expr, value, kProbEpsilon, kProbEpsilon);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace skypref

/// Always-on fatal assertion.
#define SKYPREF_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::skypref::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                    \
  } while (false)

/// Always-on probability-range assertion.
#define SKYPREF_CHECK_PROB(p)                                            \
  do {                                                                   \
    const double _skypref_p = (p);                                       \
    if (!::skypref::IsProbability(_skypref_p)) {                         \
      ::skypref::internal::ProbCheckFailed(__FILE__, __LINE__, #p,       \
                                           _skypref_p);                  \
    }                                                                    \
  } while (false)

// Debug checks are on outside NDEBUG builds and in any build that
// defines SKYPREF_ENABLE_DCHECKS (the sanitizer presets do).
#if !defined(SKYPREF_ENABLE_DCHECKS) && !defined(NDEBUG)
#define SKYPREF_ENABLE_DCHECKS 1
#endif

#if defined(SKYPREF_ENABLE_DCHECKS) && SKYPREF_ENABLE_DCHECKS
#define SKYPREF_DCHECK(cond) SKYPREF_CHECK(cond)
#define SKYPREF_DCHECK_PROB(p) SKYPREF_CHECK_PROB(p)
#else
#define SKYPREF_DCHECK(cond) \
  do {                       \
  } while (false)
#define SKYPREF_DCHECK_PROB(p) \
  do {                         \
  } while (false)
#endif

#endif  // SKYPREF_UTIL_CHECK_H_
