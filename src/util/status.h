#ifndef SKYPREF_UTIL_STATUS_H_
#define SKYPREF_UTIL_STATUS_H_

/// \file
/// Lightweight Status / Result error-handling primitives.
///
/// Library code never throws: fallible operations return a Status (or a
/// Result<T> when they also produce a value). The design follows the
/// Arrow/Abseil idiom: cheap success path, message-carrying failure path,
/// and macros for early returns.

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace skypref {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kIOError,
  kUnimplemented,
  kInternal,
  kCancelled,
};

/// \brief Human-readable name of a StatusCode ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: OK, or a code plus message.
///
/// An OK Status stores no heap state; error states allocate one small
/// struct. Status is cheaply movable and copyable.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given error \p code and \p message.
  /// Using kOk here is a programming error and is normalized to Internal.
  Status(StatusCode code, std::string message);

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// The error category; kOk when ok().
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The error message; empty when ok().
  const std::string& message() const;

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process with the error message if not ok(). For use in
  /// tests, examples, and tools where an error is unrecoverable.
  void CheckOK() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null on success; shared so copies are cheap and Status is small.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Either a value of type T or an error Status.
///
/// Access to the value of a non-OK Result aborts; callers must test ok()
/// (or use the SKYPREF_ASSIGN_OR_RETURN macro).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; OK when this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// The contained value. Aborts if !ok().
  const T& value() const& {
    CheckHasValue();
    return std::get<T>(payload_);
  }
  T& value() & {
    CheckHasValue();
    return std::get<T>(payload_);
  }
  T&& value() && {
    CheckHasValue();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!ok()) std::get<Status>(payload_).CheckOK();
  }
  std::variant<T, Status> payload_;
};

/// Early-return helpers (statement-expression free, portable).
#define SKYPREF_RETURN_IF_ERROR(expr)                   \
  do {                                                  \
    ::skypref::Status _skypref_status = (expr);         \
    if (!_skypref_status.ok()) return _skypref_status;  \
  } while (false)

#define SKYPREF_CONCAT_IMPL(a, b) a##b
#define SKYPREF_CONCAT(a, b) SKYPREF_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression to `lhs`, returning the error
/// status from the enclosing function on failure.
#define SKYPREF_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto SKYPREF_CONCAT(_skypref_result_, __LINE__) = (rexpr);        \
  if (!SKYPREF_CONCAT(_skypref_result_, __LINE__).ok())             \
    return SKYPREF_CONCAT(_skypref_result_, __LINE__).status();     \
  lhs = std::move(SKYPREF_CONCAT(_skypref_result_, __LINE__)).value()

}  // namespace skypref

#endif  // SKYPREF_UTIL_STATUS_H_
