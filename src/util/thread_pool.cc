#include "src/util/thread_pool.h"

#include <algorithm>

#include "src/util/failpoint.h"

namespace skypref {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::DefaultThreads() {
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 1 ? hardware - 1 : 1;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock, [this] {
      return shutting_down_ || (current_fn_ != nullptr &&
                                next_index_ < end_index_);
    });
    if (shutting_down_) return;
    while (current_fn_ != nullptr && next_index_ < end_index_) {
      std::size_t index = next_index_++;
      ++in_flight_;
      const auto* fn = current_fn_;
      lock.unlock();
      (*fn)(index);
      lock.lock();
      --in_flight_;
    }
    work_done_.notify_all();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Failpoint "threadpool.serial": simulate a degraded pool (workers
  // wedged or starved) by running this dispatch inline on the caller.
  // Callers' results must not change — the solvers' determinism contract
  // is thread-count independence — which is exactly what the failpoint
  // tests assert.
  if (workers_.empty() || SKYPREF_FAILPOINT("threadpool.serial")) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  current_fn_ = &fn;
  next_index_ = 0;
  end_index_ = count;
  work_available_.notify_all();
  // The calling thread participates too.
  while (next_index_ < end_index_) {
    std::size_t index = next_index_++;
    ++in_flight_;
    lock.unlock();
    fn(index);
    lock.lock();
    --in_flight_;
  }
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
  current_fn_ = nullptr;
}

}  // namespace skypref
