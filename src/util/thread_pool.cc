#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "src/util/failpoint.h"

namespace skypref {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::DefaultThreads() {
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 1 ? hardware - 1 : 1;
}

void ThreadPool::WorkerLoop() {
  // Manual Lock/Unlock instead of a scope: the lock is dropped around the
  // user callback and re-taken for the bookkeeping, a protocol RAII
  // cannot express. The analysis still checks the pairing balances on
  // every path.
  mutex_.Lock();
  while (true) {
    work_available_.wait(mutex_, [this] {
      mutex_.AssertHeld();  // the condition variable holds it during eval
      return shutting_down_ ||
             (current_fn_ != nullptr && next_index_ < end_index_);
    });
    if (shutting_down_) {
      mutex_.Unlock();
      return;
    }
    while (current_fn_ != nullptr && next_index_ < end_index_) {
      std::size_t index = next_index_++;
      ++in_flight_;
      const auto* fn = current_fn_;
      mutex_.Unlock();
      (*fn)(index);
      mutex_.Lock();
      --in_flight_;
    }
    work_done_.notify_all();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Failpoint "threadpool.serial": simulate a degraded pool (workers
  // wedged or starved) by running this dispatch inline on the caller.
  // Callers' results must not change — the solvers' determinism contract
  // is thread-count independence — which is exactly what the failpoint
  // tests assert.
  if (workers_.empty() || SKYPREF_FAILPOINT("threadpool.serial")) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Failpoint "threadpool.wait" (kSpuriousWake): flood both condition
  // variables with notifications for the whole dispatch, so any wait
  // whose predicate tolerates fewer wakeups than it receives — i.e. any
  // single-wake assumption — misbehaves deterministically under test.
  // notify_all without the mutex is legal for condition_variable_any;
  // the storm only causes extra predicate re-evaluations.
  std::atomic<bool> storm_stop{false};
  std::thread wake_storm;
  if (SKYPREF_WAKE_FAILPOINT("threadpool.wait")) {
    wake_storm = std::thread([this, &storm_stop] {
      while (!storm_stop.load(std::memory_order_relaxed)) {
        work_available_.notify_all();
        work_done_.notify_all();
        std::this_thread::yield();
      }
    });
  }
  mutex_.Lock();
  current_fn_ = &fn;
  next_index_ = 0;
  end_index_ = count;
  work_available_.notify_all();
  // The calling thread participates too.
  while (next_index_ < end_index_) {
    std::size_t index = next_index_++;
    ++in_flight_;
    mutex_.Unlock();
    fn(index);
    mutex_.Lock();
    --in_flight_;
  }
  // Spurious-wakeup audit: both waits in this file are predicate-driven
  // (condition_variable_any re-evaluates under mutex_ on EVERY wake), so
  // no single-wake assumption exists to break. The compound predicate
  // here additionally re-checks the index range, not just in_flight_:
  // the caller's drain loop above observed next_index_ >= end_index_
  // once, but a wake storm must not let the wait conclude while indices
  // could still be outstanding in any future refactor of the drain.
  work_done_.wait(mutex_, [this] {
    mutex_.AssertHeld();
    return next_index_ >= end_index_ && in_flight_ == 0;
  });
  current_fn_ = nullptr;
  mutex_.Unlock();
  if (wake_storm.joinable()) {
    storm_stop.store(true, std::memory_order_relaxed);
    wake_storm.join();
  }
}

}  // namespace skypref
