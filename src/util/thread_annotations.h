#ifndef SKYPREF_UTIL_THREAD_ANNOTATIONS_H_
#define SKYPREF_UTIL_THREAD_ANNOTATIONS_H_

/// \file
/// Clang Thread Safety Analysis annotations, plus the annotated mutex
/// wrapper the rest of the tree locks through.
///
/// The repo's concurrency contracts — which fields a lock protects, which
/// functions must (or must not) hold it — live in these macros instead of
/// comments, so `clang -Wthread-safety` proves them at compile time. The
/// clang presets promote violations to errors
/// (-Werror=thread-safety-analysis, see cmake/ThreadSafety.cmake); under
/// GCC every macro expands to nothing and annotated code compiles
/// unchanged (pinned by tests/util/thread_annotations_test.cc).
///
/// Raw std::mutex is NOT a capability under libstdc++ (its class is not
/// annotated), so lock-protected state must use the skypref::Mutex
/// wrapper below: same std::mutex underneath, but declared a capability
/// and with annotated Lock/Unlock/TryLock. Condition variables wait on it
/// through std::condition_variable_any (the wrapper is BasicLockable via
/// the lowercase aliases).
///
/// Annotation conventions for this tree (docs/TOOLING.md has the guide):
///
///  * every Mutex member gets at least one sibling field carrying
///    SKYPREF_GUARDED_BY(that_mutex) — enforced by the mutex-guarded-by
///    rule of tools/skypref_lint.py;
///  * prefer MutexLock (scoped) over manual Lock/Unlock; manual pairs are
///    for protocols a scope cannot express (ThreadPool::WorkerLoop drops
///    the lock around the user callback);
///  * wait predicates run with the lock held by the condition variable,
///    which the analysis cannot see — start them with mutex.AssertHeld().

#if defined(__clang__)
#define SKYPREF_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SKYPREF_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (lockable) type.
#define SKYPREF_CAPABILITY(x) SKYPREF_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose lifetime holds a capability.
#define SKYPREF_SCOPED_CAPABILITY SKYPREF_THREAD_ANNOTATION__(scoped_lockable)

/// The annotated field may only be read/written with \p x held.
#define SKYPREF_GUARDED_BY(x) SKYPREF_THREAD_ANNOTATION__(guarded_by(x))

/// The pointee of the annotated pointer is protected by \p x.
#define SKYPREF_PT_GUARDED_BY(x) SKYPREF_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The function must be called with the listed capabilities held.
#define SKYPREF_REQUIRES(...) \
  SKYPREF_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities (held on return).
#define SKYPREF_ACQUIRE(...) \
  SKYPREF_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held on entry).
#define SKYPREF_RELEASE(...) \
  SKYPREF_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns \p ret.
#define SKYPREF_TRY_ACQUIRE(...) \
  SKYPREF_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called with the listed capabilities held
/// (deadlock guard for self-locking entry points).
#define SKYPREF_EXCLUDES(...) \
  SKYPREF_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis, not at runtime) that the capability is held
/// — the escape hatch for paths where the holder is invisible to the
/// analysis, e.g. condition-variable wait predicates.
#define SKYPREF_ASSERT_CAPABILITY(x) \
  SKYPREF_THREAD_ANNOTATION__(assert_capability(x))

/// The function returns a reference to the named capability.
#define SKYPREF_RETURN_CAPABILITY(x) \
  SKYPREF_THREAD_ANNOTATION__(lock_returned(x))

/// Disables the analysis for one function (last resort; say why).
#define SKYPREF_NO_THREAD_SAFETY_ANALYSIS \
  SKYPREF_THREAD_ANNOTATION__(no_thread_safety_analysis)

#include <mutex>

namespace skypref {

/// std::mutex declared as a thread-safety capability. Same size, same
/// cost — the annotations are compile-time only.
class SKYPREF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SKYPREF_ACQUIRE() { mutex_.lock(); }
  void Unlock() SKYPREF_RELEASE() { mutex_.unlock(); }
  bool TryLock() SKYPREF_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// Tells the analysis the mutex is held on this path without touching
  /// it at runtime. For condition-variable wait predicates, which run
  /// under the lock re-acquired by the condition variable itself.
  void AssertHeld() const SKYPREF_ASSERT_CAPABILITY(this) {}

  // BasicLockable interface so std::condition_variable_any (and
  // std::lock_guard, if ever needed) can operate on the wrapper
  // directly. Annotated identically to Lock/Unlock.
  void lock() SKYPREF_ACQUIRE() { mutex_.lock(); }
  void unlock() SKYPREF_RELEASE() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

/// RAII lock for skypref::Mutex — the annotated std::lock_guard analog.
class SKYPREF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SKYPREF_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() SKYPREF_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace skypref

#endif  // SKYPREF_UTIL_THREAD_ANNOTATIONS_H_
