#ifndef SKYPREF_UTIL_CANCEL_H_
#define SKYPREF_UTIL_CANCEL_H_

/// \file
/// Cooperative cancellation and the unified deadline type.
///
/// The solvers are exponential by design (#P-completeness, Theorem 1), so
/// in a serving scenario every long computation must be interruptible.
/// Two orthogonal stop signals exist:
///
///  * Deadline — a fixed point on the steady clock after which the
///    computation should give up. All multi-solve drivers resolve ONE
///    deadline up front and share it (see ExactOptions::deadline), so a
///    query-wide time limit is observed once, not once per sub-solve.
///    Expiry maps to Status::ResourceExhausted: the result is still
///    wanted, just cheaper — the resilient ladder (src/core/resilient.h)
///    answers with a sampled estimate or a certified interval instead.
///
///  * CancelToken — an external "stop, the answer is no longer wanted"
///    signal (client disconnect, superseded query). Solvers poll the
///    token cooperatively at the SAME bounded intervals as the deadline
///    (every few thousand DFS visits, every task boundary, every sampler
///    batch), so a cancel is observed within microseconds without any
///    per-iteration cost. Cancellation maps to Status::Cancelled and is
///    NOT degraded around: the whole query aborts.
///
/// Determinism: cancellation is observed at deterministic work
/// boundaries (visit-count checkpoints, task starts), so a token that is
/// already cancelled when a solve starts yields Status::Cancelled at
/// every thread count — the property the 0/1/2/8-thread tests pin down.
/// A token cancelled asynchronously mid-solve races the solve's own
/// completion, as any cooperative scheme must; once the cancel is
/// observed by any task, the query-level outcome is Cancelled.
///
/// Both types are cheap values. CancelToken copies share one flag
/// (shared_ptr<atomic<bool>>), so a caller keeps one token, hands copies
/// (or a pointer) to solver options, and flips it from any thread.
///
/// Everything here is lock-free on purpose: polls sit on solver hot
/// paths, so there is no mutex and nothing for -Wthread-safety to guard
/// (see src/util/thread_annotations.h for the annotated-lock conventions
/// the rest of the tree follows).

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

#include "src/util/status.h"

namespace skypref {

/// A fixed point on the steady clock; default-constructed = never.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// Never expires.
  Deadline() = default;

  /// Expires at the given absolute steady-clock time.
  static Deadline At(TimePoint tp) { return Deadline(tp); }

  /// Expires \p seconds from now; non-positive seconds = never.
  static Deadline After(double seconds) {
    if (seconds <= 0.0) return Deadline();
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds)));
  }

  static Deadline Never() { return Deadline(); }

  bool has_value() const { return when_.has_value(); }

  /// True iff a deadline is set and has passed. Calls Clock::now(), so
  /// poll at bounded intervals, not per inner-loop iteration.
  bool Expired() const { return when_.has_value() && Clock::now() > *when_; }

  /// The absolute expiry time; only meaningful when has_value().
  TimePoint when() const { return when_.value(); }

 private:
  explicit Deadline(TimePoint tp) : when_(tp) {}

  std::optional<TimePoint> when_;
};

/// Shared cancellation flag. Copies alias the same flag; a
/// default-constructed token is live (not cancelled) and cancellable.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; safe from any thread, idempotent.
  void RequestCancel() const { flag_->store(true, std::memory_order_release); }

  /// True once RequestCancel has been called on any copy.
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The Status a solver returns when it observes a cancelled token.
inline Status CancelledStatus() {
  return Status::Cancelled("solve cancelled by caller");
}

/// Convenience poll for solver checkpoints: Cancelled if \p cancel is
/// set and tripped, ResourceExhausted if \p deadline expired, OK
/// otherwise. Cancellation wins — the answer is no longer wanted.
inline Status CheckStop(const CancelToken* cancel, const Deadline& deadline) {
  if (cancel != nullptr && cancel->cancelled()) return CancelledStatus();
  if (deadline.Expired()) {
    return Status::ResourceExhausted("solve exceeded its deadline");
  }
  return Status::OK();
}

}  // namespace skypref

#endif  // SKYPREF_UTIL_CANCEL_H_
