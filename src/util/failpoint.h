#ifndef SKYPREF_UTIL_FAILPOINT_H_
#define SKYPREF_UTIL_FAILPOINT_H_

/// \file
/// Deterministic failpoints: named fault-injection sites, compiled out
/// of release builds, plus seeded chaos schedules over every site.
///
/// Every graceful-degradation path in the solver stack (budget
/// exhaustion, deadline expiry, task abort, per-target batch salvage,
/// allocation failure) must be exercised by tests, not hoped-for.
/// Failpoints make those paths reachable on demand: a site is a named
/// checkpoint in solver code, and a test arms it to fire on a chosen
/// pattern of its hit sequence — after which the site behaves exactly
/// like the organic failure it simulates (the DFS reports
/// ResourceExhausted, the sampler sees its deadline expired, the
/// allocation wrapper reports the allocation failed).
///
/// Code pattern at an execution site:
///
///     if (SKYPREF_FAILPOINT("exact.dfs")) {
///       status_ = Status::ResourceExhausted("failpoint exact.dfs");
///       return false;
///     }
///
/// With SKYPREF_FAILPOINTS off (the default, and all release presets)
/// the macros are the constant `false`, so sites cost nothing and the
/// registry is not linked in. With -DSKYPREF_FAILPOINTS=ON (the
/// asan-ubsan and tsan presets) the macros consult the registry.
///
/// # Fault kinds
///
/// A site is consulted through one of three macros, matching the three
/// site classes of the canonical registry (kKnownSites, failpoint.cc):
///
///  * SKYPREF_FAILPOINT        — execution sites; a firing hit means
///                               "fail here" (FaultKind::kFail);
///  * SKYPREF_ALLOC_FAILPOINT  — allocation sites consulted by TryAlloc
///                               (src/util/try_alloc.h); a firing hit
///                               means "this allocation failed"
///                               (FaultKind::kAllocFail);
///  * SKYPREF_WAKE_FAILPOINT   — wait sites; while armed with
///                               FaultKind::kSpuriousWake the consulting
///                               code floods its condition variables
///                               with spurious notifications.
///
/// FaultKind::kDelay cross-cuts the first two: a firing hit sleeps a
/// bounded number of microseconds and reports `false`, opening race
/// windows without changing any result. A schedule whose kind does not
/// match the consulting macro's class absorbs hits without firing, so
/// seeded schedules can arm every site safely.
///
/// # Hit patterns and seeded schedules
///
/// Beyond the classic fail-N-th-hit single pattern, a Schedule can fire
/// periodically (every n-th hit at a phase) or probabilistically (a
/// seeded hash of the hit ordinal against a threshold — deterministic
/// per (salt, ordinal), no PRNG state). ArmSeededSchedule(seed) derives
/// one Schedule per registered site from a single 64-bit seed, so an
/// entire compound fault scenario is reproducible from one number.
///
/// Determinism: hit counters are per-site process-global atomics, so
/// each pattern is evaluated against the site's own deterministic hit
/// ordinal sequence. With 0 or 1 worker threads the firing hits select
/// the same logical work units on every run; with more threads the SET
/// of firing ordinals is still seed-deterministic, but which concurrent
/// work unit absorbs a given ordinal races (the chaos invariants are
/// therefore schedule-level, not casualty-set-level — see
/// tools/skypref_chaos.cc).
///
/// Arming and disarming are atomic with respect to concurrent hits: each
/// arming publishes a fresh counter object, so threads mid-site keep
/// charging the counter they snapshotted and can never corrupt a
/// restarted countdown. "Fires exactly once" (kSingle) holds per arming.
///
/// Failpoints are test-only infrastructure: tests arm/disarm around each
/// case (see ScopedFailpoint) and must not leave sites armed. The
/// registry is thread-safe; the unarmed fast path is one relaxed atomic
/// load of a global counter, no lock.

#include <cstddef>
#include <cstdint>
#include <span>

namespace skypref {
namespace failpoint {

/// What a firing hit does at the consulting site.
enum class FaultKind : std::uint8_t {
  kFail,          ///< execution sites: report the simulated failure
  kDelay,         ///< any site: bounded sleep, then behave unarmed
  kAllocFail,     ///< allocation sites: the allocation reports failure
  kSpuriousWake,  ///< wait sites: flood the waiters with notifications
};

/// Which macro a site is consulted through (and therefore which fault
/// kinds can fire at it).
enum class SiteClass : std::uint8_t {
  kExecution,   ///< SKYPREF_FAILPOINT
  kAllocation,  ///< SKYPREF_ALLOC_FAILPOINT
  kWait,        ///< SKYPREF_WAKE_FAILPOINT
};

/// One armed fault: kind, hit pattern, and the pattern's parameters.
struct Schedule {
  enum class Pattern : std::uint8_t {
    kSingle,         ///< fire on hit n exactly (once per arming)
    kPeriodic,       ///< fire on every hit h with h % n == phase % n
    kProbabilistic,  ///< fire when HashMix(salt ^ h) < threshold
  };

  FaultKind kind = FaultKind::kFail;
  Pattern pattern = Pattern::kSingle;
  std::uint64_t n = 1;             ///< kSingle: the firing hit; kPeriodic: period
  std::uint64_t phase = 0;         ///< kPeriodic: offset within the period
  std::uint64_t threshold = 0;     ///< kProbabilistic: firing cutoff
  std::uint64_t salt = 0;          ///< kProbabilistic: per-arming hash salt
  std::uint32_t delay_micros = 0;  ///< kDelay: sleep per firing hit
};

/// One entry of the canonical site registry (kKnownSites, failpoint.cc).
/// Every SKYPREF_*FAILPOINT literal compiled into the tree must appear
/// there — enforced by the `failpoint-site` lint rule and the coverage
/// suite (tests/core/failpoint_coverage_test.cc).
struct KnownSite {
  const char* name;
  SiteClass cls;
};

/// The canonical registry of every site compiled into the tree.
std::span<const KnownSite> KnownSites();

/// Arms \p site to trigger on its \p fire_on_hit-th hit from now
/// (1-based; the counter restarts at arm time). Re-arming an armed site
/// restarts its countdown — atomically, even while other threads are
/// mid-site. \p site must be a string literal or otherwise outlive the
/// arming. Shorthand for ArmSchedule with a kSingle/kFail schedule.
void Arm(const char* site, std::uint64_t fire_on_hit = 1);

/// Arms \p site with an explicit schedule (see Schedule). Re-arming
/// replaces the previous schedule and restarts the hit counter.
void ArmSchedule(const char* site, const Schedule& schedule);

/// Disarms every site, then arms each registered site whose derived roll
/// says so with a Schedule derived deterministically from \p seed (kind,
/// pattern and parameters all follow from seed and the site name; some
/// rolls leave a site unarmed so compound scenarios vary in shape).
/// Returns the number of sites armed. The derivation is pure: the same
/// seed always arms the same schedules.
std::size_t ArmSeededSchedule(std::uint64_t seed);

/// Disarms \p site; hits pass through again. No-op when not armed.
void Disarm(const char* site);

/// Disarms every site and forgets all counters (test teardown).
void DisarmAll();

/// Number of currently armed sites (leak check for chaos teardown).
std::size_t ArmedCount();

/// Number of hits \p site has absorbed since it was armed (0 when the
/// site is not armed). For tests asserting a site is actually reached.
std::uint64_t HitCount(const char* site);

/// Process-cumulative count of faults actually injected (fired hits of
/// any kind, spurious-wake consults included). Chaos drivers diff this
/// around a run to report faults_injected.
std::uint64_t FiredCount();

/// True iff this hit fires a kFail schedule. Called via SKYPREF_FAILPOINT.
bool Hit(const char* site);

/// True iff this hit fires a kAllocFail schedule. Called via
/// SKYPREF_ALLOC_FAILPOINT (through TryAlloc).
bool AllocHit(const char* site);

/// True while \p site is armed with kSpuriousWake. Called via
/// SKYPREF_WAKE_FAILPOINT; each consult that finds the storm armed
/// counts as one hit (and one injected fault).
bool WakeStormArmed(const char* site);

/// Coverage accounting: while enabled, every consult of every site —
/// armed or not — is counted per site name. The coverage suite turns it
/// on, runs a workload battery, and asserts every registered site was
/// consulted at least once (dead or typo'd site names fail the test).
void EnableCoverage(bool enabled);

/// Consults counted for \p site since coverage was last reset.
std::uint64_t CoverageCount(const char* site);

/// Clears all coverage counters.
void ResetCoverage();

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor, so a failing assertion cannot leak an armed site into the
/// next test case.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(const char* site, std::uint64_t fire_on_hit = 1)
      : site_(site) {
    Arm(site, fire_on_hit);
  }
  ScopedFailpoint(const char* site, const Schedule& schedule) : site_(site) {
    ArmSchedule(site, schedule);
  }
  ~ScopedFailpoint() { Disarm(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  const char* site_;
};

}  // namespace failpoint
}  // namespace skypref

#if defined(SKYPREF_FAILPOINTS) && SKYPREF_FAILPOINTS
#define SKYPREF_FAILPOINT(site) (::skypref::failpoint::Hit(site))
#define SKYPREF_ALLOC_FAILPOINT(site) (::skypref::failpoint::AllocHit(site))
#define SKYPREF_WAKE_FAILPOINT(site) (::skypref::failpoint::WakeStormArmed(site))
#else
#define SKYPREF_FAILPOINT(site) (false)
#define SKYPREF_ALLOC_FAILPOINT(site) (false)
#define SKYPREF_WAKE_FAILPOINT(site) (false)
#endif

#endif  // SKYPREF_UTIL_FAILPOINT_H_
