#ifndef SKYPREF_UTIL_FAILPOINT_H_
#define SKYPREF_UTIL_FAILPOINT_H_

/// \file
/// Deterministic failpoints: named fault-injection sites, compiled out
/// of release builds.
///
/// Every graceful-degradation path in the solver stack (budget
/// exhaustion, deadline expiry, task abort, per-target batch salvage)
/// must be exercised by tests, not hoped-for. Failpoints make those
/// paths reachable on demand: a site is a named checkpoint in solver
/// code, and a test arms it to fire on its N-th hit — the classic
/// fail-N-th-hit pattern — after which the site behaves exactly like the
/// organic failure it simulates (the DFS reports ResourceExhausted, the
/// sampler sees its deadline expired, the parallel engine aborts its
/// task, the batch scheduler fails one target).
///
/// Code pattern at a site:
///
///     if (SKYPREF_FAILPOINT("exact.dfs")) {
///       status_ = Status::ResourceExhausted("failpoint exact.dfs");
///       return false;
///     }
///
/// With SKYPREF_FAILPOINTS off (the default, and all release presets)
/// the macro is the constant `false`, so sites cost nothing and the
/// registry is not linked in. With -DSKYPREF_FAILPOINTS=ON (the
/// asan-ubsan and tsan presets) the macro consults the registry.
///
/// Determinism: hit counters are per-site process-global atomics, so the
/// N-th hit is unique even when many threads pass the site concurrently
/// — exactly one caller observes the trigger, at a deterministic point
/// in the site's own hit sequence. Sites are placed at the solvers'
/// existing deterministic checkpoints (visit-count cadences, task
/// starts, per-target dispatch), so "fires on hit N" selects the same
/// logical work unit at every thread count.
///
/// Failpoints are test-only infrastructure: tests arm/disarm around each
/// case (see ScopedFailpoint) and must not leave sites armed. The
/// registry is thread-safe; the unarmed fast path is one relaxed atomic
/// load of a global counter, no lock.

#include <cstdint>

namespace skypref {
namespace failpoint {

/// Arms \p site to trigger on its \p fire_on_hit-th hit from now
/// (1-based; the counter restarts at arm time). Re-arming an armed site
/// restarts its countdown. \p site must be a string literal or otherwise
/// outlive the arming.
void Arm(const char* site, std::uint64_t fire_on_hit = 1);

/// Disarms \p site; hits pass through again. No-op when not armed.
void Disarm(const char* site);

/// Disarms every site and forgets all counters (test teardown).
void DisarmAll();

/// Number of hits \p site has absorbed since it was armed (0 when the
/// site is not armed). For tests asserting a site is actually reached.
std::uint64_t HitCount(const char* site);

/// True iff this hit is the armed N-th one. Called via SKYPREF_FAILPOINT
/// only; triggers exactly once per arming.
bool Hit(const char* site);

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor, so a failing assertion cannot leak an armed site into the
/// next test case.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(const char* site, std::uint64_t fire_on_hit = 1)
      : site_(site) {
    Arm(site, fire_on_hit);
  }
  ~ScopedFailpoint() { Disarm(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  const char* site_;
};

}  // namespace failpoint
}  // namespace skypref

#if defined(SKYPREF_FAILPOINTS) && SKYPREF_FAILPOINTS
#define SKYPREF_FAILPOINT(site) (::skypref::failpoint::Hit(site))
#else
#define SKYPREF_FAILPOINT(site) (false)
#endif

#endif  // SKYPREF_UTIL_FAILPOINT_H_
