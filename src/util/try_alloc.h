#ifndef SKYPREF_UTIL_TRY_ALLOC_H_
#define SKYPREF_UTIL_TRY_ALLOC_H_

/// \file
/// Fallible allocation boundary: run an allocating builder, report
/// failure as Status::ResourceExhausted instead of terminating.
///
/// The solver stack's big allocations — flattened instances, bit-slice
/// arenas, batch plans, partition workspaces — are each a single
/// front-loaded builder call. Wrapping that call in TryAlloc turns an
/// allocation failure into the same ResourceExhausted the budget and
/// deadline paths produce, so it degrades through the resilient ladder
/// (Det+ -> Sam+ -> bounds, src/core/resilient.h) or the batch salvage
/// pass instead of killing a long-lived process.
///
///     SKYPREF_ASSIGN_OR_RETURN(
///         internal::FlatInstance<Oracle> instance,
///         TryAlloc("alloc.exact.flat_instance", [&] {
///           return internal::BuildFlatInstance(data, target, candidates,
///                                              oracle);
///         }));
///
/// Each wrapped call names an allocation failpoint site (SiteClass::
/// kAllocation in the canonical registry, src/util/failpoint.cc), so
/// chaos schedules can inject kAllocFail at exactly these boundaries and
/// prove the degradation path end to end.
///
/// This is the ONE place library code touches std::bad_alloc: the
/// builder runs under a catch that converts it to Status, keeping the
/// "library code never throws" contract at every other boundary. When
/// the toolchain builds without exception support the catch compiles
/// away and genuine exhaustion terminates as before — the failpoint
/// path (and therefore the whole test story) is unaffected.

#include <new>
#include <string>
#include <type_traits>
#include <utility>

#include "src/util/failpoint.h"
#include "src/util/status.h"

namespace skypref {

/// Runs the allocating builder \p fn and returns its value, or
/// ResourceExhausted when the allocation fails — injected via the
/// \p site failpoint, or organically via std::bad_alloc.
template <typename Fn>
auto TryAlloc(const char* site, Fn&& fn)
    -> Result<std::invoke_result_t<Fn&&>> {
  if (SKYPREF_ALLOC_FAILPOINT(site)) {
    return Status::ResourceExhausted(
        std::string("allocation failed (injected): ") + site);
  }
#if defined(__cpp_exceptions)
  try {  // skypref-lint: allow(no-exceptions) — the alloc-failure boundary
    return std::forward<Fn>(fn)();
  } catch (const std::bad_alloc&) {  // skypref-lint: allow(no-exceptions)
    return Status::ResourceExhausted(std::string("allocation failed: ") +
                                     site);
  }
#else
  return std::forward<Fn>(fn)();
#endif
}

}  // namespace skypref

#endif  // SKYPREF_UTIL_TRY_ALLOC_H_
