#include "src/util/rational.h"

#include <cmath>
#include <cstdlib>
#include <utility>

namespace skypref {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  if (denominator_.is_zero()) std::abort();
  Normalize();
}

Result<Rational> Rational::FromRatio(std::int64_t numerator,
                                     std::int64_t denominator) {
  if (denominator == 0) {
    return Status::InvalidArgument("rational with zero denominator");
  }
  return Rational(BigInt(numerator), BigInt(denominator));
}

Result<Rational> Rational::FromDouble(double value) {
  if (std::isnan(value) || std::isinf(value)) {
    return Status::InvalidArgument("rational from non-finite double");
  }
  if (value == 0.0) return Rational();
  int exponent = 0;
  double mantissa = std::frexp(value, &exponent);  // value = mantissa * 2^exp
  // Scale the mantissa to an exact 53-bit integer.
  std::int64_t scaled = static_cast<std::int64_t>(std::ldexp(mantissa, 53));
  exponent -= 53;
  BigInt numerator(scaled);
  if (exponent >= 0) {
    return Rational(numerator * BigInt::PowerOfTwo(static_cast<unsigned>(exponent)),
                    BigInt(std::int64_t{1}));
  }
  return Rational(std::move(numerator),
                  BigInt::PowerOfTwo(static_cast<unsigned>(-exponent)));
}

void Rational::Normalize() {
  if (denominator_.is_negative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.is_zero()) {
    denominator_ = BigInt(std::int64_t{1});
    return;
  }
  BigInt gcd = BigInt::Gcd(numerator_, denominator_);
  numerator_ /= gcd;
  denominator_ /= gcd;
}

int Rational::Compare(const Rational& other) const {
  // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
  return (numerator_ * other.denominator_).Compare(other.numerator_ *
                                                   denominator_);
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(
      numerator_ * other.denominator_ + other.numerator_ * denominator_,
      denominator_ * other.denominator_);
}

Rational Rational::operator-(const Rational& other) const {
  return *this + (-other);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(numerator_ * other.numerator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator/(const Rational& other) const {
  if (other.is_zero()) std::abort();
  return Rational(numerator_ * other.denominator_,
                  denominator_ * other.numerator_);
}

std::string Rational::ToString() const {
  if (denominator_ == BigInt(std::int64_t{1})) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

double Rational::ToDouble() const {
  // Good enough for reporting: both operands convert with one rounding each.
  return numerator_.ToDouble() / denominator_.ToDouble();
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace skypref
