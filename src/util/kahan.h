#ifndef SKYPREF_UTIL_KAHAN_H_
#define SKYPREF_UTIL_KAHAN_H_

/// \file
/// Compensated (Neumaier) floating-point summation.
///
/// The inclusion-exclusion expansion of Eq. 4 alternates signs across up
/// to 2^n terms; naive accumulation loses digits to cancellation. The
/// double-precision exact solver therefore accumulates through this
/// compensated summator. (The Rational instantiation needs no
/// compensation and uses a plain accumulator; see NumericTraits in
/// src/core/numeric_traits.h.)

#include <cmath>

namespace skypref {

class KahanSum {
 public:
  KahanSum() = default;
  explicit KahanSum(double initial) : sum_(initial) {}

  /// Adds a term with Neumaier's correction (robust when |term| > |sum|).
  void Add(double term) {
    double t = sum_ + term;
    if (std::isinf(t)) {
      // Overflow: the correction term would be inf - inf = NaN, which
      // would poison every later Value(). Saturate like plain IEEE
      // addition instead and stop compensating.
      sum_ = t;
      compensation_ = 0.0;
      return;
    }
    if ((sum_ >= 0 ? sum_ : -sum_) >= (term >= 0 ? term : -term)) {
      compensation_ += (sum_ - t) + term;
    } else {
      compensation_ += (term - t) + sum_;
    }
    sum_ = t;
  }

  KahanSum& operator+=(double term) {
    Add(term);
    return *this;
  }

  /// The compensated total.
  double Value() const { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace skypref

#endif  // SKYPREF_UTIL_KAHAN_H_
