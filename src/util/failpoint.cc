#include "src/util/failpoint.h"

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "src/util/hash.h"
#include "src/util/thread_annotations.h"

namespace skypref {
namespace failpoint {

namespace {

/// The canonical registry of every SKYPREF_*FAILPOINT site literal
/// compiled into the tree. The seeded scheduler arms from this table,
/// the coverage suite asserts every entry is consulted, and the
/// `failpoint-site` lint rule parses it (one `{"name", SiteClass::...}`
/// entry per line — keep that shape) to reject unregistered literals.
constexpr KnownSite kKnownSites[] = {
    {"exact.dfs", SiteClass::kExecution},
    {"parallel.task", SiteClass::kExecution},
    {"sampler.world", SiteClass::kExecution},
    {"sampler.block", SiteClass::kExecution},
    {"batch.target", SiteClass::kExecution},
    {"batch.retry", SiteClass::kExecution},
    {"threadpool.serial", SiteClass::kExecution},
    {"threadpool.wait", SiteClass::kWait},
    {"alloc.exact.flat_instance", SiteClass::kAllocation},
    {"alloc.sam.instance", SiteClass::kAllocation},
    {"alloc.sam.slice_arena", SiteClass::kAllocation},
    {"alloc.sam.batch_plan", SiteClass::kAllocation},
    {"alloc.batch.partition", SiteClass::kAllocation},
};

/// One arming of one site. Immutable after construction except for the
/// hit counter: re-arming publishes a FRESH Armed object instead of
/// mutating this one, so threads that already snapshotted it keep
/// charging a counter whose countdown can no longer fire a stale
/// schedule, and the new arming's "fires on hit n" contract starts from
/// a counter no concurrent hit has touched.
struct Armed {
  explicit Armed(const Schedule& s) : schedule(s) {}
  const Schedule schedule;
  std::atomic<std::uint64_t> hits{0};
};

struct Registry {
  Mutex mutex;
  std::map<std::string, std::shared_ptr<Armed>> sites
      SKYPREF_GUARDED_BY(mutex);
  std::map<std::string, std::uint64_t> coverage SKYPREF_GUARDED_BY(mutex);
};

Registry& GetRegistry() {
  // Leaked singleton: failpoints may be consulted during static
  // destruction of test fixtures; never destroy the registry.
  static Registry* registry = new Registry();
  return *registry;
}

/// Count of armed sites. The unarmed fast path in Hit() is one relaxed
/// load of this counter — no lock, no map lookup — so instrumented
/// builds pay nothing measurable while no test is injecting faults.
std::atomic<int> g_armed{0};

/// Coverage accounting toggle; checked on the same fast path.
std::atomic<bool> g_coverage{false};

/// Process-cumulative count of injected faults (see FiredCount()).
std::atomic<std::uint64_t> g_fired{0};

/// FNV-1a over the site name: folds the name into the seeded-schedule
/// derivation so each site rolls independently from one seed.
std::uint64_t Fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Whether hit ordinal \p hit (1-based) fires under \p s. Pure: no state
/// beyond the ordinal, so the firing set of a schedule is deterministic.
bool ShouldFire(const Schedule& s, std::uint64_t hit) {
  switch (s.pattern) {
    case Schedule::Pattern::kSingle:
      return hit == s.n;
    case Schedule::Pattern::kPeriodic:
      return s.n != 0 && hit % s.n == s.phase % s.n;
    case Schedule::Pattern::kProbabilistic:
      return HashMix(s.salt ^ hit) < s.threshold;
  }
  return false;
}

/// Shared body of Hit / AllocHit: charge one hit against the site's
/// current arming and decide whether it fires a \p want_kind fault.
/// kDelay schedules fire at either consult kind — they sleep, count as
/// an injected fault, and then report "did not fire" so results are
/// unchanged. Lock discipline: the registry lock covers only the
/// shared_ptr snapshot (and coverage bump); the hit accounting and the
/// sleep run lock-free on the snapshot, so a concurrent re-arm can
/// proceed at any time without waiting for mid-site threads.
bool Consult(const char* site, FaultKind want_kind) {
  const bool coverage = g_coverage.load(std::memory_order_relaxed);
  if (g_armed.load(std::memory_order_relaxed) == 0 && !coverage) return false;
  std::shared_ptr<Armed> armed;
  {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mutex);
    if (coverage) ++registry.coverage[site];
    auto it = registry.sites.find(site);
    if (it != registry.sites.end()) armed = it->second;
  }
  if (armed == nullptr) return false;
  const std::uint64_t hit =
      armed->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const Schedule& s = armed->schedule;
  if (s.kind != want_kind && s.kind != FaultKind::kDelay) return false;
  if (!ShouldFire(s, hit)) return false;
  g_fired.fetch_add(1, std::memory_order_relaxed);
  if (s.kind == FaultKind::kDelay) {
    std::this_thread::sleep_for(std::chrono::microseconds(s.delay_micros));
    return false;
  }
  return true;
}

}  // namespace

std::span<const KnownSite> KnownSites() { return kKnownSites; }

void Arm(const char* site, std::uint64_t fire_on_hit) {
  Schedule s;
  s.kind = FaultKind::kFail;
  s.pattern = Schedule::Pattern::kSingle;
  s.n = fire_on_hit == 0 ? 1 : fire_on_hit;
  ArmSchedule(site, s);
}

void ArmSchedule(const char* site, const Schedule& schedule) {
  // A fresh Armed per arming is the atomic-publication fix: replacing
  // the map's shared_ptr swaps schedule AND counter in one step, so a
  // re-arm racing threads mid-site can neither inherit their pending
  // counts nor hand them a half-reset countdown.
  auto fresh = std::make_shared<Armed>(schedule);
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  auto [it, inserted] = registry.sites.insert_or_assign(site, std::move(fresh));
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ArmSeededSchedule(std::uint64_t seed) {
  DisarmAll();
  std::size_t count = 0;
  for (const KnownSite& site : kKnownSites) {
    const std::uint64_t s = HashMix(seed ^ Fnv1a(site.name));
    const std::uint64_t roll = s % 16;
    const std::uint64_t a = HashMix(s + 1);
    const std::uint64_t b = HashMix(s + 2);
    Schedule schedule;
    bool arm = true;
    switch (site.cls) {
      case SiteClass::kExecution:
        if (roll < 4) {
          schedule.kind = FaultKind::kFail;
          schedule.pattern = Schedule::Pattern::kSingle;
          schedule.n = 1 + a % 1024;
        } else if (roll < 7) {
          schedule.kind = FaultKind::kFail;
          schedule.pattern = Schedule::Pattern::kPeriodic;
          schedule.n = 128 + a % 2048;
          schedule.phase = b % schedule.n;
        } else if (roll < 9) {
          schedule.kind = FaultKind::kFail;
          schedule.pattern = Schedule::Pattern::kProbabilistic;
          schedule.salt = a;
          // Expected firing rate between 1/64 and 1/1024 of hits.
          schedule.threshold = ~0ULL / (64ULL << (b % 5));
        } else if (roll < 12) {
          schedule.kind = FaultKind::kDelay;
          schedule.pattern = Schedule::Pattern::kPeriodic;
          schedule.n = 64 + a % 512;
          schedule.phase = b % schedule.n;
          schedule.delay_micros = static_cast<std::uint32_t>(50 + b % 1500);
        } else {
          arm = false;
        }
        break;
      case SiteClass::kAllocation:
        if (roll < 6) {
          schedule.kind = FaultKind::kAllocFail;
          schedule.pattern = Schedule::Pattern::kSingle;
          schedule.n = 1 + a % 4;
        } else if (roll < 9) {
          schedule.kind = FaultKind::kAllocFail;
          schedule.pattern = Schedule::Pattern::kPeriodic;
          schedule.n = 2 + a % 6;
          schedule.phase = b % schedule.n;
        } else if (roll < 11) {
          schedule.kind = FaultKind::kDelay;
          schedule.pattern = Schedule::Pattern::kSingle;
          schedule.n = 1 + a % 4;
          schedule.delay_micros = static_cast<std::uint32_t>(50 + b % 1500);
        } else {
          arm = false;
        }
        break;
      case SiteClass::kWait:
        if (roll < 8) {
          schedule.kind = FaultKind::kSpuriousWake;
          schedule.pattern = Schedule::Pattern::kPeriodic;
          schedule.n = 1;  // every consult finds the storm armed
        } else {
          arm = false;
        }
        break;
    }
    if (arm) {
      ArmSchedule(site.name, schedule);
      ++count;
    }
  }
  return count;
}

void Disarm(const char* site) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  if (registry.sites.erase(site) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  g_armed.fetch_sub(static_cast<int>(registry.sites.size()),
                    std::memory_order_relaxed);
  registry.sites.clear();
}

std::size_t ArmedCount() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  return registry.sites.size();
}

std::uint64_t HitCount(const char* site) {
  std::shared_ptr<Armed> armed;
  {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mutex);
    auto it = registry.sites.find(site);
    if (it == registry.sites.end()) return 0;
    armed = it->second;
  }
  return armed->hits.load(std::memory_order_relaxed);
}

std::uint64_t FiredCount() { return g_fired.load(std::memory_order_relaxed); }

bool Hit(const char* site) { return Consult(site, FaultKind::kFail); }

bool AllocHit(const char* site) {
  return Consult(site, FaultKind::kAllocFail);
}

bool WakeStormArmed(const char* site) {
  return Consult(site, FaultKind::kSpuriousWake);
}

void EnableCoverage(bool enabled) {
  g_coverage.store(enabled, std::memory_order_relaxed);
}

std::uint64_t CoverageCount(const char* site) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  auto it = registry.coverage.find(site);
  return it == registry.coverage.end() ? 0 : it->second;
}

void ResetCoverage() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  registry.coverage.clear();
}

}  // namespace failpoint
}  // namespace skypref
