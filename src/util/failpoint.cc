#include "src/util/failpoint.h"

#include <atomic>
#include <map>
#include <string>

#include "src/util/thread_annotations.h"

namespace skypref {
namespace failpoint {

namespace {

struct Site {
  std::uint64_t fire_on_hit = 0;
  std::atomic<std::uint64_t> hits{0};
};

struct Registry {
  Mutex mutex;
  std::map<std::string, Site> sites SKYPREF_GUARDED_BY(mutex);
};

Registry& GetRegistry() {
  // Leaked singleton: failpoints may be consulted during static
  // destruction of test fixtures; never destroy the registry.
  static Registry* registry = new Registry();
  return *registry;
}

/// Count of armed sites. The unarmed fast path in Hit() is one relaxed
/// load of this counter — no lock, no map lookup — so instrumented
/// builds pay nothing measurable while no test is injecting faults.
std::atomic<int> g_armed{0};

}  // namespace

void Arm(const char* site, std::uint64_t fire_on_hit) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  auto [it, inserted] = registry.sites.try_emplace(site);
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
  it->second.fire_on_hit = fire_on_hit == 0 ? 1 : fire_on_hit;
  it->second.hits.store(0, std::memory_order_relaxed);
}

void Disarm(const char* site) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  if (registry.sites.erase(site) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  g_armed.fetch_sub(static_cast<int>(registry.sites.size()),
                    std::memory_order_relaxed);
  registry.sites.clear();
}

std::uint64_t HitCount(const char* site) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) return 0;
  return it->second.hits.load(std::memory_order_relaxed);
}

bool Hit(const char* site) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) return false;
  std::uint64_t hit =
      it->second.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  return hit == it->second.fire_on_hit;
}

}  // namespace failpoint
}  // namespace skypref
