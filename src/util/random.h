#ifndef SKYPREF_UTIL_RANDOM_H_
#define SKYPREF_UTIL_RANDOM_H_

/// \file
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of the library (workload generators, the
/// Monte-Carlo estimator, preference generators) draw from Xoshiro256++,
/// seeded through SplitMix64 so that a single 64-bit seed reproduces an
/// entire experiment. std::mt19937 is avoided on purpose: its stream is
/// not guaranteed identical across standard-library implementations for
/// the distribution adaptors, while this generator is fully specified
/// here.

#include <array>
#include <cstdint>

namespace skypref {

/// SplitMix64: used to expand one seed into generator state and to derive
/// independent child seeds for sub-streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derives the seed of sub-stream \p stream of a family rooted at
/// \p seed: SplitMix64(seed ^ stream) advanced one step. Used by the
/// block-parallel samplers to give every fixed-index world block its own
/// statistically independent Rng, so the estimate depends on the block
/// INDEX and never on the executing thread. The extra SplitMix64 round
/// decorrelates the regular lattice seed^0, seed^1, seed^2, ... that
/// plain XOR seeding would feed into neighbouring generators.
inline std::uint64_t SplitSeed(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 mixer(seed ^ stream);
  return mixer.Next();
}

/// Xoshiro256++ by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  /// Seeds the full state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next raw 64 random bits.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform integer in [0, bound), bound > 0. Uses rejection sampling,
  /// so the result is exactly uniform.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// True with probability p (p <= 0 -> never, p >= 1 -> always).
  bool NextBernoulli(double p);

  /// Derives a statistically independent child seed; successive calls
  /// produce distinct sub-streams (used to give each experiment component
  /// its own generator).
  std::uint64_t Fork();

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

}  // namespace skypref

#endif  // SKYPREF_UTIL_RANDOM_H_
