#ifndef SKYPREF_UTIL_RANDOM_H_
#define SKYPREF_UTIL_RANDOM_H_

/// \file
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of the library (workload generators, the
/// Monte-Carlo estimator, preference generators) draw from Xoshiro256++,
/// seeded through SplitMix64 so that a single 64-bit seed reproduces an
/// entire experiment. std::mt19937 is avoided on purpose: its stream is
/// not guaranteed identical across standard-library implementations for
/// the distribution adaptors, while this generator is fully specified
/// here.

#include <array>
#include <bit>
#include <cstdint>
#include <limits>

namespace skypref {

/// SplitMix64: used to expand one seed into generator state and to derive
/// independent child seeds for sub-streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derives the seed of sub-stream \p stream of a family rooted at
/// \p seed: SplitMix64(seed ^ stream) advanced one step. Used by the
/// block-parallel samplers to give every fixed-index world block its own
/// statistically independent Rng, so the estimate depends on the block
/// INDEX and never on the executing thread. The extra SplitMix64 round
/// decorrelates the regular lattice seed^0, seed^1, seed^2, ... that
/// plain XOR seeding would feed into neighbouring generators.
inline std::uint64_t SplitSeed(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 mixer(seed ^ stream);
  return mixer.Next();
}

/// Xoshiro256++ by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  /// Seeds the full state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next raw 64 random bits. Inline: the sampling kernels draw several
  /// words per mask in their innermost loop, and the call overhead of an
  /// out-of-line PRNG step is comparable to the step itself.
  std::uint64_t NextUint64() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform integer in [0, bound), bound > 0. Uses rejection sampling,
  /// so the result is exactly uniform.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// True with probability p (p <= 0 -> never, p >= 1 -> always).
  bool NextBernoulli(double p);

  /// Derives a statistically independent child seed; successive calls
  /// produce distinct sub-streams (used to give each experiment component
  /// its own generator).
  std::uint64_t Fork();

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

/// 64 iid Bernoulli bits in one word, at EXACT threshold precision.
///
/// \p threshold is the integer Bernoulli cut of sam_parallel.h
/// (`BernoulliThreshold(p)` = floor(p * 2^64), with UINT64_MAX the
/// exact "p >= 1" sentinel): bit w of the result is 1 with probability
/// threshold / 2^64, independently across bits, exactly matching the
/// distribution of `ThresholdHit(rng.NextUint64(), threshold)` without
/// spending one PRNG word per bit.
///
/// How: each lane conceptually compares a fresh uniform U_w against the
/// threshold, but the 64 bits of U_w are revealed most-significant
/// first, one PRNG word per revealed bit position SHARED across lanes.
/// A lane is decided the first time its U bit differs from the
/// threshold's bit at that position; once every lane is decided (or the
/// remaining threshold suffix is all zeros, which decides every
/// still-tied lane as "not below") the loop stops. Each round decides
/// each undecided lane with probability 1/2, so the expected PRNG cost
/// is min(#rounds until all 64 geometrics stop, significant bits of
/// threshold) — about 7.5 words for a full-precision threshold and as
/// little as 1 for dyadic probabilities like p = 1/2 (threshold 2^63),
/// versus 64 words for lane-at-a-time draws. Worst case: 64 - countr_zero
/// (<= 53 for any threshold rounded from a double p < 1).
inline std::uint64_t NextBernoulliWord(Rng& rng, std::uint64_t threshold) {
  if (threshold == 0) return 0;
  if (threshold == std::numeric_limits<std::uint64_t>::max()) return ~0ULL;
  std::uint64_t below = 0;       // lanes decided U < threshold
  std::uint64_t undecided = ~0ULL;  // lanes whose U prefix ties the cut
  const int lowest = std::countr_zero(threshold);
  for (int k = 63; k >= lowest; --k) {
    const std::uint64_t r = rng.NextUint64();
    // Branchless round: with cut bit 1, a 0 U-bit decides "below" and a
    // 1 keeps the tie; with cut bit 0, a 1 U-bit decides "above". The
    // cut bit is data-dependent and alternates, so a conditional here
    // would mispredict half the rounds of the hot sampling loop.
    const std::uint64_t bit = (threshold >> k) & 1ULL;
    below |= undecided & ~r & (0 - bit);
    undecided &= r ^ (bit - 1);
    if (undecided == 0) break;
  }
  // Lanes still tied ran past the lowest set bit: the remaining suffix
  // of the cut is zero, so U >= threshold there — not below.
  return below;
}

/// Eight independent Xoshiro256++ lanes stepped in lockstep.
///
/// State is kept in structure-of-arrays layout — word w of lane l lives
/// at s[w][l] — so that one AVX-512 instruction can advance all eight
/// lanes at once. Each lane is seeded exactly like a standalone Rng
/// from its own Rng::Fork() of \p parent, so the eight streams are the
/// statistically independent sub-streams the seeding discipline already
/// guarantees, and the lane sequences do not depend on how (or whether)
/// the stepping is vectorized.
struct OctoRng {
  static constexpr int kLanes = 8;

  explicit OctoRng(Rng& parent) {
    for (int lane = 0; lane < kLanes; ++lane) {
      SplitMix64 mixer(parent.Fork());
      for (int word = 0; word < 4; ++word) s[word][lane] = mixer.Next();
    }
  }

  alignas(64) std::uint64_t s[4][kLanes];
};

/// Eight iid Bernoulli mask words in one call — NextBernoulliWord's
/// wide sibling, used by the bit-sliced sampler to draw one pair's
/// masks for eight consecutive 64-world chunks at a time.
///
/// out[l] is distributed exactly like NextBernoulliWord(rng_l,
/// threshold) where rng_l is lane l of \p o: 512 iid Bernoulli bits per
/// call. The lanes run the shared-round reveal in LOCKSTEP — every
/// round advances all eight lanes by one word and the loop stops only
/// once every lane is fully decided — which costs a fraction more words
/// than eight independent calls (max of 8 geometric stopping times,
/// about 9.5 rounds instead of 7.5 for a full-precision threshold) but
/// lets the whole round run as a handful of 512-bit instructions. On
/// x86-64 with AVX-512F the dispatcher picks the vector kernel; the
/// portable scalar fallback produces bit-identical output (the lanes
/// ARE the semantics, the ISA is just speed), so results never depend
/// on the host CPU.
void NextBernoulliWords8(OctoRng& o, std::uint64_t threshold,
                         std::uint64_t* out);

namespace internal {
/// Portable reference implementation of NextBernoulliWords8; the
/// dispatch target equality test in random_test.cc holds the vector
/// kernels to this, word for word.
void NextBernoulliWords8Scalar(OctoRng& o, std::uint64_t threshold,
                               std::uint64_t* out);
}  // namespace internal

/// The ternary companion: 64 iid three-way orientation draws per call,
/// from ONE uniform per lane compared against BOTH integer cuts of the
/// batch sampler (cut_lo = floor(Pr(lo beats hi) * 2^64), cut_hi =
/// floor((Pr(lo beats hi) + Pr(hi beats lo)) * 2^64), UINT64_MAX
/// sentinels exact). On return, bit w of *lo_mask is set iff lane w drew
/// "lo preferred" (U < cut_lo), bit w of *hi_mask iff it drew "hi
/// preferred" (cut_lo <= U < cut_hi); a bit set in neither mask is
/// "incomparable". The masks are mutually exclusive by construction
/// because every revealed U bit is shared by both comparisons — the
/// word-level analog of resolving both `ThresholdHit` tests of
/// sam_parallel.cc's scalar batch sampler from a single NextUint64.
inline void NextTernaryWords(Rng& rng, std::uint64_t cut_lo,
                             std::uint64_t cut_hi, std::uint64_t* lo_mask,
                             std::uint64_t* hi_mask) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  if (cut_lo == kMax) {  // "always lo" sentinel: no randomness needed
    *lo_mask = ~0ULL;
    *hi_mask = 0;
    return;
  }
  const bool hi_always = cut_hi == kMax;
  std::uint64_t below_lo = 0;
  std::uint64_t below_hi = hi_always ? ~0ULL : 0;
  std::uint64_t und_lo = cut_lo == 0 ? 0 : ~0ULL;
  std::uint64_t und_hi = (hi_always || cut_hi == 0) ? 0 : ~0ULL;
  const int low_lo = cut_lo == 0 ? 64 : std::countr_zero(cut_lo);
  const int low_hi =
      (hi_always || cut_hi == 0) ? 64 : std::countr_zero(cut_hi);
  for (int k = 63; k >= 0; --k) {
    const bool lo_active = und_lo != 0 && k >= low_lo;
    const bool hi_active = und_hi != 0 && k >= low_hi;
    if (!lo_active && !hi_active) break;
    const std::uint64_t r = rng.NextUint64();  // bit k of every lane's U
    if (lo_active) {
      const std::uint64_t bit = (cut_lo >> k) & 1ULL;
      below_lo |= und_lo & ~r & (0 - bit);
      und_lo &= r ^ (bit - 1);
    }
    if (hi_active) {
      const std::uint64_t bit = (cut_hi >> k) & 1ULL;
      below_hi |= und_hi & ~r & (0 - bit);
      und_hi &= r ^ (bit - 1);
    }
  }
  *lo_mask = below_lo;
  *hi_mask = below_hi & ~below_lo;
}

}  // namespace skypref

#endif  // SKYPREF_UTIL_RANDOM_H_
