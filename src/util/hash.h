#ifndef SKYPREF_UTIL_HASH_H_
#define SKYPREF_UTIL_HASH_H_

/// \file
/// Hash mixing helpers for composite keys (dimension/value pairs and
/// value-pair preference lookups).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace skypref {

/// 64-bit finalizer (Murmur3 fmix64): decorrelates combined hashes.
inline std::uint64_t HashMix(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Combines an existing seed with one more value's hash.
template <typename T>
inline std::size_t HashCombine(std::size_t seed, const T& value) {
  std::uint64_t h = static_cast<std::uint64_t>(std::hash<T>{}(value));
  return static_cast<std::size_t>(
      HashMix(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + h));
}

/// Hash functor for std::pair keys in unordered containers.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(HashCombine(std::size_t{0x5bd1e995}, p.first), p.second);
  }
};

}  // namespace skypref

#endif  // SKYPREF_UTIL_HASH_H_
