#ifndef SKYPREF_UTIL_BIGINT_H_
#define SKYPREF_UTIL_BIGINT_H_

/// \file
/// Arbitrary-precision signed integers.
///
/// BigInt backs the exact Rational arithmetic used by the correctness
/// oracles: the inclusion-exclusion solver and the brute-force possible-
/// world enumerator can both run over rationals, so tests can assert
/// bit-exact equality instead of epsilon comparisons.
///
/// Representation: sign-magnitude with base 2^32 limbs, least significant
/// limb first, no trailing zero limbs, and zero is represented by an empty
/// limb vector with positive sign.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace skypref {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Conversion from native integers.
  BigInt(std::int64_t value);   // NOLINT(runtime/explicit)
  BigInt(std::uint64_t value);  // NOLINT(runtime/explicit)
  BigInt(int value) : BigInt(static_cast<std::int64_t>(value)) {}  // NOLINT

  /// Parses an optionally signed decimal literal.
  static Result<BigInt> FromString(std::string_view text);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }

  /// Three-way comparison: -1, 0, +1.
  int Compare(const BigInt& other) const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// Division by zero aborts.
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  /// Quotient and remainder in one pass; remainder has the dividend's sign.
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);

  /// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0.
  static BigInt Gcd(BigInt a, BigInt b);

  /// 2^exponent.
  static BigInt PowerOfTwo(unsigned exponent);

  /// Decimal representation with leading '-' when negative.
  std::string ToString() const;

  /// Closest double (may overflow to +/-inf for huge magnitudes).
  double ToDouble() const;

  /// True iff the value fits in int64_t; *out receives the value.
  bool ToInt64(std::int64_t* out) const;

  /// Number of significant bits of the magnitude (0 for zero).
  std::size_t BitLength() const;

 private:
  void Normalize();
  static int CompareMagnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> AddMagnitude(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> SubMagnitude(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);

  bool negative_ = false;
  std::vector<std::uint32_t> limbs_;  // base 2^32, little-endian
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace skypref

#endif  // SKYPREF_UTIL_BIGINT_H_
