#ifndef SKYPREF_UTIL_UNION_FIND_H_
#define SKYPREF_UTIL_UNION_FIND_H_

/// \file
/// Disjoint-set forest with union by size and path halving.
///
/// Used by the partition preprocessing step (Theorem 4): objects are
/// merged whenever they share an attribute value that differs from the
/// target object's value in that dimension, and the resulting components
/// are solved independently.

#include <cstddef>
#include <numeric>
#include <vector>

namespace skypref {

class UnionFind {
 public:
  /// Creates \p count singleton sets labelled 0..count-1.
  explicit UnionFind(std::size_t count)
      : parent_(count), size_(count, 1), components_(count) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  /// Re-initializes to \p count singleton sets, reusing capacity.
  void Reset(std::size_t count) {
    parent_.resize(count);
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    size_.assign(count, 1);
    components_ = count;
  }

  /// Representative of x's set.
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing a and b; returns false if already merged.
  bool Union(std::size_t a, std::size_t b) {
    std::size_t ra = Find(a);
    std::size_t rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --components_;
    return true;
  }

  /// True iff a and b are in the same set.
  bool Connected(std::size_t a, std::size_t b) { return Find(a) == Find(b); }

  /// Number of elements in x's set.
  std::size_t SetSize(std::size_t x) { return size_[Find(x)]; }

  /// Current number of disjoint sets.
  std::size_t component_count() const { return components_; }

  std::size_t element_count() const { return parent_.size(); }

  /// Groups elements by component; each inner vector is one component with
  /// elements in increasing order, components ordered by smallest element.
  std::vector<std::vector<std::size_t>> Components();

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_;
};

inline std::vector<std::vector<std::size_t>> UnionFind::Components() {
  const std::size_t n = parent_.size();
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::size_t> group_of(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t root = Find(i);
    if (group_of[root] == static_cast<std::size_t>(-1)) {
      group_of[root] = groups.size();
      groups.emplace_back();
    }
    groups[group_of[root]].push_back(i);
  }
  return groups;
}

}  // namespace skypref

#endif  // SKYPREF_UTIL_UNION_FIND_H_
