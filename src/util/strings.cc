#include "src/util/strings.h"

#include <cerrno>
#include <cstdlib>

namespace skypref {

std::vector<std::string> StrSplit(std::string_view input, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(input.substr(start));
      break;
    }
    fields.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view StrTrim(std::string_view input) {
  const char* kWhitespace = " \t\r\n\f\v";
  std::size_t begin = input.find_first_not_of(kWhitespace);
  if (begin == std::string_view::npos) return std::string_view();
  std::size_t end = input.find_last_not_of(kWhitespace);
  return input.substr(begin, end - begin + 1);
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<std::int64_t> ParseInt64(std::string_view s) {
  std::string buf(StrTrim(s));
  if (buf.empty()) return Status::InvalidArgument("empty integer literal");
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<std::int64_t>(value);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(StrTrim(s));
  if (buf.empty()) return Status::InvalidArgument("empty double literal");
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: " + buf);
  }
  return value;
}

}  // namespace skypref
