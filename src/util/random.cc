#include "src/util/random.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SKYPREF_HAVE_AVX512_KERNELS 1
#include <immintrin.h>
#endif

namespace skypref {

Rng::Rng(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : state_) word = mixer.Next();
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Lemire-style rejection: discard draws from the biased tail.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  while (true) {
    std::uint64_t draw = NextUint64();
    if (draw >= threshold) return draw % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<std::int64_t>(NextUint64());
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   NextBounded(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::uint64_t Rng::Fork() { return NextUint64() ^ 0x6a09e667f3bcc909ULL; }

namespace internal {

void NextBernoulliWords8Scalar(OctoRng& o, std::uint64_t threshold,
                               std::uint64_t* out) {
  constexpr int kLanes = OctoRng::kLanes;
  if (threshold == 0) {
    for (int l = 0; l < kLanes; ++l) out[l] = 0;
    return;
  }
  if (threshold == std::numeric_limits<std::uint64_t>::max()) {
    for (int l = 0; l < kLanes; ++l) out[l] = ~0ULL;
    return;
  }
  std::uint64_t below[kLanes] = {};
  std::uint64_t undecided[kLanes];
  for (int l = 0; l < kLanes; ++l) undecided[l] = ~0ULL;
  const int lowest = std::countr_zero(threshold);
  for (int k = 63; k >= lowest; --k) {
    const std::uint64_t bit = (threshold >> k) & 1ULL;
    const std::uint64_t take = 0 - bit;   // cut bit 1: 0-bit decides below
    const std::uint64_t keep = bit - 1;   // cut bit 0: 1-bit decides above
    std::uint64_t any = 0;
    for (int l = 0; l < kLanes; ++l) {
      // One xoshiro256++ step of lane l; identical arithmetic to
      // Rng::NextUint64 over the lane's state column.
      const std::uint64_t r =
          std::rotl(o.s[0][l] + o.s[3][l], 23) + o.s[0][l];
      const std::uint64_t t = o.s[1][l] << 17;
      o.s[2][l] ^= o.s[0][l];
      o.s[3][l] ^= o.s[1][l];
      o.s[1][l] ^= o.s[2][l];
      o.s[0][l] ^= o.s[3][l];
      o.s[2][l] ^= t;
      o.s[3][l] = std::rotl(o.s[3][l], 45);
      below[l] |= undecided[l] & ~r & take;
      undecided[l] &= r ^ keep;
      any |= undecided[l];
    }
    if (any == 0) break;
  }
  for (int l = 0; l < kLanes; ++l) out[l] = below[l];
}

#if SKYPREF_HAVE_AVX512_KERNELS
// GCC's avx512 intrinsic headers build _mm512_set1_epi64 on top of an
// explicitly undefined vector, which -Wmaybe-uninitialized misreads.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f"))) void NextBernoulliWords8Avx512(
    OctoRng& o, std::uint64_t threshold, std::uint64_t* out) {
  if (threshold == 0) {
    for (int l = 0; l < OctoRng::kLanes; ++l) out[l] = 0;
    return;
  }
  if (threshold == std::numeric_limits<std::uint64_t>::max()) {
    for (int l = 0; l < OctoRng::kLanes; ++l) out[l] = ~0ULL;
    return;
  }
  __m512i s0 = _mm512_load_si512(o.s[0]);
  __m512i s1 = _mm512_load_si512(o.s[1]);
  __m512i s2 = _mm512_load_si512(o.s[2]);
  __m512i s3 = _mm512_load_si512(o.s[3]);
  __m512i below = _mm512_setzero_si512();
  __m512i undecided = _mm512_set1_epi64(-1);
  const int lowest = std::countr_zero(threshold);
  for (int k = 63; k >= lowest; --k) {
    // xoshiro256++ step, all eight lanes at once.
    const __m512i r = _mm512_add_epi64(
        _mm512_rol_epi64(_mm512_add_epi64(s0, s3), 23), s0);
    const __m512i t = _mm512_slli_epi64(s1, 17);
    s2 = _mm512_xor_si512(s2, s0);
    s3 = _mm512_xor_si512(s3, s1);
    s1 = _mm512_xor_si512(s1, s2);
    s0 = _mm512_xor_si512(s0, s3);
    s2 = _mm512_xor_si512(s2, t);
    s3 = _mm512_rol_epi64(s3, 45);
    const std::uint64_t bit = (threshold >> k) & 1ULL;
    const __m512i take = _mm512_set1_epi64(
        static_cast<long long>(0 - bit));
    const __m512i keep = _mm512_set1_epi64(
        static_cast<long long>(bit - 1));
    // below |= undecided & ~r & take, one three-input ternlog
    // (imm 0x08 = ~a & b & c) plus the accumulate OR.
    below = _mm512_or_si512(
        below, _mm512_ternarylogic_epi64(r, undecided, take, 0x08));
    undecided = _mm512_and_si512(undecided, _mm512_xor_si512(r, keep));
    if (_mm512_test_epi64_mask(undecided, undecided) == 0) break;
  }
  _mm512_store_si512(o.s[0], s0);
  _mm512_store_si512(o.s[1], s1);
  _mm512_store_si512(o.s[2], s2);
  _mm512_store_si512(o.s[3], s3);
  _mm512_storeu_si512(out, below);
}
#pragma GCC diagnostic pop
#endif  // SKYPREF_HAVE_AVX512_KERNELS

}  // namespace internal

void NextBernoulliWords8(OctoRng& o, std::uint64_t threshold,
                         std::uint64_t* out) {
#if SKYPREF_HAVE_AVX512_KERNELS
  static const bool have_avx512 = __builtin_cpu_supports("avx512f") != 0;
  if (have_avx512) {
    internal::NextBernoulliWords8Avx512(o, threshold, out);
    return;
  }
#endif
  internal::NextBernoulliWords8Scalar(o, threshold, out);
}

}  // namespace skypref
