#include "src/util/random.h"

namespace skypref {

Rng::Rng(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : state_) word = mixer.Next();
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Lemire-style rejection: discard draws from the biased tail.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  while (true) {
    std::uint64_t draw = NextUint64();
    if (draw >= threshold) return draw % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<std::int64_t>(NextUint64());
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   NextBounded(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::uint64_t Rng::Fork() { return NextUint64() ^ 0x6a09e667f3bcc909ULL; }

}  // namespace skypref
