#ifndef SKYPREF_UTIL_STRINGS_H_
#define SKYPREF_UTIL_STRINGS_H_

/// \file
/// Small string helpers used across the library (splitting, trimming,
/// joining, and checked numeric parsing).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace skypref {

/// Splits \p input on \p delimiter. Adjacent delimiters produce empty
/// fields; an empty input yields a single empty field (CSV semantics).
std::vector<std::string> StrSplit(std::string_view input, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view input);

/// Joins \p parts with \p separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

/// True iff \p s begins with \p prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a whole string as a signed 64-bit integer.
Result<std::int64_t> ParseInt64(std::string_view s);

/// Parses a whole string as a double.
Result<double> ParseDouble(std::string_view s);

}  // namespace skypref

#endif  // SKYPREF_UTIL_STRINGS_H_
