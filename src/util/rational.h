#ifndef SKYPREF_UTIL_RATIONAL_H_
#define SKYPREF_UTIL_RATIONAL_H_

/// \file
/// Exact rational arithmetic over BigInt.
///
/// Rational is the "exact numeric" type plugged into the templated solvers
/// (ExactSolver, BruteForceSolver, partition/absorption transforms). With
/// preference probabilities expressed as rationals, all skyline
/// probabilities are computed without rounding, which lets tests assert
/// bit-exact equality between independent algorithms.

#include <cstdint>
#include <ostream>
#include <string>

#include "src/util/bigint.h"
#include "src/util/status.h"

namespace skypref {

class Rational {
 public:
  /// Zero.
  Rational() : numerator_(0), denominator_(1) {}

  /// Whole number.
  Rational(std::int64_t value)  // NOLINT(runtime/explicit)
      : numerator_(value), denominator_(1) {}
  Rational(int value) : Rational(static_cast<std::int64_t>(value)) {}  // NOLINT

  /// numerator / denominator, normalized. Zero denominator aborts.
  Rational(BigInt numerator, BigInt denominator);

  /// Checked construction from native integers.
  static Result<Rational> FromRatio(std::int64_t numerator,
                                    std::int64_t denominator);

  /// Exact value of a double (every finite double is a dyadic rational).
  /// Fails for NaN and infinities.
  static Result<Rational> FromDouble(double value);

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool is_zero() const { return numerator_.is_zero(); }
  bool is_negative() const { return numerator_.is_negative(); }

  int Compare(const Rational& other) const;

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Division by zero aborts.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const { return Compare(o) == 0; }
  bool operator!=(const Rational& o) const { return Compare(o) != 0; }
  bool operator<(const Rational& o) const { return Compare(o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(o) >= 0; }

  /// "num/den" (or just "num" when the denominator is 1).
  std::string ToString() const;

  /// Closest double.
  double ToDouble() const;

 private:
  void Normalize();

  BigInt numerator_;
  BigInt denominator_;  // always positive
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace skypref

#endif  // SKYPREF_UTIL_RATIONAL_H_
