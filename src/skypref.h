#ifndef SKYPREF_SKYPREF_H_
#define SKYPREF_SKYPREF_H_

/// \file
/// Umbrella header: the full public API of the skypref library, a
/// reproduction of "Skyline Probability over Uncertain Preferences"
/// (EDBT 2013).
///
/// Quickstart:
///
///   #include "src/skypref.h"
///
///   skypref::Dataset data(2);
///   data.Append({0, 0}).CheckOK();   // the target object O
///   data.Append({1, 0}).CheckOK();
///   data.Append({1, 1}).CheckOK();
///
///   skypref::TablePreferenceModel prefs;  // defaults every pair to 1/2
///   auto solver = skypref::SkylineSolver::Create(data, prefs).value();
///   double sky = solver.Exact(/*target=*/0).value();     // Det+
///   double est = solver.MonteCarlo(/*target=*/0).value(); // Sam+

#include "src/core/absorption.h"       // IWYU pragma: export
#include "src/core/adaptive_sampling.h"  // IWYU pragma: export
#include "src/core/all_worlds.h"       // IWYU pragma: export
#include "src/core/bounds.h"           // IWYU pragma: export
#include "src/core/brute_force.h"      // IWYU pragma: export
#include "src/core/dominance.h"        // IWYU pragma: export
#include "src/core/exact.h"            // IWYU pragma: export
#include "src/core/incremental.h"     // IWYU pragma: export
#include "src/core/independent_baseline.h"  // IWYU pragma: export
#include "src/core/lineage_dp.h"       // IWYU pragma: export
#include "src/core/monte_carlo.h"      // IWYU pragma: export
#include "src/core/parallel.h"         // IWYU pragma: export
#include "src/core/partition.h"        // IWYU pragma: export
#include "src/core/prob_skyline.h"     // IWYU pragma: export
#include "src/core/sam_parallel.h"     // IWYU pragma: export
#include "src/core/solver.h"           // IWYU pragma: export
#include "src/core/subspace.h"         // IWYU pragma: export
#include "src/core/tentative_approx.h" // IWYU pragma: export
#include "src/core/topk_race.h"        // IWYU pragma: export
#include "src/io/binary_io.h"          // IWYU pragma: export
#include "src/io/dataset_io.h"         // IWYU pragma: export
#include "src/model/dataset.h"         // IWYU pragma: export
#include "src/model/domain.h"          // IWYU pragma: export
#include "src/model/preference_estimation.h"  // IWYU pragma: export
#include "src/model/preference_generator.h"  // IWYU pragma: export
#include "src/model/preference_model.h"      // IWYU pragma: export
#include "src/reduction/dnf.h"         // IWYU pragma: export
#include "src/workload/block_zipf_generator.h"  // IWYU pragma: export
#include "src/workload/car_evaluation.h"  // IWYU pragma: export
#include "src/workload/nursery.h"      // IWYU pragma: export
#include "src/workload/uniform_generator.h"     // IWYU pragma: export

#endif  // SKYPREF_SKYPREF_H_
