#include "src/workload/nursery.h"

#include <array>
#include <string>
#include <vector>

namespace skypref {

namespace {

struct Attribute {
  const char* name;
  std::vector<const char*> values;
};

const std::array<Attribute, 8>& NurserySchema() {
  static const std::array<Attribute, 8>* schema = new std::array<Attribute, 8>{{
      {"parents", {"usual", "pretentious", "great_pret"}},
      {"has_nurs", {"proper", "less_proper", "improper", "critical",
                    "very_crit"}},
      {"form", {"complete", "completed", "incomplete", "foster"}},
      {"children", {"1", "2", "3", "more"}},
      {"housing", {"convenient", "less_conv", "critical"}},
      {"finance", {"convenient", "inconv"}},
      {"social", {"nonprob", "slightly_prob", "problematic"}},
      {"health", {"recommended", "priority", "not_recom"}},
  }};
  return *schema;
}

}  // namespace

Domain NurseryDomain() {
  std::vector<std::string> names;
  for (const auto& attribute : NurserySchema()) {
    names.emplace_back(attribute.name);
  }
  Domain domain(std::move(names));
  for (DimensionId j = 0; j < NurserySchema().size(); ++j) {
    for (const char* value : NurserySchema()[j].values) {
      domain.InternValue(j, value).status().CheckOK();
    }
  }
  return domain;
}

Result<NurseryVariant> GenerateNurseryProjection(std::size_t dimensions) {
  if (dimensions < 1 || dimensions > NurserySchema().size()) {
    return Status::InvalidArgument(
        "Nursery projection supports 1..8 dimensions, got " +
        std::to_string(dimensions));
  }
  NurseryVariant variant;
  std::vector<std::string> names;
  for (std::size_t j = 0; j < dimensions; ++j) {
    names.emplace_back(NurserySchema()[j].name);
  }
  variant.domain = Domain(std::move(names));
  for (DimensionId j = 0; j < dimensions; ++j) {
    for (const char* value : NurserySchema()[j].values) {
      SKYPREF_RETURN_IF_ERROR(variant.domain.InternValue(j, value).status());
    }
  }

  variant.dataset = Dataset(dimensions);
  // Odometer over the full Cartesian product of the first `dimensions`
  // attribute domains; every combination occurs exactly once, which is
  // precisely the Nursery instance set (and its duplicate-free
  // projection).
  std::vector<ValueId> row(dimensions, 0);
  while (true) {
    SKYPREF_RETURN_IF_ERROR(variant.dataset.Append(row));
    std::size_t j = dimensions;
    while (j > 0) {
      --j;
      if (++row[j] < NurserySchema()[j].values.size()) break;
      row[j] = 0;
      if (j == 0) return variant;
    }
  }
}

Result<NurseryVariant> GenerateNursery() {
  return GenerateNurseryProjection(NurserySchema().size());
}

}  // namespace skypref
