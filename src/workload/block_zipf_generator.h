#ifndef SKYPREF_WORKLOAD_BLOCK_ZIPF_GENERATOR_H_
#define SKYPREF_WORKLOAD_BLOCK_ZIPF_GENERATOR_H_

/// \file
/// The paper's "Block-zipf" synthetic dataset (Table 1): objects are
/// grouped into disjoint blocks — no two objects from different blocks
/// share an attribute value — and values inside a block follow a zipf
/// distribution with parameter 1.
///
/// Block b draws its dimension-j values from the dedicated id range
/// [b*V, (b+1)*V), which guarantees cross-block disjointness by
/// construction, so the partition preprocessing provably splits any
/// skyline-probability computation into per-block subproblems. This is
/// the distribution on which Det+ scales to 10^5 objects in the paper.

#include <cstdint>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/util/status.h"

namespace skypref {

struct BlockZipfOptions {
  std::size_t objects = 1000;
  std::size_t dimensions = 5;
  /// Objects per block (the last block may be smaller).
  std::size_t block_size = 12;
  /// Distinct values per dimension within one block; must satisfy
  /// values^dimensions >= block_size.
  ValueId values_per_block = 6;
  /// Zipf parameter (1 in the paper).
  double theta = 1.0;
  std::uint64_t seed = 1;
};

/// Generates a duplicate-free block-zipf dataset.
Result<Dataset> GenerateBlockZipf(const BlockZipfOptions& options);

/// Preference semantics of the block-zipf world: values from different
/// blocks are incomparable (both orientations have probability 0), values
/// within a block defer to a base model.
///
/// This is what makes the blocks "disjointed" in the paper's sense — an
/// object can only ever be dominated from inside its own block, so the
/// partition preprocessing recovers per-block subproblems whose skyline
/// probabilities are non-trivial. Without it, 10^4+ objects in other
/// blocks would each retain a tiny dominance probability and every
/// skyline probability would collapse to ~0.
class BlockLocalPreferenceModel : public PreferenceModel {
 public:
  /// \p base must outlive this wrapper. \p values_per_block must match
  /// the generator option of the dataset in use.
  BlockLocalPreferenceModel(const PreferenceModel& base,
                            ValueId values_per_block)
      : base_(&base), values_per_block_(values_per_block) {}

  PrefPair GetPair(DimensionId dim, ValueId a, ValueId b) const override {
    if (a / values_per_block_ != b / values_per_block_) {
      return PrefPair{0.0, 0.0};  // incomparable across blocks
    }
    return base_->GetPair(dim, a, b);
  }

 private:
  const PreferenceModel* base_;
  ValueId values_per_block_;
};

}  // namespace skypref

#endif  // SKYPREF_WORKLOAD_BLOCK_ZIPF_GENERATOR_H_
