#ifndef SKYPREF_WORKLOAD_UNIFORM_GENERATOR_H_
#define SKYPREF_WORKLOAD_UNIFORM_GENERATOR_H_

/// \file
/// The paper's "Uniform" synthetic dataset (Table 1): attribute values
/// generated independently and uniformly per dimension. A modest value
/// domain (default 10 values per dimension) makes shared values — and
/// hence dependent dominance events — common, which is the regime the
/// paper studies.

#include <cstdint>

#include "src/model/dataset.h"
#include "src/util/status.h"

namespace skypref {

struct UniformOptions {
  std::size_t objects = 50;
  std::size_t dimensions = 5;
  /// Distinct values per dimension; must satisfy values^dimensions >=
  /// objects so duplicate-free generation can succeed.
  ValueId values_per_dimension = 10;
  std::uint64_t seed = 1;
};

/// Generates a duplicate-free uniform dataset (rejection sampling on
/// duplicate rows).
Result<Dataset> GenerateUniform(const UniformOptions& options);

}  // namespace skypref

#endif  // SKYPREF_WORKLOAD_UNIFORM_GENERATOR_H_
