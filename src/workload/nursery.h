#ifndef SKYPREF_WORKLOAD_NURSERY_H_
#define SKYPREF_WORKLOAD_NURSERY_H_

/// \file
/// The UCI "Nursery" dataset, regenerated offline.
///
/// The paper's real-data experiments (Figure 15) use Nursery: 12,960
/// nursery-school applications over 8 categorical attributes. Nursery is
/// exactly the full Cartesian product of its attribute domains
/// (3*5*4*4*3*2*3*3 = 12,960), so the feature space is reproduced here
/// verbatim without the data file; the class label plays no role in the
/// skyline experiments, and the preferences were synthetic in the paper
/// as well. The 4-dimensional variant is the distinct projection onto
/// the first four attributes (3*5*4*4 = 240 objects — projection would
/// otherwise create duplicates, which the model excludes).

#include "src/model/dataset.h"
#include "src/model/domain.h"
#include "src/util/status.h"

namespace skypref {

/// Attribute and value names of the Nursery schema, in UCI order.
Domain NurseryDomain();

struct NurseryVariant {
  Dataset dataset;
  Domain domain;

  NurseryVariant() : dataset(1), domain(std::size_t{1}) {}
};

/// The full 8-attribute dataset (12,960 objects).
Result<NurseryVariant> GenerateNursery();

/// The distinct projection onto the first \p dimensions attributes
/// (1 <= dimensions <= 8); dimensions=8 equals GenerateNursery().
Result<NurseryVariant> GenerateNurseryProjection(std::size_t dimensions);

}  // namespace skypref

#endif  // SKYPREF_WORKLOAD_NURSERY_H_
