#ifndef SKYPREF_WORKLOAD_CAR_EVALUATION_H_
#define SKYPREF_WORKLOAD_CAR_EVALUATION_H_

/// \file
/// The UCI "Car Evaluation" dataset, regenerated offline.
///
/// Like Nursery (the paper's real dataset), Car Evaluation is exactly the
/// full Cartesian product of its categorical attribute domains:
/// 4*4*4*3*3*3 = 1,728 instances over 6 attributes (buying price,
/// maintenance price, doors, persons, luggage boot, safety). It serves as
/// a second real-schema workload: preferences over "low vs vhigh buying
/// price" or "big vs small boot" genuinely vary across buyers, which is
/// precisely the uncertain-preference model.

#include "src/model/dataset.h"
#include "src/model/domain.h"
#include "src/util/status.h"

namespace skypref {

/// Attribute and value names of the Car Evaluation schema, in UCI order.
Domain CarEvaluationDomain();

struct CarEvaluationVariant {
  Dataset dataset;
  Domain domain;

  CarEvaluationVariant() : dataset(1), domain(std::size_t{1}) {}
};

/// The full 6-attribute dataset (1,728 objects).
Result<CarEvaluationVariant> GenerateCarEvaluation();

/// The distinct projection onto the first \p dimensions attributes
/// (1 <= dimensions <= 6).
Result<CarEvaluationVariant> GenerateCarEvaluationProjection(
    std::size_t dimensions);

}  // namespace skypref

#endif  // SKYPREF_WORKLOAD_CAR_EVALUATION_H_
