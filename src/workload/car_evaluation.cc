#include "src/workload/car_evaluation.h"

#include <array>
#include <string>
#include <vector>

namespace skypref {

namespace {

struct Attribute {
  const char* name;
  std::vector<const char*> values;
};

const std::array<Attribute, 6>& CarSchema() {
  static const std::array<Attribute, 6>* schema = new std::array<Attribute, 6>{{
      {"buying", {"vhigh", "high", "med", "low"}},
      {"maint", {"vhigh", "high", "med", "low"}},
      {"doors", {"2", "3", "4", "5more"}},
      {"persons", {"2", "4", "more"}},
      {"lug_boot", {"small", "med", "big"}},
      {"safety", {"low", "med", "high"}},
  }};
  return *schema;
}

}  // namespace

Domain CarEvaluationDomain() {
  std::vector<std::string> names;
  for (const auto& attribute : CarSchema()) names.emplace_back(attribute.name);
  Domain domain(std::move(names));
  for (DimensionId j = 0; j < CarSchema().size(); ++j) {
    for (const char* value : CarSchema()[j].values) {
      domain.InternValue(j, value).status().CheckOK();
    }
  }
  return domain;
}

Result<CarEvaluationVariant> GenerateCarEvaluationProjection(
    std::size_t dimensions) {
  if (dimensions < 1 || dimensions > CarSchema().size()) {
    return Status::InvalidArgument(
        "Car Evaluation projection supports 1..6 dimensions, got " +
        std::to_string(dimensions));
  }
  CarEvaluationVariant variant;
  std::vector<std::string> names;
  for (std::size_t j = 0; j < dimensions; ++j) {
    names.emplace_back(CarSchema()[j].name);
  }
  variant.domain = Domain(std::move(names));
  for (DimensionId j = 0; j < dimensions; ++j) {
    for (const char* value : CarSchema()[j].values) {
      SKYPREF_RETURN_IF_ERROR(variant.domain.InternValue(j, value).status());
    }
  }

  variant.dataset = Dataset(dimensions);
  std::vector<ValueId> row(dimensions, 0);
  while (true) {
    SKYPREF_RETURN_IF_ERROR(variant.dataset.Append(row));
    std::size_t j = dimensions;
    while (j > 0) {
      --j;
      if (++row[j] < CarSchema()[j].values.size()) break;
      row[j] = 0;
      if (j == 0) return variant;
    }
  }
}

Result<CarEvaluationVariant> GenerateCarEvaluation() {
  return GenerateCarEvaluationProjection(CarSchema().size());
}

}  // namespace skypref
