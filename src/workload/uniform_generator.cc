#include "src/workload/uniform_generator.h"

#include <cmath>
#include <set>
#include <vector>

#include "src/util/random.h"

namespace skypref {

Result<Dataset> GenerateUniform(const UniformOptions& options) {
  if (options.objects == 0 || options.dimensions == 0) {
    return Status::InvalidArgument("need at least one object and dimension");
  }
  if (options.values_per_dimension < 1) {
    return Status::InvalidArgument("need at least one value per dimension");
  }
  // Distinct-row capacity check: values^d >= n, computed in logs to avoid
  // overflow.
  double log_capacity = static_cast<double>(options.dimensions) *
                        std::log(static_cast<double>(options.values_per_dimension));
  if (log_capacity < std::log(static_cast<double>(options.objects))) {
    return Status::InvalidArgument(
        "value domain too small for " + std::to_string(options.objects) +
        " duplicate-free objects");
  }

  Dataset data(options.dimensions);
  Rng rng(options.seed);
  std::set<std::vector<ValueId>> seen;
  std::vector<ValueId> row(options.dimensions);
  while (data.size() < options.objects) {
    for (auto& v : row) {
      v = static_cast<ValueId>(rng.NextBounded(options.values_per_dimension));
    }
    if (!seen.insert(row).second) continue;  // duplicate; redraw
    SKYPREF_RETURN_IF_ERROR(data.Append(row));
  }
  return data;
}

}  // namespace skypref
