#include "src/workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace skypref {

Result<ZipfDistribution> ZipfDistribution::Create(std::size_t universe,
                                                  double theta) {
  if (universe == 0) {
    return Status::InvalidArgument("zipf universe must be non-empty");
  }
  if (theta < 0.0) {
    return Status::InvalidArgument("zipf theta must be non-negative");
  }
  std::vector<double> cdf(universe);
  double total = 0.0;
  for (std::size_t k = 0; k < universe; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf[k] = total;
  }
  for (double& entry : cdf) entry /= total;
  cdf.back() = 1.0;  // guard against rounding
  return ZipfDistribution(std::move(cdf), theta);
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::Mass(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace skypref
