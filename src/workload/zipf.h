#ifndef SKYPREF_WORKLOAD_ZIPF_H_
#define SKYPREF_WORKLOAD_ZIPF_H_

/// \file
/// Zipf-distributed sampling over a finite universe {0, ..., N-1}:
/// Pr(rank k) proportional to 1 / (k+1)^theta. The paper's block-zipf
/// workload uses theta = 1 inside each block.

#include <cstddef>
#include <vector>

#include "src/util/random.h"
#include "src/util/status.h"

namespace skypref {

class ZipfDistribution {
 public:
  /// Builds the CDF once; sampling is O(log N).
  static Result<ZipfDistribution> Create(std::size_t universe, double theta);

  std::size_t universe() const { return cdf_.size(); }
  double theta() const { return theta_; }

  /// Draws one rank in [0, universe).
  std::size_t Sample(Rng& rng) const;

  /// Probability mass of rank \p k.
  double Mass(std::size_t k) const;

 private:
  ZipfDistribution(std::vector<double> cdf, double theta)
      : cdf_(std::move(cdf)), theta_(theta) {}

  std::vector<double> cdf_;  // cdf_[k] = Pr(rank <= k)
  double theta_;
};

}  // namespace skypref

#endif  // SKYPREF_WORKLOAD_ZIPF_H_
