#include "src/workload/block_zipf_generator.h"

#include <cmath>
#include <set>
#include <vector>

#include "src/util/random.h"
#include "src/workload/zipf.h"

namespace skypref {

Result<Dataset> GenerateBlockZipf(const BlockZipfOptions& options) {
  if (options.objects == 0 || options.dimensions == 0) {
    return Status::InvalidArgument("need at least one object and dimension");
  }
  if (options.block_size == 0 || options.values_per_block == 0) {
    return Status::InvalidArgument(
        "block size and values per block must be positive");
  }
  double log_capacity =
      static_cast<double>(options.dimensions) *
      std::log(static_cast<double>(options.values_per_block));
  if (log_capacity < std::log(static_cast<double>(options.block_size))) {
    return Status::InvalidArgument(
        "block value domain too small for duplicate-free blocks of size " +
        std::to_string(options.block_size));
  }

  SKYPREF_ASSIGN_OR_RETURN(
      ZipfDistribution zipf,
      ZipfDistribution::Create(options.values_per_block, options.theta));

  Dataset data(options.dimensions);
  Rng rng(options.seed);
  std::vector<ValueId> row(options.dimensions);
  std::size_t block = 0;
  while (data.size() < options.objects) {
    const std::size_t remaining = options.objects - data.size();
    const std::size_t block_objects = std::min(options.block_size, remaining);
    const ValueId base =
        static_cast<ValueId>(block) * options.values_per_block;
    std::set<std::vector<ValueId>> seen;
    std::uint64_t attempts = 0;
    const std::uint64_t attempt_limit =
        4096 * static_cast<std::uint64_t>(options.block_size);
    while (seen.size() < block_objects) {
      if (++attempts > attempt_limit) {
        return Status::ResourceExhausted(
            "zipf concentration too high to fill a duplicate-free block; "
            "increase values_per_block or lower theta");
      }
      for (auto& v : row) {
        v = base + static_cast<ValueId>(zipf.Sample(rng));
      }
      if (!seen.insert(row).second) continue;
      SKYPREF_RETURN_IF_ERROR(data.Append(row));
    }
    ++block;
  }
  return data;
}

}  // namespace skypref
