#ifndef SKYPREF_MODEL_PREFERENCE_GENERATOR_H_
#define SKYPREF_MODEL_PREFERENCE_GENERATOR_H_

/// \file
/// Generators that materialize preference tables for a dataset's value
/// universe (every pair of values occurring on each dimension).
///
/// For small and medium instances the experiments materialize explicit
/// TablePreferenceModels; very large value universes use the O(1)-memory
/// HashedPreferenceModel instead (see preference_model.h). The correlated
/// and anti-correlated styles realize the paper's Figure 8 point that,
/// with uncertain preferences, correlation is a property of the
/// PREFERENCES, not the data: the same block-zipf dataset becomes
/// correlated or anti-correlated depending on how value preferences align
/// across dimensions.

#include <cstdint>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/util/status.h"

namespace skypref {

struct PreferenceGenOptions {
  enum class Style {
    /// Pr(a<b) ~ U[0,1], Pr(b<a) = 1 - Pr(a<b) (the paper's default).
    kTotalUniform,
    /// (Pr(a<b), Pr(b<a)) uniform on the simplex p + q <= 1.
    kSimplexUniform,
    /// Every pair (1/2, 1/2).
    kUnanimousHalf,
    /// All dimensions favour ascending ValueId order with probability
    /// `bias` — low ids tend to win everywhere, so objects good in one
    /// dimension tend to be good in all (correlated, Figure 8a).
    kCorrelated,
    /// Even dimensions favour ascending order, odd dimensions descending
    /// (anti-correlated, Figure 8b).
    kAntiCorrelated,
  };

  Style style = Style::kTotalUniform;
  std::uint64_t seed = 1;
  /// For the correlated styles: mean probability that the favoured
  /// orientation wins; jittered by +-jitter.
  double bias = 0.9;
  double jitter = 0.05;
};

/// Fills \p model with a pair for every two distinct values co-occurring
/// on each dimension of \p data (value universe = [0, value_bound(dim))).
Status GeneratePreferences(const Dataset& data,
                           const PreferenceGenOptions& options,
                           TablePreferenceModel* model);

/// Fills \p model with exact random rationals: Pr(a<b) = k/denominator
/// with k uniform in {0,...,denominator}, Pr(b<a) = 1 - Pr(a<b).
/// Powers the bit-exact property tests.
Status GenerateRationalPreferences(const Dataset& data, std::uint64_t seed,
                                   unsigned denominator,
                                   RationalPreferenceModel* model);

/// Like GenerateRationalPreferences but drawing (p, q) uniformly from the
/// grid points of the simplex p + q <= 1, so pairs can be incomparable.
Status GenerateRationalSimplexPreferences(const Dataset& data,
                                          std::uint64_t seed,
                                          unsigned denominator,
                                          RationalPreferenceModel* model);

}  // namespace skypref

#endif  // SKYPREF_MODEL_PREFERENCE_GENERATOR_H_
