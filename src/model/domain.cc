#include "src/model/domain.h"

namespace skypref {

Domain::Domain(std::size_t dimensions) {
  dims_.resize(dimensions);
  for (std::size_t i = 0; i < dimensions; ++i) {
    dims_[i].name = "dim" + std::to_string(i);
  }
}

Domain::Domain(std::vector<std::string> dimension_names) {
  dims_.resize(dimension_names.size());
  for (std::size_t i = 0; i < dimension_names.size(); ++i) {
    dims_[i].name = std::move(dimension_names[i]);
  }
}

Result<ValueId> Domain::InternValue(DimensionId dim,
                                    std::string_view value_name) {
  if (dim >= dims_.size()) {
    return Status::OutOfRange("dimension " + std::to_string(dim) +
                              " out of range (d=" +
                              std::to_string(dims_.size()) + ")");
  }
  Dimension& d = dims_[dim];
  auto it = d.ids.find(std::string(value_name));
  if (it != d.ids.end()) return it->second;
  ValueId id = static_cast<ValueId>(d.names.size());
  d.names.emplace_back(value_name);
  d.ids.emplace(std::string(value_name), id);
  return id;
}

Result<ValueId> Domain::FindValue(DimensionId dim,
                                  std::string_view value_name) const {
  if (dim >= dims_.size()) {
    return Status::OutOfRange("dimension " + std::to_string(dim) +
                              " out of range");
  }
  const Dimension& d = dims_[dim];
  auto it = d.ids.find(std::string(value_name));
  if (it == d.ids.end()) {
    return Status::NotFound("value '" + std::string(value_name) +
                            "' not interned on dimension " +
                            std::to_string(dim));
  }
  return it->second;
}

}  // namespace skypref
