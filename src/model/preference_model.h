#ifndef SKYPREF_MODEL_PREFERENCE_MODEL_H_
#define SKYPREF_MODEL_PREFERENCE_MODEL_H_

/// \file
/// Uncertain preferences between attribute values (Section 2 of the paper).
///
/// For two distinct values a, b of the same dimension the model stores a
/// pair of probabilities
///
///     Pr(a < b) + Pr(b < a) <= 1
///
/// where "<" reads "is preferred to" and the slack 1 - Pr(a<b) - Pr(b<a)
/// is the probability that the two values are incomparable. A value ties
/// with itself: Pr(v <= v) = 1. Setting each pair to {0,1} or {1,0}
/// degenerates the model to classical certain preferences.
///
/// Three implementations are provided:
///  * TablePreferenceModel    - explicit per-pair storage (tests, small
///                              instances, loaded files);
///  * HashedPreferenceModel   - O(1)-memory implicit model: the pair for
///                              (dim, a, b) is derived deterministically
///                              from a seed, which is how the evaluation
///                              scales to datasets whose dimensions carry
///                              tens of thousands of distinct values;
///  * RationalPreferenceModel - exact rational probabilities, used by the
///                              bit-exact correctness oracles.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "src/model/dataset.h"
#include "src/model/types.h"
#include "src/util/hash.h"
#include "src/util/rational.h"
#include "src/util/status.h"

namespace skypref {

/// Probabilities of the two orientations of one value pair.
struct PrefPair {
  double less = 0.5;     ///< Pr(a < b)
  double greater = 0.5;  ///< Pr(b < a)

  /// Probability that the two values are incomparable.
  double incomparable() const { return 1.0 - less - greater; }

  /// The same pair seen from the opposite orientation.
  PrefPair Swapped() const { return PrefPair{greater, less}; }

  /// OK iff both entries are in [0,1] and they sum to at most 1 (within a
  /// small tolerance for values that went through decimal text).
  Status Validate() const;
};

/// Abstract source of uncertain preferences.
class PreferenceModel {
 public:
  virtual ~PreferenceModel() = default;

  /// The pair (Pr(a<b), Pr(b<a)) on \p dim. Requires a != b.
  virtual PrefPair GetPair(DimensionId dim, ValueId a, ValueId b) const = 0;

  /// Pr(a < b); 0 when a == b (a value is never strictly preferred to
  /// itself).
  double Less(DimensionId dim, ValueId a, ValueId b) const {
    if (a == b) return 0.0;
    return GetPair(dim, a, b).less;
  }

  /// Pr(a <= b): 1 when a == b, else Pr(a < b). Distinct values are never
  /// "equal", so preferred-or-equal collapses to strictly-preferred.
  double LessEq(DimensionId dim, ValueId a, ValueId b) const {
    if (a == b) return 1.0;
    return GetPair(dim, a, b).less;
  }

  /// Checks the paper's model invariants (Section 2) over the value pairs
  /// that actually occur in \p data:
  ///
  ///   * every pair is finite, in [0,1], with Pr(a<b) + Pr(b<a) <= 1;
  ///   * orientation symmetry: GetPair(dim, b, a) is exactly the swap of
  ///     GetPair(dim, a, b);
  ///   * the self-tie identities Pr(v < v) = 0 and Pr(v <= v) = 1.
  ///
  /// Implicit models (HashedPreferenceModel) have no table to inspect, so
  /// validation probes GetPair; \p max_pairs caps the probes so the pass
  /// stays cheap on wide domains. Returns the first violation found.
  Status Validate(const Dataset& data, std::size_t max_pairs = 4096) const;
};

/// Explicit preference storage with validation.
class TablePreferenceModel : public PreferenceModel {
 public:
  /// \p default_pair is returned for pairs never Set(); the conventional
  /// default (0.5, 0.5) means "population evenly split, never
  /// incomparable", the setting used by the paper's examples.
  explicit TablePreferenceModel(PrefPair default_pair = PrefPair{0.5, 0.5})
      : default_pair_(default_pair) {}

  /// Records Pr(a<b) = \p less and Pr(b<a) = \p greater. Either
  /// orientation may be set; the other is implied. Re-setting a pair
  /// overwrites it. Fails on invalid probabilities or a == b.
  Status Set(DimensionId dim, ValueId a, ValueId b, double less,
             double greater);

  /// True iff the pair was explicitly Set().
  bool Contains(DimensionId dim, ValueId a, ValueId b) const;

  /// Number of explicitly stored pairs.
  std::size_t stored_pairs() const { return table_.size(); }

  PrefPair GetPair(DimensionId dim, ValueId a, ValueId b) const override;

 private:
  struct Key {
    DimensionId dim;
    ValueId lo;
    ValueId hi;
    bool operator==(const Key& o) const {
      return dim == o.dim && lo == o.lo && hi == o.hi;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = HashCombine(std::size_t{0x2545f491}, k.dim);
      h = HashCombine(h, k.lo);
      return HashCombine(h, k.hi);
    }
  };

  PrefPair default_pair_;
  std::unordered_map<Key, PrefPair, KeyHash> table_;  // keyed lo < hi
};

/// Implicit preference model: the pair for (dim, a, b) is a deterministic
/// pseudo-random function of (seed, dim, min(a,b), max(a,b)). Equivalent
/// to pre-generating a random table, but O(1) memory — required for the
/// block-zipf experiments where a dimension can carry 10^4+ values.
class HashedPreferenceModel : public PreferenceModel {
 public:
  enum class Style {
    /// Pr(a<b) uniform in [0,1], Pr(b<a) = 1 - Pr(a<b). This matches the
    /// paper's "preference probabilities are randomly generated between
    /// [0,1]" with no incomparability mass.
    kTotalUniform,
    /// (Pr(a<b), Pr(b<a)) uniform on the simplex p+q <= 1, so value pairs
    /// can be incomparable.
    kSimplexUniform,
    /// Every pair is (1/2, 1/2) — the "unanimous 1/2" model of the
    /// #P-hardness proof and of the paper's worked examples.
    kUnanimousHalf,
    /// Certain preferences drawn from a random total order per dimension:
    /// each pair is (1,0) or (0,1). Degenerates to classical skyline.
    kCertainOrder,
  };

  HashedPreferenceModel(std::uint64_t seed, Style style)
      : seed_(seed), style_(style) {}

  std::uint64_t seed() const { return seed_; }
  Style style() const { return style_; }

  PrefPair GetPair(DimensionId dim, ValueId a, ValueId b) const override;

 private:
  std::uint64_t PairBits(DimensionId dim, ValueId lo, ValueId hi,
                         std::uint64_t salt) const;

  std::uint64_t seed_;
  Style style_;
};

/// Exact rational preference pair.
struct RationalPrefPair {
  Rational less;
  Rational greater;
};

/// Exact preference storage; doubles as a PreferenceModel (rounding each
/// rational to the nearest double) so the same instance can feed both the
/// exact-rational oracles and the double-precision production solvers.
class RationalPreferenceModel : public PreferenceModel {
 public:
  explicit RationalPreferenceModel(
      RationalPrefPair default_pair = RationalPrefPair{
          Rational(BigInt(1), BigInt(2)), Rational(BigInt(1), BigInt(2))})
      : default_pair_(std::move(default_pair)) {}

  /// Records the exact pair; fails unless 0 <= less, greater and
  /// less + greater <= 1, and a != b.
  Status Set(DimensionId dim, ValueId a, ValueId b, Rational less,
             Rational greater);

  /// The exact pair (Pr(a<b), Pr(b<a)). Requires a != b.
  RationalPrefPair GetRational(DimensionId dim, ValueId a, ValueId b) const;

  /// Exact Pr(a <= b).
  Rational LessEqRational(DimensionId dim, ValueId a, ValueId b) const {
    if (a == b) return Rational(1);
    return GetRational(dim, a, b).less;
  }

  PrefPair GetPair(DimensionId dim, ValueId a, ValueId b) const override;

 private:
  struct Key {
    DimensionId dim;
    ValueId lo;
    ValueId hi;
    bool operator==(const Key& o) const {
      return dim == o.dim && lo == o.lo && hi == o.hi;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = HashCombine(std::size_t{0x27d4eb2f}, k.dim);
      h = HashCombine(h, k.lo);
      return HashCombine(h, k.hi);
    }
  };

  RationalPrefPair default_pair_;
  std::unordered_map<Key, RationalPrefPair, KeyHash> table_;
};

}  // namespace skypref

#endif  // SKYPREF_MODEL_PREFERENCE_MODEL_H_
