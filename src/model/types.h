#ifndef SKYPREF_MODEL_TYPES_H_
#define SKYPREF_MODEL_TYPES_H_

/// \file
/// Fundamental identifier types of the data model.
///
/// Objects live in a d-dimensional categorical space. Values are
/// dimension-local: the ValueId 3 on dimension 0 and the ValueId 3 on
/// dimension 1 are unrelated values. Preferences are likewise defined per
/// dimension between that dimension's values.

#include <cstddef>
#include <cstdint>

namespace skypref {

/// Index of a dimension (attribute), 0-based.
using DimensionId = std::uint32_t;

/// Dimension-local categorical value identifier, 0-based and dense.
using ValueId = std::uint32_t;

/// Index of an object within a Dataset, 0-based.
using ObjectId = std::size_t;

/// Sentinel for "no value".
inline constexpr ValueId kInvalidValue = static_cast<ValueId>(-1);

}  // namespace skypref

#endif  // SKYPREF_MODEL_TYPES_H_
