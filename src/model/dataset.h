#ifndef SKYPREF_MODEL_DATASET_H_
#define SKYPREF_MODEL_DATASET_H_

/// \file
/// A dataset of fixed-value categorical objects.
///
/// Objects have deterministic attribute values (the uncertainty lives in
/// the preferences, see PreferenceModel). The dataset stores an n x d
/// matrix of dimension-local ValueIds in row-major order.
///
/// The paper assumes no duplicate objects (Section 2, "Dominance
/// probability"); Validate() enforces this, and the solvers require it.

#include <span>
#include <vector>

#include "src/model/types.h"
#include "src/util/status.h"

namespace skypref {

class Dataset {
 public:
  /// An empty dataset over \p dimensions attributes (dimensions >= 1).
  explicit Dataset(std::size_t dimensions) : dimensions_(dimensions) {}

  std::size_t dimensions() const { return dimensions_; }
  std::size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  /// Appends an object. Fails if the value count differs from d.
  Status Append(std::span<const ValueId> values);
  Status Append(std::initializer_list<ValueId> values) {
    return Append(std::span<const ValueId>(values.begin(), values.size()));
  }

  /// The values of object \p object.
  std::span<const ValueId> object(ObjectId object) const {
    return std::span<const ValueId>(&cells_[object * dimensions_],
                                    dimensions_);
  }

  /// Value of \p object on \p dim.
  ValueId value(ObjectId object, DimensionId dim) const {
    return cells_[object * dimensions_ + dim];
  }

  /// Largest ValueId used on \p dim, plus one (0 for an empty dataset).
  /// Useful for sizing per-dimension tables.
  ValueId value_bound(DimensionId dim) const;

  /// Checks the paper's structural assumptions: at least one object and no
  /// two identical objects. O(n d) expected via hashing.
  Status Validate() const;

  /// True iff objects \p a and \p b have identical values everywhere.
  bool SameObject(ObjectId a, ObjectId b) const;

 private:
  std::size_t dimensions_;
  std::size_t rows_ = 0;
  std::vector<ValueId> cells_;  // row-major n x d
};

}  // namespace skypref

#endif  // SKYPREF_MODEL_DATASET_H_
