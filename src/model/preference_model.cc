#include "src/model/preference_model.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace skypref {

namespace {
constexpr double kProbTolerance = 1e-9;

Status ValidateDistinct(ValueId a, ValueId b) {
  if (a == b) {
    return Status::InvalidArgument(
        "preference pair requires two distinct values, got value " +
        std::to_string(a) + " twice");
  }
  return Status::OK();
}
}  // namespace

Status PrefPair::Validate() const {
  if (!std::isfinite(less) || !std::isfinite(greater)) {
    return Status::InvalidArgument(
        "preference probabilities must be finite");
  }
  if (less < 0.0 || greater < 0.0 || less > 1.0 || greater > 1.0) {
    return Status::InvalidArgument(
        "preference probabilities must lie in [0,1], got (" +
        std::to_string(less) + ", " + std::to_string(greater) + ")");
  }
  if (less + greater > 1.0 + kProbTolerance) {
    return Status::InvalidArgument(
        "Pr(a<b) + Pr(b<a) must be at most 1, got " +
        std::to_string(less + greater));
  }
  return Status::OK();
}

Status PreferenceModel::Validate(const Dataset& data,
                                 std::size_t max_pairs) const {
  // Probing every pair of a wide domain is quadratic; 64 distinct values
  // per dimension (2016 pairs) is plenty to catch a systematically broken
  // model while keeping the pass O(n) overall.
  constexpr std::size_t kMaxValuesPerDimension = 64;
  std::size_t probed = 0;
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    std::vector<ValueId> values;
    for (ObjectId i = 0;
         i < data.size() && values.size() < kMaxValuesPerDimension; ++i) {
      ValueId v = data.value(i, j);
      if (std::find(values.begin(), values.end(), v) == values.end()) {
        values.push_back(v);
      }
    }
    for (ValueId v : values) {
      if (Less(j, v, v) != 0.0 || LessEq(j, v, v) != 1.0) {
        return Status::Internal(
            "preference model violates the self-tie identity Pr(v<=v)=1 "
            "for value " + std::to_string(v) + " on dimension " +
            std::to_string(j));
      }
    }
    for (std::size_t p = 0; p < values.size(); ++p) {
      for (std::size_t q = p + 1; q < values.size(); ++q) {
        if (probed >= max_pairs) return Status::OK();
        ++probed;
        ValueId a = values[p];
        ValueId b = values[q];
        PrefPair pair = GetPair(j, a, b);
        Status valid = pair.Validate();
        if (!valid.ok()) {
          return Status::Internal(
              "preference model invalid for values (" + std::to_string(a) +
              ", " + std::to_string(b) + ") on dimension " +
              std::to_string(j) + ": " + valid.message());
        }
        PrefPair mirrored = GetPair(j, b, a);
        // Bitwise comparison on purpose: the two orientations must be the
        // SAME pair seen from both sides, not merely close.
        if (mirrored.less != pair.greater || mirrored.greater != pair.less) {
          return Status::Internal(
              "preference model is orientation-asymmetric for values (" +
              std::to_string(a) + ", " + std::to_string(b) +
              ") on dimension " + std::to_string(j));
        }
      }
    }
  }
  return Status::OK();
}

Status TablePreferenceModel::Set(DimensionId dim, ValueId a, ValueId b,
                                 double less, double greater) {
  SKYPREF_RETURN_IF_ERROR(ValidateDistinct(a, b));
  PrefPair pair{less, greater};
  SKYPREF_RETURN_IF_ERROR(pair.Validate());
  if (a > b) {
    std::swap(a, b);
    pair = pair.Swapped();
  }
  table_[Key{dim, a, b}] = pair;
  return Status::OK();
}

bool TablePreferenceModel::Contains(DimensionId dim, ValueId a,
                                    ValueId b) const {
  if (a > b) std::swap(a, b);
  return table_.find(Key{dim, a, b}) != table_.end();
}

PrefPair TablePreferenceModel::GetPair(DimensionId dim, ValueId a,
                                       ValueId b) const {
  bool swapped = a > b;
  if (swapped) std::swap(a, b);
  auto it = table_.find(Key{dim, a, b});
  PrefPair pair = it == table_.end() ? default_pair_ : it->second;
  return swapped ? pair.Swapped() : pair;
}

std::uint64_t HashedPreferenceModel::PairBits(DimensionId dim, ValueId lo,
                                              ValueId hi,
                                              std::uint64_t salt) const {
  std::uint64_t h = seed_ ^ (salt * 0x9e3779b97f4a7c15ULL);
  h = HashMix(h ^ (static_cast<std::uint64_t>(dim) << 1 | 1));
  h = HashMix(h ^ (static_cast<std::uint64_t>(lo) << 32 |
                   static_cast<std::uint64_t>(hi)));
  return h;
}

PrefPair HashedPreferenceModel::GetPair(DimensionId dim, ValueId a,
                                        ValueId b) const {
  bool swapped = a > b;
  ValueId lo = swapped ? b : a;
  ValueId hi = swapped ? a : b;
  auto to_unit = [](std::uint64_t bits) {
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
  };
  PrefPair pair;
  switch (style_) {
    case Style::kTotalUniform: {
      double p = to_unit(PairBits(dim, lo, hi, 0x1));
      pair = PrefPair{p, 1.0 - p};
      break;
    }
    case Style::kSimplexUniform: {
      // (u, v) uniform on the triangle p + q <= 1 via reflection.
      double u = to_unit(PairBits(dim, lo, hi, 0x2));
      double v = to_unit(PairBits(dim, lo, hi, 0x3));
      if (u + v > 1.0) {
        u = 1.0 - u;
        v = 1.0 - v;
      }
      pair = PrefPair{u, v};
      break;
    }
    case Style::kUnanimousHalf:
      pair = PrefPair{0.5, 0.5};
      break;
    case Style::kCertainOrder: {
      // Rank values by a per-dimension hash; ties cannot occur because the
      // rank is (hash, id) lexicographically.
      std::uint64_t rank_lo = HashMix(seed_ ^ HashMix(
          (static_cast<std::uint64_t>(dim) << 32) | lo));
      std::uint64_t rank_hi = HashMix(seed_ ^ HashMix(
          (static_cast<std::uint64_t>(dim) << 32) | hi));
      bool lo_wins = rank_lo < rank_hi || (rank_lo == rank_hi && lo < hi);
      pair = lo_wins ? PrefPair{1.0, 0.0} : PrefPair{0.0, 1.0};
      break;
    }
  }
  return swapped ? pair.Swapped() : pair;
}

Status RationalPreferenceModel::Set(DimensionId dim, ValueId a, ValueId b,
                                    Rational less, Rational greater) {
  SKYPREF_RETURN_IF_ERROR(ValidateDistinct(a, b));
  const Rational zero(0);
  const Rational one(1);
  if (less < zero || greater < zero || less + greater > one) {
    return Status::InvalidArgument(
        "rational preference pair out of range: (" + less.ToString() + ", " +
        greater.ToString() + ")");
  }
  if (a > b) {
    std::swap(a, b);
    std::swap(less, greater);
  }
  table_[Key{dim, a, b}] = RationalPrefPair{std::move(less), std::move(greater)};
  return Status::OK();
}

RationalPrefPair RationalPreferenceModel::GetRational(DimensionId dim,
                                                      ValueId a,
                                                      ValueId b) const {
  bool swapped = a > b;
  if (swapped) std::swap(a, b);
  auto it = table_.find(Key{dim, a, b});
  RationalPrefPair pair = it == table_.end() ? default_pair_ : it->second;
  if (swapped) std::swap(pair.less, pair.greater);
  return pair;
}

PrefPair RationalPreferenceModel::GetPair(DimensionId dim, ValueId a,
                                          ValueId b) const {
  RationalPrefPair pair = GetRational(dim, a, b);
  return PrefPair{pair.less.ToDouble(), pair.greater.ToDouble()};
}

}  // namespace skypref
