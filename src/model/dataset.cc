#include "src/model/dataset.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/hash.h"

namespace skypref {

Status Dataset::Append(std::span<const ValueId> values) {
  if (values.size() != dimensions_) {
    return Status::InvalidArgument(
        "object has " + std::to_string(values.size()) + " values, expected " +
        std::to_string(dimensions_));
  }
  cells_.insert(cells_.end(), values.begin(), values.end());
  ++rows_;
  return Status::OK();
}

ValueId Dataset::value_bound(DimensionId dim) const {
  ValueId bound = 0;
  for (std::size_t row = 0; row < rows_; ++row) {
    bound = std::max(bound, static_cast<ValueId>(value(row, dim) + 1));
  }
  return bound;
}

bool Dataset::SameObject(ObjectId a, ObjectId b) const {
  return std::equal(cells_.begin() + static_cast<std::ptrdiff_t>(a * dimensions_),
                    cells_.begin() + static_cast<std::ptrdiff_t>((a + 1) * dimensions_),
                    cells_.begin() + static_cast<std::ptrdiff_t>(b * dimensions_));
}

Status Dataset::Validate() const {
  if (dimensions_ == 0) {
    return Status::FailedPrecondition("dataset has zero dimensions");
  }
  if (rows_ == 0) {
    return Status::FailedPrecondition("dataset is empty");
  }
  struct RowHash {
    const Dataset* data;
    std::size_t operator()(ObjectId row) const {
      std::size_t h = 0x811c9dc5;
      for (ValueId v : data->object(row)) h = HashCombine(h, v);
      return h;
    }
  };
  struct RowEq {
    const Dataset* data;
    bool operator()(ObjectId a, ObjectId b) const {
      return data->SameObject(a, b);
    }
  };
  std::unordered_set<ObjectId, RowHash, RowEq> seen(
      rows_ * 2, RowHash{this}, RowEq{this});
  for (ObjectId row = 0; row < rows_; ++row) {
    if (!seen.insert(row).second) {
      return Status::FailedPrecondition(
          "duplicate object at row " + std::to_string(row) +
          " (the model assumes no duplicate objects)");
    }
  }
  return Status::OK();
}

}  // namespace skypref
