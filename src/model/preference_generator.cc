#include "src/model/preference_generator.h"

#include <algorithm>

#include "src/util/random.h"

namespace skypref {

namespace {

/// Invokes fn(dim, a, b) for every unordered pair a < b of values in the
/// dataset's per-dimension value universe.
template <typename Fn>
Status ForEachValuePair(const Dataset& data, Fn fn) {
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    ValueId bound = data.value_bound(j);
    for (ValueId a = 0; a < bound; ++a) {
      for (ValueId b = a + 1; b < bound; ++b) {
        SKYPREF_RETURN_IF_ERROR(fn(j, a, b));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status GeneratePreferences(const Dataset& data,
                           const PreferenceGenOptions& options,
                           TablePreferenceModel* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("null preference model");
  }
  if (options.bias < 0.0 || options.bias > 1.0 || options.jitter < 0.0) {
    return Status::InvalidArgument("bias must be in [0,1], jitter >= 0");
  }
  Rng rng(options.seed);
  using Style = PreferenceGenOptions::Style;
  return ForEachValuePair(data, [&](DimensionId j, ValueId a, ValueId b) {
    double less = 0.5;
    double greater = 0.5;
    switch (options.style) {
      case Style::kTotalUniform:
        less = rng.NextDouble();
        greater = 1.0 - less;
        break;
      case Style::kSimplexUniform: {
        double u = rng.NextDouble();
        double v = rng.NextDouble();
        if (u + v > 1.0) {
          u = 1.0 - u;
          v = 1.0 - v;
        }
        less = u;
        greater = v;
        break;
      }
      case Style::kUnanimousHalf:
        break;
      case Style::kCorrelated:
      case Style::kAntiCorrelated: {
        double p = options.bias +
                   options.jitter * (2.0 * rng.NextDouble() - 1.0);
        p = std::clamp(p, 0.0, 1.0);
        bool ascending = options.style == Style::kCorrelated || j % 2 == 0;
        // `ascending` favours the smaller ValueId (a < b here).
        less = ascending ? p : 1.0 - p;
        greater = 1.0 - less;
        break;
      }
    }
    return model->Set(j, a, b, less, greater);
  });
}

Status GenerateRationalPreferences(const Dataset& data, std::uint64_t seed,
                                   unsigned denominator,
                                   RationalPreferenceModel* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("null preference model");
  }
  if (denominator == 0) {
    return Status::InvalidArgument("denominator must be positive");
  }
  Rng rng(seed);
  const BigInt den(static_cast<std::int64_t>(denominator));
  return ForEachValuePair(data, [&](DimensionId j, ValueId a, ValueId b) {
    std::int64_t k = rng.NextInt(0, static_cast<std::int64_t>(denominator));
    Rational less(BigInt(k), den);
    Rational greater = Rational(1) - less;
    return model->Set(j, a, b, less, greater);
  });
}

Status GenerateRationalSimplexPreferences(const Dataset& data,
                                          std::uint64_t seed,
                                          unsigned denominator,
                                          RationalPreferenceModel* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("null preference model");
  }
  if (denominator == 0) {
    return Status::InvalidArgument("denominator must be positive");
  }
  Rng rng(seed);
  const BigInt den(static_cast<std::int64_t>(denominator));
  return ForEachValuePair(data, [&](DimensionId j, ValueId a, ValueId b) {
    std::int64_t k = rng.NextInt(0, static_cast<std::int64_t>(denominator));
    std::int64_t l =
        rng.NextInt(0, static_cast<std::int64_t>(denominator) - k);
    return model->Set(j, a, b, Rational(BigInt(k), den),
                      Rational(BigInt(l), den));
  });
}

}  // namespace skypref
