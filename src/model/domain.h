#ifndef SKYPREF_MODEL_DOMAIN_H_
#define SKYPREF_MODEL_DOMAIN_H_

/// \file
/// String interning for categorical attribute values.
///
/// The algorithms work on dense per-dimension ValueIds; Domain maps those
/// ids to and from human-readable names so datasets can be loaded from and
/// written to CSV, and so examples can speak in domain terms ("beach_view",
/// "fireplace") instead of integers.

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/model/types.h"
#include "src/util/status.h"

namespace skypref {

class Domain {
 public:
  /// Creates a domain with \p dimensions unnamed dimensions.
  explicit Domain(std::size_t dimensions);

  /// Creates a domain with named dimensions.
  explicit Domain(std::vector<std::string> dimension_names);

  std::size_t dimensions() const { return dims_.size(); }

  /// Name of dimension \p dim ("dim<k>" when unnamed).
  const std::string& dimension_name(DimensionId dim) const {
    return dims_[dim].name;
  }

  /// Interns \p value_name on \p dim, returning its (possibly pre-existing)
  /// dense id. Fails if \p dim is out of range.
  Result<ValueId> InternValue(DimensionId dim, std::string_view value_name);

  /// Id of an already-interned name, or NotFound.
  Result<ValueId> FindValue(DimensionId dim, std::string_view value_name) const;

  /// Number of distinct values interned on \p dim.
  std::size_t value_count(DimensionId dim) const {
    return dims_[dim].names.size();
  }

  /// Name of value \p value on \p dim. Requires the id to be valid.
  const std::string& value_name(DimensionId dim, ValueId value) const {
    return dims_[dim].names[value];
  }

 private:
  struct Dimension {
    std::string name;
    std::vector<std::string> names;                       // id -> name
    std::unordered_map<std::string, ValueId> ids;         // name -> id
  };
  std::vector<Dimension> dims_;
};

}  // namespace skypref

#endif  // SKYPREF_MODEL_DOMAIN_H_
