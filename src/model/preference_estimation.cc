#include "src/model/preference_estimation.h"

#include <algorithm>

namespace skypref {

VoteAggregator::VoteAggregator(double smoothing)
    : smoothing_(smoothing < 0.0 ? 0.0 : smoothing) {}

Status VoteAggregator::AddVote(DimensionId dim, ValueId first, ValueId second,
                               VoteOutcome outcome) {
  if (first == second) {
    return Status::InvalidArgument(
        "votes must compare two distinct values, got value " +
        std::to_string(first) + " twice");
  }
  bool swapped = first > second;
  Key key{dim, swapped ? second : first, swapped ? first : second};
  Tally& tally = counts_[key];
  switch (outcome) {
    case VoteOutcome::kFirstPreferred:
      (swapped ? tally.hi_wins : tally.lo_wins) += 1;
      break;
    case VoteOutcome::kSecondPreferred:
      (swapped ? tally.lo_wins : tally.hi_wins) += 1;
      break;
    case VoteOutcome::kIncomparable:
      tally.incomparable += 1;
      break;
  }
  return Status::OK();
}

Status VoteAggregator::AddVotes(DimensionId dim, ValueId first, ValueId second,
                                std::uint64_t wins, std::uint64_t losses,
                                std::uint64_t incomparable) {
  if (first == second) {
    return Status::InvalidArgument("votes must compare two distinct values");
  }
  bool swapped = first > second;
  Key key{dim, swapped ? second : first, swapped ? first : second};
  Tally& tally = counts_[key];
  tally.lo_wins += swapped ? losses : wins;
  tally.hi_wins += swapped ? wins : losses;
  tally.incomparable += incomparable;
  return Status::OK();
}

std::uint64_t VoteAggregator::VoteCount(DimensionId dim, ValueId a,
                                        ValueId b) const {
  if (a > b) std::swap(a, b);
  auto it = counts_.find(Key{dim, a, b});
  if (it == counts_.end()) return 0;
  return it->second.lo_wins + it->second.hi_wins + it->second.incomparable;
}

Result<TablePreferenceModel> VoteAggregator::BuildModel(
    PrefPair default_pair) const {
  SKYPREF_RETURN_IF_ERROR(default_pair.Validate());
  TablePreferenceModel model(default_pair);
  for (const auto& [key, tally] : counts_) {
    double total = static_cast<double>(tally.lo_wins + tally.hi_wins +
                                       tally.incomparable) +
                   3.0 * smoothing_;
    if (total == 0.0) continue;  // smoothing 0 and no votes: keep default
    double less = (static_cast<double>(tally.lo_wins) + smoothing_) / total;
    double greater = (static_cast<double>(tally.hi_wins) + smoothing_) / total;
    SKYPREF_RETURN_IF_ERROR(model.Set(key.dim, key.lo, key.hi, less, greater));
  }
  return model;
}

}  // namespace skypref
