#include "src/model/preference_estimation.h"

#include <algorithm>

#include "src/util/check.h"

namespace skypref {

VoteAggregator::VoteAggregator(double smoothing)
    : smoothing_(smoothing < 0.0 ? 0.0 : smoothing) {}

Status VoteAggregator::AddVote(DimensionId dim, ValueId first, ValueId second,
                               VoteOutcome outcome) {
  if (first == second) {
    return Status::InvalidArgument(
        "votes must compare two distinct values, got value " +
        std::to_string(first) + " twice");
  }
  bool swapped = first > second;
  Key key{dim, swapped ? second : first, swapped ? first : second};
  Tally& tally = counts_[key];
  switch (outcome) {
    case VoteOutcome::kFirstPreferred:
      (swapped ? tally.hi_wins : tally.lo_wins) += 1;
      break;
    case VoteOutcome::kSecondPreferred:
      (swapped ? tally.lo_wins : tally.hi_wins) += 1;
      break;
    case VoteOutcome::kIncomparable:
      tally.incomparable += 1;
      break;
  }
  return Status::OK();
}

Status VoteAggregator::AddVotes(DimensionId dim, ValueId first, ValueId second,
                                std::uint64_t wins, std::uint64_t losses,
                                std::uint64_t incomparable) {
  if (first == second) {
    return Status::InvalidArgument("votes must compare two distinct values");
  }
  bool swapped = first > second;
  Key key{dim, swapped ? second : first, swapped ? first : second};
  Tally& tally = counts_[key];
  tally.lo_wins += swapped ? losses : wins;
  tally.hi_wins += swapped ? wins : losses;
  tally.incomparable += incomparable;
  return Status::OK();
}

std::uint64_t VoteAggregator::VoteCount(DimensionId dim, ValueId a,
                                        ValueId b) const {
  if (a > b) std::swap(a, b);
  auto it = counts_.find(Key{dim, a, b});
  if (it == counts_.end()) return 0;
  return it->second.lo_wins + it->second.hi_wins + it->second.incomparable;
}

std::vector<VoteAggregator::VotedPair> VoteAggregator::VotedPairs() const {
  std::vector<VotedPair> pairs;
  pairs.reserve(counts_.size());
  // Collection order is irrelevant: the vector is fully sorted below.
  // skypref-analyze: allow(unordered-iter)
  for (const auto& [key, tally] : counts_) {
    (void)tally;
    pairs.push_back(VotedPair{key.dim, key.lo, key.hi});
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const VotedPair& a, const VotedPair& b) {
              if (a.dim != b.dim) return a.dim < b.dim;
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  return pairs;
}

Result<TablePreferenceModel> VoteAggregator::BuildModel(
    PrefPair default_pair) const {
  SKYPREF_RETURN_IF_ERROR(default_pair.Validate());
  TablePreferenceModel model(default_pair);
  // Iterate the SORTED pair list, not counts_ directly: hash-map order
  // depends on insertion history, and the model's internal bookkeeping
  // (and any downstream serialization) must not inherit that
  // nondeterminism. tools/skypref_analyze.py's unordered-iter check
  // flags the direct range-for this replaced.
  for (const VotedPair& pair : VotedPairs()) {
    auto it = counts_.find(Key{pair.dim, pair.lo, pair.hi});
    SKYPREF_DCHECK(it != counts_.end());
    const Tally& tally = it->second;
    double total = static_cast<double>(tally.lo_wins + tally.hi_wins +
                                       tally.incomparable) +
                   3.0 * smoothing_;
    if (total == 0.0) continue;  // smoothing 0 and no votes: keep default
    double less = (static_cast<double>(tally.lo_wins) + smoothing_) / total;
    double greater = (static_cast<double>(tally.hi_wins) + smoothing_) / total;
    SKYPREF_RETURN_IF_ERROR(
        model.Set(pair.dim, pair.lo, pair.hi, less, greater));
  }
  return model;
}

}  // namespace skypref
