#ifndef SKYPREF_MODEL_PREFERENCE_ESTIMATION_H_
#define SKYPREF_MODEL_PREFERENCE_ESTIMATION_H_

/// \file
/// Estimating the uncertain-preference model from observed comparisons.
///
/// The paper grounds its probabilistic preference model in fuzzy /
/// probabilistic voting (Section 1): Pr(a < b) is the fraction of the
/// population preferring a over b. In practice that fraction is
/// estimated from survey or click data. This module turns a stream of
/// pairwise verdicts — "this user preferred a", "preferred b", or
/// "could not compare" — into a TablePreferenceModel:
///
///     Pr(a < b) = (#a-wins + alpha) / (#votes + 3 alpha)
///
/// with additive (Laplace) smoothing alpha shared by the three outcomes,
/// so unseen pairs degrade gracefully toward (1/3, 1/3, 1/3-incomparable)
/// and the simplex constraint Pr(a<b) + Pr(b<a) <= 1 holds by
/// construction.

#include <cstdint>
#include <vector>

#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/hash.h"
#include "src/util/status.h"

namespace skypref {

/// Outcome of one observed comparison between two values.
enum class VoteOutcome : std::uint8_t {
  kFirstPreferred,
  kSecondPreferred,
  kIncomparable,
};

/// Accumulates pairwise votes and materializes preference models.
class VoteAggregator {
 public:
  /// \p smoothing is the Laplace alpha added to each of the three
  /// outcome counts; must be non-negative. Zero means raw frequencies
  /// (unseen pairs then fall back to the model default).
  explicit VoteAggregator(double smoothing = 1.0);

  /// Records one vote on (first, second) of dimension \p dim.
  /// Fails if first == second.
  Status AddVote(DimensionId dim, ValueId first, ValueId second,
                 VoteOutcome outcome);

  /// Convenience: \p wins votes for first, \p losses for second,
  /// \p incomparable for neither.
  Status AddVotes(DimensionId dim, ValueId first, ValueId second,
                  std::uint64_t wins, std::uint64_t losses,
                  std::uint64_t incomparable = 0);

  /// Total votes recorded for the pair (0 if never seen).
  std::uint64_t VoteCount(DimensionId dim, ValueId a, ValueId b) const;

  /// Number of distinct pairs with at least one vote.
  std::size_t pair_count() const { return counts_.size(); }

  /// One voted-on value pair (lo < hi by construction).
  struct VotedPair {
    DimensionId dim;
    ValueId lo;
    ValueId hi;
  };

  /// Every pair with at least one vote, sorted by (dim, lo, hi). The
  /// tallies live in a hash map, so this is the deterministic iteration
  /// order for anything user-visible — BuildModel emits in this order
  /// regardless of vote insertion order.
  std::vector<VotedPair> VotedPairs() const;

  /// Builds the smoothed preference model. Pairs with no votes are not
  /// materialized and resolve to \p default_pair.
  Result<TablePreferenceModel> BuildModel(
      PrefPair default_pair = PrefPair{0.5, 0.5}) const;

 private:
  struct Key {
    DimensionId dim;
    ValueId lo;
    ValueId hi;
    bool operator==(const Key& o) const {
      return dim == o.dim && lo == o.lo && hi == o.hi;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = HashCombine(std::size_t{0x9e37}, k.dim);
      h = HashCombine(h, k.lo);
      return HashCombine(h, k.hi);
    }
  };
  struct Tally {
    std::uint64_t lo_wins = 0;
    std::uint64_t hi_wins = 0;
    std::uint64_t incomparable = 0;
  };

  double smoothing_;
  std::unordered_map<Key, Tally, KeyHash> counts_;
};

}  // namespace skypref

#endif  // SKYPREF_MODEL_PREFERENCE_ESTIMATION_H_
