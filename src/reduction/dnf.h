#ifndef SKYPREF_REDUCTION_DNF_H_
#define SKYPREF_REDUCTION_DNF_H_

/// \file
/// The #P-completeness construction of Theorem 1.
///
/// Counting the satisfying assignments of a positive DNF formula is
/// #P-complete; Theorem 1 reduces it to a skyline-probability computation:
///
///  * each literal x_j becomes a dimension; the target O takes value 0
///    everywhere, and each dimension used by the formula has one extra
///    value 1 with the unanimous preference Pr(1 < 0) = Pr(0 < 1) = 1/2;
///  * each clause C_i becomes an object Q_i with Q_i.j = 1 if x_j in C_i
///    and Q_i.j = O.j otherwise (the SAME value 1 is shared by all
///    clauses containing x_j — that sharing is what encodes a consistent
///    truth assignment);
///  * a preference world then IS a truth assignment (x_j true iff
///    1 < 0 on dimension j), each with probability mu = 2^-L where L is
///    the number of distinct literals used, and Q_i dominates O exactly
///    when clause C_i is satisfied, so
///
///        #DNF (over used literals) = (1 - sky(O)) / mu .
///
/// CountSatisfyingViaSkyline runs this end to end in exact rational
/// arithmetic and returns the integer count over all `num_literals`
/// variables (unused variables contribute a factor 2 each).

#include <cstdint>
#include <vector>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/util/bigint.h"
#include "src/util/status.h"

namespace skypref {

/// A DNF formula with only positive (unnegated) literals.
struct PositiveDnf {
  /// Variables are 0-based: x_0 .. x_{num_literals-1}.
  unsigned num_literals = 0;
  /// Each clause is the set of literal indices it conjoins.
  std::vector<std::vector<unsigned>> clauses;

  /// Structural checks: literal indices in range, clauses non-empty and
  /// duplicate-free, at least one clause.
  Status Validate() const;
};

/// Counts satisfying assignments by enumerating all 2^num_literals
/// assignments. Requires num_literals <= 30.
Result<std::uint64_t> BruteForceCountSatisfying(const PositiveDnf& formula);

/// The skyline instance a formula reduces to.
struct DnfReduction {
  Dataset dataset;        ///< target object first, then one object per clause
  RationalPreferenceModel preferences;
  ObjectId target = 0;
  /// Number of distinct literals actually used by some clause (L).
  unsigned used_literals = 0;

  DnfReduction() : dataset(1) {}
};

/// Builds the Theorem-1 reduction (polynomial time).
Result<DnfReduction> ReduceToSkylineInstance(const PositiveDnf& formula);

/// Counts satisfying assignments of \p formula by computing sky(O) of the
/// reduced instance in exact rational arithmetic — the constructive
/// content of Theorem 1.
Result<BigInt> CountSatisfyingViaSkyline(const PositiveDnf& formula);

}  // namespace skypref

#endif  // SKYPREF_REDUCTION_DNF_H_
