#include "src/reduction/dnf.h"

#include <algorithm>
#include <set>

#include "src/core/solver.h"

namespace skypref {

Status PositiveDnf::Validate() const {
  if (clauses.empty()) {
    return Status::InvalidArgument("DNF formula has no clauses");
  }
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    const auto& clause = clauses[i];
    if (clause.empty()) {
      return Status::InvalidArgument("clause " + std::to_string(i) +
                                     " is empty");
    }
    std::set<unsigned> seen;
    for (unsigned literal : clause) {
      if (literal >= num_literals) {
        return Status::OutOfRange("literal x" + std::to_string(literal) +
                                  " out of range (d=" +
                                  std::to_string(num_literals) + ")");
      }
      if (!seen.insert(literal).second) {
        return Status::InvalidArgument("clause " + std::to_string(i) +
                                       " repeats literal x" +
                                       std::to_string(literal));
      }
    }
  }
  return Status::OK();
}

Result<std::uint64_t> BruteForceCountSatisfying(const PositiveDnf& formula) {
  SKYPREF_RETURN_IF_ERROR(formula.Validate());
  if (formula.num_literals > 30) {
    return Status::ResourceExhausted(
        "brute-force DNF counting supports at most 30 literals");
  }
  std::vector<std::uint32_t> clause_masks;
  clause_masks.reserve(formula.clauses.size());
  for (const auto& clause : formula.clauses) {
    std::uint32_t mask = 0;
    for (unsigned literal : clause) mask |= std::uint32_t{1} << literal;
    clause_masks.push_back(mask);
  }
  std::uint64_t count = 0;
  const std::uint64_t assignments = std::uint64_t{1} << formula.num_literals;
  for (std::uint64_t assignment = 0; assignment < assignments; ++assignment) {
    for (std::uint32_t mask : clause_masks) {
      if ((assignment & mask) == mask) {
        ++count;
        break;
      }
    }
  }
  return count;
}

Result<DnfReduction> ReduceToSkylineInstance(const PositiveDnf& formula) {
  SKYPREF_RETURN_IF_ERROR(formula.Validate());
  DnfReduction reduction;
  reduction.dataset = Dataset(formula.num_literals);

  // The target O sits at value 0 in every dimension.
  std::vector<ValueId> row(formula.num_literals, 0);
  SKYPREF_RETURN_IF_ERROR(reduction.dataset.Append(row));
  reduction.target = 0;

  // One object per distinct clause; all clauses containing x_j share the
  // value 1 on dimension j, encoding a single shared truth assignment.
  std::set<std::vector<ValueId>> distinct_rows;
  std::vector<bool> used(formula.num_literals, false);
  for (const auto& clause : formula.clauses) {
    std::fill(row.begin(), row.end(), 0);
    for (unsigned literal : clause) {
      row[literal] = 1;
      used[literal] = true;
    }
    if (distinct_rows.insert(row).second) {
      SKYPREF_RETURN_IF_ERROR(reduction.dataset.Append(row));
    }
  }

  const Rational half(BigInt(1), BigInt(2));
  for (unsigned j = 0; j < formula.num_literals; ++j) {
    if (!used[j]) continue;
    ++reduction.used_literals;
    SKYPREF_RETURN_IF_ERROR(
        reduction.preferences.Set(j, 0, 1, half, half));
  }
  return reduction;
}

Result<BigInt> CountSatisfyingViaSkyline(const PositiveDnf& formula) {
  SKYPREF_ASSIGN_OR_RETURN(DnfReduction reduction,
                           ReduceToSkylineInstance(formula));
  SKYPREF_ASSIGN_OR_RETURN(
      Rational sky,
      ExactSkylineProbabilityRational(reduction.dataset, reduction.target,
                                      reduction.preferences,
                                      /*preprocess=*/true));
  // U = (1 - sky) / mu over the L used literals, mu = 2^-L; unused
  // variables are free and contribute a factor of 2 each.
  Rational dominated = Rational(1) - sky;
  Rational count_used =
      dominated * Rational(BigInt::PowerOfTwo(reduction.used_literals),
                           BigInt(1));
  if (!(count_used.denominator() == BigInt(1))) {
    return Status::Internal(
        "(1 - sky) * 2^L is not integral; reduction is broken: " +
        count_used.ToString());
  }
  unsigned free_literals = formula.num_literals - reduction.used_literals;
  return count_used.numerator() * BigInt::PowerOfTwo(free_literals);
}

}  // namespace skypref
