#ifndef SKYPREF_CORE_TOPK_RACE_H_
#define SKYPREF_CORE_TOPK_RACE_H_

/// \file
/// Racing algorithm for the top-k skyline-probability query.
///
/// The paper's conclusion proposes applying a generic top-k evaluation
/// framework for uncertain databases (Re, Dalvi, Suciu, ICDE 2007) —
/// whose core idea is to maintain probability INTERVALS per object,
/// refine only while intervals overlap the top-k boundary, and stop as
/// soon as the top-k set is determined, without computing any exact
/// probability. This module realizes that plan on shared-world sampling:
///
///  * every object holds a Hoeffding confidence interval that narrows as
///    worlds accumulate;
///  * an object is settled OUT when at least k others have lower bounds
///    above its upper bound, settled IN when fewer than k others have
///    upper bounds above its lower bound;
///  * settled objects stop being evaluated (their worlds no longer need
///    to be checked), so the race focuses effort on the boundary.
///
/// With probability at least 1 - delta the returned set is the true
/// top-k (ties within `epsilon_floor` may be resolved either way; the
/// race cannot separate exact ties, so it stops and reports
/// resolved = false once intervals are narrower than epsilon_floor).

#include <cstdint>
#include <vector>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/status.h"

namespace skypref {

struct TopKRaceOptions {
  double delta = 0.01;
  /// Stop refining once every unsettled interval is narrower than this;
  /// objects within epsilon_floor of the boundary are then declared
  /// unresolvable ties and split by estimate.
  double epsilon_floor = 0.005;
  std::uint64_t seed = 0x70b9aceULL;
  /// Worlds per refinement round.
  std::uint64_t batch = 256;
  /// Hard cap on total worlds (0 = derived from epsilon_floor/delta).
  std::uint64_t max_worlds = 0;
};

struct TopKRaceResult {
  /// The k selected objects, ordered by estimated probability descending.
  std::vector<ObjectId> topk;
  /// Final per-object estimates (for all objects).
  std::vector<double> estimates;
  /// Worlds sampled.
  std::uint64_t worlds = 0;
  /// Per-object worlds actually evaluated (settled objects stop early);
  /// the race's saving shows as sum(evaluated) << n * worlds.
  std::uint64_t evaluations = 0;
  /// True when the top-k set was fully separated at confidence 1-delta;
  /// false when epsilon_floor ties forced a cut by point estimate.
  bool resolved = false;
};

/// Runs the race. Requires 1 <= k <= n.
Result<TopKRaceResult> TopKSkylineRace(const Dataset& data,
                                       const PreferenceModel& model,
                                       std::size_t k,
                                       const TopKRaceOptions& options = {});

}  // namespace skypref

#endif  // SKYPREF_CORE_TOPK_RACE_H_
