#ifndef SKYPREF_CORE_TENTATIVE_APPROX_H_
#define SKYPREF_CORE_TENTATIVE_APPROX_H_

/// \file
/// The two tentative approximations the paper evaluates and rejects
/// (Section 4, Figure 6). They are implemented faithfully so the bench
/// can regenerate Figure 6 — i.e. demonstrate WHY the Monte-Carlo
/// estimator is the right answer.
///
/// A1 — "important objects": run the exact inclusion-exclusion over only
///      the t candidates with the highest dominance probability.
/// A2 — "partial joint probabilities": evaluate Eq. 4 term by term in
///      level order (all |I|=1 terms, then |I|=2, ...) and stop after a
///      budget of computed joint probabilities; return the truncated
///      alternating sum. The truncated sum is not even guaranteed to be
///      a probability — Figure 6(b) shows errors above 1.

#include <cstdint>
#include <span>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/status.h"

namespace skypref {

/// A1: exact sky(target) restricted to the \p top_t most threatening
/// candidates (ties broken by candidate order).
Result<double> ApproxTopObjects(const Dataset& data, ObjectId target,
                                std::span<const ObjectId> candidates,
                                const PreferenceModel& model,
                                std::size_t top_t);

struct PartialTermsResult {
  /// The truncated inclusion-exclusion sum (may fall outside [0,1]).
  double estimate = 0.0;
  /// Joint probabilities actually computed.
  std::uint64_t terms_computed = 0;
  /// Highest subset size whose level was fully or partially evaluated.
  std::size_t deepest_level = 0;
};

/// A2: Eq. 4 truncated after \p term_budget joint probabilities.
Result<PartialTermsResult> ApproxPartialTerms(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, std::uint64_t term_budget);

}  // namespace skypref

#endif  // SKYPREF_CORE_TENTATIVE_APPROX_H_
