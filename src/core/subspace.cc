#include "src/core/subspace.h"

#include <bit>

#include "src/core/absorption.h"
#include "src/core/partition.h"

namespace skypref {

namespace {

/// Presents a projected dimension index as the original dimension to the
/// wrapped model, so per-dimension preferences carry over unchanged.
class ProjectedPreferenceModel : public PreferenceModel {
 public:
  ProjectedPreferenceModel(const PreferenceModel& base,
                           std::vector<DimensionId> original_dims)
      : base_(&base), original_dims_(std::move(original_dims)) {}

  PrefPair GetPair(DimensionId dim, ValueId a, ValueId b) const override {
    return base_->GetPair(original_dims_[dim], a, b);
  }

 private:
  const PreferenceModel* base_;
  std::vector<DimensionId> original_dims_;
};

}  // namespace

Result<double> SubspaceSkylineProbability(const Dataset& data,
                                          ObjectId target, SubspaceMask mask,
                                          const PreferenceModel& model,
                                          const ExactOptions& options) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  if (mask == 0) {
    return Status::InvalidArgument("subspace mask must be non-empty");
  }
  if (data.dimensions() > 32 ||
      (mask >> data.dimensions()) != 0) {
    return Status::InvalidArgument(
        "subspace mask references dimensions beyond the dataset");
  }

  std::vector<DimensionId> dims;
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    if (mask & (SubspaceMask{1} << j)) dims.push_back(j);
  }

  // Projected instance: target first, then every candidate whose
  // projection differs from the target's (equal projections can never
  // dominate — there is no strictly preferred dimension).
  Dataset projected(dims.size());
  std::vector<ValueId> row(dims.size());
  for (std::size_t k = 0; k < dims.size(); ++k) {
    row[k] = data.value(target, dims[k]);
  }
  SKYPREF_RETURN_IF_ERROR(projected.Append(row));
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id == target) continue;
    bool equal = true;
    for (std::size_t k = 0; k < dims.size(); ++k) {
      row[k] = data.value(id, dims[k]);
      equal = equal && row[k] == data.value(target, dims[k]);
    }
    if (equal) continue;
    SKYPREF_RETURN_IF_ERROR(projected.Append(row));
  }

  std::vector<ObjectId> candidates;
  candidates.reserve(projected.size() - 1);
  for (ObjectId id = 1; id < projected.size(); ++id) candidates.push_back(id);

  // Det+ on the projected instance. Coinciding candidate projections are
  // deduplicated by absorption (identical rows absorb one another).
  ProjectedPreferenceModel projected_model(model, dims);
  candidates = AbsorbCandidates(projected, 0, candidates);
  DoubleOracle oracle(projected_model);
  double product = 1.0;
  for (const auto& group : PartitionCandidates(projected, 0, candidates)) {
    SKYPREF_ASSIGN_OR_RETURN(
        double survival,
        ExactSkylineProbability(projected, 0, group, oracle, options));
    product *= survival;
  }
  return product;
}

Result<std::vector<SkycubeCell>> ProbabilisticSkycube(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const ExactOptions& options) {
  if (data.dimensions() > 20) {
    return Status::ResourceExhausted(
        "skycube over more than 20 dimensions is not supported (2^d cells)");
  }
  const SubspaceMask full =
      static_cast<SubspaceMask>((std::uint64_t{1} << data.dimensions()) - 1);
  std::vector<SkycubeCell> cells;
  cells.reserve(full);
  for (SubspaceMask mask = 1; mask <= full; ++mask) {
    SkycubeCell cell;
    cell.mask = mask;
    cell.dimensions = static_cast<std::size_t>(std::popcount(mask));
    SKYPREF_ASSIGN_OR_RETURN(
        cell.probability,
        SubspaceSkylineProbability(data, target, mask, model, options));
    cells.push_back(cell);
  }
  std::stable_sort(cells.begin(), cells.end(),
                   [](const SkycubeCell& a, const SkycubeCell& b) {
                     return a.dimensions < b.dimensions;
                   });
  return cells;
}

}  // namespace skypref
