#ifndef SKYPREF_CORE_MONTE_CARLO_H_
#define SKYPREF_CORE_MONTE_CARLO_H_

/// \file
/// Monte-Carlo estimation of the skyline probability (Algorithm 2, "Sam").
///
/// Each iteration samples one possible world of the uncertain preferences
/// and checks whether the target is a skyline point in it; the fraction of
/// successful worlds estimates sky(O). Per Theorem 2 (Hoeffding),
/// m = ln(2/delta) / (2 epsilon^2) samples give an epsilon-approximation
/// with confidence 1 - delta, for O(d n / eps^2 * ln(1/delta)) total time.
///
/// Two details make the estimator both correct and fast:
///  * preference outcomes are sampled per VALUE PAIR, not per object, and
///    memoized within a world — candidates sharing an attribute value see
///    the same sampled orientation, which is precisely the dependence that
///    the independent-dominance shortcut of Sacharidis et al. ignores;
///  * lazy sampling with a sorted checking sequence: candidates are tested
///    in descending order of Pr(Qi < O) so that non-skyline worlds are
///    refuted after sampling as few preferences as possible.
///
/// The sampling loop is interruptible: a deadline (time_limit_seconds or
/// a shared MonteCarloOptions::deadline) returns the PARTIAL result with
/// its achieved sample count — an estimate with a wider Hoeffding bar,
/// never a lost query — and a CancelToken aborts with Status::Cancelled.
///
/// Three engines implement the estimator (MonteCarloOptions::Engine,
/// mirroring ExactOptions::Engine):
///
///  * kSerial — this file's single-stream loop, the paper's literal
///    Algorithm 2;
///  * kBlock  — the block-deterministic parallel engine of
///    src/core/sam_parallel.h: the m worlds split into fixed-size
///    blocks, each block draws from its own SplitSeed-derived stream
///    through a flattened integer-threshold sampler, and blocks reduce
///    in index order, so the estimate is bit-identical for every thread
///    count (including under deadline truncation, which drops a
///    deterministic block suffix). The batch estimator
///    BatchMonteCarloSkylineProbabilities (also sam_parallel.h) shares
///    each sampled world across ALL targets of an all-objects query;
///  * kBitSliced — the word-parallel engine of src/core/sam_bitslice.h:
///    64 worlds evaluated at once per 64-bit mask word, same block
///    contract as kBlock (its own stream, so estimates differ from
///    kBlock's but are equally deterministic).

#include <cstdint>
#include <span>
#include <vector>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/cancel.h"
#include "src/util/status.h"

namespace skypref {

struct MonteCarloOptions {
  /// Target absolute error (Theorem 2).
  double epsilon = 0.01;
  /// Target failure probability (Theorem 2).
  double delta = 0.01;
  /// Explicit sample count; 0 derives the count from epsilon/delta via
  /// Hoeffding. The paper's empirical studies use 3000 where the bound
  /// would demand 26,492.
  std::uint64_t samples = 0;
  /// PRNG seed; a fixed seed makes runs exactly reproducible.
  std::uint64_t seed = 0x5eed5eedULL;
  /// Check candidates in descending order of dominance probability
  /// (Algorithm 2 line 1). Disabled only by the ablation bench.
  bool sort_by_dominance = true;
  /// Sample preferences on demand and abandon the world at the first
  /// dominating candidate. Disabled (= sample every relevant pair up
  /// front) only by the ablation bench.
  bool lazy = true;

  /// Stop sampling after this much wall time (0 = unlimited). Unlike the
  /// exact solver's limit, expiry is NOT an error: the loop returns the
  /// partial MonteCarloResult with its achieved sample count and
  /// truncated = true, so callers widen the error bar (HoeffdingEpsilon)
  /// instead of losing the estimate. Checked every 64 worlds AND every
  /// few thousand pair draws (so one group with enormous per-world cost
  /// cannot overshoot the limit by 64 expensive worlds); at least
  /// min(64, samples) worlds are always drawn.
  double time_limit_seconds = 0.0;

  /// A precomputed absolute deadline shared by several solves of one
  /// logical query (mirroring ExactOptions::deadline); when set it takes
  /// precedence over time_limit_seconds.
  Deadline deadline;

  /// Optional cooperative cancellation, polled at the same cadence as
  /// the deadline. Unlike deadline expiry, observing a cancelled token
  /// returns Status::Cancelled — the answer is no longer wanted. Not
  /// owned; nullptr = not cancellable.
  const CancelToken* cancel = nullptr;

  /// Which engine draws the worlds. Estimates are NOT bit-identical
  /// between engines (each defines its own stream); each engine is
  /// individually deterministic per seed, and kBlock is additionally
  /// bit-identical for every thread count of the pool it runs on.
  enum class Engine : std::uint8_t {
    kSerial,    ///< single-stream loop in this file (Algorithm 2 verbatim)
    kBlock,     ///< block-deterministic parallel engine (sam_parallel.h)
    kBitSliced, ///< 64 worlds per machine word (sam_bitslice.h); same
                ///< block-seeding contract as kBlock, different stream
  };
  Engine engine = Engine::kSerial;

  /// Worlds per block of the kBlock and kBitSliced engines. Like
  /// ParallelOptions::sample_chunks this is part of the NUMERIC
  /// contract: the estimate depends on (seed, block_size) but never on
  /// the thread count. Must be >= 1 for the kBlock engine; the
  /// bit-sliced engine additionally requires a multiple of 64.
  std::uint64_t block_size = 1024;
};

struct MonteCarloResult {
  /// Y / m.
  double estimate = 0.0;
  /// Worlds actually sampled (m). Equals requested_samples unless the
  /// deadline truncated the loop.
  std::uint64_t samples = 0;
  /// Worlds the caller asked for (explicit or Hoeffding-derived).
  std::uint64_t requested_samples = 0;
  /// Worlds in which the target was a skyline point (Y).
  std::uint64_t skyline_worlds = 0;
  /// Total preference-pair draws across all worlds; the lazy strategy's
  /// win shows up here.
  std::uint64_t pair_draws = 0;
  /// True when the deadline stopped the loop before requested_samples;
  /// the estimate is still valid, at the wider HoeffdingEpsilon(samples,
  /// delta) error.
  bool truncated = false;
};

/// Sample count demanded by Hoeffding for (epsilon, delta):
/// ceil(ln(2/delta) / (2 epsilon^2)). Saturates at UINT64_MAX when the
/// bound exceeds the representable range (epsilon around 1e-10 and
/// below) — casting such a value to uint64 directly would be undefined
/// behavior, not a big number.
std::uint64_t HoeffdingSampleSize(double epsilon, double delta);

/// The inverse: the epsilon that \p samples worlds certify at confidence
/// 1 - delta, sqrt(ln(2/delta) / (2 m)) — how a truncated result's error
/// bar widens. Returns 1.0 (the vacuous bound) when samples == 0 or
/// delta is not in (0, 1).
double HoeffdingEpsilon(std::uint64_t samples, double delta);

/// Estimates sky(target) against the given candidate set.
Result<MonteCarloResult> MonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, const MonteCarloOptions& options = {});

/// Convenience wrapper: all objects but the target.
Result<MonteCarloResult> MonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const MonteCarloOptions& options = {});

}  // namespace skypref

#endif  // SKYPREF_CORE_MONTE_CARLO_H_
