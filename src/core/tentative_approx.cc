#include "src/core/tentative_approx.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/core/dominance.h"
#include "src/core/exact.h"
#include "src/util/kahan.h"

namespace skypref {

Result<double> ApproxTopObjects(const Dataset& data, ObjectId target,
                                std::span<const ObjectId> candidates,
                                const PreferenceModel& model,
                                std::size_t top_t) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  std::vector<std::pair<double, ObjectId>> keyed;
  keyed.reserve(candidates.size());
  for (ObjectId id : candidates) {
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
    keyed.emplace_back(DominanceProbability(data, id, target, model), id);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<ObjectId> top;
  top.reserve(std::min(top_t, keyed.size()));
  for (std::size_t i = 0; i < keyed.size() && i < top_t; ++i) {
    top.push_back(keyed[i].second);
  }
  return ExactSkylineProbability(data, target, top, DoubleOracle(model));
}

Result<PartialTermsResult> ApproxPartialTerms(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, std::uint64_t term_budget) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  for (ObjectId id : candidates) {
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
  }
  if (term_budget == 0) {
    return Status::InvalidArgument("term budget must be positive");
  }

  const std::size_t n = candidates.size();
  const DimensionId d = static_cast<DimensionId>(data.dimensions());

  // Per-dimension "seen in the current term" stamps so each distinct value
  // is multiplied once per subset (Eq. 6).
  std::vector<std::vector<std::uint64_t>> seen(d);
  for (DimensionId j = 0; j < d; ++j) {
    ValueId bound = data.value(target, j) + 1;
    for (ObjectId id : candidates) {
      bound = std::max(bound, static_cast<ValueId>(data.value(id, j) + 1));
    }
    seen[j].assign(bound, 0);
  }

  KahanSum sum(1.0);  // the k = 0 term
  PartialTermsResult result;
  std::uint64_t term_id = 0;

  for (std::size_t k = 1; k <= n; ++k) {
    bool level_entered = false;
    // Iterate k-combinations of candidate positions in lexicographic order.
    std::vector<std::size_t> comb(k);
    for (std::size_t i = 0; i < k; ++i) comb[i] = i;
    while (true) {
      if (result.terms_computed == term_budget) {
        result.estimate = sum.Value();
        return result;
      }
      level_entered = true;
      ++term_id;
      double joint = 1.0;
      for (std::size_t pos : comb) {
        std::span<const ValueId> q = data.object(candidates[pos]);
        for (DimensionId j = 0; j < d; ++j) {
          ValueId v = q[j];
          if (v == data.value(target, j)) continue;
          if (seen[j][v] != term_id) {
            seen[j][v] = term_id;
            joint *= model.LessEq(j, v, data.value(target, j));
          }
        }
      }
      sum.Add((k % 2 == 1) ? -joint : joint);
      ++result.terms_computed;

      // Advance the combination.
      std::size_t i = k;
      while (i > 0 && comb[i - 1] == n - k + (i - 1)) --i;
      if (i == 0) break;
      ++comb[i - 1];
      for (std::size_t t = i; t < k; ++t) comb[t] = comb[t - 1] + 1;
    }
    if (level_entered) result.deepest_level = k;
  }
  result.estimate = sum.Value();
  return result;
}

}  // namespace skypref
