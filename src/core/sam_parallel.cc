#include "src/core/sam_parallel.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <unordered_map>
#include <utility>

#include "src/core/absorption.h"
#include "src/core/dominance.h"
#include "src/core/partition.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/hash.h"
#include "src/util/random.h"

namespace skypref {

namespace {

/// Same poll cadence as the serial engine (monte_carlo.cc): every 64
/// worlds or every this many pair draws, whichever comes first.
constexpr std::uint64_t kPairDrawPollStride = 8192;

// -------------------------------------------------------------------------
// Layer 1: the flat sampler
// -------------------------------------------------------------------------

/// The single-target instance flattened for the world loop, mirroring the
/// exact engine's FlatInstance: distinct (dim, value) preference pairs
/// become integer Bernoulli thresholds and each candidate owns a CSR
/// slice of pair ids, in checking-sequence order.
struct FlatSamInstance {
  std::vector<std::uint64_t> thresholds;  // per distinct pair
  std::vector<std::uint32_t> pair_ids;    // CSR payload
  std::vector<std::uint32_t> offsets;     // per candidate, size count+1

  std::size_t candidate_count() const { return offsets.size() - 1; }
  std::size_t pair_count() const { return thresholds.size(); }
};

FlatSamInstance BuildFlatSamInstance(const Dataset& data, ObjectId target,
                                     std::span<const ObjectId> candidates,
                                     const PreferenceModel& model) {
  const DimensionId d = static_cast<DimensionId>(data.dimensions());
  FlatSamInstance inst;
  std::unordered_map<std::pair<DimensionId, ValueId>, std::uint32_t, PairHash>
      pair_index;
  inst.offsets.reserve(candidates.size() + 1);
  inst.offsets.push_back(0);
  for (ObjectId id : candidates) {
    for (DimensionId j = 0; j < d; ++j) {
      ValueId v = data.value(id, j);
      ValueId o = data.value(target, j);
      if (v == o) continue;
      auto [it, inserted] = pair_index.try_emplace(
          {j, v}, static_cast<std::uint32_t>(inst.thresholds.size()));
      if (inserted) {
        double less_eq = model.LessEq(j, v, o);
        // Every threshold the sampler will ever compare against encodes a
        // model probability; catch a broken model before it skews
        // thousands of worlds.
        SKYPREF_DCHECK_PROB(less_eq);
        inst.thresholds.push_back(internal::BernoulliThreshold(less_eq));
      }
      inst.pair_ids.push_back(it->second);
    }
    inst.offsets.push_back(static_cast<std::uint32_t>(inst.pair_ids.size()));
  }
  return inst;
}

/// Per-block mutable sampling state: pair outcomes memoized per world
/// with epoch stamps (no per-world clearing). Each block owns its state —
/// worlds never share outcomes across blocks.
struct SamWorldState {
  explicit SamWorldState(std::size_t pairs)
      : epoch_mark(pairs, 0), outcome(pairs, 0) {}

  std::vector<std::uint64_t> epoch_mark;
  std::vector<std::uint8_t> outcome;
  std::uint64_t epoch = 0;
};

/// Samples one world; returns true iff the target survives. Lazy mode
/// draws pair outcomes on demand and abandons the world at the first
/// dominator, exactly like the serial WorldSampler.
bool SampleFlatWorld(const FlatSamInstance& inst, SamWorldState& state,
                     Rng& rng, bool lazy, std::uint64_t* pair_draws) {
  ++state.epoch;
  if (!lazy) {
    for (std::uint32_t p = 0; p < inst.thresholds.size(); ++p) {
      state.outcome[p] =
          internal::ThresholdHit(rng.NextUint64(), inst.thresholds[p]) ? 1 : 0;
      state.epoch_mark[p] = state.epoch;
      ++*pair_draws;
    }
  }
  const std::size_t count = inst.candidate_count();
  for (std::size_t c = 0; c < count; ++c) {
    const std::uint32_t begin = inst.offsets[c];
    const std::uint32_t end = inst.offsets[c + 1];
    bool dominates = true;
    for (std::uint32_t i = begin; i < end; ++i) {
      const std::uint32_t p = inst.pair_ids[i];
      if (state.epoch_mark[p] != state.epoch) {
        state.epoch_mark[p] = state.epoch;
        state.outcome[p] =
            internal::ThresholdHit(rng.NextUint64(), inst.thresholds[p]) ? 1
                                                                         : 0;
        ++*pair_draws;
      }
      if (state.outcome[p] == 0) {
        dominates = false;
        break;
      }
    }
    // A candidate with no differing dimension would be a duplicate of the
    // target; Dataset::Validate rejects those, but be conservative.
    if (dominates && end > begin) return false;
  }
  return true;
}

// -------------------------------------------------------------------------
// Layer 2: the block-deterministic runner
// -------------------------------------------------------------------------

/// What one block reported. `achieved`/`draws` of an incomplete block
/// are nonzero only for block 0 (which keeps its partial prefix); every
/// other stopped block discards its partial work so that the reduced
/// estimate is a pure function of the counted block prefix.
struct BlockOutcome {
  std::uint64_t achieved = 0;
  std::uint64_t draws = 0;
  bool complete = false;
};

/// The counted block prefix [0, end) and whether truncation happened.
struct BlockPrefix {
  std::uint64_t end = 0;
  bool truncated = false;
};

/// Applies the truncation contract: T = first incomplete block; blocks
/// past T never count, even when they finished. T == 0 still counts
/// block 0's kept partial prefix (a truncated run always carries at
/// least one world).
BlockPrefix CountedPrefix(const std::vector<BlockOutcome>& outcomes) {
  std::uint64_t t = outcomes.size();
  for (std::uint64_t b = 0; b < outcomes.size(); ++b) {
    if (!outcomes[b].complete) {
      t = b;
      break;
    }
  }
  if (t == outcomes.size()) return {t, false};
  return {std::max<std::uint64_t>(t, 1), true};
}

/// Fans `samples` worlds out over `pool` in fixed blocks of `block_size`.
/// `make_block(b)` builds block b's world closure (owning any per-block
/// state); the closure is then called once per world with block b's
/// private SplitSeed(seed, b) Rng. Deterministic per (seed, block_size)
/// at every thread count; see the header's truncation contract.
/// Returns Cancelled when any block observes a tripped token.
template <typename MakeBlockFn>
Status RunDeterministicBlocks(ThreadPool& pool, std::uint64_t samples,
                              std::uint64_t block_size, std::uint64_t seed,
                              const Deadline& deadline,
                              const CancelToken* cancel,
                              std::vector<BlockOutcome>& outcomes,
                              MakeBlockFn&& make_block) {
  const std::uint64_t num_blocks = (samples + block_size - 1) / block_size;
  outcomes.assign(num_blocks, BlockOutcome{});

  // The "sampler.block" failpoint is consumed SERIALLY over the block
  // indices before dispatch, so "fires on hit k" poisons block k at every
  // thread count (the deterministic-checkpoint placement rule of
  // failpoint.h). Block 0 is exempt: the reduced estimate always keeps at
  // least block 0's prefix.
  std::uint64_t poisoned = num_blocks;
  for (std::uint64_t b = 1; b < num_blocks; ++b) {
    if (SKYPREF_FAILPOINT("sampler.block")) {
      poisoned = b;
      break;
    }
  }

  // First block known to be stopped or poisoned. Later blocks use it to
  // skip work the prefix rule would discard anyway; skipping never
  // changes the counted prefix, because a skipped block is strictly
  // after the first stopped one.
  std::atomic<std::uint64_t> first_stop(poisoned);
  std::atomic<bool> cancelled(false);

  pool.ParallelFor(static_cast<std::size_t>(num_blocks), [&](std::size_t bi) {
    const std::uint64_t b = static_cast<std::uint64_t>(bi);
    if (b > 0 && b >= first_stop.load(std::memory_order_relaxed)) return;
    const std::uint64_t begin = b * block_size;
    const std::uint64_t want = std::min(block_size, samples - begin);
    Rng rng(SplitSeed(seed, b));
    auto world = make_block(b);
    BlockOutcome& out = outcomes[b];
    std::uint64_t draws_at_last_poll = 0;
    for (std::uint64_t h = 0; h < want; ++h) {
      world(rng, &out.draws);
      out.achieved = h + 1;
      // Poll after sampling (serial cadence), so block 0's kept prefix is
      // never empty and a cheap block never pays a clock read per world.
      if (((out.achieved & 63) == 0 ||
           out.draws - draws_at_last_poll >= kPairDrawPollStride) &&
          out.achieved < want) {
        draws_at_last_poll = out.draws;
        if (cancel != nullptr && cancel->cancelled()) {
          cancelled.store(true, std::memory_order_relaxed);
          return;
        }
        if (deadline.Expired()) {
          std::uint64_t cur = first_stop.load(std::memory_order_relaxed);
          while (b < cur && !first_stop.compare_exchange_weak(
                                cur, b, std::memory_order_relaxed)) {
          }
          if (b > 0) {
            // A mid-block partial of a later block is timing-dependent;
            // discard it entirely — the prefix rule drops block b anyway.
            out.achieved = 0;
            out.draws = 0;
          }
          return;
        }
      }
    }
    out.complete = true;
  });

  if (cancelled.load(std::memory_order_relaxed)) return CancelledStatus();
  return Status::OK();
}

}  // namespace

// -------------------------------------------------------------------------
// Single-target block engine
// -------------------------------------------------------------------------

Result<MonteCarloResult> BlockMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, ThreadPool& pool,
    const MonteCarloOptions& options) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  for (ObjectId id : candidates) {
    if (id >= data.size()) {
      return Status::OutOfRange("candidate object out of range");
    }
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
  }
  std::uint64_t samples = options.samples != 0
                              ? options.samples
                              : HoeffdingSampleSize(options.epsilon,
                                                    options.delta);
  if (samples == 0) {
    return Status::InvalidArgument(
        "Monte Carlo needs samples > 0 (or valid epsilon/delta)");
  }
  if (options.block_size == 0) {
    return Status::InvalidArgument("block engine needs block_size >= 1");
  }

  // Algorithm 2 line 1, shared by every block's worlds.
  std::vector<ObjectId> ordered(candidates.begin(), candidates.end());
  if (options.sort_by_dominance) {
    std::vector<std::pair<double, ObjectId>> keyed;
    keyed.reserve(ordered.size());
    for (ObjectId id : ordered) {
      keyed.emplace_back(DominanceProbability(data, id, target, model), id);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (std::size_t i = 0; i < keyed.size(); ++i) ordered[i] = keyed[i].second;
  }

  Deadline deadline = options.deadline.has_value()
                          ? options.deadline
                          : Deadline::After(options.time_limit_seconds);
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return CancelledStatus();
  }

  FlatSamInstance inst =
      BuildFlatSamInstance(data, target, ordered, model);
  const std::uint64_t num_blocks =
      (samples + options.block_size - 1) / options.block_size;
  std::vector<std::uint64_t> survived(num_blocks, 0);
  std::vector<BlockOutcome> outcomes;
  const bool lazy = options.lazy;
  SKYPREF_RETURN_IF_ERROR(RunDeterministicBlocks(
      pool, samples, options.block_size, options.seed, deadline,
      options.cancel, outcomes, [&](std::uint64_t b) {
        return [&inst, &survived, b, lazy,
                state = SamWorldState(inst.pair_count())](
                   Rng& rng, std::uint64_t* draws) mutable {
          if (SampleFlatWorld(inst, state, rng, lazy, draws)) ++survived[b];
        };
      }));

  const BlockPrefix prefix = CountedPrefix(outcomes);
  MonteCarloResult result;
  result.requested_samples = samples;
  result.truncated = prefix.truncated;
  for (std::uint64_t b = 0; b < prefix.end; ++b) {
    result.samples += outcomes[b].achieved;
    result.pair_draws += outcomes[b].draws;
    result.skyline_worlds += survived[b];
  }
  result.estimate = static_cast<double>(result.skyline_worlds) /
                    static_cast<double>(result.samples);
  SKYPREF_DCHECK(result.skyline_worlds <= result.samples);
  SKYPREF_DCHECK_PROB(result.estimate);
  return result;
}

Result<MonteCarloResult> BlockMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const MonteCarloOptions& options) {
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() > 0 ? data.size() - 1 : 0);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  return BlockMonteCarloSkylineProbability(data, target, candidates, model,
                                           pool, options);
}

// -------------------------------------------------------------------------
// Layer 3: batch Sam
// -------------------------------------------------------------------------

namespace {

struct TernaryPairKey {
  DimensionId dim;
  ValueId lo;
  ValueId hi;
  bool operator==(const TernaryPairKey& o) const {
    return dim == o.dim && lo == o.lo && hi == o.hi;
  }
};

struct TernaryPairKeyHash {
  std::size_t operator()(const TernaryPairKey& k) const {
    std::size_t h = HashCombine(std::size_t{0x5a3ba7c4}, k.dim);
    h = HashCombine(h, k.lo);
    return HashCombine(h, k.hi);
  }
};

/// Ternary orientation outcomes, stored per pair per world.
constexpr std::uint8_t kLoPreferred = 0;
constexpr std::uint8_t kHiPreferred = 1;
constexpr std::uint8_t kIncomparable = 2;

/// The whole batch flattened: a global table of ternary orientation
/// variables (two integer cuts each: draw below cut_lo means lo
/// preferred, else below cut_hi means hi preferred, else incomparable)
/// plus a two-level CSR — per target a slice of candidate slots, per
/// slot a slice of packed requirements (pair_index << 1 | want_hi).
/// Candidates are in descending dominance-probability order per target.
struct BatchPlan {
  std::vector<std::uint64_t> cut_lo;
  std::vector<std::uint64_t> cut_hi;
  std::vector<std::uint32_t> reqs;
  std::vector<std::uint32_t> req_offsets;   // per candidate slot, slots+1
  std::vector<std::uint32_t> target_begin;  // per target, n+1, slot indices

  std::size_t pair_count() const { return cut_lo.size(); }
};

/// Per-block mutable state of the batch sampler.
struct BatchWorldState {
  explicit BatchWorldState(std::size_t pairs)
      : epoch_mark(pairs, 0), outcome(pairs, kIncomparable) {}

  std::vector<std::uint64_t> epoch_mark;
  std::vector<std::uint8_t> outcome;
  std::uint64_t epoch = 0;
};

/// True iff \p target survives the current world. Orientations are drawn
/// lazily and memoized per world, so every target of the world sees the
/// same sampled preference — the consistency that makes shared worlds
/// valid (all_worlds.h).
bool BatchSurvives(const BatchPlan& plan, BatchWorldState& state,
                   ObjectId target, Rng& rng, std::uint64_t* pair_draws) {
  const std::uint32_t begin = plan.target_begin[target];
  const std::uint32_t end = plan.target_begin[target + 1];
  for (std::uint32_t slot = begin; slot < end; ++slot) {
    bool dominates = true;
    const std::uint32_t rb = plan.req_offsets[slot];
    const std::uint32_t re = plan.req_offsets[slot + 1];
    for (std::uint32_t r = rb; r < re; ++r) {
      const std::uint32_t packed = plan.reqs[r];
      const std::uint32_t p = packed >> 1;
      const std::uint8_t want = static_cast<std::uint8_t>(packed & 1);
      if (state.epoch_mark[p] != state.epoch) {
        state.epoch_mark[p] = state.epoch;
        const std::uint64_t u = rng.NextUint64();
        state.outcome[p] = internal::ThresholdHit(u, plan.cut_lo[p])
                               ? kLoPreferred
                               : (internal::ThresholdHit(u, plan.cut_hi[p])
                                      ? kHiPreferred
                                      : kIncomparable);
        ++*pair_draws;
      }
      if (state.outcome[p] != want) {
        dominates = false;
        break;
      }
    }
    if (dominates) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<double>> BatchMonteCarloSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const SolverOptions& options, BatchSamStats* stats) {
  SKYPREF_RETURN_IF_ERROR(data.Validate());
  SKYPREF_RETURN_IF_ERROR(model.Validate(data));
  const std::size_t n = data.size();
  const MonteCarloOptions& mc = options.monte_carlo;
  std::uint64_t samples = mc.samples != 0
                              ? mc.samples
                              : HoeffdingSampleSize(mc.epsilon, mc.delta);
  if (samples == 0) {
    return Status::InvalidArgument(
        "Monte Carlo needs samples > 0 (or valid epsilon/delta)");
  }
  if (mc.block_size == 0) {
    return Status::InvalidArgument("block engine needs block_size >= 1");
  }
  Deadline deadline = mc.deadline.has_value()
                          ? mc.deadline
                          : Deadline::After(mc.time_limit_seconds);
  if (mc.cancel != nullptr && mc.cancel->cancelled()) {
    return CancelledStatus();
  }

  BatchSamStats local;
  local.targets = n;
  local.requested_samples = samples;

  // Phase A: absorption + partition per target, sharing the global
  // posting lists, exactly as in the batch exact solver. Absorption is
  // pure win for the sampler too — an absorbed candidate's dominance
  // event is contained in its absorber's, so dropping it changes no
  // world's verdict.
  std::vector<std::vector<std::vector<ObjectId>>> groups(n);
  if (options.preprocess) {
    ValuePostings postings(data);
    constexpr std::size_t kChunk = 16;
    const std::size_t chunks = (n + kChunk - 1) / kChunk;
    pool.ParallelFor(chunks, [&](std::size_t c) {
      PartitionWorkspace workspace;
      const std::size_t begin = c * kChunk;
      const std::size_t end = std::min(n, begin + kChunk);
      for (ObjectId t = begin; t < end; ++t) {
        std::vector<ObjectId> candidates =
            AbsorbAllCandidatesIndexed(data, t, postings);
        groups[t] = PartitionCandidates(
            data, t, std::span<const ObjectId>(candidates), workspace);
      }
    });
  } else {
    for (ObjectId t = 0; t < n; ++t) {
      std::vector<ObjectId> candidates;
      candidates.reserve(n - 1);
      for (ObjectId id = 0; id < n; ++id) {
        if (id != t) candidates.push_back(id);
      }
      groups[t].push_back(std::move(candidates));
    }
  }
  for (ObjectId t = 0; t < n; ++t) {
    std::size_t after = 0;
    for (const auto& group : groups[t]) {
      after += group.size();
      local.largest_group = std::max(local.largest_group, group.size());
    }
    local.groups += groups[t].size();
    local.absorbed += (n - 1) - after;
  }

  // Phase B: one global table of ternary orientation variables, interned
  // by canonical (dim, lo, hi), shared by every target's plan — the
  // world-sharing that turns targets x worlds x pairs draws into
  // worlds x distinct-pairs. Serial: this interning IS the work being
  // deduplicated across targets.
  const DimensionId d = static_cast<DimensionId>(data.dimensions());
  BatchPlan plan;
  std::unordered_map<TernaryPairKey, std::uint32_t, TernaryPairKeyHash>
      pair_index;
  plan.target_begin.reserve(n + 1);
  plan.target_begin.push_back(0);
  plan.req_offsets.push_back(0);
  struct PlanCandidate {
    double dominance = 1.0;
    std::vector<std::uint32_t> reqs;
  };
  std::vector<PlanCandidate> per_target;
  for (ObjectId t = 0; t < n; ++t) {
    per_target.clear();
    for (const auto& group : groups[t]) {
      for (ObjectId c : group) {
        PlanCandidate cand;
        bool possible = true;
        for (DimensionId j = 0; j < d && possible; ++j) {
          ValueId vc = data.value(c, j);
          ValueId vt = data.value(t, j);
          if (vc == vt) continue;
          ValueId lo = std::min(vc, vt);
          ValueId hi = std::max(vc, vt);
          PrefPair pair = model.GetPair(j, lo, hi);
          double toward_candidate = vc == lo ? pair.less : pair.greater;
          // Exact-zero test: Pr = 0 means the orientation can never be
          // drawn, so the candidate is pruned from the sampling plan.
          if (toward_candidate == 0.0) {  // skypref-lint: allow(float-eq)
            possible = false;
            break;
          }
          cand.dominance *= toward_candidate;
          auto [it, inserted] = pair_index.try_emplace(
              TernaryPairKey{j, lo, hi},
              static_cast<std::uint32_t>(plan.cut_lo.size()));
          if (inserted) {
            SKYPREF_DCHECK_PROB(pair.less);
            SKYPREF_DCHECK_PROB(pair.less + pair.greater);
            plan.cut_lo.push_back(internal::BernoulliThreshold(pair.less));
            plan.cut_hi.push_back(internal::BernoulliThreshold(
                std::min(pair.less + pair.greater, 1.0)));
          }
          cand.reqs.push_back((it->second << 1) |
                              (vc == hi ? 1u : 0u));
        }
        if (!possible) {
          ++local.pruned_candidates;
          continue;
        }
        // A candidate with no differing dimension would duplicate the
        // target; Dataset::Validate guarantees that cannot happen.
        if (!cand.reqs.empty()) per_target.push_back(std::move(cand));
      }
    }
    // Algorithm 2 line 1 per target: most probable dominators first.
    std::stable_sort(per_target.begin(), per_target.end(),
                     [](const PlanCandidate& a, const PlanCandidate& b) {
                       return a.dominance > b.dominance;
                     });
    for (PlanCandidate& cand : per_target) {
      plan.reqs.insert(plan.reqs.end(), cand.reqs.begin(), cand.reqs.end());
      plan.req_offsets.push_back(static_cast<std::uint32_t>(plan.reqs.size()));
    }
    plan.target_begin.push_back(
        static_cast<std::uint32_t>(plan.req_offsets.size() - 1));
  }
  local.distinct_pairs = plan.pair_count();

  // Phase C: the shared world stream, fanned out in deterministic blocks
  // (same runner, same "sampler.block" failpoint, same truncation
  // contract as the single-target engine). Each block owns its memo
  // state and its per-target counters; the reduce sums the counted block
  // prefix in index order.
  const std::uint64_t num_blocks =
      (samples + mc.block_size - 1) / mc.block_size;
  std::vector<std::vector<std::uint64_t>> survived(
      num_blocks, std::vector<std::uint64_t>(n, 0));
  std::vector<BlockOutcome> outcomes;
  SKYPREF_RETURN_IF_ERROR(RunDeterministicBlocks(
      pool, samples, mc.block_size, mc.seed, deadline, mc.cancel, outcomes,
      [&](std::uint64_t b) {
        return [&plan, counts = survived[b].data(), n,
                state = BatchWorldState(plan.pair_count())](
                   Rng& rng, std::uint64_t* draws) mutable {
          ++state.epoch;
          for (ObjectId t = 0; t < n; ++t) {
            if (BatchSurvives(plan, state, t, rng, draws)) ++counts[t];
          }
        };
      }));

  const BlockPrefix prefix = CountedPrefix(outcomes);
  local.truncated = prefix.truncated;
  for (std::uint64_t b = 0; b < prefix.end; ++b) {
    local.samples += outcomes[b].achieved;
    local.pair_draws += outcomes[b].draws;
  }
  std::vector<double> estimates(n, 0.0);
  for (ObjectId t = 0; t < n; ++t) {
    std::uint64_t hits = 0;
    for (std::uint64_t b = 0; b < prefix.end; ++b) hits += survived[b][t];
    estimates[t] =
        static_cast<double>(hits) / static_cast<double>(local.samples);
    SKYPREF_DCHECK_PROB(estimates[t]);
  }
  if (stats != nullptr) *stats = local;
  return estimates;
}

}  // namespace skypref
