#include "src/core/sam_parallel.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "src/core/dominance.h"
#include "src/core/sam_bitslice.h"
#include "src/core/sam_internal.h"
#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/try_alloc.h"

namespace skypref {

namespace {

using internal::BatchPlan;
using internal::BlockOutcome;
using internal::BlockPrefix;
using internal::CountedPrefix;
using internal::FlatSamInstance;
using internal::RunDeterministicBlocks;

// -------------------------------------------------------------------------
// Layer 1: the flat sampler (instance built by sam_internal.cc)
// -------------------------------------------------------------------------

/// Per-block mutable sampling state: pair outcomes memoized per world
/// with epoch stamps (no per-world clearing). Each block owns its state —
/// worlds never share outcomes across blocks.
struct SamWorldState {
  explicit SamWorldState(std::size_t pairs)
      : epoch_mark(pairs, 0), outcome(pairs, 0) {}

  std::vector<std::uint64_t> epoch_mark;
  std::vector<std::uint8_t> outcome;
  std::uint64_t epoch = 0;
};

/// Samples one world; returns true iff the target survives. Lazy mode
/// draws pair outcomes on demand and abandons the world at the first
/// dominator, exactly like the serial WorldSampler.
bool SampleFlatWorld(const FlatSamInstance& inst, SamWorldState& state,
                     Rng& rng, bool lazy, std::uint64_t* pair_draws) {
  ++state.epoch;
  if (!lazy) {
    for (std::uint32_t p = 0; p < inst.thresholds.size(); ++p) {
      state.outcome[p] =
          internal::ThresholdHit(rng.NextUint64(), inst.thresholds[p]) ? 1 : 0;
      state.epoch_mark[p] = state.epoch;
      ++*pair_draws;
    }
  }
  const std::size_t count = inst.candidate_count();
  for (std::size_t c = 0; c < count; ++c) {
    const std::uint32_t begin = inst.offsets[c];
    const std::uint32_t end = inst.offsets[c + 1];
    bool dominates = true;
    for (std::uint32_t i = begin; i < end; ++i) {
      const std::uint32_t p = inst.pair_ids[i];
      if (state.epoch_mark[p] != state.epoch) {
        state.epoch_mark[p] = state.epoch;
        state.outcome[p] =
            internal::ThresholdHit(rng.NextUint64(), inst.thresholds[p]) ? 1
                                                                         : 0;
        ++*pair_draws;
      }
      if (state.outcome[p] == 0) {
        dominates = false;
        break;
      }
    }
    // A candidate with no differing dimension would be a duplicate of the
    // target; Dataset::Validate rejects those, but be conservative.
    if (dominates && end > begin) return false;
  }
  return true;
}

}  // namespace

// -------------------------------------------------------------------------
// Single-target block engine
// -------------------------------------------------------------------------

Result<MonteCarloResult> BlockMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, ThreadPool& pool,
    const MonteCarloOptions& options) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  for (ObjectId id : candidates) {
    if (id >= data.size()) {
      return Status::OutOfRange("candidate object out of range");
    }
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
  }
  std::uint64_t samples = options.samples != 0
                              ? options.samples
                              : HoeffdingSampleSize(options.epsilon,
                                                    options.delta);
  if (samples == 0) {
    return Status::InvalidArgument(
        "Monte Carlo needs samples > 0 (or valid epsilon/delta)");
  }
  if (options.block_size == 0) {
    return Status::InvalidArgument("block engine needs block_size >= 1");
  }

  // Algorithm 2 line 1, shared by every block's worlds.
  std::vector<ObjectId> ordered(candidates.begin(), candidates.end());
  if (options.sort_by_dominance) {
    std::vector<std::pair<double, ObjectId>> keyed;
    keyed.reserve(ordered.size());
    for (ObjectId id : ordered) {
      keyed.emplace_back(DominanceProbability(data, id, target, model), id);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (std::size_t i = 0; i < keyed.size(); ++i) ordered[i] = keyed[i].second;
  }

  Deadline deadline = options.deadline.has_value()
                          ? options.deadline
                          : Deadline::After(options.time_limit_seconds);
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return CancelledStatus();
  }

  SKYPREF_ASSIGN_OR_RETURN(FlatSamInstance inst,
                           TryAlloc("alloc.sam.instance", [&] {
                             return internal::BuildFlatSamInstance(
                                 data, target, ordered, model);
                           }));
  const std::uint64_t num_blocks =
      (samples + options.block_size - 1) / options.block_size;
  std::vector<std::uint64_t> survived(num_blocks, 0);
  std::vector<BlockOutcome> outcomes;
  const bool lazy = options.lazy;
  SKYPREF_RETURN_IF_ERROR(RunDeterministicBlocks(
      pool, samples, options.block_size, /*chunk=*/1, options.seed, deadline,
      options.cancel, outcomes, [&](std::uint64_t b) {
        return [&inst, &survived, b, lazy,
                state = SamWorldState(inst.pair_count())](
                   Rng& rng, std::uint64_t step, std::uint64_t* draws) mutable {
          (void)step;  // chunk = 1: exactly one world per call
          if (SampleFlatWorld(inst, state, rng, lazy, draws)) ++survived[b];
        };
      }));

  const BlockPrefix prefix = CountedPrefix(outcomes);
  MonteCarloResult result;
  result.requested_samples = samples;
  result.truncated = prefix.truncated;
  for (std::uint64_t b = 0; b < prefix.end; ++b) {
    result.samples += outcomes[b].achieved;
    result.pair_draws += outcomes[b].draws;
    result.skyline_worlds += survived[b];
  }
  result.estimate = static_cast<double>(result.skyline_worlds) /
                    static_cast<double>(result.samples);
  SKYPREF_DCHECK(result.skyline_worlds <= result.samples);
  SKYPREF_DCHECK_PROB(result.estimate);
  return result;
}

Result<MonteCarloResult> BlockMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const MonteCarloOptions& options) {
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() > 0 ? data.size() - 1 : 0);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  return BlockMonteCarloSkylineProbability(data, target, candidates, model,
                                           pool, options);
}

// -------------------------------------------------------------------------
// Layer 3: batch Sam (plan built by sam_internal.cc)
// -------------------------------------------------------------------------

namespace {

/// Per-block mutable state of the scalar batch sampler.
struct BatchWorldState {
  explicit BatchWorldState(std::size_t pairs)
      : epoch_mark(pairs, 0), outcome(pairs, internal::kIncomparable) {}

  std::vector<std::uint64_t> epoch_mark;
  std::vector<std::uint8_t> outcome;
  std::uint64_t epoch = 0;
};

/// True iff \p target survives the current world. Orientations are drawn
/// lazily and memoized per world, so every target of the world sees the
/// same sampled preference — the consistency that makes shared worlds
/// valid (all_worlds.h).
bool BatchSurvives(const BatchPlan& plan, BatchWorldState& state,
                   ObjectId target, Rng& rng, std::uint64_t* pair_draws) {
  const std::uint32_t begin = plan.target_begin[target];
  const std::uint32_t end = plan.target_begin[target + 1];
  for (std::uint32_t slot = begin; slot < end; ++slot) {
    bool dominates = true;
    const std::uint32_t rb = plan.req_offsets[slot];
    const std::uint32_t re = plan.req_offsets[slot + 1];
    for (std::uint32_t r = rb; r < re; ++r) {
      const std::uint32_t packed = plan.reqs[r];
      const std::uint32_t p = packed >> 1;
      const std::uint8_t want = static_cast<std::uint8_t>(packed & 1);
      if (state.epoch_mark[p] != state.epoch) {
        state.epoch_mark[p] = state.epoch;
        const std::uint64_t u = rng.NextUint64();
        state.outcome[p] = internal::ThresholdHit(u, plan.cut_lo[p])
                               ? internal::kLoPreferred
                               : (internal::ThresholdHit(u, plan.cut_hi[p])
                                      ? internal::kHiPreferred
                                      : internal::kIncomparable);
        ++*pair_draws;
      }
      if (state.outcome[p] != want) {
        dominates = false;
        break;
      }
    }
    if (dominates) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<double>> BatchMonteCarloSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const SolverOptions& options, BatchSamStats* stats) {
  // The bit-sliced engine shares this plan-building front end but swaps
  // the world loop for mask words; dispatch before any work happens.
  if (options.monte_carlo.engine == MonteCarloOptions::Engine::kBitSliced) {
    return BitSlicedBatchMonteCarloSkylineProbabilities(data, model, pool,
                                                        options, stats);
  }
  SKYPREF_RETURN_IF_ERROR(data.Validate());
  SKYPREF_RETURN_IF_ERROR(model.Validate(data));
  const std::size_t n = data.size();
  const MonteCarloOptions& mc = options.monte_carlo;
  std::uint64_t samples = mc.samples != 0
                              ? mc.samples
                              : HoeffdingSampleSize(mc.epsilon, mc.delta);
  if (samples == 0) {
    return Status::InvalidArgument(
        "Monte Carlo needs samples > 0 (or valid epsilon/delta)");
  }
  if (mc.block_size == 0) {
    return Status::InvalidArgument("block engine needs block_size >= 1");
  }
  Deadline deadline = mc.deadline.has_value()
                          ? mc.deadline
                          : Deadline::After(mc.time_limit_seconds);
  if (mc.cancel != nullptr && mc.cancel->cancelled()) {
    return CancelledStatus();
  }

  BatchSamStats local;
  local.requested_samples = samples;
  SKYPREF_ASSIGN_OR_RETURN(
      BatchPlan plan, TryAlloc("alloc.sam.batch_plan", [&] {
        return internal::BuildBatchPlan(data, model, pool, options, local);
      }));

  // Phase C: the shared world stream, fanned out in deterministic blocks
  // (same runner, same "sampler.block" failpoint, same truncation
  // contract as the single-target engine). Each block owns its memo
  // state and its per-target counters; the reduce sums the counted block
  // prefix in index order.
  const std::uint64_t num_blocks =
      (samples + mc.block_size - 1) / mc.block_size;
  std::vector<std::vector<std::uint64_t>> survived(
      num_blocks, std::vector<std::uint64_t>(n, 0));
  std::vector<BlockOutcome> outcomes;
  SKYPREF_RETURN_IF_ERROR(RunDeterministicBlocks(
      pool, samples, mc.block_size, /*chunk=*/1, mc.seed, deadline, mc.cancel,
      outcomes, [&](std::uint64_t b) {
        return [&plan, counts = survived[b].data(), n,
                state = BatchWorldState(plan.pair_count())](
                   Rng& rng, std::uint64_t step, std::uint64_t* draws) mutable {
          (void)step;  // chunk = 1: exactly one world per call
          ++state.epoch;
          for (ObjectId t = 0; t < n; ++t) {
            if (BatchSurvives(plan, state, t, rng, draws)) ++counts[t];
          }
        };
      }));

  const BlockPrefix prefix = CountedPrefix(outcomes);
  local.truncated = prefix.truncated;
  for (std::uint64_t b = 0; b < prefix.end; ++b) {
    local.samples += outcomes[b].achieved;
    local.pair_draws += outcomes[b].draws;
  }
  std::vector<double> estimates(n, 0.0);
  for (ObjectId t = 0; t < n; ++t) {
    std::uint64_t hits = 0;
    for (std::uint64_t b = 0; b < prefix.end; ++b) hits += survived[b][t];
    estimates[t] =
        static_cast<double>(hits) / static_cast<double>(local.samples);
    SKYPREF_DCHECK_PROB(estimates[t]);
  }
  if (stats != nullptr) *stats = local;
  return estimates;
}

}  // namespace skypref
