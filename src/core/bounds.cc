#include "src/core/bounds.h"

#include <algorithm>
#include <vector>

#include "src/core/absorption.h"
#include "src/core/lineage_dp.h"
#include "src/core/exact.h"
#include "src/core/partition.h"
#include "src/util/kahan.h"

namespace skypref {

namespace {

/// Evaluates level sums S_k of Eq. 4 one level at a time, sharing the
/// per-dimension "distinct value" stamps across subsets.
class LevelEvaluator {
 public:
  LevelEvaluator(const Dataset& data, ObjectId target,
                 std::span<const ObjectId> candidates,
                 const PreferenceModel& model)
      : data_(data), target_(target), candidates_(candidates), model_(model) {
    seen_.resize(data.dimensions());
    for (DimensionId j = 0; j < data.dimensions(); ++j) {
      ValueId bound = data.value(target, j) + 1;
      for (ObjectId id : candidates) {
        bound = std::max(bound, static_cast<ValueId>(data.value(id, j) + 1));
      }
      seen_[j].assign(bound, 0);
    }
  }

  /// Number of terms in level k: C(n, k), saturating.
  std::uint64_t LevelTermCount(std::size_t k) const {
    const std::size_t n = candidates_.size();
    if (k > n) return 0;
    std::uint64_t count = 1;
    for (std::size_t i = 0; i < k; ++i) {
      if (count > (std::uint64_t{1} << 62) / (n - i)) {
        return std::uint64_t{1} << 63;  // saturate; caller compares budgets
      }
      count = count * (n - i) / (i + 1);
    }
    return count;
  }

  /// Sum of joint probabilities over all subsets of size k.
  double EvaluateLevel(std::size_t k, std::uint64_t* terms) {
    const std::size_t n = candidates_.size();
    KahanSum sum;
    std::vector<std::size_t> comb(k);
    for (std::size_t i = 0; i < k; ++i) comb[i] = i;
    while (true) {
      ++term_id_;
      double joint = 1.0;
      for (std::size_t pos : comb) {
        std::span<const ValueId> q = data_.object(candidates_[pos]);
        for (DimensionId j = 0; j < data_.dimensions(); ++j) {
          ValueId v = q[j];
          if (v == data_.value(target_, j)) continue;
          if (seen_[j][v] != term_id_) {
            seen_[j][v] = term_id_;
            joint *= model_.LessEq(j, v, data_.value(target_, j));
          }
        }
      }
      sum.Add(joint);
      ++*terms;

      std::size_t i = k;
      while (i > 0 && comb[i - 1] == n - k + (i - 1)) --i;
      if (i == 0) break;
      ++comb[i - 1];
      for (std::size_t t = i; t < k; ++t) comb[t] = comb[t - 1] + 1;
    }
    return sum.Value();
  }

 private:
  const Dataset& data_;
  ObjectId target_;
  std::span<const ObjectId> candidates_;
  const PreferenceModel& model_;
  std::vector<std::vector<std::uint64_t>> seen_;
  std::uint64_t term_id_ = 0;
};

}  // namespace

Result<SkylineBounds> BoundedSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, const BoundsOptions& options) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  for (ObjectId id : candidates) {
    if (id >= data.size()) {
      return Status::OutOfRange("candidate object out of range");
    }
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
  }

  SkylineBounds bounds;
  const std::size_t n = candidates.size();
  if (n == 0) {
    bounds.lower = bounds.upper = 1.0;
    bounds.exact = true;
    return bounds;
  }

  LevelEvaluator evaluator(data, target, candidates, model);
  const std::size_t max_level = std::min(options.max_level, n);
  KahanSum truncated(1.0);  // 1 - S1 + S2 - ...
  for (std::size_t k = 1; k <= max_level; ++k) {
    std::uint64_t level_terms = evaluator.LevelTermCount(k);
    if (options.term_budget != 0 &&
        bounds.terms_computed + level_terms > options.term_budget) {
      break;  // level would not complete; a partial level certifies nothing
    }
    double level_sum = evaluator.EvaluateLevel(k, &bounds.terms_computed);
    truncated.Add(k % 2 == 1 ? -level_sum : level_sum);
    double value = truncated.Value();
    if (k % 2 == 1) {
      bounds.lower = std::max(bounds.lower, std::min(1.0, value));
    } else {
      bounds.upper = std::min(bounds.upper, std::max(0.0, value));
    }
    bounds.level = k;
    if (k == n) {
      // All levels computed: the truncation IS the exact value.
      double exact = std::clamp(value, 0.0, 1.0);
      bounds.lower = bounds.upper = exact;
      bounds.exact = true;
      break;
    }
    // Bonferroni bounds from different levels may cross only through
    // floating-point noise; keep the interval well-formed.
    if (bounds.lower > bounds.upper) {
      double mid = 0.5 * (bounds.lower + bounds.upper);
      bounds.lower = bounds.upper = mid;
    }
  }
  return bounds;
}

Result<SkylineBounds> BoundedSkylineProbability(const Dataset& data,
                                                ObjectId target,
                                                const PreferenceModel& model,
                                                const BoundsOptions& options) {
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() > 0 ? data.size() - 1 : 0);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  return BoundedSkylineProbability(data, target, candidates, model, options);
}

namespace {

std::vector<std::vector<ObjectId>> PreprocessedGroups(const Dataset& data,
                                                      ObjectId target) {
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() - 1);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  candidates = AbsorbCandidates(data, target, candidates);
  return PartitionCandidates(data, target, candidates);
}

Result<SkylineBounds> GroupProductBounds(
    const Dataset& data, ObjectId target,
    const std::vector<std::vector<ObjectId>>& groups,
    const PreferenceModel& model, const BoundsOptions& options) {
  SkylineBounds combined;
  combined.lower = 1.0;
  combined.upper = 1.0;
  combined.exact = true;
  for (const auto& group : groups) {
    SKYPREF_ASSIGN_OR_RETURN(
        SkylineBounds group_bounds,
        BoundedSkylineProbability(data, target, group, model, options));
    combined.lower *= group_bounds.lower;
    combined.upper *= group_bounds.upper;
    combined.exact = combined.exact && group_bounds.exact;
    combined.terms_computed += group_bounds.terms_computed;
    combined.level = std::max(combined.level, group_bounds.level);
  }
  return combined;
}

}  // namespace

Result<SkylineBounds> BoundedSkylineProbabilityPreprocessed(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const BoundsOptions& options) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  return GroupProductBounds(data, target, PreprocessedGroups(data, target),
                            model, options);
}

Result<bool> DecideThreshold(const Dataset& data, ObjectId target,
                             const PreferenceModel& model, double tau,
                             const BoundsOptions& options,
                             bool* used_exact_fallback) {
  if (used_exact_fallback != nullptr) *used_exact_fallback = false;
  if (tau < 0.0 || tau > 1.0) {
    return Status::InvalidArgument("threshold must lie in [0,1]");
  }
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  std::vector<std::vector<ObjectId>> groups = PreprocessedGroups(data, target);

  // Escalate the bound level until the interval excludes tau.
  for (std::size_t level = 1; level <= options.max_level; ++level) {
    BoundsOptions level_options = options;
    level_options.max_level = level;
    SKYPREF_ASSIGN_OR_RETURN(
        SkylineBounds bounds,
        GroupProductBounds(data, target, groups, model, level_options));
    if (bounds.lower >= tau) return true;
    if (bounds.upper < tau) return false;
    if (bounds.exact) return bounds.lower >= tau;
  }

  // Bounds inconclusive: exact fallback, group by group. The lineage
  // engine goes first — on dense groups (many shared values) it finishes
  // where the 2^n subset walk cannot; groups it rejects (> 64 candidates
  // or state blow-up) fall through to the subset DFS.
  if (used_exact_fallback != nullptr) *used_exact_fallback = true;
  DoubleOracle oracle(model);
  double exact = 1.0;
  for (const auto& group : groups) {
    auto lineage = LineageExactSkylineProbability(data, target, group, model);
    if (lineage.ok()) {
      exact *= lineage.value();
      continue;
    }
    if (lineage.status().code() != StatusCode::kResourceExhausted) {
      return lineage.status();
    }
    SKYPREF_ASSIGN_OR_RETURN(
        double group_prob,
        ExactSkylineProbability(data, target, group, oracle));
    exact *= group_prob;
  }
  return exact >= tau;
}

}  // namespace skypref
