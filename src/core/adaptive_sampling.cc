#include "src/core/adaptive_sampling.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/monte_carlo.h"
#include "src/core/sam_bitslice.h"
#include "src/core/sam_parallel.h"
#include "src/util/random.h"

namespace skypref {

namespace {

/// Empirical Bernstein confidence radius for a [0,1]-valued sample of
/// size t with empirical mean p_hat, at confidence delta_t.
double BernsteinRadius(double p_hat, std::uint64_t t, double delta_t) {
  if (t < 2) return 1.0;
  double log_term = std::log(3.0 / delta_t);
  double td = static_cast<double>(t);
  double variance = p_hat * (1.0 - p_hat) * td / (td - 1.0);
  return std::sqrt(2.0 * variance * log_term / td) + 3.0 * log_term / td;
}

}  // namespace

Result<AdaptiveResult> AdaptiveMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, ThreadPool& pool,
    const AdaptiveOptions& options) {
  if (options.epsilon <= 0.0 || options.delta <= 0.0 ||
      options.delta >= 1.0) {
    return Status::InvalidArgument(
        "adaptive sampling needs epsilon > 0 and delta in (0,1)");
  }
  if (options.initial_batch == 0) {
    return Status::InvalidArgument("initial batch must be positive");
  }

  // Hoeffding fallback cap at half the failure budget; the other half is
  // spent by the checkpoint union bound.
  const std::uint64_t cap =
      HoeffdingSampleSize(options.epsilon, options.delta / 2.0);

  Rng seeder(options.seed);
  MonteCarloOptions batch_options;
  std::uint64_t successes = 0;
  AdaptiveResult result;
  std::uint64_t batch = options.initial_batch;
  std::uint64_t checkpoint = 0;

  const bool sliced = options.engine == MonteCarloOptions::Engine::kBitSliced;
  while (true) {
    ++checkpoint;
    std::uint64_t draw = std::min(batch, cap - result.samples);
    if (sliced) {
      // Whole 64-world mask words only: rounding the batch up (never
      // down — a zero-world batch would stall the loop) keeps the
      // bit-sliced engine out of partial-word remainders. This can
      // overshoot the cap by at most 63 worlds, which only tightens the
      // Hoeffding certificate.
      draw = (draw + 63) / 64 * 64;
    }
    batch_options.samples = draw;
    batch_options.seed = seeder.Fork();
    // Each checkpoint batch runs through a block-deterministic parallel
    // engine: worlds fan out over the pool, and the batch's estimate is
    // bit-identical at every thread count, so the adaptive stopping time
    // is too.
    SKYPREF_ASSIGN_OR_RETURN(
        MonteCarloResult mc,
        sliced ? BitSlicedMonteCarloSkylineProbability(
                     data, target, candidates, model, pool, batch_options)
               : BlockMonteCarloSkylineProbability(data, target, candidates,
                                                   model, pool, batch_options));
    successes += mc.skyline_worlds;
    result.samples += mc.samples;
    result.estimate =
        static_cast<double>(successes) / static_cast<double>(result.samples);

    if (result.samples >= cap) {
      result.radius = options.epsilon;  // certified by plain Hoeffding
      result.hit_cap = true;
      return result;
    }
    double delta_k = (options.delta / 2.0) /
                     (static_cast<double>(checkpoint) *
                      static_cast<double>(checkpoint + 1));
    result.radius = BernsteinRadius(result.estimate, result.samples, delta_k);
    if (result.radius <= options.epsilon) return result;
    batch += batch / 2;  // geometric checkpoints keep the union bound small
  }
}

Result<AdaptiveResult> AdaptiveMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const AdaptiveOptions& options) {
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() > 0 ? data.size() - 1 : 0);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  return AdaptiveMonteCarloSkylineProbability(data, target, candidates, model,
                                              pool, options);
}

Result<AdaptiveResult> AdaptiveMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, const AdaptiveOptions& options) {
  ThreadPool pool(0);  // inline execution, no worker threads
  return AdaptiveMonteCarloSkylineProbability(data, target, candidates, model,
                                              pool, options);
}

Result<AdaptiveResult> AdaptiveMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const AdaptiveOptions& options) {
  ThreadPool pool(0);  // inline execution, no worker threads
  return AdaptiveMonteCarloSkylineProbability(data, target, model, pool,
                                              options);
}

}  // namespace skypref
