#include "src/core/lineage_dp.h"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <vector>

#include "src/core/absorption.h"
#include "src/core/partition.h"
#include "src/util/hash.h"

namespace skypref {

namespace {

struct Variable {
  double probability;      // Pr(v < O.j)
  std::uint64_t requires_mask;  // candidates whose domination needs it
};

class LineageEngine {
 public:
  LineageEngine(std::vector<Variable> variables,
                const LineageDpOptions& options)
      : variables_(std::move(variables)), options_(options) {
    // Order variables by how many candidates they touch, descending:
    // deciding a widely shared variable first either kills many
    // candidates at once (false branch) or keeps the state aligned
    // across prefixes, both of which shrink the reachable state space.
    std::stable_sort(variables_.begin(), variables_.end(),
                     [](const Variable& a, const Variable& b) {
                       return std::popcount(a.requires_mask) >
                              std::popcount(b.requires_mask);
                     });
    // suffix_union_[i] = candidates with at least one requirement among
    // variables i..end; an alive candidate outside it is fully satisfied.
    suffix_union_.assign(variables_.size() + 1, 0);
    for (std::size_t i = variables_.size(); i-- > 0;) {
      suffix_union_[i] = suffix_union_[i + 1] | variables_[i].requires_mask;
    }
  }

  Result<double> Run(std::uint64_t initial_alive, LineageDpStats* stats) {
    status_ = Status::OK();
    double survival = Solve(0, initial_alive);
    if (stats != nullptr) {
      stats->variables = variables_.size();
      stats->states = static_cast<std::uint64_t>(memo_.size());
      stats->memo_hits = memo_hits_;
    }
    if (!status_.ok()) return status_;
    return survival;
  }

 private:
  double Solve(std::uint32_t index, std::uint64_t alive) {
    if (!status_.ok()) return 0.0;
    // Some alive candidate has no pending requirement: fully satisfied,
    // O is dominated on every world of this branch.
    if ((alive & ~suffix_union_[index]) != 0) return 0.0;
    // Nobody can dominate anymore; the remaining variables integrate to 1.
    if (alive == 0) return 1.0;

    const std::pair<std::uint64_t, std::uint32_t> key{alive, index};
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++memo_hits_;
      return it->second;
    }
    if (options_.max_states != 0 && memo_.size() >= options_.max_states) {
      status_ = Status::ResourceExhausted(
          "lineage DP exceeded state budget of " +
          std::to_string(options_.max_states));
      return 0.0;
    }

    const Variable& var = variables_[index];
    double p = var.probability;
    double value = 0.0;
    if (p > 0.0) {
      value += p * Solve(index + 1, alive);  // satisfied: all stay alive
    }
    if (p < 1.0) {
      value += (1.0 - p) * Solve(index + 1, alive & ~var.requires_mask);
    }
    memo_.emplace(key, value);
    return value;
  }

  std::vector<Variable> variables_;
  LineageDpOptions options_;
  std::vector<std::uint64_t> suffix_union_;
  std::unordered_map<std::pair<std::uint64_t, std::uint32_t>, double,
                     PairHash>
      memo_;
  std::uint64_t memo_hits_ = 0;
  Status status_;
};

}  // namespace

Result<double> LineageExactSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, const LineageDpOptions& options,
    LineageDpStats* stats) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  if (candidates.size() > 64) {
    return Status::ResourceExhausted(
        "lineage DP supports at most 64 candidates per call; run "
        "absorption + partition first");
  }
  for (ObjectId id : candidates) {
    if (id >= data.size()) {
      return Status::OutOfRange("candidate object out of range");
    }
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
  }

  // Collect the distinct variables and each candidate's requirement set.
  std::unordered_map<std::pair<DimensionId, ValueId>, std::size_t, PairHash>
      index_of;
  std::vector<Variable> variables;
  std::uint64_t initial_alive = 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    bool differs = false;
    for (DimensionId j = 0; j < data.dimensions(); ++j) {
      ValueId v = data.value(candidates[c], j);
      ValueId o = data.value(target, j);
      if (v == o) continue;
      differs = true;
      auto [it, inserted] = index_of.try_emplace({j, v}, variables.size());
      if (inserted) {
        variables.push_back(Variable{model.LessEq(j, v, o), 0});
      }
      variables[it->second].requires_mask |= std::uint64_t{1} << c;
    }
    // A duplicate of the target can never dominate; leave it dead.
    if (differs) initial_alive |= std::uint64_t{1} << c;
  }

  LineageEngine engine(std::move(variables), options);
  return engine.Run(initial_alive, stats);
}

Result<double> LineageExactWithPreprocessing(const Dataset& data,
                                             ObjectId target,
                                             const PreferenceModel& model,
                                             const LineageDpOptions& options,
                                             LineageDpStats* stats) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() - 1);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  candidates = AbsorbCandidates(data, target, candidates);
  double product = 1.0;
  LineageDpStats combined;
  for (const auto& group : PartitionCandidates(data, target, candidates)) {
    LineageDpStats group_stats;
    SKYPREF_ASSIGN_OR_RETURN(
        double survival,
        LineageExactSkylineProbability(data, target, group, model, options,
                                       &group_stats));
    product *= survival;
    combined.variables += group_stats.variables;
    combined.states += group_stats.states;
    combined.memo_hits += group_stats.memo_hits;
  }
  if (stats != nullptr) *stats = combined;
  return product;
}

}  // namespace skypref
