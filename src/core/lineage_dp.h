#ifndef SKYPREF_CORE_LINEAGE_DP_H_
#define SKYPREF_CORE_LINEAGE_DP_H_

/// \file
/// A second exact engine: Shannon expansion over preference variables.
///
/// Algorithm 1 enumerates candidate SUBSETS (2^n terms). But sky(O) is
/// the probability that a monotone DNF over independent binary variables
/// is false — the variables are the distinct pairs "value v beats O.j",
/// and each candidate is the conjunction of its differing dimensions'
/// variables. Probabilistic-database lineage evaluation suggests the
/// dual attack: branch on VARIABLES with memoization.
///
/// State: (next variable index, set of still-alive candidates). A
/// candidate is alive iff every one of its requirements decided so far
/// came out true; the alive set therefore captures the entire past.
/// If an alive candidate has no requirement left among the remaining
/// variables it is fully satisfied — O is dominated, the branch
/// contributes 0. If no candidate is alive, the branch contributes 1.
/// Memoizing on the state collapses the exponential tree wherever
/// different prefixes reach the same survivor set, which on dense data
/// (shared values everywhere) happens constantly:
///
///   uniform n=50, d=5, 10 values/dim: <= 45 variables and ~10^5 DP
///   states, where Algorithm 1 needs 2^49 subsets.
///
/// Complementary, not dominant: with few shared values (block-zipf
/// groups) the variable count ~ n*d and the subset DFS wins; the solver
/// keeps inclusion-exclusion as the default and exposes this engine for
/// dense instances (see bench_lineage).
///
/// Limits: at most 64 candidates per call (the alive set is a u64);
/// preprocess with absorption + partition first, or split larger groups.

#include <cstdint>
#include <span>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/status.h"

namespace skypref {

struct LineageDpOptions {
  /// Abort with ResourceExhausted beyond this many distinct DP states
  /// (0 = unlimited). Each state costs O(1) amortized.
  std::uint64_t max_states = std::uint64_t{1} << 26;
};

struct LineageDpStats {
  std::size_t variables = 0;
  std::uint64_t states = 0;      ///< distinct memoized states
  std::uint64_t memo_hits = 0;
};

/// Exact sky(target) over the given candidates (at most 64; use
/// absorption + partition to get there). Bit-compatible with
/// ExactSkylineProbability up to floating-point associativity.
Result<double> LineageExactSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, const LineageDpOptions& options = {},
    LineageDpStats* stats = nullptr);

/// Det+-style composition: absorption + partition, then the lineage
/// engine per group (groups above 64 candidates fail with
/// ResourceExhausted rather than silently degrading).
Result<double> LineageExactWithPreprocessing(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const LineageDpOptions& options = {}, LineageDpStats* stats = nullptr);

}  // namespace skypref

#endif  // SKYPREF_CORE_LINEAGE_DP_H_
