#include "src/core/absorption.h"

#include <unordered_map>

#include "src/util/hash.h"

namespace skypref {

bool Absorbs(const Dataset& data, ObjectId target, ObjectId absorber,
             ObjectId absorbed) {
  if (absorber == absorbed) return false;
  bool differs_somewhere = false;
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    if (data.value(absorber, j) == data.value(target, j)) continue;
    differs_somewhere = true;
    if (data.value(absorbed, j) != data.value(absorber, j)) return false;
  }
  return differs_somewhere;
}

std::vector<ObjectId> AbsorbCandidates(const Dataset& data, ObjectId target,
                                       std::span<const ObjectId> candidates,
                                       AbsorptionStats* stats) {
  const DimensionId d = static_cast<DimensionId>(data.dimensions());

  // Posting lists: (dim, value) -> candidate positions using that value.
  std::unordered_map<std::pair<DimensionId, ValueId>, std::vector<std::size_t>,
                     PairHash>
      postings;
  for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
    for (DimensionId j = 0; j < d; ++j) {
      postings[{j, data.value(candidates[pos], j)}].push_back(pos);
    }
  }

  std::vector<bool> removed(candidates.size(), false);
  for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
    if (removed[pos]) continue;  // absorbed candidates never absorb others
    const ObjectId absorber = candidates[pos];

    // Gamma = dimensions where the absorber differs from the target; pick
    // the dimension with the shortest posting list to drive the scan.
    DimensionId best_dim = d;
    std::size_t best_size = static_cast<std::size_t>(-1);
    bool differs_somewhere = false;
    for (DimensionId j = 0; j < d; ++j) {
      ValueId v = data.value(absorber, j);
      if (v == data.value(target, j)) continue;
      differs_somewhere = true;
      auto it = postings.find({j, v});
      std::size_t size = it == postings.end() ? 0 : it->second.size();
      if (size < best_size) {
        best_size = size;
        best_dim = j;
      }
    }
    if (!differs_somewhere) {
      // The candidate duplicates the target on all dimensions; it cannot
      // strictly dominate and is dropped outright.
      removed[pos] = true;
      continue;
    }

    const auto& list = postings[{best_dim, data.value(absorber, best_dim)}];
    for (std::size_t other_pos : list) {
      if (other_pos == pos || removed[other_pos]) continue;
      if (Absorbs(data, target, absorber, candidates[other_pos])) {
        removed[other_pos] = true;
      }
    }
  }

  std::vector<ObjectId> survivors;
  survivors.reserve(candidates.size());
  for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
    if (!removed[pos]) survivors.push_back(candidates[pos]);
  }
  if (stats != nullptr) {
    stats->input_candidates = candidates.size();
    stats->absorbed = candidates.size() - survivors.size();
  }
  return survivors;
}

ValuePostings::ValuePostings(const Dataset& data) {
  for (ObjectId id = 0; id < data.size(); ++id) {
    for (DimensionId j = 0; j < data.dimensions(); ++j) {
      postings_[{j, data.value(id, j)}].push_back(id);
    }
  }
}

std::vector<ObjectId> AbsorbAllCandidatesIndexed(const Dataset& data,
                                                 ObjectId target,
                                                 const ValuePostings& postings,
                                                 AbsorptionStats* stats) {
  const DimensionId d = static_cast<DimensionId>(data.dimensions());
  const ObjectId n = data.size();
  std::vector<bool> removed(n, false);
  removed[target] = true;  // the target is never its own candidate

  // Same pass as AbsorbCandidates; ascending ObjectId order is ascending
  // candidate-position order for the all-candidates list.
  for (ObjectId id = 0; id < n; ++id) {
    if (removed[id]) continue;

    DimensionId best_dim = d;
    std::size_t best_size = static_cast<std::size_t>(-1);
    bool differs_somewhere = false;
    for (DimensionId j = 0; j < d; ++j) {
      ValueId v = data.value(id, j);
      if (v == data.value(target, j)) continue;
      differs_somewhere = true;
      std::size_t size = postings.list(j, v).size();
      if (size < best_size) {
        best_size = size;
        best_dim = j;
      }
    }
    if (!differs_somewhere) {
      removed[id] = true;  // duplicates the target; cannot dominate
      continue;
    }

    for (ObjectId other : postings.list(best_dim, data.value(id, best_dim))) {
      if (other == id || removed[other]) continue;
      if (Absorbs(data, target, id, other)) removed[other] = true;
    }
  }

  std::vector<ObjectId> survivors;
  survivors.reserve(n - 1);
  for (ObjectId id = 0; id < n; ++id) {
    if (!removed[id]) survivors.push_back(id);
  }
  if (stats != nullptr) {
    stats->input_candidates = n - 1;
    stats->absorbed = (n - 1) - survivors.size();
  }
  return survivors;
}

}  // namespace skypref
