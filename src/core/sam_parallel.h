#ifndef SKYPREF_CORE_SAM_PARALLEL_H_
#define SKYPREF_CORE_SAM_PARALLEL_H_

/// \file
/// The block-deterministic parallel Monte-Carlo engine ("Sam" over a
/// thread pool) and the world-shared batch estimator.
///
/// Three layers on top of the serial estimator of monte_carlo.h:
///
///  1. Flat sampler — the instance is flattened once per solve, like the
///     exact engine's FlatInstance: the distinct (dim, value) preference
///     variables become a dense pair table and each candidate carries a
///     CSR slice of pair ids. Each pair's Bernoulli parameter is
///     precomputed as a 64-bit integer threshold t = p * 2^64, so the
///     inner loop decides one preference with a single
///     `NextUint64() < t` compare — no double conversion per draw.
///     (t = UINT64_MAX is reserved as the "p >= 1" sentinel: for any
///     double p < 1, p * 2^64 <= 2^64 - 2^11, so the sentinel is never
///     produced by rounding and p = 1 stays exact, matching
///     Rng::NextBernoulli at both endpoints.)
///
///  2. Block-deterministic parallelism — the m worlds split into fixed
///     blocks of MonteCarloOptions::block_size; block b draws from its
///     own Rng seeded with SplitSeed(seed, b) (a SplitMix64 round over
///     seed ^ block_index) and blocks fan out over the ThreadPool.
///     Counts reduce in block-index order, so the estimate is
///     bit-identical at 0/1/2/8 threads — the repo's established
///     reduction contract, with block_size part of the numeric contract
///     exactly like ParallelOptions::sample_chunks.
///
///     Truncation contract: a deadline (or the "sampler.block"
///     failpoint) truncates to a deterministic BLOCK PREFIX. Let T be
///     the first block that did not complete; blocks after T are
///     dropped even when they finished first — a completed later block
///     never leaks into the estimate, so any two runs truncating at the
///     same T agree bit for bit, and a pre-expired deadline truncates
///     at the same T at every thread count. Block 0 is special: it
///     polls the deadline at the serial engine's cadence (every 64
///     worlds / every few thousand pair draws) and keeps its partial
///     prefix, so a truncated run always carries at least
///     min(64, samples) worlds, like the serial engine. Cancellation
///     aborts the whole estimate with Status::Cancelled, as everywhere.
///
///  3. Batch Sam — BatchMonteCarloSkylineProbabilities estimates EVERY
///     object's skyline probability from ONE stream of shared worlds:
///     per world, each distinct (dim, value-pair) orientation is
///     sampled once (ternary, as in all_worlds.h, so dominance checks
///     between arbitrary objects stay mutually consistent) and all
///     targets are evaluated against it. Preprocessing reuses the batch
///     exact solver's machinery — ValuePostings-driven absorption,
///     PartitionWorkspace-recycled partitioning — and each target
///     checks its possible dominators in descending dominance-
///     probability order (Algorithm 2 line 1). This turns the
///     O(targets x worlds x pairs) draw count of a per-target loop into
///     O(worlds x distinct pairs) plus cheap per-target outcome checks;
///     the saving is measured in pair_draws (bench_hotpath's sam
///     section). Blocks parallelize exactly as in layer 2, each with a
///     private memo table, so batch estimates are also bit-identical
///     per thread count.
///
/// Guarantee: each per-target estimate individually obeys Theorem 2
/// (it is an average of i.i.d. world indicators), so
/// HoeffdingSampleSize(epsilon, delta) worlds give each target an
/// (epsilon, delta) marginal guarantee; simultaneous coverage of all n
/// targets needs the union-bound count of AllWorldsSampleSize.

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/cancel.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace skypref {

/// Sam over \p pool with the block-deterministic engine described above.
/// Bit-identical for every thread count of \p pool (including an inline
/// 0-thread pool), per (options.seed, options.block_size). Requires
/// options.block_size >= 1; options.engine is ignored (this IS the
/// kBlock engine).
Result<MonteCarloResult> BlockMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, ThreadPool& pool,
    const MonteCarloOptions& options = {});

/// Convenience wrapper: all objects but the target.
Result<MonteCarloResult> BlockMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const MonteCarloOptions& options = {});

/// Diagnostics of one batch all-objects estimation.
struct BatchSamStats {
  std::size_t targets = 0;
  std::size_t absorbed = 0;       ///< candidates dropped, summed over targets
  std::size_t groups = 0;         ///< independence groups, summed over targets
  std::size_t largest_group = 0;  ///< across all targets
  /// Distinct ternary (dim, value-pair) orientation variables interned —
  /// the upper bound on preference draws per world, shared by ALL
  /// targets.
  std::size_t distinct_pairs = 0;
  /// Possible dominators dropped because some required orientation has
  /// probability exactly zero (they can never dominate in any world).
  std::size_t pruned_candidates = 0;
  std::uint64_t requested_samples = 0;
  /// Worlds actually counted (the deterministic block prefix). Each
  /// estimate certifies HoeffdingEpsilon(samples, delta) marginally.
  std::uint64_t samples = 0;
  /// Ternary preference draws across all counted worlds — compare with
  /// the summed MonteCarloResult::pair_draws of a per-target loop to see
  /// the world-sharing win.
  std::uint64_t pair_draws = 0;
  bool truncated = false;
};

/// The Sam analog of BatchExactSkylineProbabilities: estimates
/// sky(target) for EVERY object by shared-world block sampling (layer 3
/// above). Element i estimates sky(i) within options.monte_carlo's
/// (epsilon, delta) marginally. Deterministic per (seed, block_size) and
/// bit-identical for every thread count of \p pool; deadline truncation
/// keeps the block-prefix estimates with stats->truncated set.
/// options.exact is unused; options.preprocess toggles absorption +
/// partition exactly as in the exact batch solver.
Result<std::vector<double>> BatchMonteCarloSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const SolverOptions& options = {}, BatchSamStats* stats = nullptr);

// -------------------------------------------------------------------------
// Implementation helpers (exposed for tests)
// -------------------------------------------------------------------------

namespace internal {

/// The integer Bernoulli cut of probability \p p: a uniform uint64 draw
/// is a success iff ThresholdHit(draw, BernoulliThreshold(p)).
/// UINT64_MAX is the "always" sentinel (p >= 1); it cannot be produced
/// by rounding a double p < 1, because p * 2^64 <= 2^64 - 2^11 then.
inline std::uint64_t BernoulliThreshold(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(std::ldexp(p, 64));
}

inline bool ThresholdHit(std::uint64_t draw, std::uint64_t threshold) {
  return draw < threshold ||
         threshold == std::numeric_limits<std::uint64_t>::max();
}

}  // namespace internal

}  // namespace skypref

#endif  // SKYPREF_CORE_SAM_PARALLEL_H_
