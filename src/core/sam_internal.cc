#include "src/core/sam_internal.h"

#include <cstddef>
#include <unordered_map>
#include <utility>

#include "src/core/absorption.h"
#include "src/core/partition.h"
#include "src/core/sam_parallel.h"
#include "src/util/check.h"
#include "src/util/hash.h"

namespace skypref {
namespace internal {

FlatSamInstance BuildFlatSamInstance(const Dataset& data, ObjectId target,
                                     std::span<const ObjectId> candidates,
                                     const PreferenceModel& model) {
  // Built serially before any block worker starts; the instance is then
  // read-only shared state across threads (const-shared, no mutex).
  const DimensionId d = static_cast<DimensionId>(data.dimensions());
  FlatSamInstance inst;
  std::unordered_map<std::pair<DimensionId, ValueId>, std::uint32_t, PairHash>
      pair_index;
  inst.offsets.reserve(candidates.size() + 1);
  inst.offsets.push_back(0);
  for (ObjectId id : candidates) {
    for (DimensionId j = 0; j < d; ++j) {
      ValueId v = data.value(id, j);
      ValueId o = data.value(target, j);
      if (v == o) continue;
      auto [it, inserted] = pair_index.try_emplace(
          {j, v}, static_cast<std::uint32_t>(inst.thresholds.size()));
      if (inserted) {
        double less_eq = model.LessEq(j, v, o);
        // Every threshold the sampler will ever compare against encodes a
        // model probability; catch a broken model before it skews
        // thousands of worlds.
        SKYPREF_DCHECK_PROB(less_eq);
        inst.thresholds.push_back(BernoulliThreshold(less_eq));
      }
      inst.pair_ids.push_back(it->second);
    }
    inst.offsets.push_back(static_cast<std::uint32_t>(inst.pair_ids.size()));
  }
  return inst;
}

namespace {

struct TernaryPairKey {
  DimensionId dim;
  ValueId lo;
  ValueId hi;
  bool operator==(const TernaryPairKey& o) const {
    return dim == o.dim && lo == o.lo && hi == o.hi;
  }
};

struct TernaryPairKeyHash {
  std::size_t operator()(const TernaryPairKey& k) const {
    std::size_t h = HashCombine(std::size_t{0x5a3ba7c4}, k.dim);
    h = HashCombine(h, k.lo);
    return HashCombine(h, k.hi);
  }
};

}  // namespace

BatchPlan BuildBatchPlan(const Dataset& data, const PreferenceModel& model,
                         ThreadPool& pool, const SolverOptions& options,
                         BatchSamStats& stats) {
  const std::size_t n = data.size();
  stats.targets = n;

  // Phase A: absorption + partition per target, sharing the global
  // posting lists, exactly as in the batch exact solver. Absorption is
  // pure win for the sampler too — an absorbed candidate's dominance
  // event is contained in its absorber's, so dropping it changes no
  // world's verdict.
  std::vector<std::vector<std::vector<ObjectId>>> groups(n);
  if (options.preprocess) {
    ValuePostings postings(data);
    constexpr std::size_t kChunk = 16;
    const std::size_t chunks = (n + kChunk - 1) / kChunk;
    pool.ParallelFor(chunks, [&](std::size_t c) {
      PartitionWorkspace workspace;
      const std::size_t begin = c * kChunk;
      const std::size_t end = std::min(n, begin + kChunk);
      for (ObjectId t = begin; t < end; ++t) {
        std::vector<ObjectId> candidates =
            AbsorbAllCandidatesIndexed(data, t, postings);
        groups[t] = PartitionCandidates(
            data, t, std::span<const ObjectId>(candidates), workspace);
      }
    });
  } else {
    for (ObjectId t = 0; t < n; ++t) {
      std::vector<ObjectId> candidates;
      candidates.reserve(n - 1);
      for (ObjectId id = 0; id < n; ++id) {
        if (id != t) candidates.push_back(id);
      }
      groups[t].push_back(std::move(candidates));
    }
  }
  for (ObjectId t = 0; t < n; ++t) {
    std::size_t after = 0;
    for (const auto& group : groups[t]) {
      after += group.size();
      stats.largest_group = std::max(stats.largest_group, group.size());
    }
    stats.groups += groups[t].size();
    stats.absorbed += (n - 1) - after;
  }

  // Phase B: one global table of ternary orientation variables, interned
  // by canonical (dim, lo, hi), shared by every target's plan — the
  // world-sharing that turns targets x worlds x pairs draws into
  // worlds x distinct-pairs. Serial: this interning IS the work being
  // deduplicated across targets.
  const DimensionId d = static_cast<DimensionId>(data.dimensions());
  BatchPlan plan;
  std::unordered_map<TernaryPairKey, std::uint32_t, TernaryPairKeyHash>
      pair_index;
  plan.target_begin.reserve(n + 1);
  plan.target_begin.push_back(0);
  plan.req_offsets.push_back(0);
  struct PlanCandidate {
    double dominance = 1.0;
    std::vector<std::uint32_t> reqs;
  };
  std::vector<PlanCandidate> per_target;
  for (ObjectId t = 0; t < n; ++t) {
    per_target.clear();
    for (const auto& group : groups[t]) {
      for (ObjectId c : group) {
        PlanCandidate cand;
        bool possible = true;
        for (DimensionId j = 0; j < d && possible; ++j) {
          ValueId vc = data.value(c, j);
          ValueId vt = data.value(t, j);
          if (vc == vt) continue;
          ValueId lo = std::min(vc, vt);
          ValueId hi = std::max(vc, vt);
          PrefPair pair = model.GetPair(j, lo, hi);
          double toward_candidate = vc == lo ? pair.less : pair.greater;
          // Exact-zero test: Pr = 0 means the orientation can never be
          // drawn, so the candidate is pruned from the sampling plan.
          if (toward_candidate == 0.0) {  // skypref-lint: allow(float-eq)
            possible = false;
            break;
          }
          cand.dominance *= toward_candidate;
          auto [it, inserted] = pair_index.try_emplace(
              TernaryPairKey{j, lo, hi},
              static_cast<std::uint32_t>(plan.cut_lo.size()));
          if (inserted) {
            SKYPREF_DCHECK_PROB(pair.less);
            SKYPREF_DCHECK_PROB(pair.less + pair.greater);
            plan.cut_lo.push_back(BernoulliThreshold(pair.less));
            plan.cut_hi.push_back(BernoulliThreshold(
                std::min(pair.less + pair.greater, 1.0)));
          }
          cand.reqs.push_back((it->second << 1) |
                              (vc == hi ? 1u : 0u));
        }
        if (!possible) {
          ++stats.pruned_candidates;
          continue;
        }
        // A candidate with no differing dimension would duplicate the
        // target; Dataset::Validate guarantees that cannot happen.
        if (!cand.reqs.empty()) per_target.push_back(std::move(cand));
      }
    }
    // Algorithm 2 line 1 per target: most probable dominators first.
    std::stable_sort(per_target.begin(), per_target.end(),
                     [](const PlanCandidate& a, const PlanCandidate& b) {
                       return a.dominance > b.dominance;
                     });
    for (PlanCandidate& cand : per_target) {
      plan.reqs.insert(plan.reqs.end(), cand.reqs.begin(), cand.reqs.end());
      plan.req_offsets.push_back(static_cast<std::uint32_t>(plan.reqs.size()));
    }
    plan.target_begin.push_back(
        static_cast<std::uint32_t>(plan.req_offsets.size() - 1));
  }
  stats.distinct_pairs = plan.pair_count();
  return plan;
}

}  // namespace internal
}  // namespace skypref
