#ifndef SKYPREF_CORE_SOLVER_H_
#define SKYPREF_CORE_SOLVER_H_

/// \file
/// The public facade: Det / Det+ / Sam / Sam+ (Table 2 of the paper).
///
/// SkylineSolver composes the building blocks: absorption and partition
/// preprocessing (Section 5) in front of either the exact inclusion-
/// exclusion solver (Algorithm 1) or the Monte-Carlo estimator
/// (Algorithm 2). With preprocessing enabled the solver first drops
/// absorbed candidates, then splits the rest into independent groups and
/// multiplies the per-group results (Theorem 4).
///
/// Error budget under partitioning: if group survival probabilities
/// p_t in [0,1] are each estimated within eps_t, the product is within
/// sum_t eps_t (telescoping |prod a - prod b| <= sum |a_t - b_t|). Sam+
/// therefore splits epsilon and delta evenly across the groups it
/// actually samples; singleton groups are computed exactly for free.

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/exact.h"
#include "src/core/monte_carlo.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/rational.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace skypref {

struct SolverOptions {
  /// Run absorption + partition first (the "+" algorithm variants).
  bool preprocess = true;
  /// Batch solves only: give each target that failed on a TRANSIENT
  /// fault (allocation failure, injected scheduler fault — never a blown
  /// budget or deadline, which fail identically on retry) one serial
  /// re-dispatch against the remaining shared deadline before stamping
  /// it NaN. Retry order is ascending ObjectId and salvaged values are
  /// bit-identical to their fault-free values; see
  /// BatchExactSkylineProbabilities.
  bool retry_failed_targets = true;
  ExactOptions exact;
  MonteCarloOptions monte_carlo;
};

/// Diagnostics of one solve, for benches and the CLI.
struct SolveStats {
  std::size_t candidates = 0;         ///< before preprocessing
  std::size_t after_absorption = 0;   ///< == candidates when preprocess off
  std::size_t groups = 0;             ///< 1 when preprocess off
  std::size_t largest_group = 0;
  /// Size of every independence group, in partition order; drives the
  /// longest-first scheduling diagnostics of the parallel solvers.
  std::vector<std::size_t> group_sizes;
  std::uint64_t subsets_visited = 0;  ///< exact solves
  std::uint64_t samples_drawn = 0;    ///< Monte-Carlo solves
  std::uint64_t pair_draws = 0;       ///< Monte-Carlo solves
};

class SkylineSolver {
 public:
  /// Validates the dataset (non-empty, no duplicate objects) and binds it
  /// with the preference model. Both must outlive the solver.
  static Result<SkylineSolver> Create(const Dataset& data,
                                      const PreferenceModel& model);

  /// Det / Det+: exact sky(target).
  Result<double> Exact(ObjectId target, const SolverOptions& options = {},
                       SolveStats* stats = nullptr) const;

  /// Sam / Sam+: (epsilon, delta)-approximate sky(target). Dispatches on
  /// options.monte_carlo.engine; the kBlock engine runs over an inline
  /// pool here (bit-identical to the pool overload at any thread count).
  Result<double> MonteCarlo(ObjectId target, const SolverOptions& options = {},
                            SolveStats* stats = nullptr) const;

  /// Sam / Sam+ over \p pool: with the kBlock engine the per-group world
  /// blocks fan out across the pool's workers; estimates stay
  /// bit-identical to the poolless overload at every thread count (the
  /// kSerial engine ignores the pool entirely).
  Result<double> MonteCarlo(ObjectId target, const SolverOptions& options,
                            ThreadPool& pool,
                            SolveStats* stats = nullptr) const;

  /// The independent-dominance baseline ("Sac"), for comparison only.
  Result<double> Independent(ObjectId target) const;

  const Dataset& data() const { return *data_; }
  const PreferenceModel& model() const { return *model_; }

 private:
  SkylineSolver(const Dataset& data, const PreferenceModel& model)
      : data_(&data), model_(&model) {}

  std::vector<ObjectId> AllCandidates(ObjectId target) const;

  /// Shared Sam body; \p pool is null for the poolless overload (the
  /// kBlock engine then runs inline).
  Result<double> MonteCarloImpl(ObjectId target, const SolverOptions& options,
                                ThreadPool* pool, SolveStats* stats) const;

  const Dataset* data_;
  const PreferenceModel* model_;
};

/// Diagnostics of one batch all-objects solve.
struct BatchExactStats {
  std::size_t targets = 0;
  std::size_t absorbed = 0;       ///< candidates dropped, summed over targets
  std::size_t groups = 0;         ///< independence groups, summed over targets
  std::size_t largest_group = 0;  ///< across all targets
  /// Distinct (dim, value-pair) preference probabilities computed once
  /// and shared by every target's flattened pair table.
  std::size_t distinct_pair_probs = 0;
  std::uint64_t subsets_visited = 0;  ///< summed over all exact solves
  /// Per-target outcome, indexed by ObjectId. A target that exhausted
  /// its budget carries its ResourceExhausted here (and NaN in the
  /// result vector) while every other target keeps its exact value —
  /// one heavy target no longer aborts the whole batch. Size targets
  /// after a successful call.
  std::vector<Status> target_status;
  /// Number of non-OK entries in target_status.
  std::size_t failed_targets = 0;
  /// Targets re-dispatched by the retry salvage pass (transient failures
  /// only; see SolverOptions::retry_failed_targets).
  std::size_t retried_targets = 0;
  /// Retried targets whose re-dispatch succeeded; these carry their
  /// bit-identical exact value and an OK target_status, not NaN.
  std::size_t salvaged_targets = 0;
};

/// Exact sky(target) for EVERY object of the dataset (the all-objects
/// query shape of batch skyline-probability evaluation). Shares the
/// preprocessing across targets instead of redoing it per solve:
///
///  * the (dim, value) -> objects posting lists driving absorption are
///    built once (the dominance-candidate adjacency);
///  * the distinct preference probabilities Pr(a <= b) feeding the
///    flattened pair tables are computed once and reused by every
///    target whose table needs them;
///  * per-target solves are scheduled across \p pool largest-work-first
///    so a heavy target cannot serialize the tail.
///
/// Element i of the result is bit-identical to SkylineSolver::Exact(i)
/// with the same options, for every thread count of \p pool.
/// options.exact.max_subsets bounds each group solve as usual, but
/// options.exact.time_limit_seconds is converted into ONE deadline shared
/// by the whole batch.
///
/// Degradation contract: a target whose solve exhausts its budget or
/// deadline does NOT abort the batch. Its result slot is NaN, its Status
/// is recorded in BatchExactStats::target_status, and every other target
/// still receives its bit-identical exact value (salvage the failures
/// with the resilient ladder, src/core/resilient.h). Before stamping
/// NaN, targets that failed on TRANSIENT faults — allocation failure,
/// injected scheduler faults, anything ResourceExhausted that is not a
/// deterministic budget/deadline exhaustion — get one re-dispatch in
/// ascending ObjectId order against the remaining shared deadline
/// (SolverOptions::retry_failed_targets); salvaged values are
/// bit-identical to their fault-free values. The call itself fails only
/// on invalid input or when options.exact.cancel is tripped —
/// cancellation abandons the whole query with Status::Cancelled.
Result<std::vector<double>> BatchExactSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const SolverOptions& options = {}, BatchExactStats* stats = nullptr);

/// Sum of every object's exact skyline probability — the expected number
/// of skyline objects under the uncertain preferences (by linearity of
/// expectation). Runs BatchExactSkylineProbabilities over \p pool (see
/// above for budget/deadline semantics).
Result<double> ExpectedSkylineCardinality(const Dataset& data,
                                          const PreferenceModel& model,
                                          ThreadPool& pool,
                                          const SolverOptions& options = {});

/// Single-threaded convenience overload (an inline 0-thread pool);
/// bit-identical to the parallel overload at any thread count.
Result<double> ExpectedSkylineCardinality(const Dataset& data,
                                          const PreferenceModel& model,
                                          const SolverOptions& options = {});

/// Exact sky(target) in rational arithmetic — the bit-exact reference used
/// by the test suite. \p preprocess toggles absorption + partition, whose
/// product recombination is also exact in this mode.
Result<Rational> ExactSkylineProbabilityRational(
    const Dataset& data, ObjectId target, const RationalPreferenceModel& model,
    bool preprocess = false, const ExactOptions& options = {});

}  // namespace skypref

#endif  // SKYPREF_CORE_SOLVER_H_
