#include "src/core/incremental.h"

#include <algorithm>
#include <set>

#include "src/core/absorption.h"

namespace skypref {

namespace {

std::uint64_t ValueKey(DimensionId dim, ValueId value) {
  return (static_cast<std::uint64_t>(dim) << 32) | value;
}

}  // namespace

IncrementalSkylineProbability::IncrementalSkylineProbability(
    std::vector<ValueId> target_values, const PreferenceModel& model,
    ExactOptions group_options)
    : model_(model),
      group_options_(group_options),
      data_(target_values.size()) {
  data_.Append(target_values).CheckOK();
}

std::size_t IncrementalSkylineProbability::FindRoot(std::size_t slot) const {
  while (parent_[slot] != slot) slot = parent_[slot];
  return slot;
}

double IncrementalSkylineProbability::probability() const {
  double product = 1.0;
  for (const Group& group : groups_) {
    if (!group.merged_away) product *= group.survival;
  }
  return product;
}

Result<double> IncrementalSkylineProbability::AddCandidate(
    std::span<const ValueId> values) {
  if (values.size() != data_.dimensions()) {
    return Status::InvalidArgument(
        "candidate has " + std::to_string(values.size()) +
        " values, expected " + std::to_string(data_.dimensions()));
  }
  // Reject duplicates of the target or of any previously added candidate
  // (including absorbed ones — they are still rows of data_).
  for (ObjectId row = 0; row < data_.size(); ++row) {
    bool same = true;
    for (DimensionId j = 0; j < data_.dimensions(); ++j) {
      if (data_.value(row, j) != values[j]) {
        same = false;
        break;
      }
    }
    if (same) {
      return Status::AlreadyExists(
          row == 0 ? "candidate duplicates the target object"
                   : "candidate duplicates a previously added object");
    }
  }

  // Groups this candidate touches (shared non-target values).
  std::set<std::size_t> touched_roots;
  for (DimensionId j = 0; j < data_.dimensions(); ++j) {
    if (values[j] == data_.value(0, j)) continue;
    auto it = value_to_group_.find(ValueKey(j, values[j]));
    if (it != value_to_group_.end()) touched_roots.insert(FindRoot(it->second));
  }

  // Tentative merged member list (committed only on success).
  std::vector<ObjectId> members;
  for (std::size_t root : touched_roots) {
    const auto& group_members = groups_[root].members;
    members.insert(members.end(), group_members.begin(), group_members.end());
  }
  const ObjectId new_row = data_.size();
  SKYPREF_RETURN_IF_ERROR(data_.Append(values));
  members.push_back(new_row);

  std::vector<ObjectId> survivors = AbsorbCandidates(data_, 0, members);
  DoubleOracle oracle(model_);
  auto survival =
      ExactSkylineProbability(data_, 0, survivors, oracle, group_options_);
  if (!survival.ok()) {
    // Roll back the appended row is impossible on Dataset; instead keep
    // the row but leave all bookkeeping untouched — the row is inert.
    // Future duplicate checks still see it, which is correct.
    return survival.status();
  }

  // Commit: create the merged group, retire the touched ones.
  Group merged;
  merged.members = std::move(survivors);
  merged.survival = survival.value();
  std::size_t new_slot = groups_.size();
  groups_.push_back(std::move(merged));
  parent_.push_back(new_slot);
  for (std::size_t root : touched_roots) {
    groups_[root].merged_away = true;
    groups_[root].members.clear();
    parent_[root] = new_slot;
    --live_groups_;
  }
  ++live_groups_;
  // Index every non-target value of the merged group's survivors AND of
  // the new candidate (even if absorbed, its values still couple future
  // candidates to this group — absorption removed it from the solve, not
  // from the value space).
  for (ObjectId row : groups_[new_slot].members) {
    for (DimensionId j = 0; j < data_.dimensions(); ++j) {
      if (data_.value(row, j) == data_.value(0, j)) continue;
      value_to_group_[ValueKey(j, data_.value(row, j))] = new_slot;
    }
  }
  for (DimensionId j = 0; j < data_.dimensions(); ++j) {
    if (values[j] == data_.value(0, j)) continue;
    value_to_group_[ValueKey(j, values[j])] = new_slot;
  }

  live_candidates_ = 0;
  for (const Group& group : groups_) {
    if (!group.merged_away) live_candidates_ += group.members.size();
  }
  ++exact_solves_;
  return probability();
}

}  // namespace skypref
