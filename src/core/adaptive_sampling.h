#ifndef SKYPREF_CORE_ADAPTIVE_SAMPLING_H_
#define SKYPREF_CORE_ADAPTIVE_SAMPLING_H_

/// \file
/// Monte-Carlo estimation with adaptive (data-dependent) stopping.
///
/// Theorem 2's Hoeffding bound fixes the sample count in advance:
/// m = ln(2/delta) / (2 eps^2) regardless of the answer. But a Bernoulli
/// with mean near 0 or 1 has tiny variance, and the empirical Bernstein
/// inequality (Maurer & Pontil 2009; EBStop of Mnih et al. 2008) then
/// certifies the same (eps, delta) guarantee after far fewer samples:
///
///   |p_hat - p| <= sqrt(2 V_hat ln(3/delta_t) / t) + 3 ln(3/delta_t) / t
///
/// with V_hat the empirical variance. Skyline probabilities in practice
/// cluster near 0 (most objects are dominated almost surely), so the
/// adaptive stop typically saves an order of magnitude of worlds — the
/// natural upgrade of Algorithm 2, evaluated in bench_adaptive.
///
/// Each checkpoint batch draws its worlds through the block-deterministic
/// parallel engine (src/core/sam_parallel.h), so batches fan out over a
/// caller-supplied ThreadPool; the poolless overloads run the same engine
/// inline and are bit-identical to the pool overloads at any thread
/// count.
///
/// Guarantee accounting: the checkpoint tests spend delta/2 via a union
/// bound over geometric checkpoints (delta_k = (delta/2) / (k (k+1))),
/// and a final fixed-size fallback at HoeffdingSampleSize(eps, delta/2)
/// spends the other delta/2, so the overall failure probability is at
/// most delta and the estimator is never asymptotically worse than the
/// fixed-size one.

#include <cstdint>
#include <span>

#include "src/core/monte_carlo.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace skypref {

struct AdaptiveOptions {
  double epsilon = 0.01;
  double delta = 0.01;
  std::uint64_t seed = 0xadadadadULL;
  /// First checkpoint; later checkpoints grow geometrically (x1.5).
  std::uint64_t initial_batch = 128;
  /// Which parallel engine draws each checkpoint batch: kBlock (the
  /// scalar block engine, the historical default — existing streams are
  /// unchanged) or kBitSliced (64 worlds per word; batch sizes are then
  /// rounded UP to multiples of 64 so no batch ends mid-word, which may
  /// overshoot the Hoeffding cap by at most 63 worlds). kSerial is
  /// treated as kBlock.
  MonteCarloOptions::Engine engine = MonteCarloOptions::Engine::kBlock;
};

struct AdaptiveResult {
  double estimate = 0.0;
  /// Worlds actually sampled.
  std::uint64_t samples = 0;
  /// Certified radius at the stopping time (<= epsilon).
  double radius = 0.0;
  /// True when the Hoeffding fallback cap was hit (the bound still
  /// holds; the adaptive rule just never fired earlier).
  bool hit_cap = false;
};

/// Estimates sky(target) with |estimate - sky| <= epsilon with
/// probability at least 1 - delta, stopping as early as the empirical
/// Bernstein bound allows. Checkpoint batches run over \p pool.
Result<AdaptiveResult> AdaptiveMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, ThreadPool& pool,
    const AdaptiveOptions& options = {});

/// Convenience wrapper over \p pool: all objects but the target.
Result<AdaptiveResult> AdaptiveMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const AdaptiveOptions& options = {});

/// Poolless overload (inline execution); bit-identical to the pool
/// overload at any thread count.
Result<AdaptiveResult> AdaptiveMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, const AdaptiveOptions& options = {});

/// Poolless convenience wrapper: all objects but the target.
Result<AdaptiveResult> AdaptiveMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const AdaptiveOptions& options = {});

}  // namespace skypref

#endif  // SKYPREF_CORE_ADAPTIVE_SAMPLING_H_
