#include "src/core/brute_force.h"

namespace skypref {

Result<double> BruteForceSkylineProbability(const Dataset& data,
                                            ObjectId target,
                                            const PreferenceModel& model,
                                            const BruteForceOptions& options,
                                            BruteForceStats* stats) {
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() > 0 ? data.size() - 1 : 0);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  return BruteForceSkylineProbability(data, target, candidates,
                                      DoubleOracle(model), options, stats);
}

}  // namespace skypref
