#ifndef SKYPREF_CORE_BOUNDS_H_
#define SKYPREF_CORE_BOUNDS_H_

/// \file
/// Certified deterministic bounds on the skyline probability.
///
/// Section 4 of the paper rejects truncating the inclusion-exclusion
/// series (approximation "A2") because the truncated sum is not even a
/// probability. The sound version of the same idea are the Bonferroni
/// inequalities: writing S_k for the level-k term of Eq. 4,
///
///     P(union e_i) <= S_1               P(union e_i) >= S_1 - S_2
///     P(union e_i) <= S_1 - S_2 + S_3   ...
///
/// so truncating sky(O) = 1 - P(union e_i) after a FULL odd level yields
/// a certified lower bound and after a full even level a certified upper
/// bound. Levels cost C(n, k) terms, so the bounds are cheap for small k
/// and tighten as k grows, reaching the exact value at k = n.
///
/// BoundedSkylineProbability computes the tightest interval a term
/// budget allows. DecideThreshold answers "is sky(O) >= tau?" by
/// escalating levels until the interval excludes tau, falling back to
/// the exact solver when the budget is exhausted — a certified
/// threshold test that is often far cheaper than a full exact solve, and
/// the engine behind the exact probabilistic-skyline query
/// (src/core/prob_skyline.h).

#include <cstdint>
#include <span>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/status.h"

namespace skypref {

struct BoundsOptions {
  /// Highest inclusion-exclusion level to complete (clamped to n).
  std::size_t max_level = 3;
  /// Abort level escalation once this many joint probabilities have been
  /// computed (0 = unlimited). A level is only used if fully computed.
  std::uint64_t term_budget = 1u << 20;
};

struct SkylineBounds {
  double lower = 0.0;
  double upper = 1.0;
  /// Deepest fully-computed inclusion-exclusion level.
  std::size_t level = 0;
  /// Joint probabilities evaluated.
  std::uint64_t terms_computed = 0;
  /// True when lower == upper == the exact value (all n levels done).
  bool exact = false;

  double width() const { return upper - lower; }
};

/// Certified interval for sky(target) over the given candidates.
Result<SkylineBounds> BoundedSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, const BoundsOptions& options = {});

/// Convenience wrapper: all objects but the target.
Result<SkylineBounds> BoundedSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const BoundsOptions& options = {});

/// Certified interval computed AFTER absorption + partition: each
/// independent group gets its own Bonferroni interval and the per-group
/// intervals multiply (all values in [0,1], so interval products are
/// monotone). Far tighter than the flat bound whenever the candidate set
/// partitions, and exact whenever every group is small enough to finish
/// all its levels within the options.
Result<SkylineBounds> BoundedSkylineProbabilityPreprocessed(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const BoundsOptions& options = {});

/// Certified answer to "sky(target) >= tau?". Tries bounds of increasing
/// level first (with absorption + partition so each group's interval is
/// cheap), then falls back to the exact solver. The answer is always
/// correct; only the cost varies.
Result<bool> DecideThreshold(const Dataset& data, ObjectId target,
                             const PreferenceModel& model, double tau,
                             const BoundsOptions& options = {},
                             bool* used_exact_fallback = nullptr);

}  // namespace skypref

#endif  // SKYPREF_CORE_BOUNDS_H_
