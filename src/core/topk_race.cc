#include "src/core/topk_race.h"

#include <algorithm>
#include <cmath>

#include "src/core/all_worlds.h"
#include "src/util/random.h"

namespace skypref {

namespace {

struct Interval {
  double lower = 0.0;
  double upper = 1.0;
};

}  // namespace

Result<TopKRaceResult> TopKSkylineRace(const Dataset& data,
                                       const PreferenceModel& model,
                                       std::size_t k,
                                       const TopKRaceOptions& options) {
  SKYPREF_RETURN_IF_ERROR(data.Validate());
  const std::size_t n = data.size();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must satisfy 1 <= k <= n, got " +
                                   std::to_string(k));
  }
  if (options.delta <= 0.0 || options.delta >= 1.0 ||
      options.epsilon_floor <= 0.0 || options.batch == 0) {
    return Status::InvalidArgument("invalid race options");
  }

  // Worlds that drive every interval below epsilon_floor/2, after which
  // the race declares unresolvable ties. The per-test confidence is
  // delta / (n * rounds) by a union bound over objects and checkpoints.
  const double half_floor = options.epsilon_floor / 2.0;
  std::uint64_t max_worlds = options.max_worlds;
  if (max_worlds == 0) {
    // First pass with a generous round guess, then refine.
    double rough_rounds = 64.0;
    double log_term =
        std::log(2.0 * static_cast<double>(n) * rough_rounds / options.delta);
    max_worlds = static_cast<std::uint64_t>(
        std::ceil(log_term / (2.0 * half_floor * half_floor)));
  }
  const std::uint64_t rounds_cap = max_worlds / options.batch + 1;
  const double delta_per_test =
      options.delta /
      (static_cast<double>(n) * static_cast<double>(rounds_cap));
  const double log_term = std::log(2.0 / delta_per_test);

  SharedWorldSampler sampler(data, model);
  Rng rng(options.seed);

  enum class State : std::uint8_t { kAlive, kIn, kOut };
  std::vector<State> state(n, State::kAlive);
  std::vector<std::uint64_t> survived(n, 0);
  std::vector<std::uint64_t> evaluated_worlds(n, 0);
  std::vector<Interval> intervals(n);

  TopKRaceResult result;
  result.estimates.assign(n, 0.0);
  std::size_t in_count = 0;
  std::size_t out_count = 0;

  while (result.worlds < max_worlds) {
    const std::uint64_t batch =
        std::min<std::uint64_t>(options.batch, max_worlds - result.worlds);
    for (std::uint64_t b = 0; b < batch; ++b) {
      sampler.NextWorld();
      std::uint64_t draws = 0;
      for (ObjectId i = 0; i < n; ++i) {
        if (state[i] != State::kAlive) continue;
        if (sampler.Survives(i, rng, &draws)) ++survived[i];
        ++evaluated_worlds[i];
        ++result.evaluations;
      }
    }
    result.worlds += batch;

    // Refresh intervals of alive objects (settled ones stay frozen; their
    // Hoeffding bound at freeze time remains valid).
    bool all_narrow = true;
    for (ObjectId i = 0; i < n; ++i) {
      if (state[i] != State::kAlive) continue;
      double t = static_cast<double>(evaluated_worlds[i]);
      double estimate = static_cast<double>(survived[i]) / t;
      double radius = std::sqrt(log_term / (2.0 * t));
      result.estimates[i] = estimate;
      intervals[i].lower = std::max(0.0, estimate - radius);
      intervals[i].upper = std::min(1.0, estimate + radius);
      if (radius >= half_floor) all_narrow = false;
    }

    // Settlement: i is IN when at most k-1 others can still beat it,
    // OUT when at least k others are surely at or above its upper bound.
    std::vector<double> lowers;
    std::vector<double> uppers;
    lowers.reserve(n);
    uppers.reserve(n);
    for (ObjectId j = 0; j < n; ++j) {
      lowers.push_back(intervals[j].lower);
      uppers.push_back(intervals[j].upper);
    }
    std::sort(lowers.begin(), lowers.end());
    std::sort(uppers.begin(), uppers.end());
    for (ObjectId i = 0; i < n; ++i) {
      if (state[i] != State::kAlive) continue;
      // Others with upper > my lower (subtract myself when counted).
      auto above = static_cast<std::size_t>(
          uppers.end() -
          std::upper_bound(uppers.begin(), uppers.end(), intervals[i].lower));
      if (intervals[i].upper > intervals[i].lower) --above;  // myself
      if (above <= k - 1) {
        state[i] = State::kIn;
        ++in_count;
        continue;
      }
      // Others with lower >= my upper.
      auto surely_above = static_cast<std::size_t>(
          lowers.end() -
          std::lower_bound(lowers.begin(), lowers.end(), intervals[i].upper));
      if (surely_above >= k) {
        state[i] = State::kOut;
        ++out_count;
      }
    }

    if (in_count == k || out_count == n - k) {
      result.resolved = true;
      break;
    }
    if (all_narrow) break;  // epsilon_floor ties: cut by estimate below
  }

  // Assemble the answer: surely-IN objects first, then the best alive
  // ones by estimate until k are selected.
  std::vector<ObjectId> alive_sorted;
  for (ObjectId i = 0; i < n; ++i) {
    if (state[i] == State::kIn) result.topk.push_back(i);
    if (state[i] == State::kAlive) alive_sorted.push_back(i);
  }
  std::stable_sort(alive_sorted.begin(), alive_sorted.end(),
                   [&](ObjectId a, ObjectId b) {
                     return result.estimates[a] > result.estimates[b];
                   });
  for (ObjectId id : alive_sorted) {
    if (result.topk.size() >= k) break;
    result.topk.push_back(id);
  }
  if (result.resolved && out_count == n - k) {
    // Everything not OUT is in the top-k even if not individually marked.
    result.topk.clear();
    for (ObjectId i = 0; i < n; ++i) {
      if (state[i] != State::kOut) result.topk.push_back(i);
    }
  }
  std::stable_sort(result.topk.begin(), result.topk.end(),
                   [&](ObjectId a, ObjectId b) {
                     return result.estimates[a] > result.estimates[b];
                   });
  if (result.topk.size() > k) result.topk.resize(k);
  return result;
}

}  // namespace skypref
