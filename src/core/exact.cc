#include "src/core/exact.h"

#include <numeric>

#include "src/util/check.h"

namespace skypref {

Result<double> ExactSkylineProbability(const Dataset& data, ObjectId target,
                                       const PreferenceModel& model,
                                       const ExactOptions& options,
                                       ExactStats* stats) {
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() > 0 ? data.size() - 1 : 0);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  SKYPREF_ASSIGN_OR_RETURN(
      double result,
      ExactSkylineProbability(data, target, candidates, DoubleOracle(model),
                              options, stats));
  // The inclusion-exclusion sum of Eq. 4 is a probability; compensated
  // summation keeps rounding drift below kProbEpsilon, so anything worse
  // is a solver bug, not noise.
  SKYPREF_DCHECK_PROB(result);
  return ClampProbability(result);
}

}  // namespace skypref
