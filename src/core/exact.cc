#include "src/core/exact.h"

#include <numeric>

namespace skypref {

Result<double> ExactSkylineProbability(const Dataset& data, ObjectId target,
                                       const PreferenceModel& model,
                                       const ExactOptions& options,
                                       ExactStats* stats) {
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() > 0 ? data.size() - 1 : 0);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  return ExactSkylineProbability(data, target, candidates, DoubleOracle(model),
                                 options, stats);
}

}  // namespace skypref
