#include "src/core/dominance.h"

namespace skypref {

double DominanceProbability(const Dataset& data, ObjectId candidate,
                            ObjectId target, const PreferenceModel& model) {
  return DominanceProbability(data, candidate, target, DoubleOracle(model));
}

}  // namespace skypref
