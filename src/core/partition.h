#ifndef SKYPREF_CORE_PARTITION_H_
#define SKYPREF_CORE_PARTITION_H_

/// \file
/// The "partition" preprocessing technique (Section 5, Theorem 4).
///
/// If the candidates can be split into groups such that no two candidates
/// from different groups share an attribute value — other than values that
/// equal the target's value on that dimension, which contribute the
/// constant factor 1 — then the "no dominator in group t" events are
/// mutually independent and
///
///     sky(O) = prod_t Pr(no candidate in S_t dominates O).
///
/// Each group is then solved independently (exactly or by sampling) and
/// the results are multiplied, turning one 2^n computation into several
/// 2^|S_t| ones. Grouping is computed by union-find over the candidates:
/// two candidates are joined when they use the same (dimension, value)
/// with value != target's value on that dimension.

#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/model/dataset.h"
#include "src/model/types.h"
#include "src/util/hash.h"
#include "src/util/union_find.h"

namespace skypref {

/// Reusable scratch state for PartitionCandidates. Callers partitioning
/// for many targets in a row (the batch all-objects solver) keep one
/// workspace per worker so the hash table's buckets and the union-find
/// arrays are recycled instead of reallocated per target.
struct PartitionWorkspace {
  UnionFind sets{0};
  std::unordered_map<std::pair<DimensionId, ValueId>, std::size_t, PairHash>
      first_user;
  std::vector<std::size_t> group_of;
};

/// Groups candidates into the finest partition satisfying Theorem 4.
/// Groups preserve input order internally and are ordered by their first
/// member.
std::vector<std::vector<ObjectId>> PartitionCandidates(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates);

/// Same partition, reusing \p workspace across calls.
std::vector<std::vector<ObjectId>> PartitionCandidates(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    PartitionWorkspace& workspace);

}  // namespace skypref

#endif  // SKYPREF_CORE_PARTITION_H_
