#ifndef SKYPREF_CORE_EXACT_H_
#define SKYPREF_CORE_EXACT_H_

/// \file
/// Deterministic skyline-probability computation (Algorithm 1, "Det").
///
/// Evaluates the inclusion-exclusion expansion of Eq. 4,
///
///   sky(O) = 1 + sum_{k=1..n} (-1)^k sum_{|I|=k} Pr(E_I),
///   Pr(E_I) = prod_j prod_{v in V_I^j} Pr(v <= O.j)   (distinct values!)
///
/// using the paper's sharing-computation technique: Pr(E_I) is derived
/// from Pr(E_{I \ {i}}) by multiplying in only the value factors that Qi
/// newly contributes, an O(d) step. The paper materializes level k from
/// level k-1, which needs C(n, n/2) memory; walking subsets in DFS order
/// achieves the same O(d)-per-subset sharing with O(nd) memory, because
/// adding/removing one object from the running subset touches at most d
/// per-dimension value counters.
///
/// Additional engineering on top of the paper:
///  * zero subtrees are pruned — once Pr(E_I) = 0, every superset of I
///    also has probability 0 and contributes nothing (toggle via
///    ExactOptions::prune_zero for the ablation bench);
///  * a work budget and wall-clock limit so benches can report "did not
///    finish" instead of hanging (the problem is #P-complete; Det is
///    exponential by design).

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/oracles.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/status.h"

namespace skypref {

struct ExactOptions {
  /// Abort with ResourceExhausted after visiting this many subsets
  /// (0 = unlimited). Each visited subset costs O(d).
  std::uint64_t max_subsets = 0;

  /// Abort with ResourceExhausted after this much wall time
  /// (0 = unlimited). Checked every few thousand subsets.
  double time_limit_seconds = 0.0;

  /// Skip subtrees whose joint probability is exactly zero.
  bool prune_zero = true;
};

/// Statistics of one exact computation, for benches and tests.
struct ExactStats {
  std::uint64_t subsets_visited = 0;
};

/// Computes sky(target) exactly, considering only the dominators listed in
/// \p candidates (callers pass all other objects, or a preprocessed
/// subset). Object values listed in \p candidates must not equal target.
///
/// Numeric-generic: instantiate with DoubleOracle for speed or
/// RationalOracle for bit-exact results.
template <typename Oracle>
Result<typename Oracle::NumType> ExactSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const Oracle& oracle, const ExactOptions& options = {},
    ExactStats* stats = nullptr);

/// Convenience wrapper over all objects except \p target, double
/// precision, no preprocessing (the paper's plain "Det").
Result<double> ExactSkylineProbability(const Dataset& data, ObjectId target,
                                       const PreferenceModel& model,
                                       const ExactOptions& options = {},
                                       ExactStats* stats = nullptr);

// -------------------------------------------------------------------------
// Implementation
// -------------------------------------------------------------------------

namespace internal {

template <typename Oracle>
class ExactEngine {
 public:
  using Num = typename Oracle::NumType;

  ExactEngine(const Dataset& data, ObjectId target,
              std::span<const ObjectId> candidates, const Oracle& oracle,
              const ExactOptions& options)
      : data_(data),
        target_(target),
        candidates_(candidates),
        oracle_(oracle),
        options_(options),
        deadline_valid_(options.time_limit_seconds > 0.0) {
    if (deadline_valid_) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(options.time_limit_seconds));
    }
    // Per-dimension counters sized to the largest value id we will see.
    counts_.resize(data.dimensions());
    for (DimensionId j = 0; j < data.dimensions(); ++j) {
      ValueId bound = data.value(target, j) + 1;
      for (ObjectId id : candidates) {
        bound = std::max(bound, static_cast<ValueId>(data.value(id, j) + 1));
      }
      counts_[j].assign(bound, 0);
    }
  }

  Result<Num> Run(ExactStats* stats) {
    status_ = Status::OK();
    accumulator_ = Accumulator<Num>();
    accumulator_.Add(Num(1));  // the k = 0 term of Eq. 4
    visited_ = 0;
    Dfs(0, Num(1), /*positive_sign=*/false);
    if (stats != nullptr) stats->subsets_visited = visited_;
    if (!status_.ok()) return status_;
    return accumulator_.Value();
  }

 private:
  // Extends the current subset with each candidate index >= next in turn.
  // `product` is Pr(E_I) for the current subset I; `positive_sign` is the
  // sign of the NEXT level's terms ((-1)^{|I|+1}).
  void Dfs(std::size_t next, const Num& product, bool positive_sign) {
    for (std::size_t i = next; i < candidates_.size() && status_.ok(); ++i) {
      if (!ChargeVisit()) return;
      Num extended = product;
      // Multiply in the factors of values Qi newly contributes (sharing
      // computation: values already present in I contribute nothing).
      std::span<const ValueId> q = data_.object(candidates_[i]);
      std::span<const ValueId> o = data_.object(target_);
      for (DimensionId j = 0; j < data_.dimensions(); ++j) {
        if (q[j] == o[j]) continue;
        if (counts_[j][q[j]]++ == 0) {
          extended = extended * oracle_.LessEq(j, q[j], o[j]);
        }
      }
      accumulator_.Add(positive_sign ? extended : -extended);
      if (!options_.prune_zero || !(extended == Num(0))) {
        Dfs(i + 1, extended, !positive_sign);
      }
      for (DimensionId j = 0; j < data_.dimensions(); ++j) {
        if (q[j] != o[j]) --counts_[j][q[j]];
      }
    }
  }

  bool ChargeVisit() {
    ++visited_;
    if (options_.max_subsets != 0 && visited_ > options_.max_subsets) {
      status_ = Status::ResourceExhausted(
          "exact solver exceeded subset budget of " +
          std::to_string(options_.max_subsets));
      return false;
    }
    if (deadline_valid_ && (visited_ & 0xfff) == 0 &&
        std::chrono::steady_clock::now() > deadline_) {
      status_ = Status::ResourceExhausted(
          "exact solver exceeded time limit of " +
          std::to_string(options_.time_limit_seconds) + "s");
      return false;
    }
    return true;
  }

  const Dataset& data_;
  ObjectId target_;
  std::span<const ObjectId> candidates_;
  const Oracle& oracle_;
  ExactOptions options_;

  std::vector<std::vector<std::uint32_t>> counts_;  // per dim: value -> count
  Accumulator<Num> accumulator_;
  std::uint64_t visited_ = 0;
  Status status_;
  bool deadline_valid_;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace internal

template <typename Oracle>
Result<typename Oracle::NumType> ExactSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const Oracle& oracle, const ExactOptions& options, ExactStats* stats) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object " + std::to_string(target) +
                              " out of range (n=" + std::to_string(data.size()) +
                              ")");
  }
  for (ObjectId id : candidates) {
    if (id >= data.size()) {
      return Status::OutOfRange("candidate object " + std::to_string(id) +
                                " out of range");
    }
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
  }
  internal::ExactEngine<Oracle> engine(data, target, candidates, oracle,
                                       options);
  return engine.Run(stats);
}

}  // namespace skypref

#endif  // SKYPREF_CORE_EXACT_H_
