#ifndef SKYPREF_CORE_EXACT_H_
#define SKYPREF_CORE_EXACT_H_

/// \file
/// Deterministic skyline-probability computation (Algorithm 1, "Det").
///
/// Evaluates the inclusion-exclusion expansion of Eq. 4,
///
///   sky(O) = 1 + sum_{k=1..n} (-1)^k sum_{|I|=k} Pr(E_I),
///   Pr(E_I) = prod_j prod_{v in V_I^j} Pr(v <= O.j)   (distinct values!)
///
/// using the paper's sharing-computation technique: Pr(E_I) is derived
/// from Pr(E_{I \ {i}}) by multiplying in only the value factors that Qi
/// newly contributes, an O(d) step. The paper materializes level k from
/// level k-1, which needs C(n, n/2) memory; walking subsets in DFS order
/// achieves the same O(d)-per-subset sharing with O(nd) memory, because
/// adding/removing one object from the running subset touches at most d
/// per-dimension value counters.
///
/// Two engines implement the same walk:
///
///  * FlatExactEngine (default) — the solve is preceded by flattening the
///    instance into a FlatInstance: the distinct (dim, value) factors
///    become a dense pair-id table with their Pr(v <= O.j) probabilities
///    precomputed, and each candidate carries a compact index list of the
///    pairs where it differs from the target (CSR layout). The DFS inner
///    loop is then pure array arithmetic — no model hash lookups, no
///    `q[j] == o[j]` branch, and multiplicity counters indexed by dense
///    pair id instead of per-dimension value-id vectors sized to the max
///    ValueId. Multiplication and accumulation order are IDENTICAL to the
///    lookup engine, so results are bit-identical.
///  * LookupExactEngine — the original direct-from-model walk, kept as
///    the in-tree reference for tests and the bench_hotpath ablation
///    (select with ExactOptions::engine = ExactOptions::Engine::kLookup).
///
/// Additional engineering on top of the paper:
///  * zero subtrees are pruned — once Pr(E_I) = 0, every superset of I
///    also has probability 0 and contributes nothing (toggle via
///    ExactOptions::prune_zero for the ablation bench);
///  * a work budget and wall-clock limit so benches can report "did not
///    finish" instead of hanging (the problem is #P-complete; Det is
///    exponential by design). Callers that fan one query out over several
///    solves (Det+ groups, batch all-objects) pass one precomputed shared
///    deadline so the total wall time honors the limit once, not once per
///    solve;
///  * cooperative cancellation: a CancelToken polled at the same bounded
///    cadence as the deadline (src/util/cancel.h), so a query can be
///    abandoned mid-DFS from another thread. A token cancelled before the
///    solve starts yields Status::Cancelled deterministically;
///  * a deterministic failpoint in the visit-charging path ("exact.dfs",
///    src/util/failpoint.h, compiled out unless SKYPREF_FAILPOINTS) so
///    tests can force the ResourceExhausted degradation path on the N-th
///    visit of either engine.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/oracles.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/cancel.h"
#include "src/util/failpoint.h"
#include "src/util/hash.h"
#include "src/util/status.h"
#include "src/util/try_alloc.h"

namespace skypref {

struct ExactOptions {
  /// Abort with ResourceExhausted after visiting this many subsets
  /// (0 = unlimited). Each visited subset costs O(d).
  std::uint64_t max_subsets = 0;

  /// Abort with ResourceExhausted after this much wall time
  /// (0 = unlimited). Checked every few thousand subsets.
  double time_limit_seconds = 0.0;

  /// A precomputed absolute deadline shared by several solves of one
  /// logical query; when set it takes precedence over
  /// time_limit_seconds. Multi-solve drivers (Det+ groups, the batch
  /// all-objects solver, the resilient ladder) set this once up front so
  /// the whole query — not each solve independently — observes the time
  /// limit.
  Deadline deadline;

  /// Optional cooperative cancellation; polled at the same bounded
  /// cadence as the deadline. Observing a cancelled token returns
  /// Status::Cancelled. Not owned; must outlive the solve. nullptr =
  /// not cancellable.
  const CancelToken* cancel = nullptr;

  /// Skip subtrees whose joint probability is exactly zero.
  bool prune_zero = true;

  /// Which DFS engine runs the walk; results are bit-identical.
  enum class Engine : std::uint8_t {
    kFlat,    ///< flattened pair-table hot path (default)
    kLookup,  ///< original per-dimension model-lookup walk (reference)
  };
  Engine engine = Engine::kFlat;
};

/// Statistics of one exact computation, for benches and tests.
struct ExactStats {
  std::uint64_t subsets_visited = 0;
};

/// Computes sky(target) exactly, considering only the dominators listed in
/// \p candidates (callers pass all other objects, or a preprocessed
/// subset). Object values listed in \p candidates must not equal target.
///
/// Numeric-generic: instantiate with DoubleOracle for speed or
/// RationalOracle for bit-exact results.
template <typename Oracle>
Result<typename Oracle::NumType> ExactSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const Oracle& oracle, const ExactOptions& options = {},
    ExactStats* stats = nullptr);

/// Convenience wrapper over all objects except \p target, double
/// precision, no preprocessing (the paper's plain "Det").
Result<double> ExactSkylineProbability(const Dataset& data, ObjectId target,
                                       const PreferenceModel& model,
                                       const ExactOptions& options = {},
                                       ExactStats* stats = nullptr);

// -------------------------------------------------------------------------
// Implementation
// -------------------------------------------------------------------------

namespace internal {

/// Resolves the effective deadline of one solve: an explicit shared
/// deadline wins, otherwise time_limit_seconds counts from now.
inline Deadline ResolveDeadline(const ExactOptions& options) {
  if (options.deadline.has_value()) return options.deadline;
  return Deadline::After(options.time_limit_seconds);
}

inline Status SubsetBudgetExhausted(std::uint64_t max_subsets) {
  return Status::ResourceExhausted(
      "exact solver exceeded subset budget of " + std::to_string(max_subsets));
}

inline Status TimeLimitExhausted() {
  return Status::ResourceExhausted("exact solver exceeded its time limit");
}

/// One exact instance, flattened for the DFS hot loop.
///
/// The distinct (dim, value) factors of Eq. 6 — the values where some
/// candidate differs from the target — are assigned dense pair ids in
/// first-encounter order (candidate-major, dimension-minor, exactly the
/// order the lookup engine discovers them). `pair_prob[p]` caches
/// Pr(v <= O.j) for pair p; candidate i owns the id slice
/// `pair_ids[offsets[i] .. offsets[i+1])`, listing its differing
/// dimensions in ascending dimension order. Because two candidates
/// sharing a (dim, value) map to the SAME pair id, a multiplicity counter
/// per pair id reproduces the "distinct values count once" semantics of
/// the per-dimension counters, and the per-candidate id order reproduces
/// the lookup engine's multiplication order bit for bit.
template <typename Oracle>
struct FlatInstance {
  using Num = typename Oracle::NumType;

  std::vector<Num> pair_prob;           ///< dense pair id -> Pr(v <= O.j)
  std::vector<std::uint32_t> pair_ids;  ///< concatenated candidate slices
  std::vector<std::uint32_t> offsets;   ///< size candidates+1; CSR offsets

  std::size_t candidate_count() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::size_t pair_count() const { return pair_prob.size(); }

  std::span<const std::uint32_t> pairs_of(std::size_t candidate) const {
    return std::span<const std::uint32_t>(pair_ids.data() + offsets[candidate],
                                          offsets[candidate + 1] -
                                              offsets[candidate]);
  }
};

/// Flattens (data, target, candidates, oracle) into a FlatInstance. All
/// oracle lookups for the whole solve happen here, once per distinct
/// (dim, value) pair; the DFS afterwards touches only dense arrays.
template <typename Oracle>
FlatInstance<Oracle> BuildFlatInstance(const Dataset& data, ObjectId target,
                                       std::span<const ObjectId> candidates,
                                       const Oracle& oracle) {
  FlatInstance<Oracle> instance;
  std::unordered_map<std::pair<DimensionId, ValueId>, std::uint32_t, PairHash>
      pair_index;
  instance.offsets.reserve(candidates.size() + 1);
  instance.offsets.push_back(0);
  std::span<const ValueId> o = data.object(target);
  for (ObjectId id : candidates) {
    std::span<const ValueId> q = data.object(id);
    for (DimensionId j = 0; j < data.dimensions(); ++j) {
      if (q[j] == o[j]) continue;
      auto [it, inserted] = pair_index.try_emplace(
          {j, q[j]}, static_cast<std::uint32_t>(instance.pair_prob.size()));
      if (inserted) {
        instance.pair_prob.push_back(oracle.LessEq(j, q[j], o[j]));
      }
      instance.pair_ids.push_back(it->second);
    }
    instance.offsets.push_back(
        static_cast<std::uint32_t>(instance.pair_ids.size()));
  }
  return instance;
}

/// The flattened DFS engine: walks the inclusion-exclusion tree over a
/// prebuilt FlatInstance. The instance must outlive the engine.
template <typename Oracle>
class FlatExactEngine {
 public:
  using Num = typename Oracle::NumType;

  FlatExactEngine(const FlatInstance<Oracle>& instance,
                  const ExactOptions& options)
      : instance_(&instance),
        options_(options),
        deadline_(ResolveDeadline(options)) {
    counts_.assign(instance.pair_count(), 0);
  }

  Result<Num> Run(ExactStats* stats) {
    if (stats != nullptr) stats->subsets_visited = 0;
    // Solve-boundary cancel check: a token cancelled before the solve
    // starts is observed regardless of instance size (the in-loop poll
    // runs only every 4096 visits).
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      status_ = CancelledStatus();
      return status_;
    }
    status_ = Status::OK();
    accumulator_ = Accumulator<Num>();
    accumulator_.Add(Num(1));  // the k = 0 term of Eq. 4
    visited_ = 0;
    Dfs(0, Num(1), /*positive_sign=*/false);
    if (stats != nullptr) stats->subsets_visited = visited_;
    if (!status_.ok()) return status_;
    return accumulator_.Value();
  }

 private:
  // Extends the current subset with each candidate index >= next in turn.
  // `product` is Pr(E_I) for the current subset I; `positive_sign` is the
  // sign of the NEXT level's terms ((-1)^{|I|+1}).
  void Dfs(std::size_t next, const Num& product, bool positive_sign) {
    const std::size_t m = instance_->candidate_count();
    for (std::size_t i = next; i < m && status_.ok(); ++i) {
      if (!ChargeVisit()) return;
      Num extended = product;
      // Multiply in the factors of pairs the candidate newly contributes
      // (sharing computation: pairs already present in I count once).
      std::span<const std::uint32_t> pairs = instance_->pairs_of(i);
      for (std::uint32_t p : pairs) {
        if (counts_[p]++ == 0) {
          extended = extended * instance_->pair_prob[p];
        }
      }
      accumulator_.Add(positive_sign ? extended : -extended);
      if (!options_.prune_zero || !(extended == Num(0))) {
        Dfs(i + 1, extended, !positive_sign);
      }
      for (std::uint32_t p : pairs) --counts_[p];
    }
  }

  bool ChargeVisit() {
    ++visited_;
    // The failpoint consults on the solve's first visit plus the same
    // amortized cadence as the deadline poll below — a per-visit consult
    // would put an atomic RMW in the DFS hot loop and blow the
    // armed-but-quiet overhead budget (bench_hotpath chaos_armed_quiet).
    // Hit ordinals therefore count (solve entries + poll crossings), and
    // a kSingle n=1 arming still fails the first armed solve.
    if ((visited_ == 1 || (visited_ & 0xfff) == 0) &&
        SKYPREF_FAILPOINT("exact.dfs")) {
      status_ = Status::ResourceExhausted("failpoint exact.dfs");
      return false;
    }
    if (options_.max_subsets != 0 && visited_ > options_.max_subsets) {
      status_ = SubsetBudgetExhausted(options_.max_subsets);
      return false;
    }
    if ((visited_ & 0xfff) == 0) {
      if (options_.cancel != nullptr && options_.cancel->cancelled()) {
        status_ = CancelledStatus();
        return false;
      }
      if (deadline_.Expired()) {
        status_ = TimeLimitExhausted();
        return false;
      }
    }
    return true;
  }

  const FlatInstance<Oracle>* instance_;
  ExactOptions options_;
  Deadline deadline_;

  std::vector<std::uint32_t> counts_;  // pair id -> multiplicity in I
  Accumulator<Num> accumulator_;
  std::uint64_t visited_ = 0;
  Status status_;
};

/// The original engine: per-dimension value-id counters and on-the-fly
/// oracle lookups. Kept as the bit-exact reference the flattened path is
/// verified against (tests) and measured against (bench_hotpath).
template <typename Oracle>
class LookupExactEngine {
 public:
  using Num = typename Oracle::NumType;

  LookupExactEngine(const Dataset& data, ObjectId target,
                    std::span<const ObjectId> candidates, const Oracle& oracle,
                    const ExactOptions& options)
      : data_(data),
        target_(target),
        candidates_(candidates),
        oracle_(oracle),
        options_(options),
        deadline_(ResolveDeadline(options)) {
    // Per-dimension counters sized to the largest value id we will see.
    counts_.resize(data.dimensions());
    for (DimensionId j = 0; j < data.dimensions(); ++j) {
      ValueId bound = data.value(target, j) + 1;
      for (ObjectId id : candidates) {
        bound = std::max(bound, static_cast<ValueId>(data.value(id, j) + 1));
      }
      counts_[j].assign(bound, 0);
    }
  }

  Result<Num> Run(ExactStats* stats) {
    if (stats != nullptr) stats->subsets_visited = 0;
    // Solve-boundary cancel check: a token cancelled before the solve
    // starts is observed regardless of instance size (the in-loop poll
    // runs only every 4096 visits).
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      status_ = CancelledStatus();
      return status_;
    }
    status_ = Status::OK();
    accumulator_ = Accumulator<Num>();
    accumulator_.Add(Num(1));  // the k = 0 term of Eq. 4
    visited_ = 0;
    Dfs(0, Num(1), /*positive_sign=*/false);
    if (stats != nullptr) stats->subsets_visited = visited_;
    if (!status_.ok()) return status_;
    return accumulator_.Value();
  }

 private:
  void Dfs(std::size_t next, const Num& product, bool positive_sign) {
    for (std::size_t i = next; i < candidates_.size() && status_.ok(); ++i) {
      if (!ChargeVisit()) return;
      Num extended = product;
      std::span<const ValueId> q = data_.object(candidates_[i]);
      std::span<const ValueId> o = data_.object(target_);
      for (DimensionId j = 0; j < data_.dimensions(); ++j) {
        if (q[j] == o[j]) continue;
        if (counts_[j][q[j]]++ == 0) {
          extended = extended * oracle_.LessEq(j, q[j], o[j]);
        }
      }
      accumulator_.Add(positive_sign ? extended : -extended);
      if (!options_.prune_zero || !(extended == Num(0))) {
        Dfs(i + 1, extended, !positive_sign);
      }
      for (DimensionId j = 0; j < data_.dimensions(); ++j) {
        if (q[j] != o[j]) --counts_[j][q[j]];
      }
    }
  }

  bool ChargeVisit() {
    ++visited_;
    // The failpoint consults on the solve's first visit plus the same
    // amortized cadence as the deadline poll below — a per-visit consult
    // would put an atomic RMW in the DFS hot loop and blow the
    // armed-but-quiet overhead budget (bench_hotpath chaos_armed_quiet).
    // Hit ordinals therefore count (solve entries + poll crossings), and
    // a kSingle n=1 arming still fails the first armed solve.
    if ((visited_ == 1 || (visited_ & 0xfff) == 0) &&
        SKYPREF_FAILPOINT("exact.dfs")) {
      status_ = Status::ResourceExhausted("failpoint exact.dfs");
      return false;
    }
    if (options_.max_subsets != 0 && visited_ > options_.max_subsets) {
      status_ = SubsetBudgetExhausted(options_.max_subsets);
      return false;
    }
    if ((visited_ & 0xfff) == 0) {
      if (options_.cancel != nullptr && options_.cancel->cancelled()) {
        status_ = CancelledStatus();
        return false;
      }
      if (deadline_.Expired()) {
        status_ = TimeLimitExhausted();
        return false;
      }
    }
    return true;
  }

  const Dataset& data_;
  ObjectId target_;
  std::span<const ObjectId> candidates_;
  const Oracle& oracle_;
  ExactOptions options_;
  Deadline deadline_;

  std::vector<std::vector<std::uint32_t>> counts_;  // per dim: value -> count
  Accumulator<Num> accumulator_;
  std::uint64_t visited_ = 0;
  Status status_;
};

template <typename Oracle>
Status ValidateExactInputs(const Dataset& data, ObjectId target,
                           std::span<const ObjectId> candidates,
                           const Oracle& /*oracle*/) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object " + std::to_string(target) +
                              " out of range (n=" + std::to_string(data.size()) +
                              ")");
  }
  for (ObjectId id : candidates) {
    if (id >= data.size()) {
      return Status::OutOfRange("candidate object " + std::to_string(id) +
                                " out of range");
    }
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
  }
  return Status::OK();
}

}  // namespace internal

template <typename Oracle>
Result<typename Oracle::NumType> ExactSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const Oracle& oracle, const ExactOptions& options, ExactStats* stats) {
  Status valid = internal::ValidateExactInputs(data, target, candidates,
                                               oracle);
  if (!valid.ok()) return valid;
  if (options.engine == ExactOptions::Engine::kLookup) {
    internal::LookupExactEngine<Oracle> engine(data, target, candidates,
                                               oracle, options);
    return engine.Run(stats);
  }
  // The flattened instance is the solve's one big allocation; through
  // TryAlloc its failure is ResourceExhausted, which degrades through
  // the resilient ladder like a blown budget instead of terminating.
  SKYPREF_ASSIGN_OR_RETURN(
      internal::FlatInstance<Oracle> instance,
      TryAlloc("alloc.exact.flat_instance", [&] {
        return internal::BuildFlatInstance(data, target, candidates, oracle);
      }));
  internal::FlatExactEngine<Oracle> engine(instance, options);
  return engine.Run(stats);
}

}  // namespace skypref

#endif  // SKYPREF_CORE_EXACT_H_
