#include "src/core/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/core/dominance.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/hash.h"
#include "src/util/random.h"

namespace skypref {

std::uint64_t HoeffdingSampleSize(double epsilon, double delta) {
  if (epsilon <= 0.0 || delta <= 0.0 || delta >= 1.0) return 0;
  double m = std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon));
  // A tiny epsilon (1e-12 gives m ~ 1e24) overflows uint64, and casting
  // a double at or beyond 2^64 is undefined behavior — saturate instead.
  // static_cast<double>(UINT64_MAX) rounds up to exactly 2^64, so m below
  // the limit is guaranteed castable.
  constexpr double kLimit =
      static_cast<double>(std::numeric_limits<std::uint64_t>::max());
  if (!(m < kLimit)) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(m);
}

double HoeffdingEpsilon(std::uint64_t samples, double delta) {
  if (samples == 0 || delta <= 0.0 || delta >= 1.0) return 1.0;
  double eps = std::sqrt(std::log(2.0 / delta) /
                         (2.0 * static_cast<double>(samples)));
  return eps < 1.0 ? eps : 1.0;
}

namespace {

/// One world-sampling engine. Relevant preference variables are the
/// distinct pairs (dim, v) with v = Qi.j != O.j; only "is v preferred to
/// O.j" matters for O's skyline status, so outcomes are binary. Outcomes
/// are memoized per world with epoch stamps (no per-world clearing).
class WorldSampler {
 public:
  WorldSampler(const Dataset& data, ObjectId target,
               std::span<const ObjectId> candidates,
               const PreferenceModel& model)
      : dimensions_(static_cast<DimensionId>(data.dimensions())) {
    std::unordered_map<std::pair<DimensionId, ValueId>, std::uint32_t,
                       PairHash>
        pair_index;
    candidate_pairs_.reserve(candidates.size());
    for (ObjectId id : candidates) {
      Candidate c;
      for (DimensionId j = 0; j < dimensions_; ++j) {
        ValueId v = data.value(id, j);
        ValueId o = data.value(target, j);
        if (v == o) continue;
        auto [it, inserted] = pair_index.try_emplace(
            {j, v}, static_cast<std::uint32_t>(pair_prob_.size()));
        if (inserted) {
          double less_eq = model.LessEq(j, v, o);
          // Every Bernoulli parameter the sampler will ever draw from is
          // a model probability; catch a broken model before it skews
          // thousands of worlds.
          SKYPREF_DCHECK_PROB(less_eq);
          pair_prob_.push_back(less_eq);
        }
        c.pairs.push_back(it->second);
      }
      candidate_pairs_.push_back(std::move(c));
    }
    pair_epoch_.assign(pair_prob_.size(), 0);
    pair_outcome_.assign(pair_prob_.size(), false);
  }

  std::size_t candidate_count() const { return candidate_pairs_.size(); }
  std::size_t pair_count() const { return pair_prob_.size(); }

  /// Samples one world; returns true iff the target survives (no
  /// candidate dominates it). In lazy mode, pair outcomes are drawn only
  /// when first needed and the world is abandoned at the first dominator.
  bool SampleWorld(Rng& rng, bool lazy, std::uint64_t* pair_draws) {
    ++epoch_;
    if (!lazy) {
      for (std::uint32_t p = 0; p < pair_prob_.size(); ++p) {
        pair_outcome_[p] = rng.NextBernoulli(pair_prob_[p]);
        pair_epoch_[p] = epoch_;
        ++*pair_draws;
      }
    }
    for (const Candidate& c : candidate_pairs_) {
      bool dominates = true;
      for (std::uint32_t p : c.pairs) {
        if (pair_epoch_[p] != epoch_) {
          pair_epoch_[p] = epoch_;
          pair_outcome_[p] = rng.NextBernoulli(pair_prob_[p]);
          ++*pair_draws;
        }
        if (!pair_outcome_[p]) {
          dominates = false;
          break;
        }
      }
      // A candidate with no differing dimension would be a duplicate of
      // the target; Dataset::Validate rejects those, but be conservative.
      if (dominates && !c.pairs.empty()) return false;
    }
    return true;
  }

 private:
  struct Candidate {
    std::vector<std::uint32_t> pairs;  // indices into pair_prob_
  };

  DimensionId dimensions_;
  std::vector<double> pair_prob_;
  std::vector<Candidate> candidate_pairs_;
  std::vector<std::uint64_t> pair_epoch_;
  std::vector<bool> pair_outcome_;
  std::uint64_t epoch_ = 0;
};

}  // namespace

Result<MonteCarloResult> MonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, const MonteCarloOptions& options) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  for (ObjectId id : candidates) {
    if (id >= data.size()) {
      return Status::OutOfRange("candidate object out of range");
    }
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
  }
  std::uint64_t samples = options.samples != 0
                              ? options.samples
                              : HoeffdingSampleSize(options.epsilon,
                                                    options.delta);
  if (samples == 0) {
    return Status::InvalidArgument(
        "Monte Carlo needs samples > 0 (or valid epsilon/delta)");
  }

  // Algorithm 2 line 1: sort the checking sequence by dominance
  // probability, once, shared by all m iterations.
  std::vector<ObjectId> ordered(candidates.begin(), candidates.end());
  if (options.sort_by_dominance) {
    std::vector<std::pair<double, ObjectId>> keyed;
    keyed.reserve(ordered.size());
    for (ObjectId id : ordered) {
      keyed.emplace_back(DominanceProbability(data, id, target, model), id);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (std::size_t i = 0; i < keyed.size(); ++i) ordered[i] = keyed[i].second;
  }

  // The sampler previously had no time limit at all — one adversarial
  // group could pin a worker for the full Hoeffding count. One deadline,
  // resolved like the exact solver's, now bounds the loop; cancellation
  // is polled at the same cadence.
  Deadline deadline = options.deadline.has_value()
                          ? options.deadline
                          : Deadline::After(options.time_limit_seconds);
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return CancelledStatus();
  }

  WorldSampler sampler(data, target, ordered, model);
  Rng rng(options.seed);
  MonteCarloResult result;
  result.requested_samples = samples;
  std::uint64_t drawn = 0;
  // Poll cadence: every 64 worlds OR every kPairDrawPollStride pair
  // draws, whichever comes first. The world cadence alone let one group
  // with enormous per-world cost (many candidates x dimensions) overshoot
  // the deadline by 64 expensive worlds; the pair-draw stride bounds the
  // work between polls by the finer unit. Cheap worlds never reach the
  // stride between polls, preserving the historical min(64, samples)
  // floor of truncated runs.
  constexpr std::uint64_t kPairDrawPollStride = 8192;
  std::uint64_t draws_at_last_poll = 0;
  for (std::uint64_t h = 0; h < samples; ++h) {
    if (sampler.SampleWorld(rng, options.lazy, &result.pair_draws)) {
      ++result.skyline_worlds;
    }
    drawn = h + 1;
    // Poll after sampling, so a truncated run always carries at least
    // one world and the estimate is well-defined.
    if (((drawn & 63) == 0 ||
         result.pair_draws - draws_at_last_poll >= kPairDrawPollStride) &&
        drawn < samples) {
      draws_at_last_poll = result.pair_draws;
      if (options.cancel != nullptr && options.cancel->cancelled()) {
        return CancelledStatus();
      }
      if (deadline.Expired() || SKYPREF_FAILPOINT("sampler.world")) {
        result.truncated = true;
        break;
      }
    }
  }
  result.samples = drawn;
  result.estimate = static_cast<double>(result.skyline_worlds) /
                    static_cast<double>(drawn);
  SKYPREF_DCHECK(result.skyline_worlds <= result.samples);
  SKYPREF_DCHECK_PROB(result.estimate);
  return result;
}

Result<MonteCarloResult> MonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const MonteCarloOptions& options) {
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() > 0 ? data.size() - 1 : 0);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  return MonteCarloSkylineProbability(data, target, candidates, model,
                                      options);
}

}  // namespace skypref
