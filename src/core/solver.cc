#include "src/core/solver.h"

#include <algorithm>

#include "src/core/absorption.h"
#include "src/core/dominance.h"
#include "src/core/partition.h"
#include "src/core/sam_bitslice.h"
#include "src/core/sam_parallel.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace skypref {

namespace {

/// One Sam solve through the configured engine. The kSerial engine never
/// touches the pool; the kBlock and kBitSliced engines fan out over
/// \p pool, or an inline pool when the caller has none (bit-identical
/// either way).
Result<MonteCarloResult> RunSamEngine(const Dataset& data, ObjectId target,
                                      std::span<const ObjectId> candidates,
                                      const PreferenceModel& model,
                                      ThreadPool* pool,
                                      const MonteCarloOptions& options) {
  if (options.engine == MonteCarloOptions::Engine::kBlock ||
      options.engine == MonteCarloOptions::Engine::kBitSliced) {
    const bool sliced = options.engine == MonteCarloOptions::Engine::kBitSliced;
    auto run = [&](ThreadPool& p) {
      return sliced ? BitSlicedMonteCarloSkylineProbability(
                          data, target, candidates, model, p, options)
                    : BlockMonteCarloSkylineProbability(data, target,
                                                        candidates, model, p,
                                                        options);
    };
    if (pool != nullptr) return run(*pool);
    ThreadPool inline_pool(0);
    return run(inline_pool);
  }
  return MonteCarloSkylineProbability(data, target, candidates, model,
                                      options);
}

}  // namespace

Result<SkylineSolver> SkylineSolver::Create(const Dataset& data,
                                            const PreferenceModel& model) {
  SKYPREF_RETURN_IF_ERROR(data.Validate());
  // One capped pass over the model's invariants (Pr(a<b)+Pr(b<a) <= 1,
  // orientation symmetry, self ties) before any probability is computed
  // from it; Create runs once per dataset so the cost is negligible.
  SKYPREF_RETURN_IF_ERROR(model.Validate(data));
  return SkylineSolver(data, model);
}

std::vector<ObjectId> SkylineSolver::AllCandidates(ObjectId target) const {
  std::vector<ObjectId> candidates;
  candidates.reserve(data_->size() - 1);
  for (ObjectId id = 0; id < data_->size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  return candidates;
}

Result<double> SkylineSolver::Exact(ObjectId target,
                                    const SolverOptions& options,
                                    SolveStats* stats) const {
  if (target >= data_->size()) {
    return Status::OutOfRange("target object out of range");
  }
  std::vector<ObjectId> candidates = AllCandidates(target);
  SolveStats local;
  local.candidates = candidates.size();

  DoubleOracle oracle(*model_);
  double result = 1.0;
  if (options.preprocess) {
    candidates = AbsorbCandidates(*data_, target, candidates);
    local.after_absorption = candidates.size();
    std::vector<std::vector<ObjectId>> groups =
        PartitionCandidates(*data_, target, candidates);
    local.groups = groups.size();
    local.group_sizes.reserve(groups.size());
    for (const auto& group : groups) {
      local.largest_group = std::max(local.largest_group, group.size());
      local.group_sizes.push_back(group.size());
      ExactStats exact_stats;
      SKYPREF_ASSIGN_OR_RETURN(
          double group_prob,
          ExactSkylineProbability(*data_, target, group, oracle, options.exact,
                                  &exact_stats));
      local.subsets_visited += exact_stats.subsets_visited;
      SKYPREF_DCHECK_PROB(group_prob);
      result *= group_prob;
    }
  } else {
    local.after_absorption = candidates.size();
    local.groups = 1;
    local.largest_group = candidates.size();
    local.group_sizes.assign(1, candidates.size());
    ExactStats exact_stats;
    SKYPREF_ASSIGN_OR_RETURN(
        result, ExactSkylineProbability(*data_, target, candidates, oracle,
                                        options.exact, &exact_stats));
    local.subsets_visited = exact_stats.subsets_visited;
  }
  if (stats != nullptr) *stats = local;
  SKYPREF_DCHECK_PROB(result);
  return ClampProbability(result);
}

Result<double> SkylineSolver::MonteCarlo(ObjectId target,
                                         const SolverOptions& options,
                                         SolveStats* stats) const {
  return MonteCarloImpl(target, options, nullptr, stats);
}

Result<double> SkylineSolver::MonteCarlo(ObjectId target,
                                         const SolverOptions& options,
                                         ThreadPool& pool,
                                         SolveStats* stats) const {
  return MonteCarloImpl(target, options, &pool, stats);
}

Result<double> SkylineSolver::MonteCarloImpl(ObjectId target,
                                             const SolverOptions& options,
                                             ThreadPool* pool,
                                             SolveStats* stats) const {
  if (target >= data_->size()) {
    return Status::OutOfRange("target object out of range");
  }
  std::vector<ObjectId> candidates = AllCandidates(target);
  SolveStats local;
  local.candidates = candidates.size();

  if (!options.preprocess) {
    local.after_absorption = candidates.size();
    local.groups = 1;
    local.largest_group = candidates.size();
    local.group_sizes.assign(1, candidates.size());
    SKYPREF_ASSIGN_OR_RETURN(
        MonteCarloResult mc,
        RunSamEngine(*data_, target, candidates, *model_, pool,
                     options.monte_carlo));
    local.samples_drawn = mc.samples;
    local.pair_draws = mc.pair_draws;
    if (stats != nullptr) *stats = local;
    SKYPREF_DCHECK_PROB(mc.estimate);
    return ClampProbability(mc.estimate);
  }

  candidates = AbsorbCandidates(*data_, target, candidates);
  local.after_absorption = candidates.size();
  std::vector<std::vector<ObjectId>> groups =
      PartitionCandidates(*data_, target, candidates);
  local.groups = groups.size();

  // Singleton groups are exact for free: Pr(no dominator) = 1 - Pr(e).
  std::vector<const std::vector<ObjectId>*> sampled_groups;
  double result = 1.0;
  local.group_sizes.reserve(groups.size());
  for (const auto& group : groups) {
    local.largest_group = std::max(local.largest_group, group.size());
    local.group_sizes.push_back(group.size());
    if (group.size() == 1) {
      result *= 1.0 - DominanceProbability(*data_, group[0], target, *model_);
    } else {
      sampled_groups.push_back(&group);
    }
  }

  if (!sampled_groups.empty()) {
    // Split the error budget across the sampled groups (see file comment).
    MonteCarloOptions per_group = options.monte_carlo;
    if (per_group.samples == 0) {
      double share = static_cast<double>(sampled_groups.size());
      per_group.epsilon = options.monte_carlo.epsilon / share;
      per_group.delta = options.monte_carlo.delta / share;
    }
    Rng seeder(options.monte_carlo.seed);
    for (const auto* group : sampled_groups) {
      per_group.seed = seeder.Fork();
      SKYPREF_ASSIGN_OR_RETURN(
          MonteCarloResult mc,
          RunSamEngine(*data_, target, *group, *model_, pool, per_group));
      local.samples_drawn += mc.samples;
      local.pair_draws += mc.pair_draws;
      SKYPREF_DCHECK_PROB(mc.estimate);
      result *= mc.estimate;
    }
  }
  if (stats != nullptr) *stats = local;
  SKYPREF_DCHECK_PROB(result);
  return ClampProbability(result);
}

Result<double> SkylineSolver::Independent(ObjectId target) const {
  if (target >= data_->size()) {
    return Status::OutOfRange("target object out of range");
  }
  double product = 1.0;
  for (ObjectId id = 0; id < data_->size(); ++id) {
    if (id == target) continue;
    product *= 1.0 - DominanceProbability(*data_, id, target, *model_);
  }
  SKYPREF_DCHECK_PROB(product);
  return ClampProbability(product);
}

Result<double> ExpectedSkylineCardinality(const Dataset& data,
                                          const PreferenceModel& model,
                                          ThreadPool& pool,
                                          const SolverOptions& options) {
  BatchExactStats batch_stats;
  SKYPREF_ASSIGN_OR_RETURN(
      std::vector<double> skylines,
      BatchExactSkylineProbabilities(data, model, pool, options,
                                     &batch_stats));
  // The cardinality is a sum over ALL targets, so the batch's per-target
  // salvage does not apply here: the first failed target's status (in
  // target order) fails the whole query, matching the pre-salvage
  // behavior.
  for (const Status& status : batch_stats.target_status) {
    SKYPREF_RETURN_IF_ERROR(status);
  }
  // Plain left-to-right sum in target order: the legacy overload summed the
  // per-target results the same way, so the total stays bit-identical.
  double total = 0.0;
  // skypref-analyze: allow(kahan-discipline)
  for (double sky : skylines) total += sky;
  return total;
}

Result<double> ExpectedSkylineCardinality(const Dataset& data,
                                          const PreferenceModel& model,
                                          const SolverOptions& options) {
  ThreadPool pool(0);  // inline execution, no worker threads
  return ExpectedSkylineCardinality(data, model, pool, options);
}

Result<Rational> ExactSkylineProbabilityRational(
    const Dataset& data, ObjectId target, const RationalPreferenceModel& model,
    bool preprocess, const ExactOptions& options) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() - 1);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  RationalOracle oracle(model);
  if (!preprocess) {
    return ExactSkylineProbability(data, target, candidates, oracle, options);
  }
  candidates = AbsorbCandidates(data, target, candidates);
  Rational result(1);
  for (const auto& group : PartitionCandidates(data, target, candidates)) {
    SKYPREF_ASSIGN_OR_RETURN(
        Rational group_prob,
        ExactSkylineProbability(data, target, group, oracle, options));
    result = result * group_prob;
  }
  return result;
}

}  // namespace skypref
