#ifndef SKYPREF_CORE_PROB_SKYLINE_H_
#define SKYPREF_CORE_PROB_SKYLINE_H_

/// \file
/// The exact probabilistic skyline query.
///
/// "Probabilistic skyline" (Pei et al., adapted by the paper to
/// uncertain preferences) asks for all objects whose skyline probability
/// is at least tau. The sampling route (src/core/all_worlds.h) answers
/// it approximately; this module answers it EXACTLY, yet usually much
/// cheaper than n exact solves: each object is first screened with
/// certified Bonferroni bounds (src/core/bounds.h) after absorption +
/// partition, and only objects whose interval straddles tau pay for a
/// full exact computation.

#include <vector>

#include "src/core/bounds.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/status.h"

namespace skypref {

struct ProbSkylineStats {
  /// Objects decided by bounds alone (no exact solve needed).
  std::size_t decided_by_bounds = 0;
  /// Objects that required the exact fallback.
  std::size_t exact_fallbacks = 0;
};

/// All objects with sky(object) >= tau, in increasing id order. Exact.
Result<std::vector<ObjectId>> ExactProbabilisticSkyline(
    const Dataset& data, const PreferenceModel& model, double tau,
    const BoundsOptions& options = {}, ProbSkylineStats* stats = nullptr);

}  // namespace skypref

#endif  // SKYPREF_CORE_PROB_SKYLINE_H_
