#include "src/core/resilient.h"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <utility>

#include "src/core/absorption.h"
#include "src/core/exact.h"
#include "src/core/monte_carlo.h"
#include "src/core/oracles.h"
#include "src/core/partition.h"
#include "src/core/sam_bitslice.h"
#include "src/core/sam_parallel.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace skypref {

namespace {

// Rung-1 outcome of one independence group.
struct ExactAttempt {
  Status status;
  double value = 1.0;
  std::uint64_t subsets_visited = 0;
};

// Runs the exact engine on every group, longest-first over the pool.
// Each attempt is an independent SERIAL solve, so per-group values (and
// therefore the recombined product) are bit-identical to the sequential
// SkylineSolver::Exact loop at every thread count.
std::vector<ExactAttempt> RunExactRung(
    const Dataset& data, ObjectId target,
    const std::vector<std::vector<ObjectId>>& groups,
    const PreferenceModel& model, const ExactOptions& exact_options,
    ThreadPool& pool) {
  std::vector<ExactAttempt> attempts(groups.size());
  std::vector<std::size_t> order(groups.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&groups](std::size_t a, std::size_t b) {
                     return groups[a].size() > groups[b].size();
                   });
  pool.ParallelFor(order.size(), [&](std::size_t slot) {
    std::size_t g = order[slot];
    DoubleOracle oracle(model);
    ExactStats stats;
    Result<double> result = ExactSkylineProbability(
        data, target, groups[g], oracle, exact_options, &stats);
    attempts[g].subsets_visited = stats.subsets_visited;
    if (result.ok()) {
      attempts[g].value = *result;
    } else {
      attempts[g].status = result.status();
    }
  });
  return attempts;
}

// Rung 2 for one exhausted group. Runs the block-deterministic parallel
// engine: a group reaches this rung precisely because it is too big for
// Det+, so its world blocks fan out over the pool — and the estimate is
// bit-identical at every thread count, preserving the ladder's
// determinism contract. Returns an error only for cancellation; deadline
// truncation keeps the partial estimate at its widened Hoeffding bar.
Result<GroupReport> RunSampledRung(const Dataset& data, ObjectId target,
                                   const std::vector<ObjectId>& group,
                                   const PreferenceModel& model,
                                   const MonteCarloOptions& mc_options,
                                   ThreadPool& pool, SolveStats& stats) {
  SKYPREF_ASSIGN_OR_RETURN(
      MonteCarloResult mc,
      mc_options.engine == MonteCarloOptions::Engine::kBitSliced
          ? BitSlicedMonteCarloSkylineProbability(data, target, group, model,
                                                  pool, mc_options)
          : BlockMonteCarloSkylineProbability(data, target, group, model, pool,
                                              mc_options));
  stats.samples_drawn += mc.samples;
  stats.pair_draws += mc.pair_draws;
  GroupReport report;
  report.quality = GroupQuality::kSampled;
  report.survival = mc.estimate;
  report.delta = mc_options.delta;
  report.samples = mc.samples;
  // An explicit sample count or a truncated run certifies whatever
  // epsilon the achieved draw supports; only a full Hoeffding-derived
  // run earns the requested epsilon.
  if (mc.truncated || mc_options.samples != 0) {
    report.epsilon = HoeffdingEpsilon(mc.samples, mc_options.delta);
  } else {
    report.epsilon = mc_options.epsilon;
  }
  report.lower = ClampProbability(mc.estimate - report.epsilon);
  report.upper = ClampProbability(mc.estimate + report.epsilon);
  return report;
}

// Rung 3: the certified interval. Level 0 is always available, so this
// cannot exhaust.
Result<GroupReport> RunBoundedRung(const Dataset& data, ObjectId target,
                                   const std::vector<ObjectId>& group,
                                   const PreferenceModel& model,
                                   const BoundsOptions& bounds_options) {
  SKYPREF_ASSIGN_OR_RETURN(
      SkylineBounds bounds,
      BoundedSkylineProbability(data, target, group, model, bounds_options));
  GroupReport report;
  report.quality = GroupQuality::kBounded;
  report.lower = bounds.lower;
  report.upper = bounds.upper;
  report.survival = 0.5 * (bounds.lower + bounds.upper);
  report.epsilon = 0.5 * bounds.width();
  return report;
}

}  // namespace

const char* GroupQualityToString(GroupQuality quality) {
  switch (quality) {
    case GroupQuality::kExact:
      return "exact";
    case GroupQuality::kSampled:
      return "sampled";
    case GroupQuality::kBounded:
      return "bounded";
  }
  return "unknown";
}

Result<ResilientResult> ResilientSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const ResilientOptions& options) {
  SKYPREF_RETURN_IF_ERROR(data.Validate());
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  const CancelToken* cancel =
      options.cancel != nullptr ? options.cancel : options.solver.exact.cancel;
  if (cancel != nullptr && cancel->cancelled()) return CancelledStatus();

  // ONE deadline governs every rung of this query.
  Deadline deadline = internal::ResolveDeadline(options.solver.exact);

  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() - 1);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }

  ResilientResult result;
  result.stats.candidates = candidates.size();

  std::vector<std::vector<ObjectId>> groups;
  if (options.solver.preprocess) {
    candidates = AbsorbCandidates(data, target, candidates);
    groups = PartitionCandidates(data, target, candidates);
  } else if (!candidates.empty()) {
    groups.push_back(candidates);
  }
  result.stats.after_absorption = candidates.size();
  result.stats.groups = groups.size();
  result.stats.group_sizes.reserve(groups.size());
  for (const auto& group : groups) {
    result.stats.group_sizes.push_back(group.size());
    result.stats.largest_group =
        std::max(result.stats.largest_group, group.size());
  }

  // Rung 1: exact attempt on every group under the shared budget.
  ExactOptions exact_options = options.solver.exact;
  exact_options.deadline = deadline;
  exact_options.cancel = cancel;
  std::vector<ExactAttempt> attempts =
      RunExactRung(data, target, groups, model, exact_options, pool);

  // Cancellation and genuine errors (bad input) abort the ladder; only
  // ResourceExhausted is degradable. Scanned in partition order so the
  // reported error is deterministic.
  std::size_t exhausted = 0;
  for (const ExactAttempt& attempt : attempts) {
    result.stats.subsets_visited += attempt.subsets_visited;
    if (attempt.status.ok()) continue;
    if (attempt.status.code() == StatusCode::kResourceExhausted) {
      ++exhausted;
    } else {
      return attempt.status;
    }
  }

  // Rungs 2 and 3, in partition order so the forked seeds (and therefore
  // the estimates) are deterministic given the exhaustion set. Each
  // sampled rung internally fans its world blocks out over the pool; the
  // block engine keeps the estimate bit-identical per thread count.
  MonteCarloOptions mc_options = options.solver.monte_carlo;
  if (exhausted > 0) {
    if (mc_options.samples == 0) {
      double share = static_cast<double>(exhausted);
      mc_options.epsilon = options.solver.monte_carlo.epsilon / share;
      mc_options.delta = options.solver.monte_carlo.delta / share;
    } else {
      mc_options.delta =
          options.solver.monte_carlo.delta / static_cast<double>(exhausted);
    }
    if (!mc_options.deadline.has_value()) mc_options.deadline = deadline;
    mc_options.cancel = cancel;
  }
  Rng seeder(options.solver.monte_carlo.seed);

  result.groups.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    GroupReport report;
    report.size = groups[g].size();
    if (attempts[g].status.ok()) {
      report.quality = GroupQuality::kExact;
      report.survival = attempts[g].value;
      report.lower = ClampProbability(attempts[g].value);
      report.upper = report.lower;
    } else {
      report.exact_status = attempts[g].status;
      if (cancel != nullptr && cancel->cancelled()) return CancelledStatus();
      // The sampled rung needs wall time; once the query deadline is
      // spent, go straight to the certified interval (cheap and
      // deterministic). An unusable sampling configuration falls the
      // same way — only cancellation aborts.
      bool try_sampling = !deadline.Expired();
      bool sampled = false;
      if (try_sampling) {
        MonteCarloOptions per_group = mc_options;
        per_group.seed = seeder.Fork();
        Result<GroupReport> rung = RunSampledRung(data, target, groups[g],
                                                  model, per_group, pool,
                                                  result.stats);
        if (rung.ok()) {
          report.quality = rung->quality;
          report.survival = rung->survival;
          report.lower = rung->lower;
          report.upper = rung->upper;
          report.epsilon = rung->epsilon;
          report.delta = rung->delta;
          report.samples = rung->samples;
          sampled = true;
        } else if (rung.status().code() == StatusCode::kCancelled) {
          return rung.status();
        }
      }
      if (!sampled) {
        SKYPREF_ASSIGN_OR_RETURN(
            GroupReport rung,
            RunBoundedRung(data, target, groups[g], model, options.bounds));
        rung.size = report.size;
        rung.exact_status = report.exact_status;
        report = rung;
      }
      result.fully_exact = false;
    }
    result.groups.push_back(std::move(report));
  }

  // Theorem-4 recombination with the telescoping error bound. The
  // epsilon/delta sums run over a handful of groups in fixed partition
  // order — compensation would change the published bound for nothing.
  double product = 1.0;
  for (const GroupReport& report : result.groups) {
    product *= report.survival;
    result.lower *= report.lower;
    result.upper *= report.upper;
    // skypref-analyze: allow(kahan-discipline)
    result.epsilon += report.epsilon;
    // skypref-analyze: allow(kahan-discipline)
    result.delta += report.delta;
  }
  result.estimate = ClampProbability(product);
  result.lower = ClampProbability(result.lower);
  result.upper = ClampProbability(result.upper);
  result.delta = std::min(result.delta, 1.0);
  SKYPREF_DCHECK(result.lower <= result.upper);
  return result;
}

Result<ResilientResult> ResilientSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const ResilientOptions& options) {
  ThreadPool pool(0);  // inline execution, no worker threads
  return ResilientSkylineProbability(data, target, model, pool, options);
}

Result<ResilientBatchResult> ResilientBatchSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const ResilientOptions& options) {
  ResilientBatchResult batch;
  SKYPREF_ASSIGN_OR_RETURN(
      batch.estimates,
      BatchExactSkylineProbabilities(data, model, pool, options.solver,
                                     &batch.batch_stats));
  std::size_t targets = batch.estimates.size();
  batch.quality.assign(targets, GroupQuality::kExact);
  batch.epsilons.assign(targets, 0.0);
  batch.deltas.assign(targets, 0.0);
  for (std::size_t t = 0; t < targets; ++t) {
    if (batch.batch_stats.target_status[t].ok()) continue;
    // Re-answer the failed target through the ladder; groups that fit
    // the budget still resolve exactly, the rest degrade.
    SKYPREF_ASSIGN_OR_RETURN(
        ResilientResult salvaged,
        ResilientSkylineProbability(data, static_cast<ObjectId>(t), model,
                                    pool, options));
    batch.estimates[t] = salvaged.estimate;
    batch.epsilons[t] = salvaged.epsilon;
    batch.deltas[t] = salvaged.delta;
    GroupQuality worst = GroupQuality::kExact;
    for (const GroupReport& report : salvaged.groups) {
      worst = std::max(worst, report.quality);
    }
    batch.quality[t] = worst;
    if (!salvaged.fully_exact) ++batch.degraded_targets;
  }
  return batch;
}

}  // namespace skypref
