#ifndef SKYPREF_CORE_SAM_INTERNAL_H_
#define SKYPREF_CORE_SAM_INTERNAL_H_

/// \file
/// Shared plumbing of the Monte-Carlo engines (kBlock in sam_parallel.cc,
/// kBitSliced in sam_bitslice.cc): the flattened single-target instance,
/// the interned ternary batch plan, and the block-deterministic runner
/// that gives every engine the same seeding/truncation contract.
///
/// Everything here is an implementation detail exposed only so the two
/// engine translation units (and their tests) can share one copy of the
/// numeric contract instead of drifting apart. The determinism rules are
/// documented on the public headers (sam_parallel.h, sam_bitslice.h).

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/cancel.h"
#include "src/util/failpoint.h"
#include "src/util/random.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace skypref {

struct BatchSamStats;  // sam_parallel.h

namespace internal {

/// Same poll cadence as the serial engine (monte_carlo.cc): every 64
/// worlds or every this many pair draws, whichever comes first.
inline constexpr std::uint64_t kPairDrawPollStride = 8192;

// -------------------------------------------------------------------------
// The flattened single-target instance
// -------------------------------------------------------------------------

/// The single-target instance flattened for the world loop, mirroring the
/// exact engine's FlatInstance: distinct (dim, value) preference pairs
/// become integer Bernoulli thresholds and each candidate owns a CSR
/// slice of pair ids, in checking-sequence order.
struct FlatSamInstance {
  std::vector<std::uint64_t> thresholds;  // per distinct pair
  std::vector<std::uint32_t> pair_ids;    // CSR payload
  std::vector<std::uint32_t> offsets;     // per candidate, size count+1

  std::size_t candidate_count() const { return offsets.size() - 1; }
  std::size_t pair_count() const { return thresholds.size(); }
};

FlatSamInstance BuildFlatSamInstance(const Dataset& data, ObjectId target,
                                     std::span<const ObjectId> candidates,
                                     const PreferenceModel& model);

// -------------------------------------------------------------------------
// The interned ternary batch plan
// -------------------------------------------------------------------------

/// Ternary orientation outcomes, stored per pair per world by the scalar
/// batch sampler (the bit-sliced one stores a mask pair instead).
inline constexpr std::uint8_t kLoPreferred = 0;
inline constexpr std::uint8_t kHiPreferred = 1;
inline constexpr std::uint8_t kIncomparable = 2;

/// The whole batch flattened: a global table of ternary orientation
/// variables (two integer cuts each: draw below cut_lo means lo
/// preferred, else below cut_hi means hi preferred, else incomparable)
/// plus a two-level CSR — per target a slice of candidate slots, per
/// slot a slice of packed requirements (pair_index << 1 | want_hi).
/// Candidates are in descending dominance-probability order per target.
struct BatchPlan {
  std::vector<std::uint64_t> cut_lo;
  std::vector<std::uint64_t> cut_hi;
  std::vector<std::uint32_t> reqs;
  std::vector<std::uint32_t> req_offsets;   // per candidate slot, slots+1
  std::vector<std::uint32_t> target_begin;  // per target, n+1, slot indices

  std::size_t pair_count() const { return cut_lo.size(); }
};

/// Phases A+B of both batch samplers: absorption + partition per target
/// (over \p pool, honoring options.preprocess) and the serial interning
/// pass that builds the shared ternary pair table. Fills the
/// preprocessing fields of \p stats (targets, absorbed, groups,
/// largest_group, distinct_pairs, pruned_candidates); the world-loop
/// fields (samples, pair_draws, truncated, requested_samples) stay
/// untouched for the caller's phase C.
BatchPlan BuildBatchPlan(const Dataset& data, const PreferenceModel& model,
                         ThreadPool& pool, const SolverOptions& options,
                         BatchSamStats& stats);

// -------------------------------------------------------------------------
// The block-deterministic runner
// -------------------------------------------------------------------------

/// What one block reported. `achieved`/`draws` of an incomplete block
/// are nonzero only for block 0 (which keeps its partial prefix); every
/// other stopped block discards its partial work so that the reduced
/// estimate is a pure function of the counted block prefix.
struct BlockOutcome {
  std::uint64_t achieved = 0;
  std::uint64_t draws = 0;
  bool complete = false;
};

/// The counted block prefix [0, end) and whether truncation happened.
struct BlockPrefix {
  std::uint64_t end = 0;
  bool truncated = false;
};

/// Applies the truncation contract: T = first incomplete block; blocks
/// past T never count, even when they finished. T == 0 still counts
/// block 0's kept partial prefix (a truncated run always carries at
/// least one world).
inline BlockPrefix CountedPrefix(const std::vector<BlockOutcome>& outcomes) {
  std::uint64_t t = outcomes.size();
  for (std::uint64_t b = 0; b < outcomes.size(); ++b) {
    if (!outcomes[b].complete) {
      t = b;
      break;
    }
  }
  if (t == outcomes.size()) return {t, false};
  return {std::max<std::uint64_t>(t, 1), true};
}

/// Fans `samples` worlds out over `pool` in fixed blocks of `block_size`.
/// `make_block(b)` builds block b's world closure (owning any per-block
/// state); the closure is then called with (rng, step, &draws) — asked
/// for `step` consecutive worlds at a time, at most `chunk` per call —
/// against block b's private SplitSeed(seed, b) Rng. The scalar engines
/// pass chunk = 1 (one world per call, polls at the serial cadence after
/// every world); the bit-sliced engine passes chunk = 64 (one mask word
/// per call, polls after every word). Deterministic per (seed,
/// block_size, chunk) at every thread count; see sam_parallel.h for the
/// truncation contract. Returns Cancelled when any block observes a
/// tripped token.
template <typename MakeBlockFn>
Status RunDeterministicBlocks(ThreadPool& pool, std::uint64_t samples,
                              std::uint64_t block_size, std::uint64_t chunk,
                              std::uint64_t seed, const Deadline& deadline,
                              const CancelToken* cancel,
                              std::vector<BlockOutcome>& outcomes,
                              MakeBlockFn&& make_block) {
  const std::uint64_t num_blocks = (samples + block_size - 1) / block_size;
  outcomes.assign(num_blocks, BlockOutcome{});

  // The "sampler.block" failpoint is consumed SERIALLY over the block
  // indices before dispatch, so "fires on hit k" poisons block k at every
  // thread count (the deterministic-checkpoint placement rule of
  // failpoint.h). Block 0 is exempt: the reduced estimate always keeps at
  // least block 0's prefix.
  std::uint64_t poisoned = num_blocks;
  for (std::uint64_t b = 1; b < num_blocks; ++b) {
    if (SKYPREF_FAILPOINT("sampler.block")) {
      poisoned = b;
      break;
    }
  }

  // First block known to be stopped or poisoned. Later blocks use it to
  // skip work the prefix rule would discard anyway; skipping never
  // changes the counted prefix, because a skipped block is strictly
  // after the first stopped one.
  std::atomic<std::uint64_t> first_stop(poisoned);
  std::atomic<bool> cancelled(false);

  pool.ParallelFor(static_cast<std::size_t>(num_blocks), [&](std::size_t bi) {
    const std::uint64_t b = static_cast<std::uint64_t>(bi);
    if (b > 0 && b >= first_stop.load(std::memory_order_relaxed)) return;
    const std::uint64_t begin = b * block_size;
    const std::uint64_t want = std::min(block_size, samples - begin);
    Rng rng(SplitSeed(seed, b));
    auto world = make_block(b);
    BlockOutcome& out = outcomes[b];
    std::uint64_t draws_at_last_poll = 0;
    while (out.achieved < want) {
      const std::uint64_t step = std::min(chunk, want - out.achieved);
      world(rng, step, &out.draws);
      out.achieved += step;
      // Poll after sampling (serial cadence), so block 0's kept prefix is
      // never empty and a cheap block never pays a clock read per world.
      if (((out.achieved & 63) == 0 ||
           out.draws - draws_at_last_poll >= kPairDrawPollStride) &&
          out.achieved < want) {
        draws_at_last_poll = out.draws;
        if (cancel != nullptr && cancel->cancelled()) {
          cancelled.store(true, std::memory_order_relaxed);
          return;
        }
        if (deadline.Expired()) {
          std::uint64_t cur = first_stop.load(std::memory_order_relaxed);
          while (b < cur && !first_stop.compare_exchange_weak(
                                cur, b, std::memory_order_relaxed)) {
          }
          if (b > 0) {
            // A mid-block partial of a later block is timing-dependent;
            // discard it entirely — the prefix rule drops block b anyway.
            out.achieved = 0;
            out.draws = 0;
          }
          return;
        }
      }
    }
    out.complete = true;
  });

  if (cancelled.load(std::memory_order_relaxed)) return CancelledStatus();
  return Status::OK();
}

}  // namespace internal
}  // namespace skypref

#endif  // SKYPREF_CORE_SAM_INTERNAL_H_
