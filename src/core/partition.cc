#include "src/core/partition.h"

namespace skypref {

std::vector<std::vector<ObjectId>> PartitionCandidates(
    const Dataset& data, ObjectId target,
    std::span<const ObjectId> candidates) {
  PartitionWorkspace workspace;
  return PartitionCandidates(data, target, candidates, workspace);
}

std::vector<std::vector<ObjectId>> PartitionCandidates(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    PartitionWorkspace& workspace) {
  UnionFind& sets = workspace.sets;
  sets.Reset(candidates.size());

  // First candidate position seen per shared (dim, value); later users of
  // the same value are unioned with it.
  auto& first_user = workspace.first_user;
  first_user.clear();
  for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
    for (DimensionId j = 0; j < data.dimensions(); ++j) {
      ValueId v = data.value(candidates[pos], j);
      if (v == data.value(target, j)) continue;  // factor 1, never couples
      auto [it, inserted] = first_user.try_emplace({j, v}, pos);
      if (!inserted) sets.Union(it->second, pos);
    }
  }

  std::vector<std::vector<ObjectId>> groups;
  std::vector<std::size_t>& group_of = workspace.group_of;
  group_of.assign(candidates.size(), static_cast<std::size_t>(-1));
  for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
    std::size_t root = sets.Find(pos);
    if (group_of[root] == static_cast<std::size_t>(-1)) {
      group_of[root] = groups.size();
      groups.emplace_back();
    }
    groups[group_of[root]].push_back(candidates[pos]);
  }
  return groups;
}

}  // namespace skypref
