#ifndef SKYPREF_CORE_PARALLEL_H_
#define SKYPREF_CORE_PARALLEL_H_

/// \file
/// Thread-parallel variants of the heavy solvers.
///
/// Parallelism follows the algorithms' natural grain:
///
///  * Det+ — the independence groups of Theorem 4 are, by construction,
///    independent subproblems; they solve concurrently and their
///    survival factors multiply. Groups are dispatched longest-first so
///    one straggler group no longer serializes the tail, and a group
///    large enough to dominate the query is itself split into subtree
///    tasks by ParallelExactEngine (see below), so Det+ no longer goes
///    single-threaded when one group holds nearly all candidates.
///  * intra-group DFS — the inclusion-exclusion tree of one flattened
///    instance splits at its top levels into independent subtree tasks.
///    The decomposition is a pure function of the instance and
///    ParallelOptions::exact_tasks (never of the thread count), each task
///    accumulates its subtree with its own compensated accumulator, and
///    the per-task totals are reduced in task-creation order — so the
///    result is bit-identical for every thread count, including an
///    inline 0-thread pool. The task count is part of the numeric
///    contract, exactly like sample_chunks below.
///  * Sam — sampled worlds are i.i.d.; the m worlds split into a fixed
///    number of chunks, each with a PRNG seeded from the CHUNK INDEX, so
///    the estimate is bit-identical for every thread count (including a
///    0-thread pool, which runs inline).
///  * all-objects estimation — same chunking, with one SharedWorldSampler
///    clone per chunk (worlds must stay internally consistent, so a
///    chunk never shares its memo table with another).
///
/// Time limits: a multi-solve query computes ONE shared deadline up
/// front (ExactOptions::deadline) and passes it to every group solve, so
/// the total wall time honors options.time_limit_seconds once — not once
/// per group, which previously allowed groups x limit overshoot.
///
/// Cancellation: ExactOptions::cancel is polled at task boundaries and
/// at the same bounded in-task cadence as the deadline. A token
/// cancelled before the solve starts yields Status::Cancelled at every
/// thread count (each task observes it at its boundary); a token
/// cancelled mid-solve aborts every task still running, and the first
/// recorded abort status — the cancel — wins the reduction.
///
/// Failpoints (SKYPREF_FAILPOINTS builds): "parallel.task" fires at a
/// task boundary and aborts the engine the way an organic budget trip
/// does; "exact.dfs" fires inside the serial per-group engines.

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/core/all_worlds.h"
#include "src/core/exact.h"
#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace skypref {

struct ParallelOptions {
  /// Worlds are split into this many independently-seeded chunks; the
  /// result depends on the chunk count but NOT on the thread count.
  std::uint32_t sample_chunks = 32;

  /// Target number of subtree tasks when one exact DFS is split across
  /// the pool. Like sample_chunks, the value is part of the numeric
  /// contract: results depend on it (the reduction re-associates the
  /// compensated sums at task boundaries) but never on the thread count.
  std::uint32_t exact_tasks = 64;

  /// Independence groups with at least this many candidates run on the
  /// intra-group parallel DFS; smaller groups solve serially (one task
  /// per group). Also part of the numeric contract.
  std::size_t min_split_candidates = 16;
};

/// Det+ with longest-first parallel group solves and intra-group subtree
/// parallelism for dominating groups. Same preprocessing as
/// SkylineSolver::Exact; per-group survival factors multiply in partition
/// order. Bit-identical for every thread count of \p pool.
Result<double> ParallelExactSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const ExactOptions& options = {},
    const ParallelOptions& parallel = {}, SolveStats* stats = nullptr);

/// Sam with chunked parallel world sampling. Deterministic per
/// (options.seed, parallel.sample_chunks); thread-count independent.
Result<MonteCarloResult> ParallelMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const MonteCarloOptions& options = {},
    const ParallelOptions& parallel = {});

/// All-objects estimation with chunked parallel world sampling.
Result<AllWorldsResult> ParallelEstimateAllSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const AllWorldsOptions& options = {}, const ParallelOptions& parallel = {});

// -------------------------------------------------------------------------
// Implementation: the intra-group parallel DFS engine
// -------------------------------------------------------------------------

namespace internal {

/// Splits one flattened inclusion-exclusion DFS into independent subtree
/// tasks and reduces their totals deterministically.
///
/// Protocol (the three phases may not overlap):
///   1. BuildTasks()          — serial. Expands the top of the DFS tree
///                              breadth-first until ~target_tasks subtree
///                              roots exist, accumulating the expanded
///                              prefixes' own terms in creation order.
///   2. RunTask(k), k < task_count() — thread-compatible; each k exactly
///                              once, any order, any thread. Tasks charge
///                              a shared atomic subset budget and observe
///                              the shared deadline.
///   3. Reduce(stats)         — serial. Folds the per-task subtree totals
///                              into the prefix accumulator in task-
///                              creation order and returns the result (or
///                              the first recorded error).
///
/// Determinism: the decomposition depends only on (instance, options,
/// target_tasks); per-task totals are scheduling-independent; the
/// reduction order is fixed. Hence the result is bit-identical for every
/// thread count. Success-vs-ResourceExhausted is deterministic too: the
/// total charged against max_subsets is the same full enumeration count
/// regardless of interleaving.
template <typename Oracle>
class ParallelExactEngine {
 public:
  using Num = typename Oracle::NumType;

  /// The instance must outlive the engine. \p target_tasks >= 1.
  ParallelExactEngine(const FlatInstance<Oracle>& instance,
                      const ExactOptions& options, std::uint32_t target_tasks)
      : instance_(&instance),
        options_(options),
        deadline_(ResolveDeadline(options)),
        target_tasks_(target_tasks > 0 ? target_tasks : 1) {}

  ParallelExactEngine(const ParallelExactEngine&) = delete;
  ParallelExactEngine& operator=(const ParallelExactEngine&) = delete;

  /// Phase 1; returns false when expansion already exhausted the budget
  /// or deadline (Reduce reports the error; tasks are then empty).
  bool BuildTasks() {
    // Solve-boundary cancel check (the expansion's own poll runs only
    // every 256 visits).
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      build_status_ = CancelledStatus();
      return false;
    }
    build_status_ = Status::OK();
    prefix_acc_ = Accumulator<Num>();
    prefix_acc_.Add(Num(1));  // the k = 0 term of Eq. 4
    expansion_visited_ = 0;
    const std::size_t m = instance_->candidate_count();
    if (m == 0) return true;

    std::vector<std::uint32_t> counts(instance_->pair_count(), 0);
    std::deque<Task> queue;
    queue.push_back(Task{{}, 0, Num(1), /*positive_sign=*/false});
    while (!queue.empty()) {
      // Keep the state as a task once enough subtree roots exist; the
      // queue is breadth-first, so the biggest subtrees split first.
      if (queue.size() + tasks_.size() >= target_tasks_ ||
          queue.front().next >= m) {
        Task task = std::move(queue.front());
        queue.pop_front();
        if (task.next < m) tasks_.push_back(std::move(task));
        continue;
      }
      Task state = std::move(queue.front());
      queue.pop_front();
      // Replay the prefix multiplicities, then run ONE level of the DFS:
      // accumulate each child's term and queue the child subtree.
      for (std::uint32_t c : state.prefix) {
        for (std::uint32_t p : instance_->pairs_of(c)) ++counts[p];
      }
      for (std::uint32_t i = state.next;
           i < static_cast<std::uint32_t>(m) && build_status_.ok(); ++i) {
        if (!ChargeExpansionVisit()) break;
        Num extended = state.product;
        std::span<const std::uint32_t> pairs = instance_->pairs_of(i);
        for (std::uint32_t p : pairs) {
          if (counts[p]++ == 0) extended = extended * instance_->pair_prob[p];
        }
        prefix_acc_.Add(state.positive_sign ? extended : -extended);
        if (!options_.prune_zero || !(extended == Num(0))) {
          Task child;
          child.prefix = state.prefix;
          child.prefix.push_back(i);
          child.next = i + 1;
          child.product = extended;
          child.positive_sign = !state.positive_sign;
          if (child.next < m) queue.push_back(std::move(child));
        }
        for (std::uint32_t p : pairs) --counts[p];
      }
      for (std::uint32_t c : state.prefix) {
        for (std::uint32_t p : instance_->pairs_of(c)) --counts[p];
      }
      if (!build_status_.ok()) {
        tasks_.clear();
        return false;
      }
    }
    task_values_.resize(tasks_.size());
    task_visited_.assign(tasks_.size(), 0);
    task_statuses_.assign(tasks_.size(), Status::OK());
    charged_.store(expansion_visited_, std::memory_order_relaxed);
    return true;
  }

  std::size_t task_count() const { return tasks_.size(); }

  /// Phase 2: runs subtree task \p k to completion (or until the shared
  /// budget/deadline trips, or cancellation is observed). Thread-
  /// compatible across distinct k. Cancellation is checked here, at the
  /// task boundary, so a pre-cancelled token aborts every task
  /// identically at any thread count.
  void RunTask(std::size_t k) {
    const Task& task = tasks_[k];
    TaskContext ctx;
    if (SKYPREF_FAILPOINT("parallel.task")) {
      Status failed = Status::ResourceExhausted("failpoint parallel.task");
      task_statuses_[k] = failed;
      RecordAbort(failed);
      return;
    }
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      Status cancelled = CancelledStatus();
      task_statuses_[k] = cancelled;
      RecordAbort(cancelled);
      return;
    }
    if (Aborted()) {
      task_statuses_[k] = AbortStatus();
      return;
    }
    ctx.counts.assign(instance_->pair_count(), 0);
    for (std::uint32_t c : task.prefix) {
      for (std::uint32_t p : instance_->pairs_of(c)) ++ctx.counts[p];
    }
    TaskDfs(ctx, task.next, task.product, task.positive_sign);
    FlushCharges(ctx);
    task_visited_[k] = ctx.total_visits;
    task_values_[k] = ctx.acc.Value();
    task_statuses_[k] = ctx.status;
  }

  /// Phase 3: deterministic fixed-order reduction.
  Result<Num> Reduce(ExactStats* stats) {
    std::uint64_t visited = expansion_visited_;
    for (std::uint64_t v : task_visited_) visited += v;
    if (stats != nullptr) stats->subsets_visited = visited;
    if (!build_status_.ok()) return build_status_;
    for (const Status& status : task_statuses_) {
      if (!status.ok()) return status;
    }
    Accumulator<Num> total = prefix_acc_;
    for (const Num& value : task_values_) total.Add(value);
    return total.Value();
  }

  /// Convenience: all three phases over \p pool.
  Result<Num> Run(ThreadPool& pool, ExactStats* stats = nullptr) {
    if (BuildTasks()) {
      pool.ParallelFor(tasks_.size(), [this](std::size_t k) { RunTask(k); });
    }
    return Reduce(stats);
  }

 private:
  struct Task {
    std::vector<std::uint32_t> prefix;  // candidate indices forming I
    std::uint32_t next = 0;             // first extension index
    Num product{};                      // Pr(E_I)
    bool positive_sign = false;         // sign of the children's terms
  };

  struct TaskContext {
    std::vector<std::uint32_t> counts;
    Accumulator<Num> acc;
    std::uint64_t total_visits = 0;
    std::uint64_t pending_visits = 0;
    Status status;
  };

  // Charges visits in batches against the shared budget so the atomic is
  // touched every kChargeBatch subsets, not every subset.
  static constexpr std::uint64_t kChargeBatch = 1024;

  void TaskDfs(TaskContext& ctx, std::uint32_t next, const Num& product,
               bool positive_sign) {
    const std::uint32_t m = static_cast<std::uint32_t>(
        instance_->candidate_count());
    for (std::uint32_t i = next; i < m && ctx.status.ok(); ++i) {
      if (!ChargeTaskVisit(ctx)) return;
      Num extended = product;
      std::span<const std::uint32_t> pairs = instance_->pairs_of(i);
      for (std::uint32_t p : pairs) {
        if (ctx.counts[p]++ == 0) {
          extended = extended * instance_->pair_prob[p];
        }
      }
      ctx.acc.Add(positive_sign ? extended : -extended);
      if (!options_.prune_zero || !(extended == Num(0))) {
        TaskDfs(ctx, i + 1, extended, !positive_sign);
      }
      for (std::uint32_t p : pairs) --ctx.counts[p];
    }
  }

  bool ChargeTaskVisit(TaskContext& ctx) {
    ++ctx.total_visits;
    if (++ctx.pending_visits < kChargeBatch) return true;
    FlushCharges(ctx);
    if (!ctx.status.ok()) return false;
    if (Aborted()) {
      ctx.status = AbortStatus();
      return false;
    }
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      ctx.status = CancelledStatus();
      RecordAbort(ctx.status);
      return false;
    }
    if (deadline_.Expired()) {
      ctx.status = TimeLimitExhausted();
      RecordAbort(ctx.status);
      return false;
    }
    return true;
  }

  void FlushCharges(TaskContext& ctx) {
    if (ctx.pending_visits == 0) return;
    std::uint64_t total =
        charged_.fetch_add(ctx.pending_visits, std::memory_order_relaxed) +
        ctx.pending_visits;
    ctx.pending_visits = 0;
    if (options_.max_subsets != 0 && total > options_.max_subsets &&
        ctx.status.ok()) {
      ctx.status = SubsetBudgetExhausted(options_.max_subsets);
      RecordAbort(ctx.status);
    }
  }

  bool ChargeExpansionVisit() {
    ++expansion_visited_;
    if (options_.max_subsets != 0 &&
        expansion_visited_ > options_.max_subsets) {
      build_status_ = SubsetBudgetExhausted(options_.max_subsets);
      return false;
    }
    if ((expansion_visited_ & 0xff) == 0) {
      if (options_.cancel != nullptr && options_.cancel->cancelled()) {
        build_status_ = CancelledStatus();
        return false;
      }
      if (deadline_.Expired()) {
        build_status_ = TimeLimitExhausted();
        return false;
      }
    }
    return true;
  }

  bool Aborted() const { return abort_.load(std::memory_order_acquire); }

  void RecordAbort(const Status& status) SKYPREF_EXCLUDES(abort_mutex_) {
    {
      MutexLock lock(abort_mutex_);
      if (abort_status_.ok()) abort_status_ = status;
    }
    abort_.store(true, std::memory_order_release);
  }

  Status AbortStatus() SKYPREF_EXCLUDES(abort_mutex_) {
    MutexLock lock(abort_mutex_);
    return abort_status_.ok()
               ? Status::ResourceExhausted("exact solve aborted")
               : abort_status_;
  }

  const FlatInstance<Oracle>* instance_;
  ExactOptions options_;
  Deadline deadline_;
  std::uint32_t target_tasks_;

  // Phase 1 state (serial).
  std::vector<Task> tasks_;
  Accumulator<Num> prefix_acc_;
  std::uint64_t expansion_visited_ = 0;
  Status build_status_;

  // Phase 2 state (per-task slots + shared charging).
  std::vector<Num> task_values_;
  std::vector<std::uint64_t> task_visited_;
  std::vector<Status> task_statuses_;
  std::atomic<std::uint64_t> charged_{0};
  std::atomic<bool> abort_{false};
  Mutex abort_mutex_;
  Status abort_status_ SKYPREF_GUARDED_BY(abort_mutex_);
};

}  // namespace internal

}  // namespace skypref

#endif  // SKYPREF_CORE_PARALLEL_H_
