#ifndef SKYPREF_CORE_PARALLEL_H_
#define SKYPREF_CORE_PARALLEL_H_

/// \file
/// Thread-parallel variants of the heavy solvers.
///
/// Parallelism follows the algorithms' natural grain:
///
///  * Det+ — the independence groups of Theorem 4 are, by construction,
///    independent subproblems; they solve concurrently and their
///    survival factors multiply.
///  * Sam — sampled worlds are i.i.d.; the m worlds split into a fixed
///    number of chunks, each with a PRNG seeded from the CHUNK INDEX, so
///    the estimate is bit-identical for every thread count (including a
///    0-thread pool, which runs inline).
///  * all-objects estimation — same chunking, with one SharedWorldSampler
///    clone per chunk (worlds must stay internally consistent, so a
///    chunk never shares its memo table with another).

#include <cstdint>

#include "src/core/all_worlds.h"
#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace skypref {

struct ParallelOptions {
  /// Worlds are split into this many independently-seeded chunks; the
  /// result depends on the chunk count but NOT on the thread count.
  std::uint32_t sample_chunks = 32;
};

/// Det+ with per-group parallel exact solves. Identical result to
/// SkylineSolver::Exact with preprocessing (group results multiply in a
/// fixed order).
Result<double> ParallelExactSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const ExactOptions& options = {});

/// Sam with chunked parallel world sampling. Deterministic per
/// (options.seed, parallel.sample_chunks); thread-count independent.
Result<MonteCarloResult> ParallelMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const MonteCarloOptions& options = {},
    const ParallelOptions& parallel = {});

/// All-objects estimation with chunked parallel world sampling.
Result<AllWorldsResult> ParallelEstimateAllSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const AllWorldsOptions& options = {}, const ParallelOptions& parallel = {});

}  // namespace skypref

#endif  // SKYPREF_CORE_PARALLEL_H_
