#ifndef SKYPREF_CORE_ABSORPTION_H_
#define SKYPREF_CORE_ABSORPTION_H_

/// \file
/// The "absorption" preprocessing technique (Section 5, Theorem 3,
/// Algorithm 3).
///
/// Candidate Qj is absorbed by candidate Qi when Qj matches Qi on every
/// dimension where Qi differs from the target O. In any possible world
/// where Qj dominates O, Qi also dominates O (on the differing dimensions
/// Qi's values ARE Qj's values; elsewhere Qi equals O), so the event
/// "Qj dominates O" is contained in "Qi dominates O" and Qj contributes
/// nothing to sky(O) = Pr(no candidate dominates O). Absorption is
/// transitive (Corollary 1), so one pass in arbitrary order suffices.
///
/// Complexity: posting lists per (dimension, value) make the scan roughly
/// O(n d) for the value distributions of the evaluation; the degenerate
/// worst case (everything collides) is O(n^2 d) like the paper's one-pass
/// description.

#include <span>
#include <vector>

#include "src/model/dataset.h"
#include "src/model/types.h"

namespace skypref {

struct AbsorptionStats {
  std::size_t input_candidates = 0;
  std::size_t absorbed = 0;
};

/// Returns the candidates that survive absorption, in their input order.
/// Candidates equal to the target on every dimension (duplicates) are
/// dropped as well — they can never strictly dominate.
std::vector<ObjectId> AbsorbCandidates(const Dataset& data, ObjectId target,
                                       std::span<const ObjectId> candidates,
                                       AbsorptionStats* stats = nullptr);

/// True iff \p absorbed is absorbed by \p absorber with respect to
/// \p target, i.e. they match on every dimension where the absorber
/// differs from the target (and the absorber does differ somewhere).
bool Absorbs(const Dataset& data, ObjectId target, ObjectId absorber,
             ObjectId absorbed);

}  // namespace skypref

#endif  // SKYPREF_CORE_ABSORPTION_H_
