#ifndef SKYPREF_CORE_ABSORPTION_H_
#define SKYPREF_CORE_ABSORPTION_H_

/// \file
/// The "absorption" preprocessing technique (Section 5, Theorem 3,
/// Algorithm 3).
///
/// Candidate Qj is absorbed by candidate Qi when Qj matches Qi on every
/// dimension where Qi differs from the target O. In any possible world
/// where Qj dominates O, Qi also dominates O (on the differing dimensions
/// Qi's values ARE Qj's values; elsewhere Qi equals O), so the event
/// "Qj dominates O" is contained in "Qi dominates O" and Qj contributes
/// nothing to sky(O) = Pr(no candidate dominates O). Absorption is
/// transitive (Corollary 1), so one pass in arbitrary order suffices.
///
/// Complexity: posting lists per (dimension, value) make the scan roughly
/// O(n d) for the value distributions of the evaluation; the degenerate
/// worst case (everything collides) is O(n^2 d) like the paper's one-pass
/// description.

#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/model/dataset.h"
#include "src/model/types.h"
#include "src/util/hash.h"

namespace skypref {

struct AbsorptionStats {
  std::size_t input_candidates = 0;
  std::size_t absorbed = 0;
};

/// Returns the candidates that survive absorption, in their input order.
/// Candidates equal to the target on every dimension (duplicates) are
/// dropped as well — they can never strictly dominate.
std::vector<ObjectId> AbsorbCandidates(const Dataset& data, ObjectId target,
                                       std::span<const ObjectId> candidates,
                                       AbsorptionStats* stats = nullptr);

/// Global posting lists of a dataset: (dimension, value) -> the objects
/// using that value, in ascending ObjectId order. Built once, then shared
/// by every target of an all-objects query (the dominance-candidate
/// adjacency that AbsorbCandidates otherwise rebuilds per call). Immutable
/// after construction, so concurrent lookups are safe.
class ValuePostings {
 public:
  explicit ValuePostings(const Dataset& data);

  /// Objects whose value on \p dim is \p value; empty when unused.
  std::span<const ObjectId> list(DimensionId dim, ValueId value) const {
    auto it = postings_.find({dim, value});
    if (it == postings_.end()) return {};
    return it->second;
  }

 private:
  std::unordered_map<std::pair<DimensionId, ValueId>, std::vector<ObjectId>,
                     PairHash>
      postings_;
};

/// AbsorbCandidates over ALL objects except \p target, driven by the
/// shared \p postings index instead of per-call posting lists. Returns the
/// identical survivor list (same absorber scan order and tie-breaks): for
/// every dimension where an absorber differs from the target, the global
/// posting list equals the candidate-local one because the target's own
/// value differs and is therefore never listed.
std::vector<ObjectId> AbsorbAllCandidatesIndexed(const Dataset& data,
                                                 ObjectId target,
                                                 const ValuePostings& postings,
                                                 AbsorptionStats* stats =
                                                     nullptr);

/// True iff \p absorbed is absorbed by \p absorber with respect to
/// \p target, i.e. they match on every dimension where the absorber
/// differs from the target (and the absorber does differ somewhere).
bool Absorbs(const Dataset& data, ObjectId target, ObjectId absorber,
             ObjectId absorbed);

}  // namespace skypref

#endif  // SKYPREF_CORE_ABSORPTION_H_
