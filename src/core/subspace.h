#ifndef SKYPREF_CORE_SUBSPACE_H_
#define SKYPREF_CORE_SUBSPACE_H_

/// \file
/// Subspace skyline probabilities and the probabilistic skycube.
///
/// The skycube (Yuan et al., VLDB 2005 — cited by the paper as a skyline
/// variation) asks for the skyline in every non-empty subspace of the
/// dimensions; its probabilistic analogue under uncertain preferences
/// asks for sky_S(O) for every subspace S: the probability that no
/// object dominates O when only the dimensions in S are compared.
///
/// One subtlety separates a subspace solve from simply projecting the
/// data: after projection two distinct objects can coincide. A candidate
/// whose projection EQUALS the target's can never dominate it (nothing
/// is strictly preferred), so it must be excluded — whereas the solvers'
/// Eq. 6 machinery would assign its dominance event the empty product 1.
/// Coinciding candidate projections, on the other hand, are handled
/// correctly for free: identical value sets collapse in V_I^j, so their
/// (identical) dominance events are never double-counted.

#include <cstdint>
#include <vector>

#include "src/core/exact.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/status.h"

namespace skypref {

/// A set of dimensions as a bitmask (bit j = dimension j). Must be
/// non-zero and within the dataset's dimensionality.
using SubspaceMask = std::uint32_t;

/// Exact sky of \p target within subspace \p mask (Det+ machinery:
/// absorption + partition run on the projected instance).
Result<double> SubspaceSkylineProbability(const Dataset& data,
                                          ObjectId target, SubspaceMask mask,
                                          const PreferenceModel& model,
                                          const ExactOptions& options = {});

/// One cell of the probabilistic skycube.
struct SkycubeCell {
  SubspaceMask mask = 0;
  std::size_t dimensions = 0;  ///< popcount of mask
  double probability = 0.0;
};

/// sky_S(target) for every non-empty subspace S, ordered by (popcount,
/// mask). Requires d <= 20 (2^d - 1 cells). Cost: one Det+ solve per
/// cell; budget via \p options applies per cell.
Result<std::vector<SkycubeCell>> ProbabilisticSkycube(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const ExactOptions& options = {});

}  // namespace skypref

#endif  // SKYPREF_CORE_SUBSPACE_H_
