#include "src/core/all_worlds.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/util/hash.h"

namespace skypref {

std::uint64_t AllWorldsSampleSize(double epsilon, double delta,
                                  std::size_t n) {
  if (epsilon <= 0.0 || delta <= 0.0 || delta >= 1.0 || n == 0) return 0;
  double m = std::log(2.0 * static_cast<double>(n) / delta) /
             (2.0 * epsilon * epsilon);
  return static_cast<std::uint64_t>(std::ceil(m));
}

namespace {

struct PairKey {
  DimensionId dim;
  ValueId lo;
  ValueId hi;
  bool operator==(const PairKey& o) const {
    return dim == o.dim && lo == o.lo && hi == o.hi;
  }
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const {
    std::size_t h = HashCombine(std::size_t{0xfeed1234}, k.dim);
    h = HashCombine(h, k.lo);
    return HashCombine(h, k.hi);
  }
};

}  // namespace

SharedWorldSampler::SharedWorldSampler(const Dataset& data,
                                       const PreferenceModel& model) {
  const DimensionId d = static_cast<DimensionId>(data.dimensions());
  const std::size_t n = data.size();
  std::unordered_map<PairKey, std::uint32_t, PairKeyHash> pair_index;
  per_target_.resize(n);
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId c = 0; c < n; ++c) {
      if (c == i) continue;
      Candidate candidate;
      candidate.dominance_probability = 1.0;
      bool possible = true;
      for (DimensionId j = 0; j < d && possible; ++j) {
        ValueId vc = data.value(c, j);
        ValueId vi = data.value(i, j);
        if (vc == vi) continue;
        ValueId lo = std::min(vc, vi);
        ValueId hi = std::max(vc, vi);
        PrefPair pair = model.GetPair(j, lo, hi);
        double toward_candidate = vc == lo ? pair.less : pair.greater;
        // Exact-zero test: Pr = 0 means the orientation can never be
        // drawn, so the candidate is pruned from the sampling plan.
        if (toward_candidate == 0.0) {  // skypref-lint: allow(float-eq)
          possible = false;
          break;
        }
        candidate.dominance_probability *= toward_candidate;
        auto [it, inserted] = pair_index.try_emplace(
            PairKey{j, lo, hi}, static_cast<std::uint32_t>(pair_less_.size()));
        if (inserted) {
          pair_less_.push_back(pair.less);
          pair_greater_.push_back(pair.greater);
        }
        candidate.requirements.push_back(
            Requirement{it->second, vc == lo ? Orientation::kLoPreferred
                                             : Orientation::kHiPreferred});
      }
      // A candidate with no differing dimension would duplicate the
      // target; Dataset::Validate guarantees that cannot happen.
      if (possible && !candidate.requirements.empty()) {
        per_target_[i].push_back(std::move(candidate));
      }
    }
    std::stable_sort(per_target_[i].begin(), per_target_[i].end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.dominance_probability >
                              b.dominance_probability;
                     });
  }
  outcome_.assign(pair_less_.size(), Orientation::kIncomparable);
  epoch_mark_.assign(pair_less_.size(), 0);
}

bool SharedWorldSampler::Survives(ObjectId target, Rng& rng,
                                  std::uint64_t* pair_draws) {
  for (const Candidate& candidate : per_target_[target]) {
    bool dominates = true;
    for (const Requirement& req : candidate.requirements) {
      if (epoch_mark_[req.pair_index] != epoch_) {
        epoch_mark_[req.pair_index] = epoch_;
        double u = rng.NextDouble();
        if (u < pair_less_[req.pair_index]) {
          outcome_[req.pair_index] = Orientation::kLoPreferred;
        } else if (u < pair_less_[req.pair_index] +
                           pair_greater_[req.pair_index]) {
          outcome_[req.pair_index] = Orientation::kHiPreferred;
        } else {
          outcome_[req.pair_index] = Orientation::kIncomparable;
        }
        ++*pair_draws;
      }
      if (outcome_[req.pair_index] != req.want) {
        dominates = false;
        break;
      }
    }
    if (dominates) return false;
  }
  return true;
}

Result<AllWorldsResult> EstimateAllSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model,
    const AllWorldsOptions& options) {
  SKYPREF_RETURN_IF_ERROR(data.Validate());
  const std::size_t n = data.size();
  std::uint64_t samples =
      options.samples != 0
          ? options.samples
          : AllWorldsSampleSize(options.epsilon, options.delta, n);
  if (samples == 0) {
    return Status::InvalidArgument(
        "all-worlds estimation needs samples > 0 (or valid epsilon/delta)");
  }

  const Deadline deadline = options.deadline.has_value()
                                ? *options.deadline
                                : Deadline::After(options.time_limit_seconds);

  SharedWorldSampler sampler(data, model);
  Rng rng(options.seed);
  AllWorldsResult result;
  result.samples = samples;
  std::vector<std::uint64_t> survived(n, 0);

  for (std::uint64_t h = 0; h < samples; ++h) {
    // Poll every 64 worlds — one world touches every object, so this is
    // already a coarse-grained checkpoint; h == 0 is included so a
    // pre-cancelled token stops before any sampling work.
    if ((h & 63) == 0) {
      SKYPREF_RETURN_IF_ERROR(CheckStop(options.cancel, deadline));
    }
    sampler.NextWorld();
    for (ObjectId i = 0; i < n; ++i) {
      if (sampler.Survives(i, rng, &result.pair_draws)) ++survived[i];
    }
  }

  result.estimates.resize(n);
  for (ObjectId i = 0; i < n; ++i) {
    result.estimates[i] =
        static_cast<double>(survived[i]) / static_cast<double>(samples);
  }
  return result;
}

Result<std::vector<ObjectId>> ProbabilisticSkyline(
    const Dataset& data, const PreferenceModel& model, double tau,
    const AllWorldsOptions& options) {
  if (tau <= 0.0 || tau >= 1.0) {
    return Status::InvalidArgument(
        "probabilistic skyline threshold must lie in (0,1)");
  }
  SKYPREF_ASSIGN_OR_RETURN(
      AllWorldsResult all,
      EstimateAllSkylineProbabilities(data, model, options));
  std::vector<ObjectId> skyline;
  for (ObjectId i = 0; i < all.estimates.size(); ++i) {
    if (all.estimates[i] >= tau) skyline.push_back(i);
  }
  return skyline;
}

Result<std::vector<std::pair<ObjectId, double>>> TopKSkyline(
    const Dataset& data, const PreferenceModel& model, std::size_t k,
    const AllWorldsOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  SKYPREF_ASSIGN_OR_RETURN(
      AllWorldsResult all,
      EstimateAllSkylineProbabilities(data, model, options));
  std::vector<std::pair<ObjectId, double>> ranked;
  ranked.reserve(all.estimates.size());
  for (ObjectId i = 0; i < all.estimates.size(); ++i) {
    ranked.emplace_back(i, all.estimates[i]);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace skypref
