#ifndef SKYPREF_CORE_RESILIENT_H_
#define SKYPREF_CORE_RESILIENT_H_

/// \file
/// The resilient solve ladder: exact where affordable, sampled where
/// not, certified bounds as the last rung — never a lost query.
///
/// Exact skyline probability is #P-complete (Theorem 1), so under any
/// real budget the Det+ path WILL exhaust on adversarial independence
/// groups. The plain solvers answer that with ResourceExhausted,
/// discarding the exact factors of every group that did finish. This
/// ladder instead degrades per group, leaning on two guarantees the
/// paper already provides:
///
///  * Theorem 4 — sky(O) is the product of per-group survival factors,
///    so groups can be answered by DIFFERENT algorithms and recombined;
///  * Theorem 2 (Hoeffding) — Sam estimates one group within epsilon at
///    confidence 1 - delta, and the telescoping bound documented in
///    solver.h (|prod a - prod b| <= sum |a_t - b_t| for factors in
///    [0,1]) caps the recombined error by the SUM of per-group epsilons.
///
/// Ladder per independence group, under ONE shared query deadline:
///
///   rung 1  Det   — the exact engine with the caller's subset budget.
///   rung 2  Sam   — for groups whose exact solve exhausted: Monte-Carlo
///                   with the (epsilon, delta) budget split evenly over
///                   the exhausted groups. A deadline-truncated sample
///                   keeps its partial estimate at the widened
///                   HoeffdingEpsilon(achieved_samples, delta) bar.
///   rung 3  bounds — when the deadline is already spent (or Sam cannot
///                   run): the certified Bonferroni interval of
///                   bounds.h, whose midpoint enters the product and
///                   whose half-width enters the error bar. Level 0
///                   ([0, 1]) always exists, so this rung cannot fail.
///
/// The result annotates every group with the rung that answered it and
/// recombines: estimate = prod survival_t, error bar = sum epsilon_t,
/// overall confidence 1 - sum delta_t. When NO group exhausts, the
/// answer is bit-identical to SkylineSolver::Exact with the same
/// options, at every thread count of the pool — the ladder costs
/// nothing until the moment it is needed.
///
/// Cancellation (ResilientOptions::cancel) is different from exhaustion:
/// it means the answer is no longer wanted, aborts the whole ladder, and
/// returns Status::Cancelled.

#include <cstdint>
#include <vector>

#include "src/core/bounds.h"
#include "src/core/solver.h"
#include "src/util/cancel.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace skypref {

/// Which rung of the ladder answered a group.
enum class GroupQuality : std::uint8_t {
  kExact,    ///< rung 1: exact inclusion-exclusion value
  kSampled,  ///< rung 2: Monte-Carlo estimate, (epsilon, delta) annotated
  kBounded,  ///< rung 3: certified interval, midpoint used
};

/// "exact" / "sampled" / "bounded".
const char* GroupQualityToString(GroupQuality quality);

/// Outcome of one independence group, in partition order.
struct GroupReport {
  std::size_t size = 0;  ///< candidates in the group
  GroupQuality quality = GroupQuality::kExact;
  /// The survival factor entering the Theorem-4 product.
  double survival = 1.0;
  /// Per-group interval: degenerate [survival, survival] for kExact,
  /// survival +/- epsilon (clamped) for kSampled, the certified
  /// Bonferroni interval for kBounded.
  double lower = 1.0;
  double upper = 1.0;
  /// Error bar on this factor: 0 for kExact, the (possibly widened)
  /// Hoeffding epsilon for kSampled, the interval half-width for
  /// kBounded.
  double epsilon = 0.0;
  /// Failure probability of this factor's bar (kSampled only; the other
  /// rungs are certain).
  double delta = 0.0;
  /// Worlds drawn by the kSampled rung (0 otherwise).
  std::uint64_t samples = 0;
  /// Why rung 1 gave up (ResourceExhausted); OK when quality == kExact.
  Status exact_status;
};

/// A finite answer with per-group quality annotations and a recombined
/// error bar.
struct ResilientResult {
  /// Product of per-group survival factors, clamped to [0, 1].
  double estimate = 1.0;
  /// Interval product (monotone for factors in [0, 1]): certain for
  /// exact/bounded groups, holding with probability >= 1 - delta over
  /// the sampled ones.
  double lower = 1.0;
  double upper = 1.0;
  /// Telescoping bound on |estimate - sky(target)|: the SUM of
  /// per-group epsilons. 0 iff fully_exact.
  double epsilon = 0.0;
  /// Union bound over the sampled groups' failure probabilities.
  double delta = 0.0;
  /// True iff every group was answered by rung 1 — then estimate is
  /// bit-identical to SkylineSolver::Exact with the same options.
  bool fully_exact = true;
  std::vector<GroupReport> groups;  ///< partition order
  SolveStats stats;
};

struct ResilientOptions {
  /// Preprocessing toggle and the rung-1 exact budget (solver.exact) and
  /// rung-2 sampling budget (solver.monte_carlo: epsilon and delta are
  /// the TOTAL fallback budget, split evenly over the groups that
  /// exhaust; seed forks per sampled group).
  SolverOptions solver;
  /// Rung 3: the certified-interval budget. The defaults keep the rung
  /// cheap — level <= 2 costs at most |group|^2 / 2 terms.
  BoundsOptions bounds = {.max_level = 2, .term_budget = 1u << 16};
  /// Cancels the whole ladder (all rungs poll it). Overrides
  /// solver.exact.cancel / solver.monte_carlo.cancel when set.
  const CancelToken* cancel = nullptr;
};

/// The ladder over \p pool: group exact solves are dispatched
/// longest-first, fallbacks run after all exact attempts settle.
/// Deterministic given deterministic rung-1 outcomes (a subset budget is
/// deterministic; a wall-clock deadline is not), and bit-identical to
/// SkylineSolver::Exact at every thread count when no group exhausts.
Result<ResilientResult> ResilientSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const ResilientOptions& options = {});

/// Single-threaded convenience overload (an inline 0-thread pool).
Result<ResilientResult> ResilientSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    const ResilientOptions& options = {});

/// All-objects resilient solve: runs BatchExactSkylineProbabilities and
/// re-answers every target the batch had to fail (per its
/// BatchExactStats::target_status) through the ladder. Every target gets
/// a finite estimate; targets the batch solved keep their bit-identical
/// exact values.
struct ResilientBatchResult {
  std::vector<double> estimates;      ///< finite for every target
  std::vector<GroupQuality> quality;  ///< worst rung used per target
  std::vector<double> epsilons;       ///< recombined bar per target
  std::vector<double> deltas;
  std::size_t degraded_targets = 0;  ///< targets not answered exactly
  BatchExactStats batch_stats;
};

Result<ResilientBatchResult> ResilientBatchSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const ResilientOptions& options = {});

}  // namespace skypref

#endif  // SKYPREF_CORE_RESILIENT_H_
