#include "src/core/sam_bitslice.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "src/core/dominance.h"
#include "src/core/sam_internal.h"
#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/try_alloc.h"

namespace skypref {

namespace {

using internal::BatchPlan;
using internal::BlockOutcome;
using internal::BlockPrefix;
using internal::CountedPrefix;
using internal::FlatSamInstance;
using internal::RunDeterministicBlocks;

/// Lanes [0, step) of a possibly-partial trailing chunk.
inline std::uint64_t ValidLanes(std::uint64_t step) {
  return step >= 64 ? ~0ULL : ((1ULL << step) - 1);
}

/// Drops candidates that can dominate in NO world — some required pair
/// has probability exactly zero — and compacts the pair table to the
/// survivors. The scalar engines skip this (their lazy first-draw
/// abandon makes impossible candidates nearly free, and their streams
/// are pinned); here every candidate alive in the chunk loop costs mask
/// words until all 64 lanes are covered, so impossible ones would
/// dominate the per-chunk cost on workloads with many incomparable
/// pairs (e.g. block-local models). Removing them changes no world's
/// verdict, only the stream — which this engine owns.
FlatSamInstance PruneImpossible(const FlatSamInstance& inst) {
  constexpr std::uint32_t kUnmapped = ~std::uint32_t{0};
  FlatSamInstance out;
  std::vector<std::uint32_t> remap(inst.thresholds.size(), kUnmapped);
  out.offsets.push_back(0);
  const std::size_t count = inst.candidate_count();
  for (std::size_t c = 0; c < count; ++c) {
    const std::uint32_t begin = inst.offsets[c];
    const std::uint32_t end = inst.offsets[c + 1];
    bool possible = true;
    for (std::uint32_t i = begin; i < end; ++i) {
      if (inst.thresholds[inst.pair_ids[i]] == 0) {
        possible = false;
        break;
      }
    }
    if (!possible) continue;
    for (std::uint32_t i = begin; i < end; ++i) {
      const std::uint32_t p = inst.pair_ids[i];
      if (remap[p] == kUnmapped) {
        remap[p] = static_cast<std::uint32_t>(out.thresholds.size());
        out.thresholds.push_back(inst.thresholds[p]);
      }
      out.pair_ids.push_back(remap[p]);
    }
    out.offsets.push_back(static_cast<std::uint32_t>(out.pair_ids.size()));
  }
  return out;
}

// -------------------------------------------------------------------------
// Single-target chunk state
// -------------------------------------------------------------------------

/// Chunks whose pair masks are drawn together: NextBernoulliWords8
/// produces one pair's masks for eight consecutive chunks per call, so
/// the memo granularity is the 512-world SUPERCHUNK, not the chunk.
constexpr std::uint64_t kChunksPerGroup = 8;

/// Per-block mask memo of the single-target engine: per distinct pair,
/// eight Bernoulli mask words (one per chunk of the current superchunk)
/// drawn in a single wide call, epoch-stamped so a new superchunk
/// invalidates every pair without clearing. The eight-lane generator is
/// seeded from the block's own Rng on first use, preserving the
/// block-seeding contract (the stream is a function of the block index
/// alone).
struct SliceState {
  explicit SliceState(std::size_t pairs)
      : epoch_mark(pairs, 0), mask(pairs * kChunksPerGroup) {}

  std::vector<std::uint64_t> epoch_mark;
  std::vector<std::uint64_t> mask;  // mask[p * kChunksPerGroup + lane]
  std::uint64_t epoch = 0;  // superchunk epoch
  std::uint64_t chunk = 0;  // chunk index within the block
  std::optional<OctoRng> oct;
};

/// Evaluates one 64-world chunk; returns the word of surviving lanes
/// (restricted to \p valid). Lazy mode generates a pair's masks only
/// when some candidate still dominating somewhere first touches the
/// pair during the superchunk, and abandons a candidate as soon as its
/// accumulated AND dies — the word-level analog of the scalar engine's
/// first-dominator abandon. A trailing superchunk shorter than eight
/// chunks simply leaves its unused lanes undrained (pair_draws counts
/// GENERATED lane draws, 512 per wide call).
std::uint64_t SampleChunk(const FlatSamInstance& inst, SliceState& state,
                          Rng& rng, bool lazy, std::uint64_t valid,
                          std::uint64_t* pair_draws) {
  const std::uint64_t lane = state.chunk % kChunksPerGroup;
  ++state.chunk;
  if (lane == 0) {
    ++state.epoch;  // new superchunk: every pair's masks are stale
    if (!state.oct.has_value()) state.oct.emplace(rng);
  }
  OctoRng& oct = *state.oct;
  if (!lazy && lane == 0) {
    for (std::size_t p = 0; p < inst.thresholds.size(); ++p) {
      NextBernoulliWords8(oct, inst.thresholds[p],
                          &state.mask[p * kChunksPerGroup]);
      state.epoch_mark[p] = state.epoch;
      *pair_draws += 64 * kChunksPerGroup;
    }
  }
  std::uint64_t dominated = 0;
  const std::size_t count = inst.candidate_count();
  for (std::size_t c = 0; c < count; ++c) {
    const std::uint32_t begin = inst.offsets[c];
    const std::uint32_t end = inst.offsets[c + 1];
    if (begin == end) continue;  // would duplicate the target; be safe
    std::uint64_t acc = ~0ULL;
    for (std::uint32_t i = begin; i < end; ++i) {
      const std::uint32_t p = inst.pair_ids[i];
      if (state.epoch_mark[p] != state.epoch) {
        state.epoch_mark[p] = state.epoch;
        NextBernoulliWords8(oct, inst.thresholds[p],
                            &state.mask[p * kChunksPerGroup]);
        *pair_draws += 64 * kChunksPerGroup;
      }
      acc &= state.mask[p * kChunksPerGroup + lane];
      if (acc == 0) break;  // candidate dominates in no world of the chunk
    }
    dominated |= acc;
    if ((dominated & valid) == valid) break;  // every lane already dominated
  }
  return ~dominated & valid;
}

// -------------------------------------------------------------------------
// Batch chunk state
// -------------------------------------------------------------------------

/// Per-block mask memo of the batch engine: per distinct ternary pair,
/// TWO mutually exclusive masks per chunk (lo-beats-hi, hi-beats-lo)
/// drawn jointly by NextTernaryWords and shared by every target.
struct BatchSliceState {
  explicit BatchSliceState(std::size_t pairs)
      : epoch_mark(pairs, 0), lo_mask(pairs), hi_mask(pairs) {}

  std::vector<std::uint64_t> epoch_mark;
  std::vector<std::uint64_t> lo_mask;
  std::vector<std::uint64_t> hi_mask;
  std::uint64_t epoch = 0;
};

/// Worlds of the current chunk in which \p target survives. Orientation
/// masks are drawn lazily on first touch (always lazy, like the scalar
/// batch sampler) and memoized for the rest of the chunk, so all targets
/// see the same 64 sampled worlds.
std::uint64_t BatchChunkSurvivors(const BatchPlan& plan, BatchSliceState& state,
                                  ObjectId target, Rng& rng,
                                  std::uint64_t valid,
                                  std::uint64_t* pair_draws) {
  std::uint64_t dominated = 0;
  const std::uint32_t begin = plan.target_begin[target];
  const std::uint32_t end = plan.target_begin[target + 1];
  for (std::uint32_t slot = begin; slot < end; ++slot) {
    std::uint64_t acc = ~0ULL;
    const std::uint32_t rb = plan.req_offsets[slot];
    const std::uint32_t re = plan.req_offsets[slot + 1];
    for (std::uint32_t r = rb; r < re; ++r) {
      const std::uint32_t packed = plan.reqs[r];
      const std::uint32_t p = packed >> 1;
      if (state.epoch_mark[p] != state.epoch) {
        state.epoch_mark[p] = state.epoch;
        NextTernaryWords(rng, plan.cut_lo[p], plan.cut_hi[p],
                         &state.lo_mask[p], &state.hi_mask[p]);
        *pair_draws += 64;
      }
      acc &= (packed & 1) != 0 ? state.hi_mask[p] : state.lo_mask[p];
      if (acc == 0) break;
    }
    dominated |= acc;
    if ((dominated & valid) == valid) break;
  }
  return ~dominated & valid;
}

}  // namespace

// -------------------------------------------------------------------------
// Single-target engine
// -------------------------------------------------------------------------

Result<MonteCarloResult> BitSlicedMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, ThreadPool& pool,
    const MonteCarloOptions& options) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  for (ObjectId id : candidates) {
    if (id >= data.size()) {
      return Status::OutOfRange("candidate object out of range");
    }
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
  }
  std::uint64_t samples = options.samples != 0
                              ? options.samples
                              : HoeffdingSampleSize(options.epsilon,
                                                    options.delta);
  if (samples == 0) {
    return Status::InvalidArgument(
        "Monte Carlo needs samples > 0 (or valid epsilon/delta)");
  }
  if (options.block_size == 0 || options.block_size % 64 != 0) {
    return Status::InvalidArgument(
        "bit-sliced engine needs block_size a positive multiple of 64");
  }

  // Algorithm 2 line 1, shared by every block's chunks.
  std::vector<ObjectId> ordered(candidates.begin(), candidates.end());
  if (options.sort_by_dominance) {
    std::vector<std::pair<double, ObjectId>> keyed;
    keyed.reserve(ordered.size());
    for (ObjectId id : ordered) {
      keyed.emplace_back(DominanceProbability(data, id, target, model), id);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (std::size_t i = 0; i < keyed.size(); ++i) ordered[i] = keyed[i].second;
  }

  Deadline deadline = options.deadline.has_value()
                          ? options.deadline
                          : Deadline::After(options.time_limit_seconds);
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return CancelledStatus();
  }

  SKYPREF_ASSIGN_OR_RETURN(FlatSamInstance inst,
                           TryAlloc("alloc.sam.instance", [&] {
                             return PruneImpossible(
                                 internal::BuildFlatSamInstance(data, target,
                                                                ordered, model));
                           }));
  // The per-block mask-memo arenas are allocated inside worker dispatch,
  // where no Status can surface; probe the allocation once up front so
  // an injected (or organic) arena failure lands here deterministically.
  {
    auto probe = TryAlloc("alloc.sam.slice_arena",
                          [&] { return SliceState(inst.pair_count()); });
    SKYPREF_RETURN_IF_ERROR(probe.status());
  }
  const std::uint64_t num_blocks =
      (samples + options.block_size - 1) / options.block_size;
  std::vector<std::uint64_t> survived(num_blocks, 0);
  std::vector<BlockOutcome> outcomes;
  const bool lazy = options.lazy;
  SKYPREF_RETURN_IF_ERROR(RunDeterministicBlocks(
      pool, samples, options.block_size, /*chunk=*/64, options.seed, deadline,
      options.cancel, outcomes, [&](std::uint64_t b) {
        return [&inst, &survived, b, lazy,
                state = SliceState(inst.pair_count())](
                   Rng& rng, std::uint64_t step, std::uint64_t* draws) mutable {
          survived[b] += static_cast<std::uint64_t>(std::popcount(
              SampleChunk(inst, state, rng, lazy, ValidLanes(step), draws)));
        };
      }));

  const BlockPrefix prefix = CountedPrefix(outcomes);
  MonteCarloResult result;
  result.requested_samples = samples;
  result.truncated = prefix.truncated;
  for (std::uint64_t b = 0; b < prefix.end; ++b) {
    result.samples += outcomes[b].achieved;
    result.pair_draws += outcomes[b].draws;
    result.skyline_worlds += survived[b];
  }
  result.estimate = static_cast<double>(result.skyline_worlds) /
                    static_cast<double>(result.samples);
  SKYPREF_DCHECK(result.skyline_worlds <= result.samples);
  SKYPREF_DCHECK_PROB(result.estimate);
  return result;
}

Result<MonteCarloResult> BitSlicedMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const MonteCarloOptions& options) {
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() > 0 ? data.size() - 1 : 0);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  return BitSlicedMonteCarloSkylineProbability(data, target, candidates, model,
                                               pool, options);
}

// -------------------------------------------------------------------------
// Batch engine
// -------------------------------------------------------------------------

Result<std::vector<double>> BitSlicedBatchMonteCarloSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const SolverOptions& options, BatchSamStats* stats) {
  SKYPREF_RETURN_IF_ERROR(data.Validate());
  SKYPREF_RETURN_IF_ERROR(model.Validate(data));
  const std::size_t n = data.size();
  const MonteCarloOptions& mc = options.monte_carlo;
  std::uint64_t samples = mc.samples != 0
                              ? mc.samples
                              : HoeffdingSampleSize(mc.epsilon, mc.delta);
  if (samples == 0) {
    return Status::InvalidArgument(
        "Monte Carlo needs samples > 0 (or valid epsilon/delta)");
  }
  if (mc.block_size == 0 || mc.block_size % 64 != 0) {
    return Status::InvalidArgument(
        "bit-sliced engine needs block_size a positive multiple of 64");
  }
  Deadline deadline = mc.deadline.has_value()
                          ? mc.deadline
                          : Deadline::After(mc.time_limit_seconds);
  if (mc.cancel != nullptr && mc.cancel->cancelled()) {
    return CancelledStatus();
  }

  BatchSamStats local;
  local.requested_samples = samples;
  SKYPREF_ASSIGN_OR_RETURN(
      BatchPlan plan, TryAlloc("alloc.sam.batch_plan", [&] {
        return internal::BuildBatchPlan(data, model, pool, options, local);
      }));
  // Same up-front probe as the single-target engine: the per-block
  // arenas themselves are built where no Status can surface.
  {
    auto probe = TryAlloc("alloc.sam.slice_arena",
                          [&] { return BatchSliceState(plan.pair_count()); });
    SKYPREF_RETURN_IF_ERROR(probe.status());
  }

  const std::uint64_t num_blocks =
      (samples + mc.block_size - 1) / mc.block_size;
  std::vector<std::vector<std::uint64_t>> survived(
      num_blocks, std::vector<std::uint64_t>(n, 0));
  std::vector<BlockOutcome> outcomes;
  SKYPREF_RETURN_IF_ERROR(RunDeterministicBlocks(
      pool, samples, mc.block_size, /*chunk=*/64, mc.seed, deadline, mc.cancel,
      outcomes, [&](std::uint64_t b) {
        return [&plan, counts = survived[b].data(), n,
                state = BatchSliceState(plan.pair_count())](
                   Rng& rng, std::uint64_t step, std::uint64_t* draws) mutable {
          ++state.epoch;
          const std::uint64_t valid = ValidLanes(step);
          for (ObjectId t = 0; t < n; ++t) {
            counts[t] += static_cast<std::uint64_t>(std::popcount(
                BatchChunkSurvivors(plan, state, t, rng, valid, draws)));
          }
        };
      }));

  const BlockPrefix prefix = CountedPrefix(outcomes);
  local.truncated = prefix.truncated;
  for (std::uint64_t b = 0; b < prefix.end; ++b) {
    local.samples += outcomes[b].achieved;
    local.pair_draws += outcomes[b].draws;
  }
  std::vector<double> estimates(n, 0.0);
  for (ObjectId t = 0; t < n; ++t) {
    std::uint64_t hits = 0;
    for (std::uint64_t b = 0; b < prefix.end; ++b) hits += survived[b][t];
    estimates[t] =
        static_cast<double>(hits) / static_cast<double>(local.samples);
    SKYPREF_DCHECK_PROB(estimates[t]);
  }
  if (stats != nullptr) *stats = local;
  return estimates;
}

}  // namespace skypref
