#include "src/core/parallel.h"

#include <algorithm>
#include <vector>

#include "src/core/absorption.h"
#include "src/core/exact.h"
#include "src/core/partition.h"
#include "src/util/check.h"
#include "src/util/hash.h"
#include "src/util/random.h"

namespace skypref {

Result<double> ParallelExactSkylineProbability(const Dataset& data,
                                               ObjectId target,
                                               const PreferenceModel& model,
                                               ThreadPool& pool,
                                               const ExactOptions& options) {
  SKYPREF_RETURN_IF_ERROR(data.Validate());
#if defined(SKYPREF_ENABLE_DCHECKS) && SKYPREF_ENABLE_DCHECKS
  SKYPREF_RETURN_IF_ERROR(model.Validate(data));
#endif
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() - 1);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  candidates = AbsorbCandidates(data, target, candidates);
  std::vector<std::vector<ObjectId>> groups =
      PartitionCandidates(data, target, candidates);

  std::vector<double> survival(groups.size(), 1.0);
  std::vector<Status> statuses(groups.size());
  DoubleOracle oracle(model);
  pool.ParallelFor(groups.size(), [&](std::size_t g) {
    auto result =
        ExactSkylineProbability(data, target, groups[g], oracle, options);
    if (result.ok()) {
      survival[g] = result.value();
    } else {
      statuses[g] = result.status();
    }
  });
  double product = 1.0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    SKYPREF_RETURN_IF_ERROR(statuses[g]);
    SKYPREF_DCHECK_PROB(survival[g]);
    product *= survival[g];
  }
  SKYPREF_DCHECK_PROB(product);
  return ClampProbability(product);
}

namespace {

/// Splits `total` into `chunks` nearly-equal pieces; piece i gets
/// total/chunks plus one of the remainder's units.
std::uint64_t ChunkSize(std::uint64_t total, std::uint32_t chunks,
                        std::uint32_t index) {
  std::uint64_t base = total / chunks;
  return base + (index < total % chunks ? 1 : 0);
}

}  // namespace

Result<MonteCarloResult> ParallelMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const MonteCarloOptions& options,
    const ParallelOptions& parallel) {
  if (parallel.sample_chunks == 0) {
    return Status::InvalidArgument("need at least one sample chunk");
  }
#if defined(SKYPREF_ENABLE_DCHECKS) && SKYPREF_ENABLE_DCHECKS
  SKYPREF_RETURN_IF_ERROR(model.Validate(data));
#endif
  std::uint64_t samples = options.samples != 0
                              ? options.samples
                              : HoeffdingSampleSize(options.epsilon,
                                                    options.delta);
  if (samples == 0) {
    return Status::InvalidArgument(
        "Monte Carlo needs samples > 0 (or valid epsilon/delta)");
  }
  const std::uint32_t chunks = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(parallel.sample_chunks, samples));

  std::vector<MonteCarloResult> partial(chunks);
  std::vector<Status> statuses(chunks);
  pool.ParallelFor(chunks, [&](std::size_t c) {
    MonteCarloOptions chunk_options = options;
    chunk_options.samples =
        ChunkSize(samples, chunks, static_cast<std::uint32_t>(c));
    // Seed from the chunk index, not the thread: bit-reproducible for
    // any thread count.
    chunk_options.seed =
        HashMix(options.seed ^ (0x9e3779b97f4a7c15ULL * (c + 1)));
    auto result =
        MonteCarloSkylineProbability(data, target, model, chunk_options);
    if (result.ok()) {
      partial[c] = result.value();
    } else {
      statuses[c] = result.status();
    }
  });

  MonteCarloResult combined;
  for (std::uint32_t c = 0; c < chunks; ++c) {
    SKYPREF_RETURN_IF_ERROR(statuses[c]);
    SKYPREF_DCHECK(partial[c].skyline_worlds <= partial[c].samples);
    combined.samples += partial[c].samples;
    combined.skyline_worlds += partial[c].skyline_worlds;
    combined.pair_draws += partial[c].pair_draws;
  }
  SKYPREF_DCHECK(combined.samples == samples);
  combined.estimate = static_cast<double>(combined.skyline_worlds) /
                      static_cast<double>(combined.samples);
  SKYPREF_DCHECK_PROB(combined.estimate);
  return combined;
}

Result<AllWorldsResult> ParallelEstimateAllSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const AllWorldsOptions& options, const ParallelOptions& parallel) {
  if (parallel.sample_chunks == 0) {
    return Status::InvalidArgument("need at least one sample chunk");
  }
  SKYPREF_RETURN_IF_ERROR(data.Validate());
  const std::size_t n = data.size();
  std::uint64_t samples =
      options.samples != 0
          ? options.samples
          : AllWorldsSampleSize(options.epsilon, options.delta, n);
  if (samples == 0) {
    return Status::InvalidArgument(
        "all-worlds estimation needs samples > 0 (or valid epsilon/delta)");
  }
  const std::uint32_t chunks = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(parallel.sample_chunks, samples));

  // One master plan, cloned per chunk (the per-world memo tables must not
  // be shared across concurrently sampled worlds).
  SharedWorldSampler master(data, model);
  std::vector<std::vector<std::uint64_t>> survived(
      chunks, std::vector<std::uint64_t>(n, 0));
  std::vector<std::uint64_t> draws(chunks, 0);
  pool.ParallelFor(chunks, [&](std::size_t c) {
    SharedWorldSampler sampler = master;  // value copy
    Rng rng(HashMix(options.seed ^ (0xa24baed4963ee407ULL * (c + 1))));
    std::uint64_t chunk_samples =
        ChunkSize(samples, chunks, static_cast<std::uint32_t>(c));
    for (std::uint64_t h = 0; h < chunk_samples; ++h) {
      sampler.NextWorld();
      for (ObjectId i = 0; i < n; ++i) {
        if (sampler.Survives(i, rng, &draws[c])) ++survived[c][i];
      }
    }
  });

  AllWorldsResult result;
  result.samples = samples;
  result.estimates.assign(n, 0.0);
  for (std::uint32_t c = 0; c < chunks; ++c) {
    result.pair_draws += draws[c];
    for (ObjectId i = 0; i < n; ++i) {
      result.estimates[i] += static_cast<double>(survived[c][i]);
    }
  }
  for (ObjectId i = 0; i < n; ++i) {
    result.estimates[i] /= static_cast<double>(samples);
    SKYPREF_DCHECK_PROB(result.estimates[i]);
  }
  return result;
}

}  // namespace skypref
