#include "src/core/parallel.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/core/absorption.h"
#include "src/core/exact.h"
#include "src/core/partition.h"
#include "src/util/cancel.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/hash.h"
#include "src/util/random.h"
#include "src/util/try_alloc.h"

namespace skypref {

namespace {

/// Group indices sorted by size descending, ties in partition order, so
/// the dynamic ParallelFor dispatch starts the stragglers first.
std::vector<std::size_t> LongestFirstOrder(
    const std::vector<std::vector<ObjectId>>& groups) {
  std::vector<std::size_t> order(groups.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&groups](std::size_t a, std::size_t b) {
                     return groups[a].size() > groups[b].size();
                   });
  return order;
}

}  // namespace

Result<double> ParallelExactSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const ExactOptions& options,
    const ParallelOptions& parallel, SolveStats* stats) {
  SKYPREF_RETURN_IF_ERROR(data.Validate());
#if defined(SKYPREF_ENABLE_DCHECKS) && SKYPREF_ENABLE_DCHECKS
  SKYPREF_RETURN_IF_ERROR(model.Validate(data));
#endif
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() - 1);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  SolveStats local;
  local.candidates = candidates.size();
  candidates = AbsorbCandidates(data, target, candidates);
  local.after_absorption = candidates.size();
  std::vector<std::vector<ObjectId>> groups =
      PartitionCandidates(data, target, candidates);
  local.groups = groups.size();
  local.group_sizes.reserve(groups.size());
  for (const auto& group : groups) {
    local.largest_group = std::max(local.largest_group, group.size());
    local.group_sizes.push_back(group.size());
  }

  // ONE deadline for the whole query. Resolving time_limit_seconds per
  // group solve (the previous behavior) let the total wall time reach
  // groups x limit.
  ExactOptions opts = options;
  opts.deadline = internal::ResolveDeadline(options);

  const std::size_t group_count = groups.size();
  DoubleOracle oracle(model);
  std::vector<double> survival(group_count, 1.0);
  std::vector<Status> statuses(group_count);
  std::vector<std::uint64_t> visited(group_count, 0);

  // Groups big enough to dominate the query split into subtree tasks;
  // the rest run serially, one work item per group. Everything goes into
  // a single flat work list — ParallelFor must not nest — dispatched
  // longest-first.
  std::vector<internal::FlatInstance<DoubleOracle>> instances(group_count);
  std::vector<std::unique_ptr<internal::ParallelExactEngine<DoubleOracle>>>
      engines(group_count);
  std::vector<std::function<void()>> work;
  for (std::size_t g : LongestFirstOrder(groups)) {
    const bool split = options.engine == ExactOptions::Engine::kFlat &&
                       parallel.exact_tasks > 1 &&
                       groups[g].size() >= parallel.min_split_candidates;
    if (split) {
      auto built = TryAlloc("alloc.exact.flat_instance", [&] {
        return internal::BuildFlatInstance(
            data, target, std::span<const ObjectId>(groups[g]), oracle);
      });
      if (!built.ok()) {
        statuses[g] = built.status();
        continue;
      }
      instances[g] = std::move(built).value();
      engines[g] =
          std::make_unique<internal::ParallelExactEngine<DoubleOracle>>(
              instances[g], opts, parallel.exact_tasks);
      if (engines[g]->BuildTasks()) {
        for (std::size_t k = 0; k < engines[g]->task_count(); ++k) {
          auto* engine = engines[g].get();
          work.push_back([engine, k] { engine->RunTask(k); });
        }
      }
    } else {
      work.push_back([&, g] {
        ExactStats exact_stats;
        auto result = ExactSkylineProbability(
            data, target, std::span<const ObjectId>(groups[g]), oracle, opts,
            &exact_stats);
        visited[g] = exact_stats.subsets_visited;
        if (result.ok()) {
          survival[g] = result.value();
        } else {
          statuses[g] = result.status();
        }
      });
    }
  }
  pool.ParallelFor(work.size(), [&work](std::size_t i) { work[i](); });
  for (std::size_t g = 0; g < group_count; ++g) {
    if (engines[g] == nullptr) continue;
    ExactStats exact_stats;
    auto result = engines[g]->Reduce(&exact_stats);
    visited[g] = exact_stats.subsets_visited;
    if (result.ok()) {
      survival[g] = result.value();
    } else {
      statuses[g] = result.status();
    }
  }

  // Survival factors multiply in partition order (Theorem 4); the first
  // failing group's status wins, also in partition order.
  double product = 1.0;
  for (std::size_t g = 0; g < group_count; ++g) {
    SKYPREF_RETURN_IF_ERROR(statuses[g]);
    SKYPREF_DCHECK_PROB(survival[g]);
    product *= survival[g];
    local.subsets_visited += visited[g];
  }
  if (stats != nullptr) *stats = local;
  SKYPREF_DCHECK_PROB(product);
  return ClampProbability(product);
}

namespace {

/// Packs one (dim, candidate value, target value) preference lookup into
/// a hashable key; ValueId is 32-bit, so both values fit one uint64.
using PairKey = std::pair<DimensionId, std::uint64_t>;
using PairProbCache = std::unordered_map<PairKey, double, PairHash>;

PairKey MakePairKey(DimensionId dim, ValueId a, ValueId b) {
  return {dim, (static_cast<std::uint64_t>(a) << 32) |
                   static_cast<std::uint64_t>(b)};
}

/// Oracle reading the shared precomputed probability table. Entries are
/// the exact doubles PreferenceModel::LessEq produced, so solves through
/// this oracle are bit-identical to uncached ones.
///
/// Concurrency contract: the cache is built serially in Phase B and is
/// immutable by the time worker threads read it through this oracle, so
/// it carries no mutex and no SKYPREF_GUARDED_BY — const-shared, not
/// lock-protected.
class CachedDoubleOracle {
 public:
  using NumType = double;

  explicit CachedDoubleOracle(const PairProbCache& cache) : cache_(&cache) {}

  double LessEq(DimensionId dim, ValueId a, ValueId b) const {
    auto it = cache_->find(MakePairKey(dim, a, b));
    SKYPREF_DCHECK(it != cache_->end());
    return it->second;
  }

 private:
  const PairProbCache* cache_;
};

/// Whether a failed target is worth one re-dispatch. Deterministic
/// failures are not: a blown subset budget or expired deadline fails
/// identically on retry (the messages below are the exact engines' fixed
/// strings, src/core/exact.h). Everything else ResourceExhausted —
/// allocation failure, injected scheduler faults — is transient: the
/// memory pressure or fault window that killed the first dispatch has
/// typically passed by the time the batch drains.
bool TransientFailure(const Status& status) {
  if (status.code() != StatusCode::kResourceExhausted) return false;
  const std::string& message = status.message();
  return message.find("subset budget") == std::string::npos &&
         message.find("time limit") == std::string::npos;
}

}  // namespace

Result<std::vector<double>> BatchExactSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const SolverOptions& options, BatchExactStats* stats) {
  SKYPREF_RETURN_IF_ERROR(data.Validate());
  SKYPREF_RETURN_IF_ERROR(model.Validate(data));
  const std::size_t n = data.size();

  BatchExactStats local;
  local.targets = n;

  // ONE deadline for the whole batch (see ExactOptions::deadline).
  ExactOptions exact = options.exact;
  exact.deadline = internal::ResolveDeadline(exact);

  // Phase A: absorption + partition per target, sharing the global
  // posting lists; chunked so each worker recycles one workspace. A
  // target whose workspace allocation fails is marked here and stamped
  // NaN in Phase C — groups[t].empty() cannot signal the failure because
  // full absorption legitimately leaves a target with no groups. The
  // postings outlive Phase A so the retry pass can rebuild a failed
  // target's partition.
  std::vector<std::vector<std::vector<ObjectId>>> groups(n);
  std::vector<Status> statuses(n);
  std::vector<unsigned char> phase_a_failed(n, 0);
  std::optional<ValuePostings> postings;
  if (options.preprocess) {
    postings.emplace(data);
    constexpr std::size_t kChunk = 16;
    const std::size_t chunks = (n + kChunk - 1) / kChunk;
    pool.ParallelFor(chunks, [&](std::size_t c) {
      PartitionWorkspace workspace;
      const std::size_t begin = c * kChunk;
      const std::size_t end = std::min(n, begin + kChunk);
      for (ObjectId t = begin; t < end; ++t) {
        auto built = TryAlloc("alloc.batch.partition", [&] {
          std::vector<ObjectId> candidates =
              AbsorbAllCandidatesIndexed(data, t, *postings);
          return PartitionCandidates(
              data, t, std::span<const ObjectId>(candidates), workspace);
        });
        if (built.ok()) {
          groups[t] = std::move(built).value();
        } else {
          statuses[t] = built.status();
          phase_a_failed[t] = 1;
        }
      }
    });
  } else {
    for (ObjectId t = 0; t < n; ++t) {
      std::vector<ObjectId> candidates;
      candidates.reserve(n - 1);
      for (ObjectId id = 0; id < n; ++id) {
        if (id != t) candidates.push_back(id);
      }
      groups[t].push_back(std::move(candidates));
    }
  }
  for (ObjectId t = 0; t < n; ++t) {
    if (phase_a_failed[t] != 0) continue;  // no partition to account for
    std::size_t after = 0;
    for (const auto& group : groups[t]) {
      after += group.size();
      local.largest_group = std::max(local.largest_group, group.size());
    }
    local.groups += groups[t].size();
    local.absorbed += (n - 1) - after;
  }

  // Phase B: every distinct Pr(q.j <= o.j) any target's pair table needs,
  // computed once. Serial — these model lookups ARE the work being
  // deduplicated across targets.
  PairProbCache cache;
  DoubleOracle oracle(model);
  for (ObjectId t = 0; t < n; ++t) {
    std::span<const ValueId> o = data.object(t);
    for (const auto& group : groups[t]) {
      for (ObjectId id : group) {
        std::span<const ValueId> q = data.object(id);
        for (DimensionId j = 0; j < data.dimensions(); ++j) {
          if (q[j] == o[j]) continue;
          auto [it, inserted] =
              cache.try_emplace(MakePairKey(j, q[j], o[j]), 0.0);
          if (inserted) it->second = oracle.LessEq(j, q[j], o[j]);
        }
      }
    }
  }
  local.distinct_pair_probs = cache.size();

  // Phase C: per-target solves, largest-work-first so a heavy target
  // cannot serialize the tail. Work ~ sum over groups of 2^|group|; the
  // exponent cap just keeps the weights finite.
  std::vector<double> weight(n, 0.0);
  for (ObjectId t = 0; t < n; ++t) {
    for (const auto& group : groups[t]) {
      // Scheduling heuristic only — never part of a returned probability,
      // so plain summation is fine here.
      // skypref-analyze: allow(kahan-discipline)
      weight[t] += std::ldexp(
          1.0, static_cast<int>(std::min<std::size_t>(group.size(), 512)));
    }
  }
  std::vector<ObjectId> order(n);
  std::iota(order.begin(), order.end(), ObjectId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&weight](ObjectId a, ObjectId b) {
                     return weight[a] > weight[b];
                   });

  CachedDoubleOracle cached(cache);
  std::vector<double> results(n, 1.0);
  std::vector<std::uint64_t> visited(n, 0);
  pool.ParallelFor(n, [&](std::size_t k) {
    const ObjectId t = order[k];
    // The batch-scheduler failpoint and the cancel poll sit at the
    // per-target dispatch boundary: one target fails (or the whole
    // query stops) without touching any other target's solve.
    if (SKYPREF_FAILPOINT("batch.target")) {
      statuses[t] = Status::ResourceExhausted("failpoint batch.target");
      results[t] = std::numeric_limits<double>::quiet_NaN();
      return;
    }
    if (exact.cancel != nullptr && exact.cancel->cancelled()) {
      statuses[t] = CancelledStatus();
      results[t] = std::numeric_limits<double>::quiet_NaN();
      return;
    }
    if (!statuses[t].ok()) {
      // Phase A could not build this target's partition; an empty
      // groups[t] would silently solve to probability 1.0.
      results[t] = std::numeric_limits<double>::quiet_NaN();
      return;
    }
    double product = 1.0;
    Status status;
    for (const auto& group : groups[t]) {
      ExactStats exact_stats;
      auto result = ExactSkylineProbability(
          data, t, std::span<const ObjectId>(group), cached, exact,
          &exact_stats);
      visited[t] += exact_stats.subsets_visited;
      if (!result.ok()) {
        status = result.status();
        break;
      }
      SKYPREF_DCHECK_PROB(result.value());
      product *= result.value();
    }
    if (status.ok()) {
      SKYPREF_DCHECK_PROB(product);
      results[t] = ClampProbability(product);
    } else {
      statuses[t] = status;
      results[t] = std::numeric_limits<double>::quiet_NaN();
    }
  });

  // Retry salvage pass: each target that failed on a TRANSIENT fault
  // gets ONE serial re-dispatch against the remaining shared deadline
  // before being stamped NaN for good. Determinism contract:
  //  * retry order is ascending ObjectId — independent of the
  //    largest-work-first schedule and of thread count;
  //  * a salvaged target's value is bit-identical to its fault-free
  //    value (retries solve through the plain oracle, whose doubles are
  //    by construction the cache's entries — and a target whose Phase A
  //    failed has no entries in the cache at all);
  //  * targets that already succeeded are never touched.
  if (options.retry_failed_targets) {
    for (ObjectId t = 0; t < n; ++t) {
      if (statuses[t].ok() || !TransientFailure(statuses[t])) continue;
      if (exact.cancel != nullptr && exact.cancel->cancelled()) break;
      if (exact.deadline.has_value() && exact.deadline.Expired()) break;
      ++local.retried_targets;
      // The retry dispatch has its own failpoint so chaos schedules can
      // fail the salvage itself (a double fault must still stamp NaN
      // plus a well-formed Status, never a bogus value).
      if (SKYPREF_FAILPOINT("batch.retry")) {
        statuses[t] = Status::ResourceExhausted("failpoint batch.retry");
        continue;
      }
      if (phase_a_failed[t] != 0) {
        auto rebuilt = TryAlloc("alloc.batch.partition", [&] {
          PartitionWorkspace workspace;
          std::vector<ObjectId> candidates =
              AbsorbAllCandidatesIndexed(data, t, *postings);
          return PartitionCandidates(
              data, t, std::span<const ObjectId>(candidates), workspace);
        });
        if (!rebuilt.ok()) {
          statuses[t] = rebuilt.status();
          continue;
        }
        groups[t] = std::move(rebuilt).value();
        phase_a_failed[t] = 0;
      }
      double product = 1.0;
      Status status;
      for (const auto& group : groups[t]) {
        ExactStats exact_stats;
        auto result = ExactSkylineProbability(
            data, t, std::span<const ObjectId>(group), oracle, exact,
            &exact_stats);
        visited[t] += exact_stats.subsets_visited;
        if (!result.ok()) {
          status = result.status();
          break;
        }
        SKYPREF_DCHECK_PROB(result.value());
        product *= result.value();
      }
      if (status.ok()) {
        SKYPREF_DCHECK_PROB(product);
        results[t] = ClampProbability(product);
        statuses[t] = Status::OK();
        ++local.salvaged_targets;
      } else {
        statuses[t] = status;
      }
    }
  }

  // A failed target no longer aborts the batch: its slot carries NaN and
  // its Status lands in stats->target_status, while every target that
  // finished keeps its bit-identical value. Only cancellation — the
  // caller abandoning the query — fails the whole call.
  local.target_status = statuses;
  for (ObjectId t = 0; t < n; ++t) {
    if (statuses[t].code() == StatusCode::kCancelled) return statuses[t];
    if (!statuses[t].ok()) ++local.failed_targets;
    local.subsets_visited += visited[t];
  }
  if (stats != nullptr) *stats = local;
  return results;
}

namespace {

/// Splits `total` into `chunks` nearly-equal pieces; piece i gets
/// total/chunks plus one of the remainder's units.
std::uint64_t ChunkSize(std::uint64_t total, std::uint32_t chunks,
                        std::uint32_t index) {
  std::uint64_t base = total / chunks;
  return base + (index < total % chunks ? 1 : 0);
}

}  // namespace

Result<MonteCarloResult> ParallelMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const MonteCarloOptions& options,
    const ParallelOptions& parallel) {
  if (parallel.sample_chunks == 0) {
    return Status::InvalidArgument("need at least one sample chunk");
  }
#if defined(SKYPREF_ENABLE_DCHECKS) && SKYPREF_ENABLE_DCHECKS
  SKYPREF_RETURN_IF_ERROR(model.Validate(data));
#endif
  std::uint64_t samples = options.samples != 0
                              ? options.samples
                              : HoeffdingSampleSize(options.epsilon,
                                                    options.delta);
  if (samples == 0) {
    return Status::InvalidArgument(
        "Monte Carlo needs samples > 0 (or valid epsilon/delta)");
  }
  const std::uint32_t chunks = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(parallel.sample_chunks, samples));

  // ONE deadline for the whole estimate, shared by every chunk
  // (mirroring the exact solvers). With a deadline the achieved sample
  // count depends on wall time, so truncated estimates are reproducible
  // in distribution but not bit-identical — the untruncated path keeps
  // the bit-identity contract.
  MonteCarloOptions shared = options;
  if (!shared.deadline.has_value()) {
    shared.deadline = Deadline::After(options.time_limit_seconds);
  }

  std::vector<MonteCarloResult> partial(chunks);
  std::vector<Status> statuses(chunks);
  pool.ParallelFor(chunks, [&](std::size_t c) {
    MonteCarloOptions chunk_options = shared;
    chunk_options.samples =
        ChunkSize(samples, chunks, static_cast<std::uint32_t>(c));
    // Seed from the chunk index, not the thread: bit-reproducible for
    // any thread count.
    chunk_options.seed =
        HashMix(options.seed ^ (0x9e3779b97f4a7c15ULL * (c + 1)));
    auto result =
        MonteCarloSkylineProbability(data, target, model, chunk_options);
    if (result.ok()) {
      partial[c] = result.value();
    } else {
      statuses[c] = result.status();
    }
  });

  MonteCarloResult combined;
  combined.requested_samples = samples;
  for (std::uint32_t c = 0; c < chunks; ++c) {
    SKYPREF_RETURN_IF_ERROR(statuses[c]);
    SKYPREF_DCHECK(partial[c].skyline_worlds <= partial[c].samples);
    combined.samples += partial[c].samples;
    combined.skyline_worlds += partial[c].skyline_worlds;
    combined.pair_draws += partial[c].pair_draws;
    combined.truncated = combined.truncated || partial[c].truncated;
  }
  SKYPREF_DCHECK(combined.samples <= samples);
  SKYPREF_DCHECK(combined.truncated || combined.samples == samples);
  combined.estimate = static_cast<double>(combined.skyline_worlds) /
                      static_cast<double>(combined.samples);
  SKYPREF_DCHECK_PROB(combined.estimate);
  return combined;
}

Result<AllWorldsResult> ParallelEstimateAllSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const AllWorldsOptions& options, const ParallelOptions& parallel) {
  if (parallel.sample_chunks == 0) {
    return Status::InvalidArgument("need at least one sample chunk");
  }
  SKYPREF_RETURN_IF_ERROR(data.Validate());
  const std::size_t n = data.size();
  std::uint64_t samples =
      options.samples != 0
          ? options.samples
          : AllWorldsSampleSize(options.epsilon, options.delta, n);
  if (samples == 0) {
    return Status::InvalidArgument(
        "all-worlds estimation needs samples > 0 (or valid epsilon/delta)");
  }
  const std::uint32_t chunks = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(parallel.sample_chunks, samples));

  const Deadline deadline = options.deadline.has_value()
                                ? *options.deadline
                                : Deadline::After(options.time_limit_seconds);

  // One master plan, cloned per chunk (the per-world memo tables must not
  // be shared across concurrently sampled worlds).
  SharedWorldSampler master(data, model);
  std::vector<std::vector<std::uint64_t>> survived(
      chunks, std::vector<std::uint64_t>(n, 0));
  std::vector<std::uint64_t> draws(chunks, 0);
  std::vector<Status> statuses(chunks, Status::OK());
  pool.ParallelFor(chunks, [&](std::size_t c) {
    SharedWorldSampler sampler = master;  // value copy
    Rng rng(HashMix(options.seed ^ (0xa24baed4963ee407ULL * (c + 1))));
    std::uint64_t chunk_samples =
        ChunkSize(samples, chunks, static_cast<std::uint32_t>(c));
    for (std::uint64_t h = 0; h < chunk_samples; ++h) {
      // Same 64-world poll cadence as the serial estimator; h == 0 makes
      // a pre-cancelled token fail at every thread count identically.
      if ((h & 63) == 0) {
        Status stop = CheckStop(options.cancel, deadline);
        if (!stop.ok()) {
          statuses[c] = std::move(stop);
          return;
        }
      }
      sampler.NextWorld();
      for (ObjectId i = 0; i < n; ++i) {
        if (sampler.Survives(i, rng, &draws[c])) ++survived[c][i];
      }
    }
  });
  for (std::uint32_t c = 0; c < chunks; ++c) {
    SKYPREF_RETURN_IF_ERROR(statuses[c]);
  }

  AllWorldsResult result;
  result.samples = samples;
  result.estimates.assign(n, 0.0);
  for (std::uint32_t c = 0; c < chunks; ++c) {
    result.pair_draws += draws[c];
    for (ObjectId i = 0; i < n; ++i) {
      // Fixed block-order sum of exact integer counts (each < 2^53):
      // bit-identical at every thread count, no compensation needed.
      // skypref-analyze: allow(kahan-discipline)
      result.estimates[i] += static_cast<double>(survived[c][i]);
    }
  }
  for (ObjectId i = 0; i < n; ++i) {
    result.estimates[i] /= static_cast<double>(samples);
    SKYPREF_DCHECK_PROB(result.estimates[i]);
  }
  return result;
}

}  // namespace skypref
