#ifndef SKYPREF_CORE_INCREMENTAL_H_
#define SKYPREF_CORE_INCREMENTAL_H_

/// \file
/// Incremental maintenance of one object's skyline probability under
/// candidate insertions.
///
/// The skyline literature the paper builds on includes streaming
/// variants (sliding-window skylines); the natural analogue here is
/// keeping sky(O) current as rival objects arrive. Recomputing from
/// scratch costs a full Det+ solve per insertion; this module exploits
/// the same structure the preprocessing theorems expose:
///
///  * Theorem 4 (partition): a new candidate only interacts with the
///    independence groups it shares attribute values with. Those groups
///    merge, ONE exact solve over the merged group refreshes its
///    survival probability, and every other group's cached factor is
///    untouched.
///  * Theorem 3 (absorption): within the merged group, absorbed
///    candidates are dropped before the solve; a new candidate that is
///    itself absorbed costs O(group size) and changes nothing.
///
/// sky(O) is the product of the per-group survival factors. Deletions
/// are not supported incrementally (a removal can split groups, which
/// union-find cannot undo); rebuild for that.

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/exact.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/status.h"

namespace skypref {

class IncrementalSkylineProbability {
 public:
  /// \p target_values are O's attribute values; \p model must outlive
  /// this object. \p group_options bound each per-group exact solve
  /// (an AddCandidate whose merged group exceeds them fails with
  /// ResourceExhausted and leaves the state unchanged).
  IncrementalSkylineProbability(std::vector<ValueId> target_values,
                                const PreferenceModel& model,
                                ExactOptions group_options = {});

  /// Current sky(O) over all candidates added so far (1.0 initially).
  double probability() const;

  /// Adds a rival object and returns the updated sky(O).
  /// Fails on dimension mismatch, on a duplicate of O or of a previously
  /// added candidate, or if the merged group's exact solve exceeds the
  /// configured budget (state is then unchanged).
  Result<double> AddCandidate(std::span<const ValueId> values);
  Result<double> AddCandidate(std::initializer_list<ValueId> values) {
    return AddCandidate(
        std::span<const ValueId>(values.begin(), values.size()));
  }

  /// Candidates retained after absorption (absorbed ones are dropped).
  std::size_t candidate_count() const { return live_candidates_; }

  /// Current number of independence groups.
  std::size_t group_count() const { return live_groups_; }

  /// Exact solves performed so far (one per group-changing insertion).
  std::uint64_t exact_solves() const { return exact_solves_; }

 private:
  struct Group {
    std::vector<ObjectId> members;  // rows in data_, absorbed ones removed
    double survival = 1.0;
    bool merged_away = false;
  };

  std::size_t FindRoot(std::size_t slot) const;

  const PreferenceModel& model_;
  ExactOptions group_options_;
  Dataset data_;  // row 0 = target, then one row per accepted candidate
  std::vector<Group> groups_;
  std::vector<std::size_t> parent_;  // group-slot union-find
  // (dim, value) -> group slot, for values differing from the target's.
  std::unordered_map<std::uint64_t, std::size_t> value_to_group_;
  std::size_t live_candidates_ = 0;
  std::size_t live_groups_ = 0;
  std::uint64_t exact_solves_ = 0;
};

}  // namespace skypref

#endif  // SKYPREF_CORE_INCREMENTAL_H_
