#ifndef SKYPREF_CORE_BRUTE_FORCE_H_
#define SKYPREF_CORE_BRUTE_FORCE_H_

/// \file
/// Naive possible-world enumeration (the paper's second "naive approach",
/// Section 1 and Eq. 8) — the correctness oracle of this library.
///
/// sky(O) only depends, per relevant value pair (v, O.j), on whether v is
/// preferred to O.j; the distinction between "O.j preferred to v" and
/// "incomparable" never changes O's skyline status. The enumeration is
/// therefore over binary outcomes of the DISTINCT pairs (dim, v) with
/// v = Qi.j != O.j — sharing a value across candidates collapses to one
/// enumeration variable, which is exactly the dependence that breaks the
/// independent-dominance shortcut.
///
/// Cost: O(2^k) worlds for k distinct pairs. Only suitable for small
/// instances; pair it with ExactSkylineProbability in property tests.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/oracles.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/hash.h"
#include "src/util/status.h"

namespace skypref {

struct BruteForceOptions {
  /// Abort with ResourceExhausted when the enumeration would exceed this
  /// many worlds (0 = unlimited). Zero-probability branches are skipped
  /// and do not count.
  std::uint64_t max_worlds = std::uint64_t{1} << 24;
};

struct BruteForceStats {
  /// Number of distinct (dimension, value) preference variables.
  std::size_t pair_count = 0;
  /// Number of enumerated (non-skipped) worlds.
  std::uint64_t worlds_visited = 0;
};

namespace internal {

template <typename Oracle>
class BruteForceEngine {
 public:
  using Num = typename Oracle::NumType;

  BruteForceEngine(const Dataset& data, ObjectId target,
                   std::span<const ObjectId> candidates, const Oracle& oracle,
                   const BruteForceOptions& options)
      : options_(options) {
    // Collect the distinct (dim, value) pairs and each candidate's pair
    // index list.
    std::vector<std::vector<std::size_t>> per_candidate;
    std::unordered_map<std::pair<DimensionId, ValueId>, std::size_t, PairHash>
        pair_index;
    for (ObjectId id : candidates) {
      std::vector<std::size_t> needs;
      for (DimensionId j = 0; j < data.dimensions(); ++j) {
        ValueId v = data.value(id, j);
        ValueId o = data.value(target, j);
        if (v == o) continue;
        auto [it, inserted] = pair_index.try_emplace({j, v}, probs_.size());
        if (inserted) probs_.push_back(oracle.LessEq(j, v, o));
        needs.push_back(it->second);
      }
      // A candidate identical to O would dominate never (duplicate objects
      // are excluded by Dataset::Validate); an empty `needs` would mean a
      // duplicate, which we treat as "never dominates".
      if (!needs.empty()) candidate_pairs_.push_back(std::move(needs));
    }
    outcome_.assign(probs_.size(), false);
  }

  Result<Num> Run(BruteForceStats* stats) {
    status_ = Status::OK();
    total_ = Num(0);
    worlds_ = 0;
    Enumerate(0, Num(1));
    if (stats != nullptr) {
      stats->pair_count = probs_.size();
      stats->worlds_visited = worlds_;
    }
    if (!status_.ok()) return status_;
    return total_;
  }

 private:
  void Enumerate(std::size_t pair, const Num& weight) {
    if (!status_.ok()) return;
    if (pair == probs_.size()) {
      if (++worlds_ > options_.max_worlds && options_.max_worlds != 0) {
        status_ = Status::ResourceExhausted(
            "brute force exceeded world budget of " +
            std::to_string(options_.max_worlds));
        return;
      }
      if (!Dominated()) total_ = total_ + weight;
      return;
    }
    const Num& p = probs_[pair];
    const Num not_p = Num(1) - p;
    if (!(p == Num(0))) {
      outcome_[pair] = true;
      Enumerate(pair + 1, weight * p);
    }
    if (!(not_p == Num(0))) {
      outcome_[pair] = false;
      Enumerate(pair + 1, weight * not_p);
    }
    outcome_[pair] = false;
  }

  bool Dominated() const {
    for (const auto& needs : candidate_pairs_) {
      bool all = true;
      for (std::size_t idx : needs) {
        if (!outcome_[idx]) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }

  BruteForceOptions options_;
  std::vector<Num> probs_;                           // Pr(v < O.j) per pair
  std::vector<std::vector<std::size_t>> candidate_pairs_;
  std::vector<bool> outcome_;
  Num total_{};
  std::uint64_t worlds_ = 0;
  Status status_;
};

}  // namespace internal

/// Computes sky(target) by possible-world enumeration over the candidates.
template <typename Oracle>
Result<typename Oracle::NumType> BruteForceSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const Oracle& oracle, const BruteForceOptions& options = {},
    BruteForceStats* stats = nullptr) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  for (ObjectId id : candidates) {
    if (id >= data.size()) {
      return Status::OutOfRange("candidate object out of range");
    }
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
  }
  internal::BruteForceEngine<Oracle> engine(data, target, candidates, oracle,
                                            options);
  return engine.Run(stats);
}

/// Convenience wrapper: all objects but the target, double precision.
Result<double> BruteForceSkylineProbability(const Dataset& data,
                                            ObjectId target,
                                            const PreferenceModel& model,
                                            const BruteForceOptions& options = {},
                                            BruteForceStats* stats = nullptr);

}  // namespace skypref

#endif  // SKYPREF_CORE_BRUTE_FORCE_H_
