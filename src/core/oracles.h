#ifndef SKYPREF_CORE_ORACLES_H_
#define SKYPREF_CORE_ORACLES_H_

/// \file
/// Numeric-generic access to preference probabilities.
///
/// The exact solvers are templated on an Oracle so the same algorithm can
/// run in fast double precision (production) or exact Rational arithmetic
/// (the bit-exact correctness oracle used by the test suite). An Oracle
/// provides:
///
///   using NumType = ...;                    // double or Rational
///   NumType LessEq(dim, a, b) const;        // Pr(a <= b); 1 when a == b
///   NumType Less(dim, a, b) const;          // Pr(a < b);  0 when a == b
///
/// NumType must support {+,-,*,/}, comparison, and construction from int.

#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/kahan.h"
#include "src/util/rational.h"

namespace skypref {

/// Oracle over any PreferenceModel, computing in double precision.
class DoubleOracle {
 public:
  using NumType = double;

  explicit DoubleOracle(const PreferenceModel& model) : model_(&model) {}

  double LessEq(DimensionId dim, ValueId a, ValueId b) const {
    return model_->LessEq(dim, a, b);
  }
  double Less(DimensionId dim, ValueId a, ValueId b) const {
    return model_->Less(dim, a, b);
  }

 private:
  const PreferenceModel* model_;
};

/// Oracle over a RationalPreferenceModel, computing exactly.
class RationalOracle {
 public:
  using NumType = Rational;

  explicit RationalOracle(const RationalPreferenceModel& model)
      : model_(&model) {}

  Rational LessEq(DimensionId dim, ValueId a, ValueId b) const {
    return model_->LessEqRational(dim, a, b);
  }
  Rational Less(DimensionId dim, ValueId a, ValueId b) const {
    if (a == b) return Rational(0);
    return model_->GetRational(dim, a, b).less;
  }

 private:
  const RationalPreferenceModel* model_;
};

/// Numeric accumulation policy: doubles get compensated summation (the
/// inclusion-exclusion series alternates signs over up to 2^n terms),
/// rationals are exact and accumulate directly.
///
/// Compensated summation is NOT associative: splitting one sum into
/// partial accumulators and folding them re-associates the compensation
/// terms. Parallel reductions therefore (a) fix the split as a pure
/// function of the instance — never of the thread count — and (b) fold
/// the partial values in creation order (see ParallelExactEngine), so any
/// thread count produces the identical bits. Rational accumulation is
/// exact and associative; the same protocol then matches the serial sum
/// exactly.
template <typename Num>
class Accumulator {
 public:
  void Add(const Num& term) { total_ = total_ + term; }
  Num Value() const { return total_; }

 private:
  Num total_{};
};

template <>
class Accumulator<double> {
 public:
  void Add(const double& term) { sum_.Add(term); }
  double Value() const { return sum_.Value(); }

 private:
  KahanSum sum_;
};

}  // namespace skypref

#endif  // SKYPREF_CORE_ORACLES_H_
