#ifndef SKYPREF_CORE_DOMINANCE_H_
#define SKYPREF_CORE_DOMINANCE_H_

/// \file
/// Dominance probability of one object over another (Eq. 2).
///
/// With no duplicate objects and independent per-dimension preferences,
///
///     Pr(Q < O) = prod_j Pr(Q.j <= O.j)
///
/// where the factor is 1 on dimensions sharing the same value; the "at
/// least one strictly preferred dimension" requirement is implied because
/// distinct objects differ somewhere and distinct values are never equal.

#include <span>

#include "src/core/oracles.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"

namespace skypref {

/// Pr(Q_candidate dominates Q_target), numeric-generic.
template <typename Oracle>
typename Oracle::NumType DominanceProbability(const Dataset& data,
                                              ObjectId candidate,
                                              ObjectId target,
                                              const Oracle& oracle) {
  using Num = typename Oracle::NumType;
  Num product(1);
  std::span<const ValueId> q = data.object(candidate);
  std::span<const ValueId> o = data.object(target);
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    if (q[j] == o[j]) continue;  // Pr(v <= v) = 1
    product = product * oracle.LessEq(j, q[j], o[j]);
    if (product == Num(0)) break;
  }
  return product;
}

/// Convenience double-precision overload.
double DominanceProbability(const Dataset& data, ObjectId candidate,
                            ObjectId target, const PreferenceModel& model);

}  // namespace skypref

#endif  // SKYPREF_CORE_DOMINANCE_H_
