#include "src/core/prob_skyline.h"

namespace skypref {

Result<std::vector<ObjectId>> ExactProbabilisticSkyline(
    const Dataset& data, const PreferenceModel& model, double tau,
    const BoundsOptions& options, ProbSkylineStats* stats) {
  SKYPREF_RETURN_IF_ERROR(data.Validate());
  if (tau <= 0.0 || tau > 1.0) {
    return Status::InvalidArgument(
        "probabilistic skyline threshold must lie in (0,1]");
  }
  ProbSkylineStats local;
  std::vector<ObjectId> skyline;
  for (ObjectId target = 0; target < data.size(); ++target) {
    bool used_exact = false;
    SKYPREF_ASSIGN_OR_RETURN(
        bool above,
        DecideThreshold(data, target, model, tau, options, &used_exact));
    if (used_exact) {
      ++local.exact_fallbacks;
    } else {
      ++local.decided_by_bounds;
    }
    if (above) skyline.push_back(target);
  }
  if (stats != nullptr) *stats = local;
  return skyline;
}

}  // namespace skypref
