#ifndef SKYPREF_CORE_SAM_BITSLICE_H_
#define SKYPREF_CORE_SAM_BITSLICE_H_

/// \file
/// The bit-sliced Monte-Carlo engine: 64 possible worlds per machine
/// word (MonteCarloOptions::Engine::kBitSliced).
///
/// Layout. The kBlock engine (sam_parallel.h) evaluates worlds one at a
/// time: per world, per candidate, a branchy walk over the candidate's
/// CSR pair slice with one Bernoulli draw per first-touched pair. This
/// engine transposes that loop. Per CHUNK of 64 worlds it materializes,
/// for each distinct preference pair p, one 64-bit mask M_p whose bit w
/// encodes "the sampled orientation of p favors the candidate in world
/// w" (for the single-target instance: "Qi.j <= O.j holds in world w").
/// A candidate's dominance event across all 64 worlds is then the AND
/// of its pair masks, the worlds where the target is dominated are the
/// OR of the candidate masks, and the target survives in
/// popcount(~dominated & valid) worlds. The branchy per-world inner
/// loop disappears: one word op decides 64 worlds at once.
///
/// Sampling. Single-target masks are drawn by NextBernoulliWords8
/// (src/util/random.h): iid Bernoulli(p) bits at the EXACT
/// integer-threshold precision of the scalar engines, via binary
/// expansion of the 64-bit cut, eight mask words per call from eight
/// independent Xoshiro lanes (AVX-512 on capable x86-64, with a
/// bit-identical portable fallback). One call covers a pair for a
/// SUPERCHUNK of eight consecutive chunks, so the memo granularity is
/// 512 worlds: masks carry superchunk epoch stamps (the word-level
/// analog of the scalar engines' per-world memoization — candidates
/// sharing a value pair see the same sampled orientation in every
/// world) and, in lazy mode, a pair's eight masks are generated only
/// when a candidate whose accumulated AND is still alive first touches
/// the pair during the superchunk. The batch estimator draws its
/// ternary orientation masks per chunk via NextTernaryWords.
/// pair_draws counts 64 per mask GENERATED (512 per wide call, even
/// for a trailing superchunk that uses fewer chunks): the number of
/// world-pair outcomes materialized, comparable with the scalar
/// engines' per-draw count.
///
/// Determinism. Same block contract as kBlock: block b samples from
/// Rng(SplitSeed(seed, b)), blocks reduce in index order, deadline
/// truncation keeps a deterministic block prefix (sam_parallel.h). The
/// engine consumes the stream in whole 64-world chunks, so estimates
/// are bit-identical at every thread count and under truncation, but
/// NOT equal to kBlock's (each engine defines its own stream). The
/// block_size must be a multiple of 64 so chunks never straddle a block
/// boundary; a trailing partial chunk (samples not a multiple of 64)
/// masks the invalid lanes out of the survivor count but still spends
/// whole mask words.

#include <span>
#include <vector>

#include "src/core/monte_carlo.h"
#include "src/core/sam_parallel.h"
#include "src/core/solver.h"
#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace skypref {

/// Sam over \p pool with the bit-sliced engine described above.
/// Bit-identical for every thread count of \p pool (including an inline
/// 0-thread pool), per (options.seed, options.block_size). Requires
/// options.block_size >= 64 and a multiple of 64; options.engine is
/// ignored (this IS the kBitSliced engine).
Result<MonteCarloResult> BitSlicedMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model, ThreadPool& pool,
    const MonteCarloOptions& options = {});

/// Convenience wrapper: all objects but the target.
Result<MonteCarloResult> BitSlicedMonteCarloSkylineProbability(
    const Dataset& data, ObjectId target, const PreferenceModel& model,
    ThreadPool& pool, const MonteCarloOptions& options = {});

/// The bit-sliced batch estimator: same plan (absorption, partition,
/// interned ternary pair table, dominance-sorted candidates) as
/// BatchMonteCarloSkylineProbabilities, but each distinct (dim, lo, hi)
/// orientation variable is sampled as TWO masks per 64-world chunk —
/// lo-beats-hi and hi-beats-lo, mutually exclusive by construction
/// (NextTernaryWords) — shared by every target of the batch.
/// BatchMonteCarloSkylineProbabilities dispatches here when
/// options.monte_carlo.engine == kBitSliced; calling this directly
/// ignores the engine field.
Result<std::vector<double>> BitSlicedBatchMonteCarloSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model, ThreadPool& pool,
    const SolverOptions& options = {}, BatchSamStats* stats = nullptr);

}  // namespace skypref

#endif  // SKYPREF_CORE_SAM_BITSLICE_H_
