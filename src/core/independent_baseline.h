#ifndef SKYPREF_CORE_INDEPENDENT_BASELINE_H_
#define SKYPREF_CORE_INDEPENDENT_BASELINE_H_

/// \file
/// The independent-object-dominance baseline ("Sac", after Sacharidis
/// et al., ICDE 2010) that the paper refutes.
///
/// Sac treats the dominance events as mutually independent and computes
///
///     sky_indep(O) = prod_i (1 - Pr(Qi < O)).
///
/// This is correct only when no two candidates share an attribute value
/// that differs from the target's (precisely the condition of Theorem 4
/// with singleton groups); in general it is wrong — the paper's Figure 1
/// observation (sky(P1): correct 1/2 vs Sac 3/8) and Example 1 (3/16 vs
/// 9/64) are reproduced as golden tests. The baseline exists here to be
/// compared against, exactly as in the paper.

#include <span>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/status.h"

namespace skypref {

/// sky_indep(target) over the given candidates.
Result<double> IndependentSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model);

/// Convenience wrapper: all objects but the target.
Result<double> IndependentSkylineProbability(const Dataset& data,
                                             ObjectId target,
                                             const PreferenceModel& model);

}  // namespace skypref

#endif  // SKYPREF_CORE_INDEPENDENT_BASELINE_H_
