#include "src/core/independent_baseline.h"

#include <vector>

#include "src/core/dominance.h"

namespace skypref {

Result<double> IndependentSkylineProbability(
    const Dataset& data, ObjectId target, std::span<const ObjectId> candidates,
    const PreferenceModel& model) {
  if (target >= data.size()) {
    return Status::OutOfRange("target object out of range");
  }
  double product = 1.0;
  for (ObjectId id : candidates) {
    if (id >= data.size()) {
      return Status::OutOfRange("candidate object out of range");
    }
    if (id == target) {
      return Status::InvalidArgument(
          "candidate list must not contain the target object");
    }
    product *= 1.0 - DominanceProbability(data, id, target, model);
    // Exact-zero short-circuit: once the product underflows to 0 it can
    // never recover (all factors are in [0,1]).
    if (product == 0.0) break;  // skypref-lint: allow(float-eq)
  }
  return product;
}

Result<double> IndependentSkylineProbability(const Dataset& data,
                                             ObjectId target,
                                             const PreferenceModel& model) {
  std::vector<ObjectId> candidates;
  candidates.reserve(data.size() > 0 ? data.size() - 1 : 0);
  for (ObjectId id = 0; id < data.size(); ++id) {
    if (id != target) candidates.push_back(id);
  }
  return IndependentSkylineProbability(data, target, candidates, model);
}

}  // namespace skypref
