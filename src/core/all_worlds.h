#ifndef SKYPREF_CORE_ALL_WORLDS_H_
#define SKYPREF_CORE_ALL_WORLDS_H_

/// \file
/// Shared-world estimation of EVERY object's skyline probability.
///
/// The paper's concluding section leaves "probabilistic skyline over
/// uncertain preferences" (all objects at once) as future work, noting
/// that the naive approach runs Algorithm 2 once per object. This module
/// implements the natural improvement: one stream of sampled worlds is
/// shared by all objects — each world yields a skyline-membership bit for
/// every object simultaneously, so n estimates cost one world stream
/// instead of n.
///
/// Unlike the single-target estimator, dominance checks here run between
/// arbitrary object pairs, so a sampled preference must carry its full
/// ternary outcome (a preferred / b preferred / incomparable) and be
/// shared consistently across all checks in the world. Note that sampled
/// preference worlds need not be transitive (the model only constrains
/// pairs), so sort-based skyline shortcuts are invalid and membership is
/// decided by direct dominator search with early exit.
///
/// By Hoeffding plus a union bound over the n objects, m =
/// ln(2n/delta) / (2 epsilon^2) worlds bound every estimate's error by
/// epsilon simultaneously with confidence 1 - delta.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/model/types.h"
#include "src/util/cancel.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace skypref {

struct AllWorldsOptions {
  double epsilon = 0.02;
  double delta = 0.05;
  /// Explicit world count; 0 derives it from epsilon/delta with the union
  /// bound over all objects.
  std::uint64_t samples = 0;
  std::uint64_t seed = 0xa11c0e5ULL;
  /// Cooperative stop signals (src/util/cancel.h), polled every 64 worlds.
  /// Cancellation -> Status::Cancelled; expiry -> ResourceExhausted.
  const CancelToken* cancel = nullptr;
  /// Absolute deadline; wins over time_limit_seconds when both are set.
  std::optional<Deadline> deadline;
  /// Relative budget resolved to a deadline when the estimate starts;
  /// non-positive = unlimited.
  double time_limit_seconds = 0.0;
};

struct AllWorldsResult {
  /// estimates[i] approximates sky(object i).
  std::vector<double> estimates;
  std::uint64_t samples = 0;
  /// Total ternary preference draws across all worlds.
  std::uint64_t pair_draws = 0;
};

/// Worlds needed for simultaneous epsilon/delta guarantees over n objects.
std::uint64_t AllWorldsSampleSize(double epsilon, double delta, std::size_t n);

/// Precompiled shared-world sampling plan: a global table of ternary
/// preference variables plus, per object, its possible dominators sorted
/// by dominance probability (the Algorithm-2 checking-sequence idea
/// applied to every target). Candidates with dominance probability
/// exactly zero are dropped — they can never dominate in any world.
///
/// One world is shared by all targets: preferences are sampled lazily and
/// memoized per world, so two targets querying the same value pair see
/// the same orientation. Construction is O(n^2 d) worst case but only
/// stores possible dominators. Powers EstimateAllSkylineProbabilities and
/// the top-k race (src/core/topk_race.h).
class SharedWorldSampler {
 public:
  SharedWorldSampler(const Dataset& data, const PreferenceModel& model);

  /// Number of distinct ternary preference variables discovered.
  std::size_t pair_count() const { return pair_less_.size(); }

  /// Possible dominators of \p target (after zero-probability filtering).
  std::size_t candidate_count(ObjectId target) const {
    return per_target_[target].size();
  }

  /// Advances to a fresh world; previously sampled outcomes are dropped.
  void NextWorld() { ++epoch_; }

  /// True iff \p target survives (is undominated in) the current world.
  /// Preferences are sampled on demand from \p rng and shared across all
  /// Survives() calls of the same world.
  bool Survives(ObjectId target, Rng& rng, std::uint64_t* pair_draws);

 private:
  enum class Orientation : std::uint8_t {
    kLoPreferred,
    kHiPreferred,
    kIncomparable,
  };
  struct Requirement {
    std::uint32_t pair_index;
    Orientation want;
  };
  struct Candidate {
    double dominance_probability;
    std::vector<Requirement> requirements;
  };

  std::vector<double> pair_less_;
  std::vector<double> pair_greater_;
  std::vector<std::vector<Candidate>> per_target_;
  std::vector<Orientation> outcome_;
  std::vector<std::uint64_t> epoch_mark_;
  std::uint64_t epoch_ = 0;
};

/// Estimates sky() of every object by shared-world sampling.
Result<AllWorldsResult> EstimateAllSkylineProbabilities(
    const Dataset& data, const PreferenceModel& model,
    const AllWorldsOptions& options = {});

/// Probabilistic skyline query: objects whose estimated skyline
/// probability is at least \p tau, in increasing object order.
Result<std::vector<ObjectId>> ProbabilisticSkyline(
    const Dataset& data, const PreferenceModel& model, double tau,
    const AllWorldsOptions& options = {});

/// Top-k objects by estimated skyline probability (ties broken by object
/// id), highest first.
Result<std::vector<std::pair<ObjectId, double>>> TopKSkyline(
    const Dataset& data, const PreferenceModel& model, std::size_t k,
    const AllWorldsOptions& options = {});

}  // namespace skypref

#endif  // SKYPREF_CORE_ALL_WORLDS_H_
