# Sanitizer wiring for skypref.
#
# SKYPREF_SANITIZE is a semicolon-separated list of sanitizers to enable
# on every target in the build (library, tests, benches, tools):
#
#   -DSKYPREF_SANITIZE="address;undefined"   # the asan-ubsan preset
#   -DSKYPREF_SANITIZE="thread"              # the tsan preset
#
# Supported values: address, undefined, leak, thread. ThreadSanitizer is
# mutually exclusive with AddressSanitizer/LeakSanitizer (the runtimes
# cannot coexist); combining them is a configure-time error rather than a
# mysterious link failure.
#
# Any sanitized build also defines SKYPREF_ENABLE_DCHECKS=1 so the
# SKYPREF_DCHECK / SKYPREF_DCHECK_PROB invariant layer (src/util/check.h)
# is live even when the build type is Release-with-sanitizers.

set(SKYPREF_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers to enable (address;undefined;leak;thread)")

if(NOT SKYPREF_SANITIZE)
  return()
endif()

set(_skypref_known_sanitizers address undefined leak thread)
foreach(_san IN LISTS SKYPREF_SANITIZE)
  if(NOT _san IN_LIST _skypref_known_sanitizers)
    message(FATAL_ERROR
        "SKYPREF_SANITIZE: unknown sanitizer '${_san}' "
        "(supported: ${_skypref_known_sanitizers})")
  endif()
endforeach()

if("thread" IN_LIST SKYPREF_SANITIZE AND
   ("address" IN_LIST SKYPREF_SANITIZE OR "leak" IN_LIST SKYPREF_SANITIZE))
  message(FATAL_ERROR
      "SKYPREF_SANITIZE: 'thread' cannot be combined with 'address'/'leak'")
endif()

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  message(FATAL_ERROR
      "SKYPREF_SANITIZE requires GCC or Clang (got ${CMAKE_CXX_COMPILER_ID})")
endif()

string(REPLACE ";" "," _skypref_sanitize_csv "${SKYPREF_SANITIZE}")
message(STATUS "skypref: sanitizers enabled: ${_skypref_sanitize_csv}")

# Applied globally on purpose: a sanitized libskypref linked into an
# unsanitized test binary misses interceptors and produces false
# negatives, so every translation unit in the tree gets the same flags.
add_compile_options(
  -fsanitize=${_skypref_sanitize_csv}
  -fno-omit-frame-pointer
  -fno-sanitize-recover=all
  -g)
add_link_options(-fsanitize=${_skypref_sanitize_csv})
add_compile_definitions(SKYPREF_ENABLE_DCHECKS=1)
