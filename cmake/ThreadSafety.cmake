# Clang Thread Safety Analysis (-Wthread-safety).
#
# The annotations live in src/util/thread_annotations.h; this module turns
# them into a compile-time gate. Clang-only: GCC accepts the no-op macro
# expansions but has no analysis, so the flags are added solely under a
# Clang compiler id. The CI "thread-safety" job builds with clang to keep
# the tree clean; violations are promoted to hard errors so an unguarded
# access to a SKYPREF_GUARDED_BY field cannot merge.
#
# SKYPREF_THREAD_SAFETY=OFF opts out (e.g. to bisect an unrelated clang
# issue without fighting the analysis).

option(SKYPREF_THREAD_SAFETY
  "Enable clang -Wthread-safety analysis (no effect on GCC)" ON)

if(SKYPREF_THREAD_SAFETY AND CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  target_compile_options(skypref_warnings INTERFACE
    -Wthread-safety -Werror=thread-safety-analysis)
endif()
