// Quickstart: the paper's running example (Example 1 / Figure 4) through
// the public API.
//
// Five 2-dimensional objects, every pair of attribute values equally
// preferred with probability 1/2. The example walks the full toolbox:
// dominance probabilities, the wrong independent-dominance shortcut, the
// exact solver (Det/Det+), the Monte-Carlo estimator (Sam), and the
// preprocessing diagnostics.
//
// Expected headline numbers (from the paper): sky(O) = 3/16 = 0.1875,
// while independence would wrongly claim 9/64 = 0.140625.

#include <cstdio>

#include "src/skypref.h"

int main() {
  using namespace skypref;

  // The objects: O is the one whose skyline probability we want.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();  // O
  data.Append({1, 1}).CheckOK();  // Q1
  data.Append({1, 0}).CheckOK();  // Q2
  data.Append({2, 2}).CheckOK();  // Q3
  data.Append({0, 1}).CheckOK();  // Q4

  // Uncertain preferences: the default TablePreferenceModel pair is
  // (1/2, 1/2) — "the population is evenly split on every value pair".
  TablePreferenceModel prefs;

  auto solver_or = SkylineSolver::Create(data, prefs);
  solver_or.status().CheckOK();
  const SkylineSolver& solver = solver_or.value();

  std::printf("Dominance probabilities against O:\n");
  for (ObjectId q = 1; q < data.size(); ++q) {
    std::printf("  Pr(Q%zu < O) = %.4f\n", q,
                DominanceProbability(data, q, 0, prefs));
  }

  double wrong = solver.Independent(0).value();
  std::printf("\nIndependent-dominance shortcut (Sacharidis et al.): %.6f\n",
              wrong);

  SolveStats stats;
  SolverOptions det_plus;  // preprocessing on by default
  double sky = solver.Exact(0, det_plus, &stats).value();
  std::printf("Exact skyline probability (Det+):                    %.6f\n",
              sky);
  std::printf("  candidates %zu -> after absorption %zu -> %zu groups "
              "(largest %zu)\n",
              stats.candidates, stats.after_absorption, stats.groups,
              stats.largest_group);

  SolverOptions sam;
  sam.preprocess = false;
  sam.monte_carlo.epsilon = 0.01;
  sam.monte_carlo.delta = 0.01;
  sam.monte_carlo.seed = 7;
  double estimate = solver.MonteCarlo(0, sam).value();
  std::printf("Monte-Carlo estimate (Sam, eps=delta=0.01):          %.6f\n",
              estimate);

  std::printf("\nsky(O) = 3/16 = 0.1875; the shortcut's 9/64 = 0.140625 "
              "underestimates it\nbecause Q1, Q2 and Q4 share attribute "
              "values, making their dominance\nevents dependent.\n");
  return 0;
}
