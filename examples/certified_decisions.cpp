// Certified decisions on an instance the paper's exact algorithm cannot
// touch.
//
// A uniform 5-d dataset with 50 objects needs 2^49 subsets under
// Algorithm 1 — Figure 9a reports nothing beyond n = 50 finishing in
// 10^4 seconds. This example answers real questions about such an
// instance anyway, with certificates:
//
//   1. Bonferroni bounds give a certified interval in milliseconds;
//   2. DecideThreshold turns them into certified yes/no answers;
//   3. the lineage DP engine (Shannon expansion over the <= 45 distinct
//      preference variables) computes the EXACT value in seconds;
//   4. adaptive sampling brackets it with a (eps, delta) guarantee.

#include <chrono>
#include <cstdio>

#include "src/skypref.h"

int main() {
  using namespace skypref;
  using Clock = std::chrono::steady_clock;

  UniformOptions gen;
  gen.objects = 50;
  gen.dimensions = 5;
  gen.values_per_dimension = 10;
  gen.seed = 2013;
  Dataset data = GenerateUniform(gen).value();
  HashedPreferenceModel prefs(7, HashedPreferenceModel::Style::kTotalUniform);
  const ObjectId target = 0;

  std::printf("uniform dataset: n=%zu, d=%zu — Algorithm 1 would need 2^%zu "
              "subsets\n\n",
              data.size(), data.dimensions(), data.size() - 1);

  auto t0 = Clock::now();
  BoundsOptions bounds_options;
  bounds_options.max_level = 4;
  bounds_options.term_budget = 1u << 22;
  SkylineBounds bounds =
      BoundedSkylineProbabilityPreprocessed(data, target, prefs,
                                            bounds_options)
          .value();
  double bounds_ms = std::chrono::duration<double, std::milli>(
                         Clock::now() - t0)
                         .count();
  std::printf("certified interval (Bonferroni, level %zu): "
              "[%.6f, %.6f] in %.1f ms\n",
              bounds.level, bounds.lower, bounds.upper, bounds_ms);

  t0 = Clock::now();
  bool above = DecideThreshold(data, target, prefs, 0.5).value();
  std::printf("certified answer to \"sky >= 0.5?\": %s (%.1f ms)\n",
              above ? "yes" : "no",
              std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count());

  t0 = Clock::now();
  LineageDpStats dp_stats;
  double exact =
      LineageExactWithPreprocessing(data, target, prefs, {}, &dp_stats)
          .value();
  std::printf("exact value (lineage DP, %zu variables, %llu states): "
              "%.6f in %.0f ms\n",
              dp_stats.variables,
              static_cast<unsigned long long>(dp_stats.states), exact,
              std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count());

  AdaptiveOptions adaptive;
  adaptive.epsilon = 0.01;
  adaptive.delta = 0.01;
  AdaptiveResult estimate =
      AdaptiveMonteCarloSkylineProbability(data, target, prefs, adaptive)
          .value();
  std::printf("adaptive estimate: %.6f +- %.4f (%llu samples)\n",
              estimate.estimate, estimate.radius,
              static_cast<unsigned long long>(estimate.samples));

  std::printf("\nexact lies inside the certified interval: %s\n",
              bounds.lower <= exact && exact <= bounds.upper ? "yes" : "NO");
  return 0;
}
