// Hotel rooms under season-dependent preferences.
//
// The paper's introduction motivates uncertain preferences with a tourist
// who favours a beach-view room in scorching summer and a fireplace room
// in chilly winter. Here a booking site models its mixed user population:
// each preference probability is the fraction of users preferring one
// categorical option over another, and a room's skyline probability is
// the chance a random user finds no room that beats it outright.
//
// The example builds the instance from CSV text (exercising the io
// module), solves it under a "summer" and a "winter" preference profile,
// and shows how the ranking flips.

#include <cstdio>
#include <string>
#include <vector>

#include "src/skypref.h"

namespace {

constexpr char kRoomsCsv[] =
    "view,heating,noise\n"
    "beach,aircon,quiet\n"       // 0: summer dream
    "beach,fireplace,street\n"   // 1: beach but noisy, winter-ready
    "garden,fireplace,quiet\n"   // 2: winter dream
    "garden,aircon,street\n"     // 3: weak all around
    "courtyard,aircon,quiet\n";  // 4: compromise

// Preference rows: dimension, a, b, Pr(a<b), Pr(b<a).
struct PrefRow {
  const char* dim;
  const char* a;
  const char* b;
  double a_less;
  double b_less;
};

skypref::TablePreferenceModel BuildPrefs(
    const skypref::LoadedDataset& loaded, const std::vector<PrefRow>& rows) {
  skypref::TablePreferenceModel model;
  for (const PrefRow& row : rows) {
    skypref::DimensionId dim = 0;
    for (skypref::DimensionId j = 0; j < loaded.domain.dimensions(); ++j) {
      if (loaded.domain.dimension_name(j) == row.dim) dim = j;
    }
    skypref::ValueId a = loaded.domain.FindValue(dim, row.a).value();
    skypref::ValueId b = loaded.domain.FindValue(dim, row.b).value();
    model.Set(dim, a, b, row.a_less, row.b_less).CheckOK();
  }
  return model;
}

void Report(const char* season, const skypref::LoadedDataset& loaded,
            const skypref::TablePreferenceModel& prefs) {
  auto solver = skypref::SkylineSolver::Create(loaded.dataset, prefs).value();
  std::printf("%s bookings — skyline probability per room:\n", season);
  for (skypref::ObjectId room = 0; room < loaded.dataset.size(); ++room) {
    double sky = solver.Exact(room).value();
    std::printf("  %-28s %.4f\n",
                (loaded.domain.value_name(0, loaded.dataset.value(room, 0)) +
                 " / " +
                 loaded.domain.value_name(1, loaded.dataset.value(room, 1)) +
                 " / " +
                 loaded.domain.value_name(2, loaded.dataset.value(room, 2)))
                    .c_str(),
                sky);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  skypref::LoadedDataset loaded =
      skypref::DatasetFromCsv(kRoomsCsv).value();

  // Summer: most guests want the beach and air conditioning; quiet is
  // broadly but not universally preferred over street noise.
  skypref::TablePreferenceModel summer = BuildPrefs(
      loaded,
      {
          {"view", "beach", "garden", 0.85, 0.15},
          {"view", "beach", "courtyard", 0.90, 0.10},
          {"view", "garden", "courtyard", 0.60, 0.40},
          {"heating", "aircon", "fireplace", 0.95, 0.05},
          {"noise", "quiet", "street", 0.70, 0.20},  // 10% do not care
      });

  // Winter: the same rooms, flipped tastes.
  skypref::TablePreferenceModel winter = BuildPrefs(
      loaded,
      {
          {"view", "beach", "garden", 0.30, 0.70},
          {"view", "beach", "courtyard", 0.45, 0.55},
          {"view", "garden", "courtyard", 0.65, 0.35},
          {"heating", "aircon", "fireplace", 0.10, 0.90},
          {"noise", "quiet", "street", 0.70, 0.20},
      });

  Report("SUMMER", loaded, summer);
  Report("WINTER", loaded, winter);

  std::printf(
      "The same rooms swap places as the preference distribution moves:\n"
      "skyline probability is a property of (objects, preferences), not of\n"
      "the objects alone — exactly the scenario the paper models.\n");
  return 0;
}
