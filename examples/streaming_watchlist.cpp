// Streaming watchlist: incremental skyline-probability maintenance plus
// preference estimation from user votes.
//
// Scenario: a deal-aggregator watches ONE apartment listing ("our pick")
// and wants to know, at every moment, the probability that no competing
// listing beats it for a randomly drawn user. Preferences over
// categorical attributes (neighbourhood, heating, floor) are estimated
// from an A/B survey (VoteAggregator), and competitor listings stream in
// one by one (IncrementalSkylineProbability) — each insertion only
// recomputes the independence group it touches, per Theorems 3/4.

#include <cstdio>

#include "src/skypref.h"

int main() {
  using namespace skypref;

  // Attribute universe. Dimension-local value ids:
  //   neighbourhood: 0=riverside  1=old_town  2=suburbs
  //   heating:       0=district   1=gas       2=electric
  //   floor:         0=ground     1=middle    2=penthouse
  const char* kNeighbourhood[] = {"riverside", "old_town", "suburbs"};
  const char* kHeating[] = {"district", "gas", "electric"};
  const char* kFloor[] = {"ground", "middle", "penthouse"};

  // Survey results: (dim, a, b, a-wins, b-wins, can't-say).
  VoteAggregator votes(/*smoothing=*/1.0);
  votes.AddVotes(0, 0, 1, 55, 40, 5).CheckOK();   // riverside vs old_town
  votes.AddVotes(0, 0, 2, 80, 15, 5).CheckOK();   // riverside vs suburbs
  votes.AddVotes(0, 1, 2, 70, 25, 5).CheckOK();   // old_town vs suburbs
  votes.AddVotes(1, 0, 1, 45, 45, 10).CheckOK();  // district vs gas
  votes.AddVotes(1, 0, 2, 65, 25, 10).CheckOK();
  votes.AddVotes(1, 1, 2, 60, 30, 10).CheckOK();
  votes.AddVotes(2, 1, 0, 75, 15, 10).CheckOK();  // middle vs ground
  votes.AddVotes(2, 2, 0, 70, 20, 10).CheckOK();  // penthouse vs ground
  votes.AddVotes(2, 2, 1, 50, 40, 10).CheckOK();
  TablePreferenceModel prefs = votes.BuildModel().value();

  std::printf("Estimated preferences (with Laplace smoothing):\n");
  for (DimensionId j = 0; j < 3; ++j) {
    const char** names = j == 0 ? kNeighbourhood : j == 1 ? kHeating : kFloor;
    for (ValueId a = 0; a < 3; ++a) {
      for (ValueId b = a + 1; b < 3; ++b) {
        PrefPair pair = prefs.GetPair(j, a, b);
        std::printf("  Pr(%-10s < %-10s) = %.3f   (incomparable %.3f)\n",
                    names[a], names[b], pair.less, pair.incomparable());
      }
    }
  }

  // Our pick: riverside, district heating, middle floor.
  IncrementalSkylineProbability watch({0, 0, 1}, prefs);
  std::printf("\nOur pick: riverside / district / middle\n");
  std::printf("%-42s %10s %8s %8s\n", "incoming competitor", "sky(pick)",
              "groups", "solves");

  struct Competitor {
    const char* label;
    ValueId n, h, f;
  };
  const Competitor stream[] = {
      {"old_town / gas / middle", 1, 1, 1},
      {"suburbs / electric / penthouse", 2, 2, 2},
      {"riverside / gas / penthouse", 0, 1, 2},
      {"old_town / district / ground", 1, 0, 0},
      {"riverside / district / penthouse", 0, 0, 2},
      {"old_town / gas / penthouse", 1, 1, 2},
      {"suburbs / district / middle", 2, 0, 1},
  };
  for (const Competitor& c : stream) {
    double sky = watch.AddCandidate({c.n, c.h, c.f}).value();
    std::printf("%-42s %10.4f %8zu %8llu\n", c.label, sky,
                watch.group_count(),
                static_cast<unsigned long long>(watch.exact_solves()));
  }

  std::printf(
      "\nEach arrival re-solved only the independence group it touched\n"
      "(Theorem 4); absorbed competitors (Theorem 3) cost nothing at all.\n");
  return 0;
}
