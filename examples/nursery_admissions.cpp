// Nursery-school admissions — the paper's real-data scenario (Figure 15).
//
// Each of the 12,960 applications is an 8-attribute categorical object
// (the UCI Nursery feature space, regenerated as the full Cartesian
// product it is). Committee members disagree on how attribute values
// rank — "preferences on number of children can vary dramatically" — so
// the school models them as uncertain preferences; an application's
// skyline probability is its chance of being undominated, i.e. of being
// a defensible admit for a randomly drawn committee member.
//
// The example runs Det+ and Sam+ on a handful of applications of the
// full 8-d dataset and prints the preprocessing effect, mirroring the
// paper's observation that Det+ stays practical on Nursery despite the
// exponential worst case.

#include <cstdio>
#include <string>

#include "src/skypref.h"

int main() {
  using namespace skypref;

  NurseryVariant nursery = GenerateNursery().value();
  std::printf("Nursery feature space: %zu applications x %zu attributes\n\n",
              nursery.dataset.size(), nursery.dataset.dimensions());

  // Synthetic committee preferences, as in the paper (the data set ships
  // no preference probabilities).
  HashedPreferenceModel prefs(2013,
                              HashedPreferenceModel::Style::kTotalUniform);

  auto solver = SkylineSolver::Create(nursery.dataset, prefs).value();

  const ObjectId applications[] = {0, 1295, 4242, 6480, 12959};
  std::printf("%-10s %-34s %10s %10s %22s\n", "object", "profile (first 3)",
              "Det+", "Sam+", "absorption/partition");
  for (ObjectId id : applications) {
    std::string profile;
    for (DimensionId j = 0; j < 3; ++j) {
      if (j > 0) profile += ", ";
      profile += nursery.domain.value_name(j, nursery.dataset.value(id, j));
    }

    SolveStats stats;
    SolverOptions det_plus;
    double exact = solver.Exact(id, det_plus, &stats).value();

    SolverOptions sam_plus;
    sam_plus.monte_carlo.samples = 3000;  // the paper's empirical size
    sam_plus.monte_carlo.seed = id;
    double sampled = solver.MonteCarlo(id, sam_plus).value();

    std::printf("%-10zu %-34s %10.3e %10.3e %9zu -> %zu/%zug\n", id,
                profile.c_str(), exact, sampled, stats.candidates,
                stats.after_absorption, stats.groups);
  }

  std::printf(
      "\nAbsorption collapses 12,959 candidates to a handful per target —\n"
      "on a full-product dataset every multi-attribute rival is absorbed\n"
      "by a single-attribute one — which is why the exact solver is\n"
      "instantaneous here while being #P-hard in general.\n");
  return 0;
}
