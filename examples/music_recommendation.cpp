// Music catalogue with probabilistic-skyline recommendation.
//
// The paper's other motivating scenario: "a music fan prefers Mozart's
// brisk minuet while another may like Beethoven's pastoral symphony" —
// preferences over categorical attributes (composer era, tempo, mood)
// differ across listeners. A streaming service can model listener
// preferences as probabilities and surface the probabilistic skyline:
// recordings whose skyline probability clears a threshold tau.
//
// The example exercises the all-worlds estimator (the shared-world
// extension of the paper's future-work section), the probabilistic
// skyline query, and the top-k ranking.

#include <cstdio>
#include <string>

#include "src/skypref.h"

int main() {
  using namespace skypref;

  // Attributes: era, tempo, mood.
  Domain domain({"era", "tempo", "mood"});
  const char* eras[] = {"baroque", "classical", "romantic", "modern"};
  const char* tempos[] = {"brisk", "moderate", "slow"};
  const char* moods[] = {"bright", "pastoral", "stormy"};
  for (const char* v : eras) domain.InternValue(0, v).value();
  for (const char* v : tempos) domain.InternValue(1, v).value();
  for (const char* v : moods) domain.InternValue(2, v).value();

  struct Track {
    const char* name;
    ValueId era, tempo, mood;
  };
  const Track tracks[] = {
      {"Mozart: Minuet in G", 1, 0, 0},
      {"Beethoven: Pastoral Symphony", 1, 1, 1},
      {"Bach: Brandenburg No.3", 0, 0, 0},
      {"Chopin: Nocturne Op.9", 2, 2, 1},
      {"Vivaldi: Summer Presto", 0, 0, 2},
      {"Brahms: Symphony No.1", 2, 1, 2},
      {"Glass: Metamorphosis", 3, 2, 1},
      {"Mozart: Requiem Dies Irae", 1, 0, 2},
      {"Debussy: Clair de Lune", 3, 2, 0},
      {"Haydn: Surprise Symphony", 1, 1, 0},
  };

  Dataset data(3);
  for (const Track& track : tracks) {
    data.Append({track.era, track.tempo, track.mood}).CheckOK();
  }

  // Listener survey turned into preference probabilities. Pairs left
  // unset use the even default (0.5, 0.5).
  TablePreferenceModel prefs;
  prefs.Set(0, 1, 0, 0.60, 0.40).CheckOK();  // classical vs baroque
  prefs.Set(0, 1, 2, 0.55, 0.45).CheckOK();  // classical vs romantic
  prefs.Set(0, 1, 3, 0.65, 0.35).CheckOK();  // classical vs modern
  prefs.Set(0, 2, 3, 0.55, 0.35).CheckOK();  // 10% undecided
  prefs.Set(1, 0, 2, 0.70, 0.30).CheckOK();  // brisk vs slow
  prefs.Set(1, 0, 1, 0.60, 0.40).CheckOK();  // brisk vs moderate
  prefs.Set(1, 1, 2, 0.60, 0.40).CheckOK();  // moderate vs slow
  prefs.Set(2, 0, 2, 0.65, 0.25).CheckOK();  // bright vs stormy
  prefs.Set(2, 1, 2, 0.60, 0.30).CheckOK();  // pastoral vs stormy

  // Per-track exact skyline probability (Det+) next to the shared-world
  // estimate, demonstrating that one world stream prices the whole
  // catalogue at once.
  auto solver = SkylineSolver::Create(data, prefs).value();
  AllWorldsOptions mc;
  mc.samples = 60000;
  mc.seed = 2013;
  AllWorldsResult all =
      EstimateAllSkylineProbabilities(data, prefs, mc).value();

  std::printf("%-32s %10s %10s\n", "track", "exact", "sampled");
  for (ObjectId i = 0; i < data.size(); ++i) {
    double exact = solver.Exact(i).value();
    std::printf("%-32s %10.4f %10.4f\n", tracks[i].name, exact,
                all.estimates[i]);
  }

  const double tau = 0.25;
  auto skyline = ProbabilisticSkyline(data, prefs, tau, mc).value();
  std::printf("\nProbabilistic skyline (tau = %.2f):\n", tau);
  for (ObjectId id : skyline) std::printf("  %s\n", tracks[id].name);

  auto top = TopKSkyline(data, prefs, 3, mc).value();
  std::printf("\nTop-3 recommendations:\n");
  for (const auto& [id, score] : top) {
    std::printf("  %-32s %.4f\n", tracks[id].name, score);
  }
  return 0;
}
