#include "src/io/dataset_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "src/core/exact.h"

namespace skypref {
namespace {

constexpr char kHotelCsv[] =
    "view,heating\n"
    "beach,none\n"
    "garden,fireplace\n"
    "beach,fireplace\n";

TEST(DatasetIoTest, ParsesHeaderAndRows) {
  LoadedDataset loaded = DatasetFromCsv(kHotelCsv).value();
  EXPECT_EQ(loaded.dataset.size(), 3u);
  EXPECT_EQ(loaded.dataset.dimensions(), 2u);
  EXPECT_EQ(loaded.domain.dimension_name(0), "view");
  EXPECT_EQ(loaded.domain.dimension_name(1), "heating");
  // Interning order: beach=0, garden=1 on dim 0.
  EXPECT_EQ(loaded.dataset.value(0, 0), 0u);
  EXPECT_EQ(loaded.dataset.value(1, 0), 1u);
  EXPECT_EQ(loaded.dataset.value(2, 0), 0u);
  EXPECT_EQ(loaded.domain.value_name(1, loaded.dataset.value(1, 1)),
            "fireplace");
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  LoadedDataset loaded = DatasetFromCsv(kHotelCsv).value();
  std::string serialized = DatasetToCsv(loaded.dataset, loaded.domain);
  LoadedDataset reloaded = DatasetFromCsv(serialized).value();
  ASSERT_EQ(reloaded.dataset.size(), loaded.dataset.size());
  for (ObjectId i = 0; i < loaded.dataset.size(); ++i) {
    for (DimensionId j = 0; j < loaded.dataset.dimensions(); ++j) {
      EXPECT_EQ(reloaded.domain.value_name(j, reloaded.dataset.value(i, j)),
                loaded.domain.value_name(j, loaded.dataset.value(i, j)));
    }
  }
}

TEST(DatasetIoTest, RejectsRaggedRows) {
  EXPECT_EQ(DatasetFromCsv("a,b\n1\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DatasetFromCsv("a,b\n1,2,3\n").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, RejectsEmptyDocument) {
  EXPECT_FALSE(DatasetFromCsv("").ok());
}

TEST(DatasetIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/skypref_dataset_test.csv";
  LoadedDataset loaded = DatasetFromCsv(kHotelCsv).value();
  ASSERT_TRUE(SaveDatasetFile(path, loaded.dataset, loaded.domain).ok());
  LoadedDataset reloaded = LoadDatasetFile(path).value();
  EXPECT_EQ(reloaded.dataset.size(), 3u);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadDatasetFile(path).ok());
}

TEST(PreferenceIoTest, ParsesAndAppliesPreferences) {
  LoadedDataset loaded = DatasetFromCsv(kHotelCsv).value();
  const char kPrefs[] =
      "dimension,value_a,value_b,prob_a_less,prob_b_less\n"
      "view,beach,garden,0.75,0.25\n"
      "heating,none,fireplace,0.4,0.5\n";
  TablePreferenceModel model =
      PreferencesFromCsv(kPrefs, loaded.domain).value();
  ValueId beach = loaded.domain.FindValue(0, "beach").value();
  ValueId garden = loaded.domain.FindValue(0, "garden").value();
  EXPECT_DOUBLE_EQ(model.GetPair(0, beach, garden).less, 0.75);
  EXPECT_DOUBLE_EQ(model.GetPair(0, garden, beach).less, 0.25);
  ValueId none = loaded.domain.FindValue(1, "none").value();
  ValueId fire = loaded.domain.FindValue(1, "fireplace").value();
  EXPECT_NEAR(model.GetPair(1, none, fire).incomparable(), 0.1, 1e-12);
}

TEST(PreferenceIoTest, RoundTripThroughCsv) {
  LoadedDataset loaded = DatasetFromCsv(kHotelCsv).value();
  TablePreferenceModel model;
  model.Set(0, 0, 1, 0.9, 0.1).CheckOK();
  model.Set(1, 0, 1, 0.3, 0.3).CheckOK();
  std::string serialized =
      PreferencesToCsv(loaded.dataset, loaded.domain, model);
  TablePreferenceModel reloaded =
      PreferencesFromCsv(serialized, loaded.domain).value();
  EXPECT_NEAR(reloaded.GetPair(0, 0, 1).less, 0.9, 1e-6);
  EXPECT_NEAR(reloaded.GetPair(1, 0, 1).greater, 0.3, 1e-6);
}

TEST(PreferenceIoTest, RejectsMalformedRows) {
  LoadedDataset loaded = DatasetFromCsv(kHotelCsv).value();
  EXPECT_EQ(PreferencesFromCsv("h\nview,beach\n", loaded.domain)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PreferencesFromCsv(
                "h\nbogus_dim,beach,garden,0.5,0.5\n", loaded.domain)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(PreferencesFromCsv(
                "h\nview,beach,ghost,0.5,0.5\n", loaded.domain)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(PreferencesFromCsv(
                "h\nview,beach,garden,1.5,0.5\n", loaded.domain)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PreferencesFromCsv(
                "h\nview,beach,garden,abc,0.5\n", loaded.domain)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(PreferenceIoTest, LoadedInstanceSolvesEndToEnd) {
  LoadedDataset loaded = DatasetFromCsv(kHotelCsv).value();
  const char kPrefs[] =
      "dimension,value_a,value_b,prob_a_less,prob_b_less\n"
      "view,beach,garden,1,0\n"
      "heating,none,fireplace,0,1\n";
  TablePreferenceModel model =
      PreferencesFromCsv(kPrefs, loaded.domain).value();
  // beach always beats garden; fireplace always beats none. Object 2
  // (beach, fireplace) dominates everything with certainty.
  EXPECT_DOUBLE_EQ(
      ExactSkylineProbability(loaded.dataset, 2, model).value(), 1.0);
  EXPECT_DOUBLE_EQ(
      ExactSkylineProbability(loaded.dataset, 0, model).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      ExactSkylineProbability(loaded.dataset, 1, model).value(), 0.0);
}

}  // namespace
}  // namespace skypref
