#include "src/io/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  EXPECT_EQ(ParseCsvLine("a,b,c").value(),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine("one").value(), (std::vector<std::string>{"one"}));
  EXPECT_EQ(ParseCsvLine("").value(), (std::vector<std::string>{""}));
  EXPECT_EQ(ParseCsvLine("a,,c").value(),
            (std::vector<std::string>{"a", "", "c"}));
}

TEST(ParseCsvLineTest, QuotedFields) {
  EXPECT_EQ(ParseCsvLine(R"("a,b",c)").value(),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine(R"("say ""hi""",x)").value(),
            (std::vector<std::string>{"say \"hi\"", "x"}));
  EXPECT_EQ(ParseCsvLine(R"("")").value(), (std::vector<std::string>{""}));
}

TEST(ParseCsvLineTest, Malformed) {
  EXPECT_FALSE(ParseCsvLine(R"("unterminated)").ok());
  EXPECT_FALSE(ParseCsvLine(R"(ab"cd)").ok());
  EXPECT_FALSE(ParseCsvLine(R"("ab"cd)").ok());
}

TEST(ParseCsvTest, SplitsRecordsAndSkipsBlanks) {
  auto records = ParseCsv("a,b\n\nc,d\r\ne,f\n").value();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ(records[2], (std::vector<std::string>{"e", "f"}));
}

TEST(ParseCsvTest, NoTrailingNewline) {
  auto records = ParseCsv("x,y").value();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"x", "y"}));
}

TEST(ParseCsvTest, EmptyDocument) {
  EXPECT_TRUE(ParseCsv("").value().empty());
  EXPECT_TRUE(ParseCsv("\n\n").value().empty());
}

TEST(FormatCsvLineTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(FormatCsvLine({"a", "b"}), "a,b");
  EXPECT_EQ(FormatCsvLine({"a,b", "c"}), "\"a,b\",c");
  EXPECT_EQ(FormatCsvLine({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(FormatCsvLine({"line\nbreak"}), "\"line\nbreak\"");
}

TEST(FormatCsvLineTest, RoundTripsThroughParse) {
  std::vector<std::string> fields{"plain", "with,comma", "with \"quote\"",
                                  ""};
  EXPECT_EQ(ParseCsvLine(FormatCsvLine(fields)).value(), fields);
}

TEST(FileIoTest, WriteThenReadRoundTrip) {
  std::string path = ::testing::TempDir() + "/skypref_csv_test.txt";
  ASSERT_TRUE(WriteFile(path, "hello\nworld").ok());
  EXPECT_EQ(ReadFile(path).value(), "hello\nworld");
  std::remove(path.c_str());
}

TEST(FileIoTest, ReadMissingFileFails) {
  EXPECT_EQ(ReadFile("/nonexistent/skypref/file.csv").status().code(),
            StatusCode::kIOError);
}

TEST(FileIoTest, WriteToBadPathFails) {
  EXPECT_EQ(WriteFile("/nonexistent/skypref/file.csv", "x").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace skypref
