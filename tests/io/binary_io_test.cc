#include "src/io/binary_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "src/model/preference_generator.h"
#include "src/workload/uniform_generator.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;

TEST(BinaryDatasetTest, RoundTripPreservesEveryCell) {
  Dataset data = RandomSmallDataset(17, 30, 4, 6);
  std::string bytes = DatasetToBinary(data);
  Dataset reloaded = DatasetFromBinary(bytes).value();
  ASSERT_EQ(reloaded.size(), data.size());
  ASSERT_EQ(reloaded.dimensions(), data.dimensions());
  for (ObjectId i = 0; i < data.size(); ++i) {
    for (DimensionId j = 0; j < data.dimensions(); ++j) {
      EXPECT_EQ(reloaded.value(i, j), data.value(i, j));
    }
  }
}

TEST(BinaryDatasetTest, LargeValueIdsSurviveVarintCoding) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({127, 128}).CheckOK();
  data.Append({300000, 4294967295u}).CheckOK();
  Dataset reloaded = DatasetFromBinary(DatasetToBinary(data)).value();
  EXPECT_EQ(reloaded.value(2, 0), 300000u);
  EXPECT_EQ(reloaded.value(2, 1), 4294967295u);
}

TEST(BinaryDatasetTest, EmptyDatasetRoundTrips) {
  Dataset data(3);
  Dataset reloaded = DatasetFromBinary(DatasetToBinary(data)).value();
  EXPECT_EQ(reloaded.size(), 0u);
  EXPECT_EQ(reloaded.dimensions(), 3u);
}

TEST(BinaryDatasetTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(DatasetFromBinary("").ok());
  EXPECT_FALSE(DatasetFromBinary("JUNKJUNKJUNK").ok());
  Dataset data = Example1Dataset();
  std::string bytes = DatasetToBinary(data);
  // Truncation anywhere in the payload must be detected.
  for (std::size_t cut : {4u, 10u, 20u}) {
    if (cut < bytes.size()) {
      EXPECT_FALSE(DatasetFromBinary(bytes.substr(0, cut)).ok())
          << "cut=" << cut;
    }
  }
  // Trailing garbage too.
  EXPECT_FALSE(DatasetFromBinary(bytes + "x").ok());
  // Wrong version.
  std::string bad_version = bytes;
  bad_version[4] = 9;
  EXPECT_FALSE(DatasetFromBinary(bad_version).ok());
}

TEST(BinaryDatasetTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/skypref_binary_test.skyd";
  Dataset data = Example1Dataset();
  ASSERT_TRUE(SaveDatasetBinary(path, data).ok());
  Dataset reloaded = LoadDatasetBinary(path).value();
  EXPECT_EQ(reloaded.size(), data.size());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadDatasetBinary(path).ok());
}

TEST(BinaryPreferencesTest, RoundTripPreservesSolverResults) {
  Dataset data = RandomSmallDataset(23, 10, 3, 4);
  TablePreferenceModel model;
  PreferenceGenOptions options;
  options.seed = 5;
  GeneratePreferences(data, options, &model).CheckOK();

  std::string bytes = PreferencesToBinary(data, model);
  TablePreferenceModel reloaded = PreferencesFromBinary(bytes).value();
  for (ObjectId target = 0; target < 3; ++target) {
    EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, target, reloaded).value(),
                     ExactSkylineProbability(data, target, model).value());
  }
}

TEST(BinaryPreferencesTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(PreferencesFromBinary("").ok());
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  std::string bytes = PreferencesToBinary(data, model);
  EXPECT_FALSE(PreferencesFromBinary(bytes.substr(0, bytes.size() / 2)).ok());
  EXPECT_FALSE(PreferencesFromBinary(bytes + "zz").ok());
  // Dataset magic is not preference magic.
  EXPECT_FALSE(PreferencesFromBinary(DatasetToBinary(data)).ok());
}

TEST(BinaryFormatsTest, BinaryIsSmallerThanCsvForLargeData) {
  UniformOptions gen;
  gen.objects = 2000;
  gen.dimensions = 5;
  gen.values_per_dimension = 40;
  gen.seed = 6;
  Dataset data = GenerateUniform(gen).value();
  std::string binary = DatasetToBinary(data);
  // 2000 x 5 cells, ids < 128 -> one byte each plus a 24-byte header.
  EXPECT_LT(binary.size(), 2000u * 5u * 2u + 24u);
}

}  // namespace
}  // namespace skypref
