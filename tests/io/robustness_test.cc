/// Parser robustness: random and adversarial bytes must never crash or
/// abort — every malformed input comes back as a non-OK Status.

#include <string>

#include <gtest/gtest.h>

#include "src/io/binary_io.h"
#include "src/io/csv.h"
#include "src/io/dataset_io.h"
#include "src/util/random.h"
#include "test_util.h"

namespace skypref {
namespace {

std::string RandomBytes(Rng& rng, std::size_t length) {
  std::string bytes(length, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng.NextBounded(256));
  }
  return bytes;
}

TEST(RobustnessTest, RandomBytesIntoCsvParsers) {
  Rng rng(0xf00d);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = RandomBytes(rng, rng.NextBounded(200));
    // Must return (either outcome), never crash.
    auto line = ParseCsvLine(bytes);
    auto document = ParseCsv(bytes);
    auto dataset = DatasetFromCsv(bytes);
    (void)line;
    (void)document;
    (void)dataset;
  }
}

TEST(RobustnessTest, RandomBytesIntoBinaryParsers) {
  Rng rng(0xbeef);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = RandomBytes(rng, rng.NextBounded(300));
    auto dataset = DatasetFromBinary(bytes);
    auto prefs = PreferencesFromBinary(bytes);
    (void)dataset;
    (void)prefs;
  }
}

TEST(RobustnessTest, CorruptedValidBinaryDocuments) {
  Dataset data = skypref::testing::RandomSmallDataset(5, 20, 3, 5);
  std::string valid = DatasetToBinary(data);
  Rng rng(0xcafe);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = valid;
    // Flip a few random bytes.
    for (int flips = 0; flips < 3; ++flips) {
      std::size_t pos = rng.NextBounded(corrupted.size());
      corrupted[pos] = static_cast<char>(rng.NextBounded(256));
    }
    auto result = DatasetFromBinary(corrupted);
    if (result.ok()) {
      // A flip may land in a cell and still parse; the shape must then
      // be internally consistent.
      EXPECT_EQ(result->dimensions(), data.dimensions());
    }
  }
}

TEST(RobustnessTest, HeaderClaimsHugeCountsButPayloadIsSmall) {
  // A forged header with a massive row count must fail on truncation
  // instead of allocating unbounded memory.
  std::string forged("SKYD", 4);
  forged.append("\x01\x00\x00\x00", 4);                  // version 1
  forged.append("\x02\x00\x00\x00\x00\x00\x00\x00", 8);  // dims = 2
  std::string huge_rows(8, '\xff');                      // rows = 2^64-1
  forged.append(huge_rows);
  forged.push_back('\x01');  // one lonely cell
  auto result = DatasetFromBinary(forged);
  EXPECT_FALSE(result.ok());
}

TEST(RobustnessTest, PreferenceCsvWithHostileFields) {
  Domain domain({"a", "b"});
  domain.InternValue(0, "x").value();
  domain.InternValue(0, "y").value();
  const char* hostile[] = {
      "h\na,x,y,nan,0.5\n",
      "h\na,x,y,inf,0.5\n",
      "h\na,x,y,0.5,-inf\n",
      "h\na,x,y,1e400,0\n",
      "h\na,x,x,0.5,0.5\n",
      "h\n,,,,\n",
  };
  for (const char* document : hostile) {
    auto result = PreferencesFromCsv(document, domain);
    EXPECT_FALSE(result.ok()) << document;
  }
}

}  // namespace
}  // namespace skypref
