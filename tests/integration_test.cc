/// End-to-end integration tests: generators -> preferences -> solvers,
/// exercising the same pipelines as the benchmark harnesses but at small
/// scale with correctness assertions.

#include <cmath>

#include <gtest/gtest.h>

#include "src/skypref.h"

namespace skypref {
namespace {

TEST(IntegrationTest, UniformPipelineDetEqualsDetPlusEqualsSam) {
  UniformOptions gen;
  gen.objects = 14;
  gen.dimensions = 3;
  gen.values_per_dimension = 5;
  gen.seed = 42;
  Dataset data = GenerateUniform(gen).value();

  TablePreferenceModel model;
  PreferenceGenOptions prefs;
  prefs.seed = 43;
  GeneratePreferences(data, prefs, &model).CheckOK();

  auto solver = SkylineSolver::Create(data, model).value();
  SolverOptions det;
  det.preprocess = false;
  SolverOptions det_plus;
  det_plus.preprocess = true;
  SolverOptions sam;
  sam.preprocess = false;
  sam.monte_carlo.samples = 60000;
  sam.monte_carlo.seed = 44;

  for (ObjectId target = 0; target < 5; ++target) {
    double truth = solver.Exact(target, det).value();
    EXPECT_NEAR(solver.Exact(target, det_plus).value(), truth, 1e-12);
    EXPECT_NEAR(solver.MonteCarlo(target, sam).value(), truth, 0.015);
  }
}

TEST(IntegrationTest, BlockZipfPipelineDetPlusScalesWherePartitionApplies) {
  BlockZipfOptions gen;
  gen.objects = 600;  // 2^600 subsets without partition — impossible
  gen.dimensions = 4;
  gen.block_size = 8;
  gen.values_per_block = 5;
  gen.seed = 9;
  Dataset data = GenerateBlockZipf(gen).value();

  HashedPreferenceModel model(99,
                              HashedPreferenceModel::Style::kTotalUniform);
  auto solver = SkylineSolver::Create(data, model).value();

  SolverOptions det_plus;
  det_plus.preprocess = true;
  SolveStats stats;
  double sky = solver.Exact(0, det_plus, &stats).value();
  EXPECT_GE(sky, 0.0);
  EXPECT_LE(sky, 1.0);
  EXPECT_GE(stats.groups, data.size() / gen.block_size - 1);
  EXPECT_LE(stats.largest_group, gen.block_size);

  // Sam+ agrees with Det+ within sampling error.
  SolverOptions sam_plus;
  sam_plus.preprocess = true;
  sam_plus.monte_carlo.samples = 4000;
  sam_plus.monte_carlo.seed = 5;
  EXPECT_NEAR(solver.MonteCarlo(0, sam_plus).value(), sky, 0.05);
}

TEST(IntegrationTest, HashedAndTableModelsAgreeWhenTablesMirrorTheHash) {
  UniformOptions gen;
  gen.objects = 10;
  gen.dimensions = 2;
  gen.values_per_dimension = 4;
  gen.seed = 77;
  Dataset data = GenerateUniform(gen).value();

  HashedPreferenceModel hashed(123,
                               HashedPreferenceModel::Style::kTotalUniform);
  TablePreferenceModel table;
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    for (ValueId a = 0; a < data.value_bound(j); ++a) {
      for (ValueId b = a + 1; b < data.value_bound(j); ++b) {
        PrefPair pair = hashed.GetPair(j, a, b);
        table.Set(j, a, b, pair.less, pair.greater).CheckOK();
      }
    }
  }
  for (ObjectId target = 0; target < data.size(); ++target) {
    EXPECT_NEAR(ExactSkylineProbability(data, target, hashed).value(),
                ExactSkylineProbability(data, target, table).value(), 1e-12);
  }
}

TEST(IntegrationTest, NurserySmallProjectionFullSolve) {
  NurseryVariant nursery = GenerateNurseryProjection(2).value();  // 15 objects
  TablePreferenceModel model;
  PreferenceGenOptions prefs;
  prefs.seed = 7;
  GeneratePreferences(nursery.dataset, prefs, &model).CheckOK();
  auto solver = SkylineSolver::Create(nursery.dataset, model).value();
  double total = 0.0;
  for (ObjectId i = 0; i < nursery.dataset.size(); ++i) {
    SolverOptions det;
    det.preprocess = false;
    SolverOptions det_plus;
    double plain = solver.Exact(i, det).value();
    double sky = solver.Exact(i, det_plus).value();
    EXPECT_NEAR(sky, plain, 1e-12);
    EXPECT_GE(sky, -1e-12);
    EXPECT_LE(sky, 1.0 + 1e-12);
    total += sky;
  }
  // Note: the expected skyline cardinality CAN be below 1 here. Sampled
  // pairwise preferences need not be transitive, so worlds exist in which
  // every object is dominated (e.g. cyclic value preferences); with a
  // full-product dataset an object is undominated only if its value is
  // unbeaten in EVERY dimension's tournament. We only require positive
  // mass somewhere.
  EXPECT_GT(total, 0.0);
  EXPECT_LT(total, static_cast<double>(nursery.dataset.size()));
}

TEST(IntegrationTest, NurseryEightDimensionalSingleObject) {
  NurseryVariant nursery = GenerateNursery().value();
  HashedPreferenceModel model(2013,
                              HashedPreferenceModel::Style::kTotalUniform);
  auto solver = SkylineSolver::Create(nursery.dataset, model).value();
  // Det+ on the full 12,960-object set; preprocessing keeps it feasible
  // for a bounded-work solve. Guard with a subset budget so the test can
  // never hang: if the budget trips, that is a real regression.
  SolverOptions options;
  options.preprocess = true;
  options.exact.max_subsets = 50'000'000;
  SolveStats stats;
  auto sky = solver.Exact(4242, options, &stats);
  ASSERT_TRUE(sky.ok()) << sky.status();
  EXPECT_GE(sky.value(), 0.0);
  EXPECT_LE(sky.value(), 1.0);
  EXPECT_LT(stats.after_absorption, stats.candidates);

  // Sam agrees within sampling error.
  SolverOptions sam;
  sam.preprocess = true;
  sam.monte_carlo.samples = 2000;
  sam.monte_carlo.seed = 31;
  EXPECT_NEAR(solver.MonteCarlo(4242, sam).value(), sky.value(), 0.06);
}

TEST(IntegrationTest, CorrelatedPreferencesYieldFewStrongSkylineObjects) {
  // With strongly correlated preferences a "globally good" object exists
  // and most objects' skyline probabilities collapse; anti-correlated
  // preferences spread the probability mass (the Figure 8 narrative).
  UniformOptions gen;
  gen.objects = 12;
  gen.dimensions = 2;
  gen.values_per_dimension = 6;
  gen.seed = 3;
  Dataset data = GenerateUniform(gen).value();

  auto total_sky = [&](PreferenceGenOptions::Style style) {
    TablePreferenceModel model;
    PreferenceGenOptions prefs;
    prefs.style = style;
    prefs.seed = 4;
    prefs.bias = 0.95;
    prefs.jitter = 0.02;
    GeneratePreferences(data, prefs, &model).CheckOK();
    double total = 0.0;
    for (ObjectId i = 0; i < data.size(); ++i) {
      total += ExactSkylineProbability(data, i, model).value();
    }
    return total;
  };

  double correlated = total_sky(PreferenceGenOptions::Style::kCorrelated);
  double anti = total_sky(PreferenceGenOptions::Style::kAntiCorrelated);
  EXPECT_LT(correlated, anti);
}

}  // namespace
}  // namespace skypref
