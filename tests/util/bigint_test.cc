#include "src/util/bigint.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace skypref {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.BitLength(), 0u);
}

TEST(BigIntTest, ConstructionFromInt64) {
  EXPECT_EQ(BigInt(std::int64_t{12345}).ToString(), "12345");
  EXPECT_EQ(BigInt(std::int64_t{-12345}).ToString(), "-12345");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
}

TEST(BigIntTest, ConstructionFromUint64) {
  EXPECT_EQ(BigInt(UINT64_MAX).ToString(), "18446744073709551615");
}

TEST(BigIntTest, FromStringRoundTrip) {
  const char* cases[] = {"0",
                         "7",
                         "-7",
                         "4294967296",
                         "18446744073709551616",
                         "-340282366920938463463374607431768211456",
                         "99999999999999999999999999999999999999"};
  for (const char* text : cases) {
    auto value = BigInt::FromString(text);
    ASSERT_TRUE(value.ok()) << text;
    EXPECT_EQ(value.value().ToString(), text);
  }
}

TEST(BigIntTest, FromStringNormalizesSignedZeroAndPlus) {
  EXPECT_EQ(BigInt::FromString("-0").value().ToString(), "0");
  EXPECT_EQ(BigInt::FromString("+17").value().ToString(), "17");
  EXPECT_EQ(BigInt::FromString("007").value().ToString(), "7");
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a").ok());
  EXPECT_FALSE(BigInt::FromString("0x10").ok());
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::FromString("4294967295").value();  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).ToString(), "4294967296");
  BigInt big = BigInt::FromString("18446744073709551615").value();
  EXPECT_EQ((big + big).ToString(), "36893488147419103230");
}

TEST(BigIntTest, SubtractionBorrowsAndFlipsSign) {
  EXPECT_EQ((BigInt(5) - BigInt(9)).ToString(), "-4");
  EXPECT_EQ((BigInt(-5) - BigInt(-9)).ToString(), "4");
  BigInt big = BigInt::FromString("18446744073709551616").value();
  EXPECT_EQ((big - BigInt(1)).ToString(), "18446744073709551615");
}

TEST(BigIntTest, MultiplicationSchoolbook) {
  BigInt a = BigInt::FromString("123456789123456789").value();
  BigInt b = BigInt::FromString("987654321987654321").value();
  EXPECT_EQ((a * b).ToString(), "121932631356500531347203169112635269");
  EXPECT_EQ((a * BigInt(0)).ToString(), "0");
  EXPECT_EQ((a * BigInt(-1)).ToString(), "-123456789123456789");
}

TEST(BigIntTest, DivModTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToString(), "3");
  EXPECT_EQ((BigInt(7) % BigInt(2)).ToString(), "1");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToString(), "-3");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToString(), "-1");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToString(), "-3");
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToString(), "1");
}

TEST(BigIntTest, DivModLargeOperands) {
  BigInt a = BigInt::FromString("121932631356500531347203169112635269").value();
  BigInt b = BigInt::FromString("987654321987654321").value();
  EXPECT_EQ((a / b).ToString(), "123456789123456789");
  EXPECT_EQ((a % b).ToString(), "0");
  BigInt c = a + BigInt(42);
  EXPECT_EQ((c / b).ToString(), "123456789123456789");
  EXPECT_EQ((c % b).ToString(), "42");
}

TEST(BigIntTest, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-2), BigInt(-1));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(1), BigInt::FromString("4294967296").value());
  EXPECT_EQ(BigInt(5), BigInt(5));
  EXPECT_GE(BigInt(5), BigInt(5));
  EXPECT_GT(BigInt(6), BigInt(5));
  EXPECT_NE(BigInt(6), BigInt(5));
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToString(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToString(), "0");
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToString(), "1");
}

TEST(BigIntTest, PowerOfTwo) {
  EXPECT_EQ(BigInt::PowerOfTwo(0).ToString(), "1");
  EXPECT_EQ(BigInt::PowerOfTwo(10).ToString(), "1024");
  EXPECT_EQ(BigInt::PowerOfTwo(64).ToString(), "18446744073709551616");
  EXPECT_EQ(BigInt::PowerOfTwo(100).ToString(),
            "1267650600228229401496703205376");
}

TEST(BigIntTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(1024).ToDouble(), 1024.0);
  EXPECT_DOUBLE_EQ(BigInt(-3).ToDouble(), -3.0);
  EXPECT_DOUBLE_EQ(BigInt::PowerOfTwo(64).ToDouble(), 0x1.0p64);
}

TEST(BigIntTest, ToInt64) {
  std::int64_t out = 0;
  EXPECT_TRUE(BigInt(INT64_MAX).ToInt64(&out));
  EXPECT_EQ(out, INT64_MAX);
  EXPECT_TRUE(BigInt(INT64_MIN).ToInt64(&out));
  EXPECT_EQ(out, INT64_MIN);
  EXPECT_FALSE(BigInt::PowerOfTwo(63).ToInt64(&out));        // 2^63 overflows
  EXPECT_TRUE((-BigInt::PowerOfTwo(63)).ToInt64(&out));      // -2^63 fits
  EXPECT_EQ(out, INT64_MIN);
  EXPECT_FALSE(BigInt::PowerOfTwo(100).ToInt64(&out));
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::PowerOfTwo(100).BitLength(), 101u);
}

// Randomized cross-check against native 64-bit arithmetic.
TEST(BigIntTest, RandomizedAgainstNativeArithmetic) {
  Rng rng(2026);
  for (int trial = 0; trial < 2000; ++trial) {
    // Keep operands small enough that sums and products fit in int64.
    std::int64_t xa = rng.NextInt(-1000000000LL, 1000000000LL);
    std::int64_t xb = rng.NextInt(-1000000000LL, 1000000000LL);
    BigInt a(xa), b(xb);
    EXPECT_EQ((a + b).ToDouble(), static_cast<double>(xa + xb));
    EXPECT_EQ((a * b).ToDouble(), static_cast<double>(xa * xb));
    if (xb != 0) {
      EXPECT_EQ((a / b).ToDouble(), static_cast<double>(xa / xb));
      EXPECT_EQ((a % b).ToDouble(), static_cast<double>(xa % xb));
    }
  }
}

TEST(BigIntTest, DivModIdentityRandomized) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    // Build operands of a few limbs.
    BigInt a(rng.NextUint64());
    a = a * BigInt(rng.NextUint64()) + BigInt(rng.NextUint64());
    BigInt b(rng.NextUint64() | 1);
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.Abs(), b.Abs());
  }
}

}  // namespace
}  // namespace skypref
