#include "src/util/rational.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace skypref {
namespace {

Rational R(std::int64_t num, std::int64_t den) {
  return Rational::FromRatio(num, den).value();
}

TEST(RationalTest, DefaultIsZero) {
  Rational zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.ToString(), "0");
}

TEST(RationalTest, NormalizationReducesAndFixesSign) {
  EXPECT_EQ(R(2, 4).ToString(), "1/2");
  EXPECT_EQ(R(-2, 4).ToString(), "-1/2");
  EXPECT_EQ(R(2, -4).ToString(), "-1/2");
  EXPECT_EQ(R(-2, -4).ToString(), "1/2");
  EXPECT_EQ(R(0, -5).ToString(), "0");
  EXPECT_EQ(R(6, 3).ToString(), "2");
}

TEST(RationalTest, FromRatioRejectsZeroDenominator) {
  EXPECT_EQ(Rational::FromRatio(1, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ(R(1, 2) + R(1, 3), R(5, 6));
  EXPECT_EQ(R(1, 2) - R(1, 3), R(1, 6));
  EXPECT_EQ(R(2, 3) * R(3, 4), R(1, 2));
  EXPECT_EQ(R(1, 2) / R(1, 4), Rational(2));
  EXPECT_EQ(-R(1, 2), R(-1, 2));
  EXPECT_EQ(R(1, 2) - R(1, 2), Rational(0));
}

TEST(RationalTest, CompoundAssignment) {
  Rational x = R(1, 4);
  x += R(1, 4);
  EXPECT_EQ(x, R(1, 2));
  x *= R(2, 3);
  EXPECT_EQ(x, R(1, 3));
  x -= R(1, 3);
  EXPECT_TRUE(x.is_zero());
}

TEST(RationalTest, Comparison) {
  EXPECT_LT(R(1, 3), R(1, 2));
  EXPECT_LT(R(-1, 2), R(-1, 3));
  EXPECT_LE(R(2, 4), R(1, 2));
  EXPECT_GT(Rational(1), R(99, 100));
  EXPECT_GE(R(3, 3), Rational(1));
  EXPECT_NE(R(1, 3), R(1, 4));
}

TEST(RationalTest, FromDoubleIsExactForDyadics) {
  EXPECT_EQ(Rational::FromDouble(0.5).value(), R(1, 2));
  EXPECT_EQ(Rational::FromDouble(0.375).value(), R(3, 8));
  EXPECT_EQ(Rational::FromDouble(-2.25).value(), R(-9, 4));
  EXPECT_EQ(Rational::FromDouble(0.0).value(), Rational(0));
  EXPECT_EQ(Rational::FromDouble(1024.0).value(), Rational(1024));
}

TEST(RationalTest, FromDoubleRoundTripsArbitraryDoubles) {
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    double x = rng.NextDouble() * 100.0 - 50.0;
    auto r = Rational::FromDouble(x);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r.value().ToDouble(), x);
  }
}

TEST(RationalTest, FromDoubleRejectsNonFinite) {
  EXPECT_FALSE(Rational::FromDouble(std::numeric_limits<double>::infinity())
                   .ok());
  EXPECT_FALSE(Rational::FromDouble(std::nan("")).ok());
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(R(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(R(-1, 3).ToDouble(), -1.0 / 3.0);
}

TEST(RationalTest, LargeIntermediateValuesStayExact) {
  // Sum of 1/k for k=1..30 has a huge denominator; verify against a
  // known value computed independently: H_30 = p/q in lowest terms.
  Rational h;
  for (std::int64_t k = 1; k <= 30; ++k) h += R(1, k);
  // Check the defining property instead of hard-coding digits:
  // (H_30 - 1/30 - ... ) telescopes back to zero.
  Rational check = h;
  for (std::int64_t k = 30; k >= 1; --k) check -= R(1, k);
  EXPECT_TRUE(check.is_zero());
  EXPECT_NEAR(h.ToDouble(), 3.9949871309203906, 1e-12);
}

TEST(RationalTest, NegativeZeroIsPlainZero) {
  auto r = Rational::FromDouble(-0.0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().is_zero());
  EXPECT_FALSE(r.value().is_negative());
  EXPECT_EQ(r.value(), Rational(0));
}

TEST(RationalTest, FromDoubleIsExactForDenormals) {
  // The smallest positive double is 2^-1074; FromDouble must represent
  // it exactly, not flush it to zero.
  const double denorm = std::numeric_limits<double>::denorm_min();
  auto r = Rational::FromDouble(denorm);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().is_zero());
  EXPECT_EQ(r.value().numerator().ToString(), "1");
  EXPECT_EQ(r.value() * Rational(BigInt::PowerOfTwo(1074), BigInt(1)),
            Rational(1));
}

TEST(RationalTest, FromDoubleIsExactAtDoubleMax) {
  const double huge = std::numeric_limits<double>::max();
  auto r = Rational::FromDouble(huge);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().ToDouble(), huge);
}

TEST(RationalTest, ToDoubleSaturatesOutsideDoubleRange) {
  // ToDouble is documented as "one rounding per operand": magnitudes
  // beyond double range saturate to inf / 0 rather than aborting.
  Rational huge(BigInt::PowerOfTwo(2000), BigInt(1));
  EXPECT_TRUE(std::isinf(huge.ToDouble()));
  EXPECT_GT(huge.ToDouble(), 0.0);
  Rational tiny(BigInt(1), BigInt::PowerOfTwo(2000));
  EXPECT_EQ(tiny.ToDouble(), 0.0);
  Rational negative_huge = -huge;
  EXPECT_TRUE(std::isinf(negative_huge.ToDouble()));
  EXPECT_LT(negative_huge.ToDouble(), 0.0);
}

TEST(RationalTest, Int64MinSurvivesNegationPaths) {
  // -INT64_MIN does not fit in int64; BigInt carries it, so both the
  // numerator and the normalize-the-sign denominator path must work.
  const std::int64_t min64 = std::numeric_limits<std::int64_t>::min();
  Rational as_numerator(BigInt(min64), BigInt(1));
  EXPECT_EQ(as_numerator.ToString(), "-9223372036854775808");
  EXPECT_EQ((-as_numerator).ToString(), "9223372036854775808");
  Rational as_denominator(BigInt(1), BigInt(min64));
  EXPECT_EQ(as_denominator.ToString(), "-1/9223372036854775808");
  EXPECT_FALSE(as_denominator.denominator().is_negative());
  EXPECT_EQ(as_numerator * as_denominator, Rational(1));
}

TEST(RationalTest, SmallTimesHugeStaysExact) {
  // Overflow-free cross-magnitude arithmetic: (1/2^600) * 2^600 = 1 and
  // (2^600 + 1) - 2^600 = 1 exercise carries far past 64 bits.
  Rational huge(BigInt::PowerOfTwo(600), BigInt(1));
  Rational tiny(BigInt(1), BigInt::PowerOfTwo(600));
  EXPECT_EQ(huge * tiny, Rational(1));
  Rational huge_plus_one = huge + Rational(1);
  EXPECT_EQ(huge_plus_one - huge, Rational(1));
  EXPECT_LT(huge, huge_plus_one);
}

TEST(RationalTest, CompareAcrossExtremeMagnitudeGap) {
  Rational tiny(BigInt(1), BigInt::PowerOfTwo(900));
  Rational huge(BigInt::PowerOfTwo(900), BigInt(1));
  EXPECT_LT(-huge, -tiny);
  EXPECT_LT(-tiny, Rational(0));
  EXPECT_LT(Rational(0), tiny);
  EXPECT_LT(tiny, huge);
}

TEST(RationalTest, DistributiveLawExactRandomized) {
  Rng rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    Rational a = R(rng.NextInt(-50, 50), rng.NextInt(1, 30));
    Rational b = R(rng.NextInt(-50, 50), rng.NextInt(1, 30));
    Rational c = R(rng.NextInt(-50, 50), rng.NextInt(1, 30));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    if (!c.is_zero()) {
      EXPECT_EQ((a / c) * c, a);
    }
  }
}

}  // namespace
}  // namespace skypref
