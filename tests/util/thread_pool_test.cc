#include "src/util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(10000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, CountSmallerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.ParallelFor(3, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(20, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolTest, ActuallyUsesMultipleThreads) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  pool.ParallelFor(64, [&](std::size_t) {
    // Enough work per task that the workers wake up before the calling
    // thread has drained the whole range.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 1 << 16;
  std::vector<std::uint64_t> values(n);
  pool.ParallelFor(n, [&](std::size_t i) { values[i] = i * i; });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) expected += i * i;
  std::uint64_t actual = 0;
  for (std::uint64_t v : values) actual += v;
  EXPECT_EQ(actual, expected);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

}  // namespace
}  // namespace skypref
