#include "src/util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

// ThreadSanitizer-targeted stress tests. These hammer the three regimes
// of ThreadPool::ParallelFor — inline (0 threads), repeated reuse of one
// pool, and full-pool contention — plus the shutdown path, where a lost
// wakeup would hang the destructor and a race on in_flight_ would let
// ParallelFor return before every task finished. Run them under the
// `tsan` preset (ctest -L concurrency); they are also fast enough for
// the regular suite.

namespace skypref {
namespace {

TEST(ThreadPoolStressTest, ConstructDestroyWithoutWork) {
  // Shutdown path with workers that never left the initial wait: a lost
  // notify in ~ThreadPool would deadlock this loop.
  for (int round = 0; round < 100; ++round) {
    ThreadPool pool(4);
  }
}

TEST(ThreadPoolStressTest, ConstructOneBatchDestroy) {
  // Shutdown immediately after a batch: workers are transitioning from
  // "drained the range" back to waiting when shutting_down_ flips.
  for (int round = 0; round < 100; ++round) {
    ThreadPool pool(3);
    std::atomic<int> total{0};
    pool.ParallelFor(8, [&](std::size_t) { total.fetch_add(1); });
    ASSERT_EQ(total.load(), 8);
  }
}

TEST(ThreadPoolStressTest, RepeatedReuseHammer) {
  // Many small batches through one pool: exercises the batch-reset of
  // current_fn_ / next_index_ / end_index_ under the lock, over and over.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 2000; ++round) {
    pool.ParallelFor(16, [&](std::size_t i) {
      total.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 2000u * (16u * 17u / 2u));
}

TEST(ThreadPoolStressTest, FullPoolContention) {
  // More workers than cores and tiny tasks: maximal churn on the mutex
  // and the two condition variables.
  ThreadPool pool(8);
  std::vector<std::uint8_t> hit(100000, 0);
  pool.ParallelFor(hit.size(), [&](std::size_t i) { hit[i] = 1; });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), std::size_t{0}),
            hit.size());
}

TEST(ThreadPoolStressTest, ZeroThreadInlineModeNeedsNoSynchronization) {
  // Inline mode runs on the caller: plain (non-atomic) writes are safe
  // by contract, and TSan confirms no other thread ever touches them.
  ThreadPool pool(0);
  std::vector<int> plain(5000, 0);
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(plain.size(), [&](std::size_t i) { plain[i] += 1; });
  }
  EXPECT_EQ(plain[0], 50);
  EXPECT_EQ(plain[4999], 50);
}

TEST(ThreadPoolStressTest, ParallelForIsABarrier) {
  // in_flight_ accounting: ParallelFor must not return while any worker
  // still runs a task. Slow tasks write their slot last; a premature
  // return would observe a zero.
  ThreadPool pool(4);
  std::vector<std::uint8_t> done(64, 0);
  for (int round = 0; round < 20; ++round) {
    std::fill(done.begin(), done.end(), 0);
    pool.ParallelFor(done.size(), [&](std::size_t i) {
      if (i % 7 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      done[i] = 1;
    });
    // Plain reads are race-free here precisely because of the barrier.
    EXPECT_EQ(std::accumulate(done.begin(), done.end(), std::size_t{0}),
              done.size());
  }
}

TEST(ThreadPoolStressTest, UnevenTaskDurations) {
  // Workers drain the shared index counter at wildly different rates;
  // the caller participates and must still join cleanly.
  ThreadPool pool(3);
  std::atomic<std::uint64_t> checksum{0};
  pool.ParallelFor(256, [&](std::size_t i) {
    if (i % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    checksum.fetch_add(i * i, std::memory_order_relaxed);
  });
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < 256; ++i) expected += i * i;
  EXPECT_EQ(checksum.load(), expected);
}

TEST(ThreadPoolStressTest, ManySequentialPoolsInterleavedWithWork) {
  // Creation, one contended batch, destruction — repeatedly. Covers the
  // whole lifecycle including the notify in the destructor racing with
  // workers that are mid-batch-drain.
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.ParallelFor(100, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(total.load(), 100);
  }
}

}  // namespace
}  // namespace skypref
