/// Deadline / CancelToken semantics (src/util/cancel.h): the unified
/// deadline type's never/at/after states, the shared-flag token, and the
/// CheckStop precedence rule (cancellation beats deadline expiry).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/util/cancel.h"

namespace skypref {
namespace {

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline never;
  EXPECT_FALSE(never.has_value());
  EXPECT_FALSE(never.Expired());
  EXPECT_FALSE(Deadline::Never().has_value());
}

TEST(DeadlineTest, NonPositiveSecondsMeansNever) {
  EXPECT_FALSE(Deadline::After(0.0).has_value());
  EXPECT_FALSE(Deadline::After(-1.0).has_value());
}

TEST(DeadlineTest, AfterPositiveSecondsIsSetAndNotYetExpired) {
  Deadline later = Deadline::After(3600.0);
  EXPECT_TRUE(later.has_value());
  EXPECT_FALSE(later.Expired());
  EXPECT_GT(later.when(), Deadline::Clock::now());
}

TEST(DeadlineTest, AtPastTimeIsExpired) {
  Deadline past = Deadline::At(Deadline::Clock::now() -
                               std::chrono::seconds(1));
  EXPECT_TRUE(past.has_value());
  EXPECT_TRUE(past.Expired());
}

TEST(CancelTokenTest, DefaultConstructedIsLive) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, CopiesShareTheFlag) {
  CancelToken token;
  CancelToken copy = token;
  copy.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
  // Idempotent.
  token.RequestCancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, CancelFromAnotherThreadIsObserved) {
  CancelToken token;
  std::thread other([token] { token.RequestCancel(); });
  other.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTest, CancelledStatusCode) {
  EXPECT_EQ(CancelledStatus().code(), StatusCode::kCancelled);
}

TEST(CheckStopTest, OkWhenNothingTripped) {
  CancelToken token;
  EXPECT_TRUE(CheckStop(&token, Deadline::Never()).ok());
  EXPECT_TRUE(CheckStop(nullptr, Deadline::Never()).ok());
}

TEST(CheckStopTest, ExpiredDeadlineIsResourceExhausted) {
  Deadline past = Deadline::At(Deadline::Clock::now() -
                               std::chrono::seconds(1));
  EXPECT_EQ(CheckStop(nullptr, past).code(), StatusCode::kResourceExhausted);
}

TEST(CheckStopTest, CancellationBeatsDeadlineExpiry) {
  CancelToken token;
  token.RequestCancel();
  Deadline past = Deadline::At(Deadline::Clock::now() -
                               std::chrono::seconds(1));
  EXPECT_EQ(CheckStop(&token, past).code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace skypref
