#include "src/util/check.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(IsProbabilityTest, AcceptsTheUnitIntervalAndTolerance) {
  EXPECT_TRUE(IsProbability(0.0));
  EXPECT_TRUE(IsProbability(1.0));
  EXPECT_TRUE(IsProbability(0.5));
  EXPECT_TRUE(IsProbability(-kProbEpsilon));
  EXPECT_TRUE(IsProbability(1.0 + kProbEpsilon));
  EXPECT_TRUE(IsProbability(-0.0));
}

TEST(IsProbabilityTest, RejectsOutOfRangeAndNonFinite) {
  EXPECT_FALSE(IsProbability(-2.0 * kProbEpsilon));
  EXPECT_FALSE(IsProbability(1.0 + 2.0 * kProbEpsilon));
  EXPECT_FALSE(IsProbability(-1.0));
  EXPECT_FALSE(IsProbability(2.0));
  EXPECT_FALSE(IsProbability(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(IsProbability(-std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(IsProbability(std::nan("")));
}

TEST(ClampProbabilityTest, ClampsIntoTheUnitInterval) {
  EXPECT_EQ(ClampProbability(-1e-12), 0.0);
  EXPECT_EQ(ClampProbability(1.0 + 1e-12), 1.0);
  EXPECT_EQ(ClampProbability(0.25), 0.25);
  EXPECT_EQ(ClampProbability(0.0), 0.0);
  EXPECT_EQ(ClampProbability(1.0), 1.0);
}

TEST(ValidateProbabilityTest, OkInsideToleranceInternalOutside) {
  EXPECT_TRUE(ValidateProbability(0.7, "p").ok());
  EXPECT_TRUE(ValidateProbability(-1e-12, "p").ok());
  Status bad = ValidateProbability(1.5, "sky(O)");
  EXPECT_EQ(bad.code(), StatusCode::kInternal);
  EXPECT_NE(bad.message().find("sky(O)"), std::string::npos);
  EXPECT_FALSE(ValidateProbability(std::nan(""), "p").ok());
}

TEST(CheckMacrosTest, PassingChecksAreSilent) {
  SKYPREF_CHECK(1 + 1 == 2);
  SKYPREF_CHECK_PROB(0.5);
  SKYPREF_DCHECK(true);
  SKYPREF_DCHECK_PROB(1.0);
}

TEST(CheckMacrosDeathTest, CheckAbortsWithLocation) {
  EXPECT_DEATH(SKYPREF_CHECK(2 + 2 == 5), "SKYPREF_CHECK failed: 2 \\+ 2 == 5");
}

TEST(CheckMacrosDeathTest, CheckProbAbortsWithValue) {
  EXPECT_DEATH(SKYPREF_CHECK_PROB(1.25), "SKYPREF_CHECK_PROB failed");
}

#if defined(SKYPREF_ENABLE_DCHECKS) && SKYPREF_ENABLE_DCHECKS

TEST(CheckMacrosDeathTest, DcheckIsFatalWhenEnabled) {
  EXPECT_DEATH(SKYPREF_DCHECK(false), "SKYPREF_CHECK failed");
  EXPECT_DEATH(SKYPREF_DCHECK_PROB(-0.5), "SKYPREF_CHECK_PROB failed");
}

#else

TEST(CheckMacrosTest, DcheckCompiledOutInRelease) {
  // The condition must not even be evaluated.
  int evaluations = 0;
  SKYPREF_DCHECK([&] {
    ++evaluations;
    return false;
  }());
  SKYPREF_DCHECK_PROB([&] {
    ++evaluations;
    return -7.0;
  }());
  EXPECT_EQ(evaluations, 0);
}

#endif  // SKYPREF_ENABLE_DCHECKS

}  // namespace
}  // namespace skypref
