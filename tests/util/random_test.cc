#include "src/util/random.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/sam_parallel.h"  // internal::BernoulliThreshold

namespace skypref {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextInt(4, 4), 4);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(SplitSeedTest, DeterministicAndStreamSensitive) {
  EXPECT_EQ(SplitSeed(42, 0), SplitSeed(42, 0));
  EXPECT_NE(SplitSeed(42, 0), SplitSeed(42, 1));
  EXPECT_NE(SplitSeed(42, 0), SplitSeed(43, 0));
  // Consecutive stream indices are the block engine's use case; a run of
  // them must produce distinct seeds even for adversarial base seeds.
  for (std::uint64_t base : {std::uint64_t{0}, std::uint64_t{42},
                             ~std::uint64_t{0}}) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t stream = 0; stream < 1024; ++stream) {
      seen.insert(SplitSeed(base, stream));
    }
    EXPECT_EQ(seen.size(), 1024u) << "base=" << base;
  }
}

TEST(SplitSeedTest, DerivedStreamsAreUncorrelated) {
  // The block engine seeds block b with SplitSeed(seed, b) and relies on
  // the derived Xoshiro streams being independent. Check pairwise: for
  // adjacent blocks, the bitwise agreement of the two streams' outputs
  // should look like fair coin flips, and each stream's mean should be
  // near 1/2. 64 bits x 256 draws = 16384 coin flips per pair; a fair
  // coin stays within 4 sigma (= 4 * sqrt(16384)/2 = 256) of 8192.
  const int kDraws = 256;
  const int kBits = 64 * kDraws;
  for (std::uint64_t base : {std::uint64_t{7}, std::uint64_t{2013}}) {
    for (std::uint64_t block = 0; block < 8; ++block) {
      Rng a(SplitSeed(base, block));
      Rng b(SplitSeed(base, block + 1));
      int agreements = 0;
      double mean_a = 0.0;
      for (int i = 0; i < kDraws; ++i) {
        std::uint64_t ua = a.NextUint64();
        std::uint64_t ub = b.NextUint64();
        agreements += 64 - std::popcount(ua ^ ub);
        mean_a += std::ldexp(static_cast<double>(ua), -64);
      }
      EXPECT_NEAR(agreements, kBits / 2, 4 * 64) << "base=" << base
                                                 << " block=" << block;
      EXPECT_NEAR(mean_a / kDraws, 0.5, 0.08) << "base=" << base
                                              << " block=" << block;
    }
  }
}

TEST(SplitSeedTest, ChiSquareOverDerivedStreamsIsUniform) {
  // Pool the low byte of the first draw of 4096 derived streams into 16
  // buckets. Chi-square with 15 degrees of freedom: the 99.9th
  // percentile is ~37.7, so a healthy splitter stays below 40.
  std::vector<int> counts(16, 0);
  const int kStreams = 4096;
  for (std::uint64_t stream = 0; stream < kStreams; ++stream) {
    Rng rng(SplitSeed(0xdecafbadULL, stream));
    ++counts[rng.NextUint64() & 15];
  }
  const double expected = kStreams / 16.0;
  double chi2 = 0.0;
  for (int count : counts) {
    double diff = count - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 40.0);
}

TEST(NextBernoulliWordTest, EndpointsAreExactAndFree) {
  // p = 0 and the p >= 1 sentinel must be decided without consuming any
  // randomness, exactly like Rng::NextBernoulli at both endpoints.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  Rng a(11), twin(11);
  EXPECT_EQ(NextBernoulliWord(a, 0), 0ULL);
  EXPECT_EQ(NextBernoulliWord(a, kMax), ~0ULL);
  EXPECT_EQ(a.NextUint64(), twin.NextUint64());  // stream untouched
}

TEST(NextBernoulliWordTest, DyadicThresholdConsumesOneWord) {
  // p = 1/2 (threshold 2^63) has a single significant bit: every lane is
  // decided by the first revealed bit, so exactly one PRNG word is
  // consumed — the best case that block-local preference models (their
  // cross-block pairs are uniform coin flips) hit constantly.
  Rng a(13), twin(13);
  const std::uint64_t half = internal::BernoulliThreshold(0.5);
  const std::uint64_t word = NextBernoulliWord(a, half);
  const std::uint64_t consumed = twin.NextUint64();
  EXPECT_EQ(word, ~consumed);  // U < 2^63 iff the top... all bits decide
  EXPECT_EQ(a.NextUint64(), twin.NextUint64());  // exactly one word used
}

TEST(NextBernoulliWordTest, PerBitChiSquareMatchesThreshold) {
  // Bit w of each word must be Bernoulli(p) for EVERY lane w, not just on
  // average: pool N draws per lane and form the 64-term chi-square
  // statistic sum_w (k_w - Np)^2 / (Np(1-p)). Healthy lanes stay under
  // the 99.99th percentile of chi^2_64 (~118) with margin.
  const int kDraws = 8192;
  for (double p : {0.3, 0.5, 0.75, 0.9}) {
    const std::uint64_t threshold = internal::BernoulliThreshold(p);
    Rng rng(0xb17b17ULL + static_cast<std::uint64_t>(p * 1000));
    std::vector<int> per_bit(64, 0);
    for (int i = 0; i < kDraws; ++i) {
      std::uint64_t w = NextBernoulliWord(rng, threshold);
      while (w != 0) {
        ++per_bit[static_cast<std::size_t>(std::countr_zero(w))];
        w &= w - 1;
      }
    }
    const double expected = kDraws * p;
    const double var = kDraws * p * (1.0 - p);
    double chi2 = 0.0;
    for (int k : per_bit) {
      const double diff = k - expected;
      chi2 += diff * diff / var;
    }
    EXPECT_LT(chi2, 125.0) << "p=" << p;
  }
}

TEST(NextBernoulliWordTest, CrossBitPairsAreUncorrelated) {
  // Lanes share the revealed PRNG words, so independence across bits is
  // the property to earn, not assume: for lane pairs, the joint-hit
  // frequency must match p^2. 5-sigma band on a binomial count.
  const int kDraws = 16384;
  const double p = 0.6;
  const std::uint64_t threshold = internal::BernoulliThreshold(p);
  Rng rng(0xc0a7e5ULL);
  const int pairs[][2] = {{0, 1}, {7, 8}, {31, 32}, {62, 63}, {0, 63}};
  int joint[5] = {0};
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t w = NextBernoulliWord(rng, threshold);
    for (int j = 0; j < 5; ++j) {
      if (((w >> pairs[j][0]) & 1ULL) != 0 && ((w >> pairs[j][1]) & 1ULL) != 0) {
        ++joint[j];
      }
    }
  }
  const double expected = kDraws * p * p;
  const double sigma = std::sqrt(kDraws * p * p * (1.0 - p * p));
  for (int j = 0; j < 5; ++j) {
    EXPECT_NEAR(joint[j], expected, 5.0 * sigma)
        << "pair (" << pairs[j][0] << "," << pairs[j][1] << ")";
  }
}

TEST(NextBernoulliWordTest, FullPrecisionThresholdMeanMatches) {
  // A non-dyadic p exercises the deep expansion (many significant
  // threshold bits); the mean bit density must still match p.
  const double p = 1.0 / 3.0;
  const std::uint64_t threshold = internal::BernoulliThreshold(p);
  Rng rng(0x3333ULL);
  const int kDraws = 20000;
  std::int64_t hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    hits += std::popcount(NextBernoulliWord(rng, threshold));
  }
  const double n = 64.0 * kDraws;
  EXPECT_NEAR(static_cast<double>(hits) / n, p,
              5.0 * std::sqrt(p * (1.0 - p) / n));
}

TEST(NextTernaryWordsTest, MasksAreMutuallyExclusive) {
  Rng rng(0x7e7e7eULL);
  const std::uint64_t lo = internal::BernoulliThreshold(0.4);
  const std::uint64_t hi = internal::BernoulliThreshold(0.7);
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t lo_mask = 0, hi_mask = 0;
    NextTernaryWords(rng, lo, hi, &lo_mask, &hi_mask);
    EXPECT_EQ(lo_mask & hi_mask, 0ULL);
  }
}

TEST(NextTernaryWordsTest, FrequenciesMatchBothCuts) {
  // Pr(lo) = 0.4, Pr(hi) = 0.3, Pr(incomparable) = 0.3, from one shared
  // uniform per lane — all three frequencies must land on target.
  Rng rng(0x7a7a7aULL);
  const std::uint64_t lo = internal::BernoulliThreshold(0.4);
  const std::uint64_t hi = internal::BernoulliThreshold(0.7);
  const int kDraws = 20000;
  std::int64_t lo_hits = 0, hi_hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    std::uint64_t lo_mask = 0, hi_mask = 0;
    NextTernaryWords(rng, lo, hi, &lo_mask, &hi_mask);
    lo_hits += std::popcount(lo_mask);
    hi_hits += std::popcount(hi_mask);
  }
  const double n = 64.0 * kDraws;
  EXPECT_NEAR(static_cast<double>(lo_hits) / n, 0.4,
              5.0 * std::sqrt(0.4 * 0.6 / n));
  EXPECT_NEAR(static_cast<double>(hi_hits) / n, 0.3,
              5.0 * std::sqrt(0.3 * 0.7 / n));
}

TEST(NextTernaryWordsTest, SentinelsAreExactAndFree) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  Rng a(29), twin(29);
  std::uint64_t lo_mask = 0, hi_mask = 0;
  // Pr(lo) >= 1: always lo, no draw.
  NextTernaryWords(a, kMax, kMax, &lo_mask, &hi_mask);
  EXPECT_EQ(lo_mask, ~0ULL);
  EXPECT_EQ(hi_mask, 0ULL);
  // Pr(lo) = 0, Pr(lo) + Pr(hi) >= 1: always hi, no draw.
  NextTernaryWords(a, 0, kMax, &lo_mask, &hi_mask);
  EXPECT_EQ(lo_mask, 0ULL);
  EXPECT_EQ(hi_mask, ~0ULL);
  // Both cuts 0: always incomparable, no draw.
  NextTernaryWords(a, 0, 0, &lo_mask, &hi_mask);
  EXPECT_EQ(lo_mask, 0ULL);
  EXPECT_EQ(hi_mask, 0ULL);
  EXPECT_EQ(a.NextUint64(), twin.NextUint64());  // stream untouched
}

TEST(NextBernoulliWords8Test, LanesMatchForkedScalarGenerators) {
  // OctoRng lane l is seeded from the l-th Fork() of the parent, and a
  // dyadic threshold 2^63 consumes exactly one word per lane with mask
  // ~word — so the wide call must reproduce eight scalar Rng streams.
  Rng parent(91), twin(91);
  OctoRng oct(parent);
  std::uint64_t out[OctoRng::kLanes];
  NextBernoulliWords8(oct, 1ULL << 63, out);
  for (int l = 0; l < OctoRng::kLanes; ++l) {
    Rng lane(twin.Fork());
    EXPECT_EQ(out[l], ~lane.NextUint64()) << "lane " << l;
  }
}

TEST(NextBernoulliWords8Test, DispatchMatchesScalarReference) {
  // Whatever kernel the CPU dispatch picks must be word-for-word equal
  // to the portable reference — the ISA is speed, never semantics.
  Rng pa(17), pb(17);
  OctoRng a(pa), b(pb);
  std::uint64_t da[OctoRng::kLanes], db[OctoRng::kLanes];
  Rng thresholds(3);
  for (int i = 0; i < 512; ++i) {
    const std::uint64_t threshold = thresholds.NextUint64();
    NextBernoulliWords8(a, threshold, da);
    internal::NextBernoulliWords8Scalar(b, threshold, db);
    for (int l = 0; l < OctoRng::kLanes; ++l) {
      ASSERT_EQ(da[l], db[l]) << "threshold " << threshold << " lane " << l;
    }
  }
}

TEST(NextBernoulliWords8Test, SentinelsAreExactAndFree) {
  Rng pa(41), twin(41);
  OctoRng oct(pa);
  OctoRng copy(twin);
  std::uint64_t out[OctoRng::kLanes];
  NextBernoulliWords8(oct, 0, out);
  for (std::uint64_t w : out) EXPECT_EQ(w, 0ULL);
  NextBernoulliWords8(oct, std::numeric_limits<std::uint64_t>::max(), out);
  for (std::uint64_t w : out) EXPECT_EQ(w, ~0ULL);
  // Neither sentinel advanced any lane.
  for (int w = 0; w < 4; ++w) {
    for (int l = 0; l < OctoRng::kLanes; ++l) {
      EXPECT_EQ(oct.s[w][l], copy.s[w][l]);
    }
  }
}

TEST(NextBernoulliWords8Test, FullPrecisionMeanMatchesThreshold) {
  const std::uint64_t threshold = internal::BernoulliThreshold(1.0 / 3.0);
  Rng parent(2024);
  OctoRng oct(parent);
  std::uint64_t out[OctoRng::kLanes];
  const int kCalls = 8192;
  std::int64_t hits = 0;
  for (int i = 0; i < kCalls; ++i) {
    NextBernoulliWords8(oct, threshold, out);
    for (std::uint64_t w : out) hits += std::popcount(w);
  }
  const double n = 64.0 * OctoRng::kLanes * kCalls;
  const double p = 1.0 / 3.0;
  const double sigma = std::sqrt(n * p * (1.0 - p));
  EXPECT_NEAR(static_cast<double>(hits), n * p, 5.0 * sigma);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(55);
  Rng child_a(parent.Fork());
  Rng child_b(parent.Fork());
  std::uint64_t first_a = child_a.NextUint64();
  std::uint64_t first_b = child_b.NextUint64();
  // Different children diverge, and forks are deterministic per parent.
  EXPECT_NE(first_a, first_b);
  Rng parent2(55);
  EXPECT_EQ(Rng(parent2.Fork()).NextUint64(), first_a);
  EXPECT_EQ(Rng(parent2.Fork()).NextUint64(), first_b);
}

}  // namespace
}  // namespace skypref
