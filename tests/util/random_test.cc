#include "src/util/random.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextInt(4, 4), 4);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(55);
  Rng child_a(parent.Fork());
  Rng child_b(parent.Fork());
  std::uint64_t first_a = child_a.NextUint64();
  std::uint64_t first_b = child_b.NextUint64();
  // Different children diverge, and forks are deterministic per parent.
  EXPECT_NE(first_a, first_b);
  Rng parent2(55);
  EXPECT_EQ(Rng(parent2.Fork()).NextUint64(), first_a);
  EXPECT_EQ(Rng(parent2.Fork()).NextUint64(), first_b);
}

}  // namespace
}  // namespace skypref
