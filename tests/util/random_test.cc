#include "src/util/random.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextInt(4, 4), 4);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(SplitSeedTest, DeterministicAndStreamSensitive) {
  EXPECT_EQ(SplitSeed(42, 0), SplitSeed(42, 0));
  EXPECT_NE(SplitSeed(42, 0), SplitSeed(42, 1));
  EXPECT_NE(SplitSeed(42, 0), SplitSeed(43, 0));
  // Consecutive stream indices are the block engine's use case; a run of
  // them must produce distinct seeds even for adversarial base seeds.
  for (std::uint64_t base : {std::uint64_t{0}, std::uint64_t{42},
                             ~std::uint64_t{0}}) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t stream = 0; stream < 1024; ++stream) {
      seen.insert(SplitSeed(base, stream));
    }
    EXPECT_EQ(seen.size(), 1024u) << "base=" << base;
  }
}

TEST(SplitSeedTest, DerivedStreamsAreUncorrelated) {
  // The block engine seeds block b with SplitSeed(seed, b) and relies on
  // the derived Xoshiro streams being independent. Check pairwise: for
  // adjacent blocks, the bitwise agreement of the two streams' outputs
  // should look like fair coin flips, and each stream's mean should be
  // near 1/2. 64 bits x 256 draws = 16384 coin flips per pair; a fair
  // coin stays within 4 sigma (= 4 * sqrt(16384)/2 = 256) of 8192.
  const int kDraws = 256;
  const int kBits = 64 * kDraws;
  for (std::uint64_t base : {std::uint64_t{7}, std::uint64_t{2013}}) {
    for (std::uint64_t block = 0; block < 8; ++block) {
      Rng a(SplitSeed(base, block));
      Rng b(SplitSeed(base, block + 1));
      int agreements = 0;
      double mean_a = 0.0;
      for (int i = 0; i < kDraws; ++i) {
        std::uint64_t ua = a.NextUint64();
        std::uint64_t ub = b.NextUint64();
        agreements += 64 - std::popcount(ua ^ ub);
        mean_a += std::ldexp(static_cast<double>(ua), -64);
      }
      EXPECT_NEAR(agreements, kBits / 2, 4 * 64) << "base=" << base
                                                 << " block=" << block;
      EXPECT_NEAR(mean_a / kDraws, 0.5, 0.08) << "base=" << base
                                              << " block=" << block;
    }
  }
}

TEST(SplitSeedTest, ChiSquareOverDerivedStreamsIsUniform) {
  // Pool the low byte of the first draw of 4096 derived streams into 16
  // buckets. Chi-square with 15 degrees of freedom: the 99.9th
  // percentile is ~37.7, so a healthy splitter stays below 40.
  std::vector<int> counts(16, 0);
  const int kStreams = 4096;
  for (std::uint64_t stream = 0; stream < kStreams; ++stream) {
    Rng rng(SplitSeed(0xdecafbadULL, stream));
    ++counts[rng.NextUint64() & 15];
  }
  const double expected = kStreams / 16.0;
  double chi2 = 0.0;
  for (int count : counts) {
    double diff = count - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 40.0);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(55);
  Rng child_a(parent.Fork());
  Rng child_b(parent.Fork());
  std::uint64_t first_a = child_a.NextUint64();
  std::uint64_t first_b = child_b.NextUint64();
  // Different children diverge, and forks are deterministic per parent.
  EXPECT_NE(first_a, first_b);
  Rng parent2(55);
  EXPECT_EQ(Rng(parent2.Fork()).NextUint64(), first_a);
  EXPECT_EQ(Rng(parent2.Fork()).NextUint64(), first_b);
}

}  // namespace
}  // namespace skypref
