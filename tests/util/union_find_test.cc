#include "src/util/union_find.h"

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(4);
  EXPECT_EQ(uf.component_count(), 4u);
  EXPECT_EQ(uf.element_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
  EXPECT_FALSE(uf.Connected(0, 1));
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_EQ(uf.component_count(), 4u);
  EXPECT_EQ(uf.SetSize(0), 2u);
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_EQ(uf.component_count(), 4u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(4, 5);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Connected(4, 5));
  EXPECT_FALSE(uf.Connected(2, 4));
  EXPECT_FALSE(uf.Connected(3, 0));
  EXPECT_EQ(uf.component_count(), 3u);
  EXPECT_EQ(uf.SetSize(2), 3u);
}

TEST(UnionFindTest, ComponentsGroupsByRepresentative) {
  UnionFind uf(6);
  uf.Union(0, 3);
  uf.Union(1, 4);
  uf.Union(4, 5);
  auto components = uf.Components();
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(components[1], (std::vector<std::size_t>{1, 4, 5}));
  EXPECT_EQ(components[2], (std::vector<std::size_t>{2}));
}

TEST(UnionFindTest, MergeAllIntoOne) {
  UnionFind uf(100);
  for (std::size_t i = 1; i < 100; ++i) uf.Union(0, i);
  EXPECT_EQ(uf.component_count(), 1u);
  EXPECT_EQ(uf.SetSize(99), 100u);
  EXPECT_TRUE(uf.Connected(17, 83));
}

TEST(UnionFindTest, SingleElement) {
  UnionFind uf(1);
  EXPECT_EQ(uf.component_count(), 1u);
  EXPECT_EQ(uf.Components().size(), 1u);
}

}  // namespace
}  // namespace skypref
