#include "src/util/kahan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace skypref {
namespace {

TEST(KahanSumTest, EmptyIsZero) {
  KahanSum sum;
  EXPECT_EQ(sum.Value(), 0.0);
}

TEST(KahanSumTest, InitialValueRespected) {
  KahanSum sum(2.5);
  sum.Add(0.5);
  EXPECT_DOUBLE_EQ(sum.Value(), 3.0);
}

TEST(KahanSumTest, RecoversSmallTermsNextToHugeOnes) {
  // Naive summation loses the 1.0 terms entirely.
  KahanSum sum;
  sum.Add(1e16);
  for (int i = 0; i < 1000; ++i) sum.Add(1.0);
  sum.Add(-1e16);
  EXPECT_DOUBLE_EQ(sum.Value(), 1000.0);
}

TEST(KahanSumTest, NeumaierHandlesTermLargerThanSum) {
  // Classic case where plain Kahan fails but Neumaier succeeds.
  KahanSum sum;
  sum.Add(1.0);
  sum.Add(1e100);
  sum.Add(1.0);
  sum.Add(-1e100);
  EXPECT_DOUBLE_EQ(sum.Value(), 2.0);
}

TEST(KahanSumTest, AlternatingSeriesStaysAccurate) {
  // sum_{k=1..n} (-1)^{k+1}/k -> ln 2; compensation keeps the tail exact
  // to near machine precision for moderate n.
  KahanSum sum;
  const int n = 1000000;
  for (int k = 1; k <= n; ++k) {
    sum.Add((k % 2 == 1 ? 1.0 : -1.0) / k);
  }
  // Alternating series remainder is bounded by the next term.
  EXPECT_NEAR(sum.Value(), std::log(2.0), 1.0 / n);
}

TEST(KahanSumTest, MatchesLongDoubleReferenceOnRandomData) {
  Rng rng(77);
  KahanSum sum;
  long double reference = 0.0L;
  for (int i = 0; i < 100000; ++i) {
    double term = (rng.NextDouble() - 0.5) * std::pow(10.0, rng.NextInt(-8, 8));
    sum.Add(term);
    reference += static_cast<long double>(term);
  }
  EXPECT_NEAR(sum.Value(), static_cast<double>(reference),
              std::abs(static_cast<double>(reference)) * 1e-12 + 1e-12);
}

TEST(KahanSumTest, OperatorPlusEquals) {
  KahanSum sum;
  sum += 1.5;
  sum += 2.5;
  EXPECT_DOUBLE_EQ(sum.Value(), 4.0);
}

TEST(KahanSumTest, SignedZeroTermsLeaveSumAtPositiveZero) {
  KahanSum sum;
  sum.Add(-0.0);
  sum.Add(0.0);
  sum.Add(-0.0);
  EXPECT_EQ(sum.Value(), 0.0);
  // IEEE: (+0) + (-0) = +0, and the compensation stays +0 too.
  EXPECT_FALSE(std::signbit(sum.Value()));
}

TEST(KahanSumTest, NegativeZeroInitialValueIsStillZero) {
  KahanSum sum(-0.0);
  EXPECT_EQ(sum.Value(), 0.0);
}

TEST(KahanSumTest, OverflowSaturatesToInfinityNotNaN) {
  // Naive Neumaier would compute compensation = (1e308 - inf) + 1e308
  // = -inf and return inf + -inf = NaN; the accumulator must saturate
  // like plain IEEE addition instead.
  KahanSum sum;
  sum.Add(1e308);
  sum.Add(1e308);
  EXPECT_TRUE(std::isinf(sum.Value()));
  EXPECT_GT(sum.Value(), 0.0);
  // And it stays pinned once saturated.
  sum.Add(-1.0);
  EXPECT_TRUE(std::isinf(sum.Value()));
}

TEST(KahanSumTest, NegativeOverflowSaturatesToo) {
  KahanSum sum;
  sum.Add(-1e308);
  sum.Add(-1e308);
  EXPECT_TRUE(std::isinf(sum.Value()));
  EXPECT_LT(sum.Value(), 0.0);
}

TEST(KahanSumTest, InfinityMinusInfinityIsNaNAsInIEEE) {
  // Saturation does not paper over a genuinely undefined sum.
  KahanSum sum;
  sum.Add(std::numeric_limits<double>::infinity());
  sum.Add(-std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(sum.Value()));
}

TEST(KahanSumTest, CompensationIsOrderIndependentOnAdversarialInput) {
  // {1e16, 1.0, -1e16} sums to exactly 1.0, but naive left-to-right
  // addition loses the 1.0 whenever it is absorbed into 1e16 before the
  // cancellation (e.g. ascending order gives 0.0). Neumaier
  // compensation keeps the swamped term in the correction, so every
  // permutation recovers exactly 1.0.
  std::vector<double> terms = {-1e16, 1.0, 1e16};
  std::sort(terms.begin(), terms.end());
  double naive_ascending = (terms[0] + terms[1]) + terms[2];
  EXPECT_EQ(naive_ascending, 0.0);  // the failure mode being compensated
  do {
    KahanSum sum;
    for (double t : terms) sum.Add(t);
    EXPECT_EQ(sum.Value(), 1.0)
        << "order: " << terms[0] << ", " << terms[1] << ", " << terms[2];
  } while (std::next_permutation(terms.begin(), terms.end()));
}

TEST(KahanSumTest, DenormalAccumulationIsExact) {
  const double denorm = std::numeric_limits<double>::denorm_min();
  KahanSum sum;
  for (int i = 0; i < 4096; ++i) sum.Add(denorm);
  EXPECT_EQ(sum.Value(), 4096 * denorm);
}

TEST(KahanSumTest, AlternatingCancellationNearOne) {
  // The inclusion-exclusion shape: 1 plus alternating-sign terms whose
  // true total telescopes back to a small probability. 0.1 is not
  // representable, so naive accumulation drifts; the compensated error
  // stays within a few ulp.
  KahanSum sum;
  sum.Add(1.0);
  for (int k = 0; k < 10000; ++k) {
    sum.Add(k % 2 == 0 ? -0.1 : 0.1);
  }
  sum.Add(-0.9);
  EXPECT_NEAR(sum.Value(), 0.1, 1e-15);
}

}  // namespace
}  // namespace skypref
