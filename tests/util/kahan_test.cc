#include "src/util/kahan.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace skypref {
namespace {

TEST(KahanSumTest, EmptyIsZero) {
  KahanSum sum;
  EXPECT_EQ(sum.Value(), 0.0);
}

TEST(KahanSumTest, InitialValueRespected) {
  KahanSum sum(2.5);
  sum.Add(0.5);
  EXPECT_DOUBLE_EQ(sum.Value(), 3.0);
}

TEST(KahanSumTest, RecoversSmallTermsNextToHugeOnes) {
  // Naive summation loses the 1.0 terms entirely.
  KahanSum sum;
  sum.Add(1e16);
  for (int i = 0; i < 1000; ++i) sum.Add(1.0);
  sum.Add(-1e16);
  EXPECT_DOUBLE_EQ(sum.Value(), 1000.0);
}

TEST(KahanSumTest, NeumaierHandlesTermLargerThanSum) {
  // Classic case where plain Kahan fails but Neumaier succeeds.
  KahanSum sum;
  sum.Add(1.0);
  sum.Add(1e100);
  sum.Add(1.0);
  sum.Add(-1e100);
  EXPECT_DOUBLE_EQ(sum.Value(), 2.0);
}

TEST(KahanSumTest, AlternatingSeriesStaysAccurate) {
  // sum_{k=1..n} (-1)^{k+1}/k -> ln 2; compensation keeps the tail exact
  // to near machine precision for moderate n.
  KahanSum sum;
  const int n = 1000000;
  for (int k = 1; k <= n; ++k) {
    sum.Add((k % 2 == 1 ? 1.0 : -1.0) / k);
  }
  // Alternating series remainder is bounded by the next term.
  EXPECT_NEAR(sum.Value(), std::log(2.0), 1.0 / n);
}

TEST(KahanSumTest, MatchesLongDoubleReferenceOnRandomData) {
  Rng rng(77);
  KahanSum sum;
  long double reference = 0.0L;
  for (int i = 0; i < 100000; ++i) {
    double term = (rng.NextDouble() - 0.5) * std::pow(10.0, rng.NextInt(-8, 8));
    sum.Add(term);
    reference += static_cast<long double>(term);
  }
  EXPECT_NEAR(sum.Value(), static_cast<double>(reference),
              std::abs(static_cast<double>(reference)) * 1e-12 + 1e-12);
}

TEST(KahanSumTest, OperatorPlusEquals) {
  KahanSum sum;
  sum += 1.5;
  sum += 2.5;
  EXPECT_DOUBLE_EQ(sum.Value(), 4.0);
}

}  // namespace
}  // namespace skypref
