#include "src/util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  Status status = Status::NotFound("missing key");
  EXPECT_EQ(status.ToString(), "NotFound: missing key");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::IOError("disk");
  EXPECT_EQ(os.str(), "IOError: disk");
}

TEST(StatusTest, CopyPreservesState) {
  Status status = Status::Internal("boom");
  Status copy = status;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.code(), StatusCode::kInternal);
  EXPECT_EQ(copy.message(), "boom");
  EXPECT_EQ(copy, status);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ConstructingWithOkCodeIsNormalizedToInternal) {
  Status status(StatusCode::kOk, "should not be ok");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(*result, 7);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> result{Status::OK()};
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

namespace macros {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  SKYPREF_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UsesAssignOrReturn(int x) {
  SKYPREF_ASSIGN_OR_RETURN(int doubled, Doubled(x));
  return doubled + 1;
}

}  // namespace macros

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macros::Chained(1).ok());
  EXPECT_EQ(macros::Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  Result<int> ok = macros::UsesAssignOrReturn(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 9);
  EXPECT_EQ(macros::UsesAssignOrReturn(-4).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace skypref
