#include "src/util/thread_annotations.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace skypref {
namespace {

// Stringification with one indirection so the macro arguments expand
// first: under GCC (and anything that is not clang) every annotation
// must vanish completely — annotated code compiles as if the macros were
// never there.
#define SKYPREF_TEST_STR_INNER(x) #x
#define SKYPREF_TEST_STR(x) SKYPREF_TEST_STR_INNER(x)

#if !defined(__clang__)
TEST(ThreadAnnotationsTest, MacrosAreNoOpsOutsideClang) {
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_CAPABILITY("mutex")), "");
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_SCOPED_CAPABILITY), "");
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_GUARDED_BY(m)), "");
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_PT_GUARDED_BY(m)), "");
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_REQUIRES(m)), "");
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_ACQUIRE(m)), "");
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_RELEASE(m)), "");
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_TRY_ACQUIRE(true, m)), "");
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_EXCLUDES(m)), "");
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_ASSERT_CAPABILITY(m)), "");
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_RETURN_CAPABILITY(m)), "");
  EXPECT_STREQ(SKYPREF_TEST_STR(SKYPREF_NO_THREAD_SAFETY_ANALYSIS), "");
}
#else
TEST(ThreadAnnotationsTest, MacrosExpandToAttributesUnderClang) {
  EXPECT_NE(SKYPREF_TEST_STR(SKYPREF_GUARDED_BY(m))[0], '\0');
}
#endif

#undef SKYPREF_TEST_STR
#undef SKYPREF_TEST_STR_INNER

// The annotated wrapper must behave exactly like the std primitives it
// wraps, on every compiler.
class Counter {
 public:
  void Increment() SKYPREF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    ++value_;
  }

  void IncrementManually() SKYPREF_EXCLUDES(mutex_) {
    mutex_.Lock();
    ++value_;
    mutex_.Unlock();
  }

  bool TryIncrement() SKYPREF_EXCLUDES(mutex_) {
    if (!mutex_.TryLock()) return false;
    ++value_;
    mutex_.Unlock();
    return true;
  }

  int value() SKYPREF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return value_;
  }

 private:
  Mutex mutex_;
  int value_ SKYPREF_GUARDED_BY(mutex_) = 0;
};

TEST(ThreadAnnotationsTest, MutexLockExcludesRaces) {
  Counter counter;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ThreadAnnotationsTest, ManualLockUnlockAndTryLock) {
  Counter counter;
  counter.IncrementManually();
  EXPECT_TRUE(counter.TryIncrement());
  EXPECT_EQ(counter.value(), 2);
}

}  // namespace
}  // namespace skypref
