#include "src/util/strings.h"

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(StrSplitTest, SplitsOnDelimiter) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrSplitTest, AdjacentDelimitersYieldEmptyFields) {
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrSplitTest, EmptyInputYieldsSingleEmptyField) {
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrSplitTest, NoDelimiterYieldsWholeInput) {
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StrTrimTest, TrimsBothEnds) {
  EXPECT_EQ(StrTrim("  x y \t\n"), "x y");
  EXPECT_EQ(StrTrim("xy"), "xy");
}

TEST(StrTrimTest, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(StrTrim(" \t \r\n"), "");
  EXPECT_EQ(StrTrim(""), "");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_FALSE(StartsWith("xfoo", "foo"));
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  13 ").value(), 13);
  EXPECT_EQ(ParseInt64("9223372036854775807").value(), INT64_MAX);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_EQ(ParseInt64("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseInt64("12x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseInt64("1.5").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseInt64("99999999999999999999").status().code(),
            StatusCode::kOutOfRange);
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.25").value(), 0.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3").value(), -0.001);
  EXPECT_DOUBLE_EQ(ParseDouble(" 2 ").value(), 2.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_EQ(ParseDouble("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDouble("0.5pm").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDouble("1e999").status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace skypref
