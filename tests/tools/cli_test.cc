/// End-to-end tests of the skyprob CLI binary: each invocation is a real
/// process; stdout is captured through a temp file. The binary path is
/// injected by CMake as SKYPROB_PATH.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include <unistd.h>

#include "src/io/csv.h"

namespace skypref {
namespace {

struct CommandResult {
  int exit_code;
  std::string output;
};

// ctest runs each test case as its own concurrent process, so every temp
// path must be unique per process (and per call within one).
std::string UniqueTempPath(const std::string& stem, const std::string& ext) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "/" + stem + "_" + std::to_string(getpid()) +
         "_" + std::to_string(counter.fetch_add(1)) + ext;
}

CommandResult RunCli(const std::string& arguments) {
  std::string out_path = UniqueTempPath("skyprob_cli_out", ".txt");
  std::string command = std::string(SKYPROB_PATH) + " " + arguments + " > " +
                        out_path + " 2>&1";
  int raw = std::system(command.c_str());
  CommandResult result;
  result.exit_code = raw == -1 ? -1 : WEXITSTATUS(raw);
  auto contents = ReadFile(out_path);
  result.output = contents.ok() ? contents.value() : "";
  std::remove(out_path.c_str());
  return result;
}

std::string TempCsv() { return UniqueTempPath("skyprob_cli_data", ".csv"); }

TEST(CliTest, NoArgumentsPrintsUsageAndFails) {
  CommandResult result = RunCli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  CommandResult result = RunCli("frobnicate");
  EXPECT_EQ(result.exit_code, 2);
}

TEST(CliTest, GenerateSolveInspectPipeline) {
  std::string path = TempCsv();
  CommandResult generate = RunCli(
      "generate --kind=blockzipf --objects=200 --dims=3 --out=" + path);
  ASSERT_EQ(generate.exit_code, 0) << generate.output;
  EXPECT_NE(generate.output.find("wrote 200 objects x 3 dims"),
            std::string::npos);

  CommandResult inspect = RunCli("inspect --data=" + path + " --target=5");
  EXPECT_EQ(inspect.exit_code, 0) << inspect.output;
  EXPECT_NE(inspect.output.find("200 objects x 3 dims"), std::string::npos);

  for (const char* algo : {"det+", "sam+", "sac", "adaptive", "bounds"}) {
    CommandResult solve =
        RunCli("solve --data=" + path + " --target=5 --algo=" + algo +
               " --pref-seed=3 --samples=500");
    EXPECT_EQ(solve.exit_code, 0) << algo << ": " << solve.output;
    EXPECT_NE(solve.output.find("sky(object 5)"), std::string::npos)
        << algo;
  }
  std::remove(path.c_str());
}

TEST(CliTest, BinaryDatasetRoundTrip) {
  std::string path = UniqueTempPath("skyprob_cli_data", ".skyd");
  CommandResult generate = RunCli(
      "generate --kind=uniform --objects=40 --dims=3 --out=" + path);
  ASSERT_EQ(generate.exit_code, 0) << generate.output;
  CommandResult solve =
      RunCli("solve --data=" + path + " --target=1 --algo=sam --samples=200");
  EXPECT_EQ(solve.exit_code, 0) << solve.output;
  std::remove(path.c_str());
}

TEST(CliTest, SkycubeAndTopK) {
  std::string path = TempCsv();
  ASSERT_EQ(
      RunCli("generate --kind=nursery --dims=3 --out=" + path).exit_code, 0);
  CommandResult cube =
      RunCli("skycube --data=" + path + " --target=7 --pref-seed=5");
  EXPECT_EQ(cube.exit_code, 0) << cube.output;
  EXPECT_NE(cube.output.find("7 cells"), std::string::npos);
  EXPECT_NE(cube.output.find("parents"), std::string::npos);

  CommandResult topk = RunCli("topk --data=" + path +
                              " --k=3 --method=sample --samples=2000");
  EXPECT_EQ(topk.exit_code, 0) << topk.output;
  EXPECT_NE(topk.output.find("top-3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, SkylineThresholdQuery) {
  std::string path = TempCsv();
  ASSERT_EQ(RunCli("generate --kind=blockzipf --objects=100 --dims=2 "
                   "--block-size=5 --values=4 --out=" + path)
                .exit_code,
            0);
  CommandResult skyline =
      RunCli("skyline --data=" + path + " --tau=0.5 --method=sample "
             "--samples=1000 --pref-seed=2");
  EXPECT_EQ(skyline.exit_code, 0) << skyline.output;
  EXPECT_NE(skyline.output.find("probabilistic skyline"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MissingDataFileFailsGracefully) {
  CommandResult result =
      RunCli("solve --data=/nonexistent/nope.csv --target=0");
  EXPECT_NE(result.exit_code, 0);
}

}  // namespace
}  // namespace skypref
