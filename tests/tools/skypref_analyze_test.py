"""Tests for tools/skypref_analyze.py.

Run directly (python3 tests/tools/skypref_analyze_test.py) or through
ctest (the `skypref_analyze_selftest` test). Each case writes a
miniature, freestanding src/ tree into a temp dir — no repo headers, the
fixtures stub exactly the shapes each check keys on — and asserts on the
findings the analyzer reports.

Exits 77 (ctest's skip code) when libclang python bindings are missing,
the same gate the analyzer itself applies, unless
SKYPREF_REQUIRE_ANALYZE=1.
"""

import io
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import skypref_analyze  # noqa: E402

_CINDEX = skypref_analyze.load_cindex()
if _CINDEX is None:
    if os.environ.get("SKYPREF_REQUIRE_ANALYZE") == "1":
        print("skypref_analyze_test: libclang required but unavailable",
              file=sys.stderr)
        sys.exit(2)
    print("skypref_analyze_test: libclang unavailable; skipping")
    sys.exit(77)


# Freestanding stub of the unordered containers: canonical type spelling
# must contain "unordered_map<"/"unordered_set<", which a same-named
# template in namespace std provides without pulling in real headers.
UNORDERED_STUB = """\
namespace std {
template <class K, class V>
struct unordered_map {
  struct value_type { K first; V second; };
  value_type* begin();
  value_type* end();
};
template <class K>
struct unordered_set {
  K* begin();
  K* end();
};
}  // namespace std
"""

POOL_STUB = """\
struct Rng {
  unsigned long next();
};
struct ThreadPool {
  template <class F>
  void ParallelFor(unsigned long count, F fn) { fn(0); }
};
"""


class AnalyzeHarness(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, relpath, text):
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def analyze(self, *relpaths):
        analyzer = skypref_analyze.Analyzer(_CINDEX, self.root)
        analyzer.run([self.root / rel for rel in relpaths])
        return analyzer.findings

    def checks(self, *relpaths):
        return [f.check for f in self.analyze(*relpaths)]

    def run_cli(self, *paths):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = skypref_analyze.main(
                list(paths) + ["--repo-root", str(self.root)])
        return code, out.getvalue(), err.getvalue()


class UnorderedIterCheck(AnalyzeHarness):
    FIRING = UNORDERED_STUB + """\
struct Model { void Set(int dim, double p); };
void Build(std::unordered_map<int, double>& counts, Model& model) {
  for (auto& kv : counts) {
    model.Set(kv.first, kv.second);
  }
}
"""

    def test_set_call_from_unordered_iteration_fires(self):
        self.write("src/model/estimation.cc", self.FIRING)
        self.assertIn("unordered-iter", self.checks("src/model/estimation.cc"))

    def test_float_accumulation_fires(self):
        self.write("src/model/estimation.cc", UNORDERED_STUB + """\
double Total(std::unordered_map<int, double>& counts) {
  double total = 0.0;
  for (auto& kv : counts) {
    total += kv.second;
  }
  return total;
}
""")
        self.assertIn("unordered-iter", self.checks("src/model/estimation.cc"))

    def test_unordered_set_append_fires(self):
        self.write("src/model/estimation.cc", UNORDERED_STUB + """\
struct Out { void push_back(int v); };
void Collect(std::unordered_set<int>& keys, Out& out) {
  for (int k : keys) {
    out.push_back(k);
  }
}
""")
        self.assertIn("unordered-iter", self.checks("src/model/estimation.cc"))

    def test_pure_counting_is_clean(self):
        self.write("src/model/estimation.cc", UNORDERED_STUB + """\
unsigned long Count(std::unordered_map<int, double>& counts) {
  unsigned long n = 0;
  for (auto& kv : counts) {
    if (kv.second > 0.5) ++n;
  }
  return n;
}
""")
        self.assertEqual(self.checks("src/model/estimation.cc"), [])

    def test_vector_iteration_is_clean(self):
        self.write("src/model/estimation.cc", """\
struct Model { void Set(int dim, double p); };
struct Vec { double* begin(); double* end(); };
void Build(Vec& v, Model& model) {
  for (double p : v) {
    model.Set(0, p);
  }
}
""")
        self.assertEqual(self.checks("src/model/estimation.cc"), [])

    def test_outside_core_and_model_is_clean(self):
        self.write("src/io/estimation.cc", self.FIRING)
        self.assertEqual(self.checks("src/io/estimation.cc"), [])

    def test_suppression_comment(self):
        self.write("src/model/estimation.cc", UNORDERED_STUB + """\
struct Model { void Set(int dim, double p); };
void Build(std::unordered_map<int, double>& counts, Model& model) {
  // Orderings verified equivalent downstream.
  // skypref-analyze: allow(unordered-iter)
  for (auto& kv : counts) {
    model.Set(kv.first, kv.second);
  }
}
""")
        self.assertEqual(self.checks("src/model/estimation.cc"), [])


class CancelPollCheck(AnalyzeHarness):
    FIRING = """\
struct Sampler { bool SampleWorld(); };
unsigned long Run(Sampler& s, unsigned long n) {
  unsigned long hits = 0;
  for (unsigned long h = 0; h < n; ++h) {
    if (s.SampleWorld()) ++hits;
  }
  return hits;
}
"""

    def test_unpolled_engine_loop_fires(self):
        self.write("src/core/monte_carlo.cc", self.FIRING)
        self.assertIn("cancel-poll", self.checks("src/core/monte_carlo.cc"))

    def test_direct_poll_is_clean(self):
        self.write("src/core/monte_carlo.cc", """\
struct Sampler { bool SampleWorld(); };
struct Status { bool ok(); };
Status CheckStop();
unsigned long Run(Sampler& s, unsigned long n) {
  unsigned long hits = 0;
  for (unsigned long h = 0; h < n; ++h) {
    if ((h & 63) == 0 && !CheckStop().ok()) return hits;
    if (s.SampleWorld()) ++hits;
  }
  return hits;
}
""")
        self.assertEqual(self.checks("src/core/monte_carlo.cc"), [])

    def test_transitive_poll_through_helper_is_clean(self):
        # The loop polls through ChargeVisit -> CheckStop: the name-based
        # call graph closure must see it.
        self.write("src/core/exact.cc", """\
struct Sampler { bool SampleWorld(); };
struct Status { bool ok(); };
Status CheckStop();
Status ChargeVisit() { return CheckStop(); }
unsigned long Run(Sampler& s, unsigned long n) {
  unsigned long hits = 0;
  for (unsigned long h = 0; h < n; ++h) {
    if (!ChargeVisit().ok()) return hits;
    if (s.SampleWorld()) ++hits;
  }
  return hits;
}
""")
        self.assertEqual(self.checks("src/core/exact.cc"), [])

    def test_polling_outer_loop_exempts_inner(self):
        self.write("src/core/all_worlds.cc", """\
struct Sampler { bool Survives(unsigned long i); void NextWorld(); };
struct Status { bool ok(); };
Status CheckStop();
unsigned long Run(Sampler& s, unsigned long n, unsigned long worlds) {
  unsigned long hits = 0;
  for (unsigned long h = 0; h < worlds; ++h) {
    if ((h & 63) == 0 && !CheckStop().ok()) return hits;
    s.NextWorld();
    for (unsigned long i = 0; i < n; ++i) {
      if (s.Survives(i)) ++hits;
    }
  }
  return hits;
}
""")
        self.assertEqual(self.checks("src/core/all_worlds.cc"), [])

    def test_lambda_handed_to_polling_driver_is_exempt(self):
        self.write("src/core/sam_bitslice.cc", """\
struct Sampler { bool SampleWorld(); };
struct Status { bool ok(); };
Status CheckStop();
template <class F>
void RunBlocks(unsigned long blocks, F fn) {
  for (unsigned long b = 0; b < blocks; ++b) {
    if (!CheckStop().ok()) return;
    fn(b);
  }
}
unsigned long Run(Sampler& s, unsigned long n) {
  unsigned long hits = 0;
  RunBlocks(4, [&](unsigned long) {
    for (unsigned long h = 0; h < n; ++h) {
      if (s.SampleWorld()) ++hits;
    }
  });
  return hits;
}
""")
        self.assertEqual(self.checks("src/core/sam_bitslice.cc"), [])

    def test_non_engine_file_is_clean(self):
        self.write("src/core/partition.cc", self.FIRING)
        self.assertEqual(self.checks("src/core/partition.cc"), [])

    def test_loop_without_work_markers_is_clean(self):
        self.write("src/core/monte_carlo.cc", """\
unsigned long Sum(const unsigned long* xs, unsigned long n) {
  unsigned long total = 0;
  for (unsigned long i = 0; i < n; ++i) total += xs[i];
  return total;
}
""")
        self.assertEqual(self.checks("src/core/monte_carlo.cc"), [])

    def test_suppression_comment(self):
        self.write("src/core/monte_carlo.cc", """\
struct Sampler { bool SampleWorld(); };
unsigned long Run(Sampler& s, unsigned long n) {
  unsigned long hits = 0;
  // Bounded to n <= 64 by the caller; cancellation handled upstream.
  // skypref-analyze: allow(cancel-poll)
  for (unsigned long h = 0; h < n; ++h) {
    if (s.SampleWorld()) ++hits;
  }
  return hits;
}
""")
        self.assertEqual(self.checks("src/core/monte_carlo.cc"), [])


class KahanDisciplineCheck(AnalyzeHarness):
    def test_float_accumulation_in_loop_fires(self):
        self.write("src/core/reduce.cc", """\
double Sum(const double* xs, unsigned long n) {
  double total = 0.0;
  for (unsigned long i = 0; i < n; ++i) {
    total += xs[i];
  }
  return total;
}
""")
        self.assertIn("kahan-discipline", self.checks("src/core/reduce.cc"))

    def test_integer_accumulation_is_clean(self):
        self.write("src/core/reduce.cc", """\
unsigned long Sum(const unsigned long* xs, unsigned long n) {
  unsigned long total = 0;
  for (unsigned long i = 0; i < n; ++i) {
    total += xs[i];
  }
  return total;
}
""")
        self.assertEqual(self.checks("src/core/reduce.cc"), [])

    def test_float_multiply_assign_is_clean(self):
        # *= products are the solver's bread and butter (survival
        # probabilities multiply); only += summation drifts in a way
        # Kahan compensation addresses.
        self.write("src/core/reduce.cc", """\
double Product(const double* xs, unsigned long n) {
  double product = 1.0;
  for (unsigned long i = 0; i < n; ++i) {
    product *= xs[i];
  }
  return product;
}
""")
        self.assertEqual(self.checks("src/core/reduce.cc"), [])

    def test_accumulation_outside_loop_is_clean(self):
        self.write("src/core/reduce.cc", """\
double Bump(double total, double x) {
  total += x;
  return total;
}
""")
        self.assertEqual(self.checks("src/core/reduce.cc"), [])

    def test_outside_core_is_clean(self):
        self.write("src/util/reduce.cc", """\
double Sum(const double* xs, unsigned long n) {
  double total = 0.0;
  for (unsigned long i = 0; i < n; ++i) {
    total += xs[i];
  }
  return total;
}
""")
        self.assertEqual(self.checks("src/util/reduce.cc"), [])

    def test_suppression_comment(self):
        self.write("src/core/reduce.cc", """\
double Sum(const double* xs, unsigned long n) {
  double total = 0.0;
  for (unsigned long i = 0; i < n; ++i) {
    // Fixed-order sum is part of the numeric contract here.
    // skypref-analyze: allow(kahan-discipline)
    total += xs[i];
  }
  return total;
}
""")
        self.assertEqual(self.checks("src/core/reduce.cc"), [])


class PrngCaptureCheck(AnalyzeHarness):
    def test_default_ref_capture_of_outer_rng_fires(self):
        self.write("src/core/engine.cc", POOL_STUB + """\
void Run(ThreadPool& pool) {
  Rng rng;
  unsigned long total = 0;
  pool.ParallelFor(4, [&](unsigned long) { total += rng.next(); });
}
""")
        self.assertIn("prng-capture", self.checks("src/core/engine.cc"))

    def test_explicit_ref_capture_fires(self):
        self.write("src/core/engine.cc", POOL_STUB + """\
void Run(ThreadPool& pool) {
  Rng rng;
  pool.ParallelFor(4, [&rng](unsigned long) { rng.next(); });
}
""")
        self.assertIn("prng-capture", self.checks("src/core/engine.cc"))

    def test_value_capture_is_clean(self):
        self.write("src/core/engine.cc", POOL_STUB + """\
void Run(ThreadPool& pool) {
  Rng rng;
  pool.ParallelFor(4, [rng](unsigned long) mutable { rng.next(); });
}
""")
        self.assertEqual(self.checks("src/core/engine.cc"), [])

    def test_per_chunk_generator_is_clean(self):
        # The blessed pattern: construct the generator inside the lambda,
        # seeded from the chunk index.
        self.write("src/core/engine.cc", POOL_STUB + """\
void Run(ThreadPool& pool) {
  pool.ParallelFor(4, [](unsigned long c) {
    Rng rng;
    rng.next();
    (void)c;
  });
}
""")
        self.assertEqual(self.checks("src/core/engine.cc"), [])

    def test_non_prng_ref_capture_is_clean(self):
        self.write("src/core/engine.cc", POOL_STUB + """\
void Run(ThreadPool& pool) {
  unsigned long counts[4] = {0, 0, 0, 0};
  pool.ParallelFor(4, [&](unsigned long c) { ++counts[c]; });
}
""")
        self.assertEqual(self.checks("src/core/engine.cc"), [])

    def test_suppression_comment(self):
        self.write("src/core/engine.cc", POOL_STUB + """\
void Run(ThreadPool& pool) {
  Rng rng;
  // Single-threaded pool in this configuration.
  // skypref-analyze: allow(prng-capture)
  pool.ParallelFor(1, [&](unsigned long) { rng.next(); });
}
""")
        self.assertEqual(self.checks("src/core/engine.cc"), [])


class CliBehavior(AnalyzeHarness):
    def test_clean_tree_exits_zero(self):
        self.write("src/core/x.cc", "int F() { return 1; }\n")
        code, out, _ = self.run_cli("src/core")
        self.assertEqual(code, 0)
        self.assertIn("clean", out)

    def test_findings_exit_one_with_locations(self):
        self.write("src/core/monte_carlo.cc", CancelPollCheck.FIRING)
        code, out, err = self.run_cli("src/core")
        self.assertEqual(code, 1)
        self.assertIn("src/core/monte_carlo.cc:4: [cancel-poll]", out)
        self.assertIn("finding(s)", err)

    def test_missing_path_exits_two(self):
        code, _, err = self.run_cli("src/nope")
        self.assertEqual(code, 2)
        self.assertIn("no such path", err)


if __name__ == "__main__":
    unittest.main()
