"""Tests for tools/skypref_lint.py.

Run directly (python3 tests/tools/skypref_lint_test.py) or through ctest
(the `skypref_lint_selftest` test). Each case writes a miniature src/
tree into a temp dir and asserts on the findings the linter reports.
"""

import io
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import skypref_lint  # noqa: E402


class LintHarness(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        (self.root / "tools").mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, relpath, text):
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def run_lint(self, *paths):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = skypref_lint.main(
                list(paths or ("src",)) + ["--repo-root", str(self.root)])
        return code, out.getvalue(), err.getvalue()

    def findings(self, relpath):
        path = self.root / relpath
        return skypref_lint.check_file(path, self.root)

    def rules(self, relpath):
        return [f.rule for f in self.findings(relpath)]


class NoExceptionsRule(LintHarness):
    def test_throw_flagged(self):
        self.write("src/core/x.cc", 'void F() { throw 1; }\n')
        self.assertIn("no-exceptions", self.rules("src/core/x.cc"))

    def test_try_catch_flagged(self):
        self.write("src/core/x.cc",
                   "void F() { try { G(); } catch (...) {} }\n")
        rules = self.rules("src/core/x.cc")
        self.assertEqual(rules.count("no-exceptions"), 2)

    def test_try_emplace_is_not_try(self):
        self.write("src/core/x.cc", "void F() { m.try_emplace(k, v); }\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_throw_in_comment_ignored(self):
        self.write("src/core/x.cc",
                   "// never throw here\n/* try hard */\nvoid F() {}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_throw_in_string_ignored(self):
        self.write("src/core/x.cc",
                   'const char* kMsg = "do not throw";\n')
        self.assertEqual(self.rules("src/core/x.cc"), [])


class NoRawRandomRule(LintHarness):
    def test_rand_flagged_outside_random_home(self):
        self.write("src/core/x.cc", "int F() { return rand() % 6; }\n")
        self.assertIn("no-raw-random", self.rules("src/core/x.cc"))

    def test_random_device_flagged(self):
        self.write("src/model/x.cc", "std::random_device rd;\n")
        self.assertIn("no-raw-random", self.rules("src/model/x.cc"))

    def test_allowed_inside_random_home(self):
        self.write("src/util/random.cc", "std::random_device rd;\n")
        self.assertEqual(self.rules("src/util/random.cc"), [])

    def test_operand_suffix_not_flagged(self):
        self.write("src/core/x.cc", "int F() { return operand(3); }\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_splitmix_construction_flagged_outside_util(self):
        self.write("src/core/x.cc",
                   "void F(uint64_t s) { SplitMix64 mixer(s ^ 7); }\n")
        self.assertIn("no-raw-random", self.rules("src/core/x.cc"))

    def test_xoshiro_construction_flagged_outside_util(self):
        self.write("src/model/x.cc",
                   "void F() { Xoshiro256PlusPlus gen{1, 2, 3, 4}; }\n")
        self.assertIn("no-raw-random", self.rules("src/model/x.cc"))

    def test_prng_construction_allowed_in_util(self):
        self.write("src/util/hash.cc",
                   "void F(uint64_t s) { SplitMix64 mixer(s); }\n")
        self.assertEqual(self.rules("src/util/hash.cc"), [])

    def test_prng_construction_allowed_in_sampler_engines(self):
        body = "void F(uint64_t s) { SplitMix64 mixer(s); }\n"
        self.write("src/core/monte_carlo.cc", body)
        self.write("src/core/sam_parallel.cc", body)
        self.write("src/core/sam_bitslice.cc", body)
        self.assertEqual(self.rules("src/core/monte_carlo.cc"), [])
        self.assertEqual(self.rules("src/core/sam_parallel.cc"), [])
        self.assertEqual(self.rules("src/core/sam_bitslice.cc"), [])

    def test_prng_mention_in_comment_ignored(self):
        self.write("src/core/x.cc",
                   "// seeded via SplitMix64(seed ^ b) upstream\n"
                   "void F() {}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_splitseed_helper_call_not_flagged(self):
        # Deriving a sub-stream through the blessed helper is the fix the
        # rule suggests; it must not itself trip the rule.
        self.write("src/core/x.cc",
                   "void F(uint64_t s) { Rng rng(SplitSeed(s, 3)); }\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])


class NoStdoutRule(LintHarness):
    def test_cout_flagged(self):
        self.write("src/io/x.cc", 'void F() { std::cout << "hi"; }\n')
        self.assertIn("no-stdout", self.rules("src/io/x.cc"))

    def test_bare_printf_flagged(self):
        self.write("src/io/x.cc", 'void F() { printf("hi"); }\n')
        self.assertIn("no-stdout", self.rules("src/io/x.cc"))

    def test_std_printf_flagged(self):
        self.write("src/io/x.cc", 'void F() { std::printf("hi"); }\n')
        self.assertIn("no-stdout", self.rules("src/io/x.cc"))

    def test_fprintf_stderr_allowed(self):
        self.write("src/util/x.cc",
                   'void F() { std::fprintf(stderr, "fatal\\n"); }\n')
        self.assertEqual(self.rules("src/util/x.cc"), [])

    def test_snprintf_allowed(self):
        self.write("src/util/x.cc",
                   "void F(char* b) { snprintf(b, 4, \"x\"); }\n")
        self.assertEqual(self.rules("src/util/x.cc"), [])


class FloatEqRule(LintHarness):
    def test_equality_with_literal_flagged_in_core(self):
        self.write("src/core/x.cc", "bool F(double p) { return p == 1.0; }\n")
        self.assertIn("float-eq", self.rules("src/core/x.cc"))

    def test_literal_on_left_flagged(self):
        self.write("src/core/x.cc", "bool F(double p) { return 0.5 != p; }\n")
        self.assertIn("float-eq", self.rules("src/core/x.cc"))

    def test_integer_equality_not_flagged(self):
        self.write("src/core/x.cc", "bool F(int i) { return i == 10; }\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_outside_core_not_flagged(self):
        self.write("src/util/x.cc", "bool F(double p) { return p == 1.0; }\n")
        self.assertEqual(self.rules("src/util/x.cc"), [])

    def test_suppression_comment(self):
        self.write(
            "src/core/x.cc",
            "bool F(double p) {\n"
            "  return p == 0.0;  // skypref-lint: allow(float-eq)\n"
            "}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_suppression_is_rule_specific(self):
        self.write(
            "src/core/x.cc",
            "bool F(double p) {\n"
            "  return p == 0.0;  // skypref-lint: allow(no-stdout)\n"
            "}\n")
        self.assertIn("float-eq", self.rules("src/core/x.cc"))


class IncludeGuardRule(LintHarness):
    GOOD = ("#ifndef SKYPREF_CORE_X_H_\n"
            "#define SKYPREF_CORE_X_H_\n"
            "#endif  // SKYPREF_CORE_X_H_\n")

    def test_correct_guard_passes(self):
        self.write("src/core/x.h", self.GOOD)
        self.assertEqual(self.rules("src/core/x.h"), [])

    def test_wrong_guard_flagged(self):
        self.write("src/core/x.h",
                   "#ifndef X_H\n#define X_H\n#endif\n")
        self.assertIn("include-guard", self.rules("src/core/x.h"))

    def test_missing_guard_flagged(self):
        self.write("src/core/x.h", "int x;\n")
        self.assertIn("include-guard", self.rules("src/core/x.h"))

    def test_source_files_exempt(self):
        self.write("src/core/x.cc", "int x;\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])


class DiscardedStatusRule(LintHarness):
    DECLS = ("Status Validate(const Dataset& data);\n"
             "Result<double> Solve(ObjectId target);\n")

    def test_bare_call_flagged(self):
        self.write("src/core/x.cc",
                   self.DECLS + "void F() {\n  Validate(data);\n}\n")
        self.assertIn("discarded-status", self.rules("src/core/x.cc"))

    def test_bare_result_call_flagged(self):
        self.write("src/core/x.cc",
                   self.DECLS + "void F() {\n  Solve(0);\n}\n")
        self.assertIn("discarded-status", self.rules("src/core/x.cc"))

    def test_qualified_bare_call_flagged(self):
        self.write("src/core/x.cc",
                   self.DECLS + "void F() {\n  data.Validate(data);\n}\n")
        self.assertIn("discarded-status", self.rules("src/core/x.cc"))

    def test_assignment_not_flagged(self):
        self.write("src/core/x.cc",
                   self.DECLS + "void F() {\n  auto s = Validate(data);\n}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_return_not_flagged(self):
        self.write("src/core/x.cc",
                   self.DECLS + "Status F() {\n  return Validate(data);\n}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_if_condition_not_flagged(self):
        self.write("src/core/x.cc",
                   self.DECLS +
                   "void F() {\n  if (Validate(data).ok()) return;\n}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_chained_consumption_not_flagged(self):
        self.write("src/core/x.cc",
                   self.DECLS +
                   "void F() {\n  Validate(data).CheckOK();\n}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_continuation_line_not_flagged(self):
        # The wrapped argument of SKYPREF_ASSIGN_OR_RETURN looks exactly
        # like a bare call; the statement-start tracking must skip it.
        self.write("src/core/x.cc",
                   self.DECLS +
                   "Status F() {\n"
                   "  SKYPREF_ASSIGN_OR_RETURN(\n"
                   "      double p,\n"
                   "      Solve(0));\n"
                   "  return Status::OK();\n"
                   "}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_wrapped_assignment_rhs_not_flagged(self):
        self.write("src/core/x.cc",
                   self.DECLS +
                   "void F() {\n"
                   "  auto survival =\n"
                   "      Solve(0);\n"
                   "}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_unregistered_function_not_flagged(self):
        self.write("src/core/x.cc",
                   self.DECLS + "void F() {\n  Notify(data);\n}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_suppression_comment(self):
        self.write(
            "src/core/x.cc",
            self.DECLS +
            "void F() {\n"
            "  Validate(data);  // skypref-lint: allow(discarded-status)\n"
            "}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_registry_spans_files_through_main(self):
        # Declaration in the header, discarded call in another file: the
        # tree-wide pass wires them together.
        self.write("src/core/api.h",
                   "#ifndef SKYPREF_CORE_API_H_\n"
                   "#define SKYPREF_CORE_API_H_\n"
                   "Status Validate(const Dataset& data);\n"
                   "#endif  // SKYPREF_CORE_API_H_\n")
        self.write("src/core/user.cc", "void F() {\n  Validate(data);\n}\n")
        code, out, _ = self.run_lint()
        self.assertEqual(code, 1)
        self.assertIn("src/core/user.cc:2: [discarded-status]", out)


class MutexGuardedByRule(LintHarness):
    def test_unguarded_std_mutex_member_flagged(self):
        self.write("src/core/x.cc",
                   "class C {\n"
                   "  std::mutex mutex_;\n"
                   "  int value_ = 0;\n"
                   "};\n")
        self.assertIn("mutex-guarded-by", self.rules("src/core/x.cc"))

    def test_unguarded_wrapper_mutex_flagged(self):
        self.write("src/core/x.cc",
                   "class C {\n"
                   "  Mutex mutex_;\n"
                   "  int value_ = 0;\n"
                   "};\n")
        self.assertIn("mutex-guarded-by", self.rules("src/core/x.cc"))

    def test_guarded_sibling_passes(self):
        self.write("src/core/x.cc",
                   "class C {\n"
                   "  Mutex mutex_;\n"
                   "  int value_ SKYPREF_GUARDED_BY(mutex_) = 0;\n"
                   "};\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_guard_must_name_the_same_mutex(self):
        self.write("src/core/x.cc",
                   "class C {\n"
                   "  Mutex a_;\n"
                   "  Mutex b_;\n"
                   "  int value_ SKYPREF_GUARDED_BY(a_) = 0;\n"
                   "};\n")
        self.assertEqual(self.rules("src/core/x.cc").count("mutex-guarded-by"),
                         1)

    def test_mutex_lock_local_not_flagged(self):
        self.write("src/core/x.cc",
                   "void F(Mutex& m) {\n"
                   "  MutexLock lock(m);\n"
                   "}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_wrapper_home_exempt(self):
        self.write("src/util/thread_annotations.h",
                   "#ifndef SKYPREF_UTIL_THREAD_ANNOTATIONS_H_\n"
                   "#define SKYPREF_UTIL_THREAD_ANNOTATIONS_H_\n"
                   "class Mutex {\n"
                   "  std::mutex mutex_;\n"
                   "};\n"
                   "#endif  // SKYPREF_UTIL_THREAD_ANNOTATIONS_H_\n")
        self.assertEqual(self.rules("src/util/thread_annotations.h"), [])

    def test_mutex_mention_in_comment_ignored(self):
        self.write("src/core/x.cc",
                   "// takes std::mutex coordination_ by contract\n"
                   "void F() {}\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])

    def test_suppression_comment(self):
        self.write("src/core/x.cc",
                   "class C {\n"
                   "  Mutex mutex_;  // skypref-lint: allow(mutex-guarded-by)\n"
                   "};\n")
        self.assertEqual(self.rules("src/core/x.cc"), [])


class FailpointSiteRule(LintHarness):
    """Failpoint-site checks need the tree-wide pass (main) because the

    known-site set is harvested from src/util/failpoint.cc.  The two-arg
    check_file path used by the other suites skips the rule by design.
    """

    REGISTRY = ("constexpr KnownSite kKnownSites[] = {\n"
                '    {"exact.dfs", SiteClass::kExecution},\n'
                '    {"threadpool.wait", SiteClass::kWait},\n'
                '    {"alloc.exact.flat_instance", SiteClass::kAllocation},\n'
                "};\n")

    def test_registered_site_clean(self):
        self.write("src/util/failpoint.cc", self.REGISTRY)
        self.write("src/core/x.cc",
                   'void F() { if (SKYPREF_FAILPOINT("exact.dfs")) return; }\n')
        code, out, _ = self.run_lint()
        self.assertEqual(code, 0, out)

    def test_unregistered_site_flagged(self):
        self.write("src/util/failpoint.cc", self.REGISTRY)
        self.write("src/core/x.cc",
                   'void F() { if (SKYPREF_FAILPOINT("exact.typo")) return; }\n')
        code, out, _ = self.run_lint()
        self.assertEqual(code, 1)
        self.assertIn("src/core/x.cc:1: [failpoint-site]", out)
        self.assertIn("exact.typo", out)

    def test_alloc_macro_checked_too(self):
        self.write("src/util/failpoint.cc", self.REGISTRY)
        self.write("src/core/x.cc",
                   'void F() {\n'
                   '  if (SKYPREF_ALLOC_FAILPOINT("alloc.exact.flat_instance"))'
                   ' return;\n'
                   '  if (SKYPREF_ALLOC_FAILPOINT("alloc.nope")) return;\n'
                   '}\n')
        code, out, _ = self.run_lint()
        self.assertEqual(code, 1)
        self.assertIn("src/core/x.cc:3: [failpoint-site]", out)
        self.assertNotIn("x.cc:2:", out)

    def test_wake_macro_checked_too(self):
        self.write("src/util/failpoint.cc", self.REGISTRY)
        self.write("src/core/x.cc",
                   'void F() {\n'
                   '  if (SKYPREF_WAKE_FAILPOINT("threadpool.sleep")) return;\n'
                   '}\n')
        code, out, _ = self.run_lint()
        self.assertEqual(code, 1)
        self.assertIn("[failpoint-site]", out)

    def test_comment_mention_ignored(self):
        self.write("src/util/failpoint.cc", self.REGISTRY)
        self.write("src/core/x.cc",
                   '// e.g. SKYPREF_FAILPOINT("bogus.site") fires here\n'
                   "void F() {}\n")
        code, out, _ = self.run_lint()
        self.assertEqual(code, 0, out)

    def test_missing_registry_skips_rule(self):
        # No src/util/failpoint.cc in the tree: the rule cannot know the
        # site table, so it must stay silent rather than flag everything.
        self.write("src/core/x.cc",
                   'void F() { if (SKYPREF_FAILPOINT("exact.typo")) return; }\n')
        code, out, _ = self.run_lint()
        self.assertEqual(code, 0, out)


class CliBehavior(LintHarness):
    def test_clean_tree_exits_zero(self):
        self.write("src/core/x.cc", "int F() { return 1; }\n")
        code, out, _ = self.run_lint()
        self.assertEqual(code, 0)
        self.assertIn("clean", out)

    def test_findings_exit_one_with_locations(self):
        self.write("src/core/x.cc", "void F() { throw 1; }\n")
        code, out, err = self.run_lint()
        self.assertEqual(code, 1)
        self.assertIn("src/core/x.cc:1: [no-exceptions]", out)
        self.assertIn("1 finding(s)", err)

    def test_missing_path_exits_two(self):
        code, _, err = self.run_lint("src/nope")
        self.assertEqual(code, 2)
        self.assertIn("no such path", err)


if __name__ == "__main__":
    unittest.main()
