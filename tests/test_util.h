#ifndef SKYPREF_TESTS_TEST_UTIL_H_
#define SKYPREF_TESTS_TEST_UTIL_H_

/// \file
/// Shared fixtures: the paper's worked instances as golden references,
/// and a seeded random-instance generator for property tests.
///
/// Both instances use the paper's "every pair equally preferred with
/// probability 1/2" model.

#include <cstdint>
#include <set>
#include <vector>

#include "src/model/dataset.h"
#include "src/model/preference_model.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace skypref::testing {

/// The Figure-1 observation instance. Rows: P1=(a,s), P2=(a,t), P3=(b,t)
/// with value ids a=0,b=1 on dim 0 and s=0,t=1 on dim 1. With unanimous
/// 1/2 preferences: sky(P1) = 1/2 (Sac wrongly says 3/8), sky(P2) = 1/4,
/// sky(P3) = 1/2 (Sac wrongly says 3/8).
inline Dataset Figure1Dataset() {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();  // P1
  data.Append({0, 1}).CheckOK();  // P2
  data.Append({1, 1}).CheckOK();  // P3
  return data;
}

/// The Example-1 / Figure-4 running instance. Rows: O=(0,0), Q1=(1,1),
/// Q2=(1,0), Q3=(2,2), Q4=(0,1). With unanimous 1/2 preferences:
///   Pr(e1)=1/4, Pr(e2)=1/2, Pr(e3)=1/4, Pr(e4)=1/2,
///   inclusion-exclusion levels 24/16, 17/16, 7/16, 1/16,
///   sky(O) = 3/16 (the independent baseline wrongly says 9/64),
///   Q1 is absorbed by Q2, and the remaining candidates split into the
///   three singleton groups {Q2}, {Q3}, {Q4}.
inline Dataset Example1Dataset() {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();  // O
  data.Append({1, 1}).CheckOK();  // Q1
  data.Append({1, 0}).CheckOK();  // Q2
  data.Append({2, 2}).CheckOK();  // Q3
  data.Append({0, 1}).CheckOK();  // Q4
  return data;
}

/// Unanimous-1/2 preferences as an explicit rational table over the
/// dataset's value universe (usable both exactly and as doubles).
inline RationalPreferenceModel UnanimousHalfRational(const Dataset& data) {
  RationalPreferenceModel model;
  const Rational half(BigInt(1), BigInt(2));
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    ValueId bound = data.value_bound(j);
    for (ValueId a = 0; a < bound; ++a) {
      for (ValueId b = a + 1; b < bound; ++b) {
        model.Set(j, a, b, half, half).CheckOK();
      }
    }
  }
  return model;
}

/// A random duplicate-free dataset with small per-dimension domains, for
/// property tests (dependence through shared values is ubiquitous).
inline Dataset RandomSmallDataset(std::uint64_t seed, std::size_t objects,
                                  std::size_t dimensions, ValueId values) {
  // Rows are distinct, so the value universe must hold at least
  // `objects` tuples; a too-small universe would spin forever in the
  // rejection loop below.
  std::uint64_t capacity = 1;
  for (std::size_t j = 0; j < dimensions && capacity < objects; ++j) {
    capacity *= values;
  }
  SKYPREF_CHECK(capacity >= objects);
  Rng rng(seed);
  Dataset data(dimensions);
  std::set<std::vector<ValueId>> seen;
  std::vector<ValueId> row(dimensions);
  while (data.size() < objects) {
    for (auto& v : row) v = static_cast<ValueId>(rng.NextBounded(values));
    if (!seen.insert(row).second) continue;
    data.Append(row).CheckOK();
  }
  return data;
}

}  // namespace skypref::testing

#endif  // SKYPREF_TESTS_TEST_UTIL_H_
