#include "src/reduction/dnf.h"

#include <gtest/gtest.h>

#include "src/core/solver.h"
#include "src/util/random.h"

namespace skypref {
namespace {

TEST(PositiveDnfTest, ValidateAcceptsWellFormed) {
  PositiveDnf formula{4, {{0, 2}, {1, 3}, {2, 3}}};
  EXPECT_TRUE(formula.Validate().ok());
}

TEST(PositiveDnfTest, ValidateRejectsMalformed) {
  EXPECT_FALSE((PositiveDnf{2, {}}).Validate().ok());
  EXPECT_FALSE((PositiveDnf{2, {{}}}).Validate().ok());
  EXPECT_FALSE((PositiveDnf{2, {{0, 5}}}).Validate().ok());
  EXPECT_FALSE((PositiveDnf{2, {{0, 0}}}).Validate().ok());
}

TEST(BruteForceCountTest, PaperExampleFormula) {
  // (x1 ^ x3) v (x2 ^ x4) v (x3 ^ x4), 0-indexed as below. Counted by
  // hand: 16 assignments, 8 satisfy (inclusion-exclusion: 12 - 5 + 1).
  PositiveDnf formula{4, {{0, 2}, {1, 3}, {2, 3}}};
  EXPECT_EQ(BruteForceCountSatisfying(formula).value(), 8u);
}

TEST(BruteForceCountTest, SimpleFormulas) {
  EXPECT_EQ(BruteForceCountSatisfying(PositiveDnf{1, {{0}}}).value(), 1u);
  EXPECT_EQ(BruteForceCountSatisfying(PositiveDnf{2, {{0}}}).value(), 2u);
  EXPECT_EQ(BruteForceCountSatisfying(PositiveDnf{2, {{0}, {1}}}).value(), 3u);
  EXPECT_EQ(BruteForceCountSatisfying(PositiveDnf{3, {{0, 1, 2}}}).value(),
            1u);
}

TEST(BruteForceCountTest, RejectsHugeFormulas) {
  PositiveDnf formula{31, {{0}}};
  EXPECT_EQ(BruteForceCountSatisfying(formula).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ReductionTest, StructureMatchesTheorem1) {
  PositiveDnf formula{4, {{0, 2}, {1, 3}, {2, 3}}};
  DnfReduction reduction = ReduceToSkylineInstance(formula).value();
  EXPECT_EQ(reduction.dataset.dimensions(), 4u);
  EXPECT_EQ(reduction.dataset.size(), 4u);  // target + 3 clauses
  EXPECT_EQ(reduction.target, 0u);
  EXPECT_EQ(reduction.used_literals, 4u);
  // Clause (x0 ^ x2) -> object (1, 0, 1, 0).
  EXPECT_EQ(reduction.dataset.value(1, 0), 1u);
  EXPECT_EQ(reduction.dataset.value(1, 1), 0u);
  EXPECT_EQ(reduction.dataset.value(1, 2), 1u);
  EXPECT_EQ(reduction.dataset.value(1, 3), 0u);
  // Preferences are unanimous 1/2 on used dimensions.
  RationalPrefPair pair = reduction.preferences.GetRational(0, 0, 1);
  EXPECT_EQ(pair.less, Rational::FromRatio(1, 2).value());
  EXPECT_EQ(pair.greater, Rational::FromRatio(1, 2).value());
}

TEST(ReductionTest, DuplicateClausesCollapse) {
  PositiveDnf formula{3, {{0, 1}, {1, 0}, {2}}};
  DnfReduction reduction = ReduceToSkylineInstance(formula).value();
  EXPECT_EQ(reduction.dataset.size(), 3u);  // target + 2 distinct clauses
  EXPECT_TRUE(reduction.dataset.Validate().ok());
}

TEST(CountViaSkylineTest, MatchesBruteForceOnPaperFormula) {
  PositiveDnf formula{4, {{0, 2}, {1, 3}, {2, 3}}};
  EXPECT_EQ(CountSatisfyingViaSkyline(formula).value(), BigInt(8));
}

TEST(CountViaSkylineTest, UnusedLiteralsContributeFactorTwo) {
  // x0 alone over 3 variables: 1 * 2^2 = 4 satisfying assignments.
  PositiveDnf formula{3, {{0}}};
  EXPECT_EQ(CountSatisfyingViaSkyline(formula).value(), BigInt(4));
}

TEST(CountViaSkylineTest, TautologyLikeAndEmptyIntersections) {
  // All singleton clauses: complement counting, 2^3 - 1 = 7.
  PositiveDnf formula{3, {{0}, {1}, {2}}};
  EXPECT_EQ(CountSatisfyingViaSkyline(formula).value(), BigInt(7));
}

TEST(CountViaSkylineTest, RandomFormulasMatchBruteForce) {
  Rng rng(404);
  for (int trial = 0; trial < 25; ++trial) {
    unsigned literals = static_cast<unsigned>(rng.NextInt(2, 8));
    unsigned clause_count = static_cast<unsigned>(rng.NextInt(1, 5));
    PositiveDnf formula;
    formula.num_literals = literals;
    for (unsigned c = 0; c < clause_count; ++c) {
      std::vector<unsigned> clause;
      for (unsigned x = 0; x < literals; ++x) {
        if (rng.NextBernoulli(0.4)) clause.push_back(x);
      }
      if (clause.empty()) {
        clause.push_back(static_cast<unsigned>(
            rng.NextBounded(literals)));
      }
      formula.clauses.push_back(std::move(clause));
    }
    std::uint64_t expected = BruteForceCountSatisfying(formula).value();
    BigInt via_skyline = CountSatisfyingViaSkyline(formula).value();
    EXPECT_EQ(via_skyline, BigInt(expected)) << "trial " << trial;
  }
}

TEST(CountViaSkylineTest, PropagatesValidationErrors) {
  PositiveDnf bad{2, {{0, 0}}};
  EXPECT_FALSE(CountSatisfyingViaSkyline(bad).ok());
  EXPECT_FALSE(ReduceToSkylineInstance(bad).ok());
}

}  // namespace
}  // namespace skypref
