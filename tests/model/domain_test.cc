#include "src/model/domain.h"

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(DomainTest, UnnamedDimensionsGetDefaultNames) {
  Domain domain(std::size_t{3});
  EXPECT_EQ(domain.dimensions(), 3u);
  EXPECT_EQ(domain.dimension_name(0), "dim0");
  EXPECT_EQ(domain.dimension_name(2), "dim2");
}

TEST(DomainTest, NamedDimensions) {
  Domain domain({"price", "rating"});
  EXPECT_EQ(domain.dimensions(), 2u);
  EXPECT_EQ(domain.dimension_name(0), "price");
  EXPECT_EQ(domain.dimension_name(1), "rating");
}

TEST(DomainTest, InternAssignsDenseIds) {
  Domain domain(std::size_t{2});
  EXPECT_EQ(domain.InternValue(0, "red").value(), 0u);
  EXPECT_EQ(domain.InternValue(0, "green").value(), 1u);
  EXPECT_EQ(domain.InternValue(0, "blue").value(), 2u);
  EXPECT_EQ(domain.value_count(0), 3u);
  EXPECT_EQ(domain.value_count(1), 0u);
}

TEST(DomainTest, InternIsIdempotent) {
  Domain domain(std::size_t{1});
  ValueId first = domain.InternValue(0, "x").value();
  ValueId second = domain.InternValue(0, "x").value();
  EXPECT_EQ(first, second);
  EXPECT_EQ(domain.value_count(0), 1u);
}

TEST(DomainTest, ValuesAreDimensionLocal) {
  Domain domain(std::size_t{2});
  ValueId on_dim0 = domain.InternValue(0, "shared").value();
  ValueId on_dim1 = domain.InternValue(1, "shared").value();
  EXPECT_EQ(on_dim0, 0u);
  EXPECT_EQ(on_dim1, 0u);  // independent id spaces
  EXPECT_EQ(domain.value_name(0, 0), "shared");
  EXPECT_EQ(domain.value_name(1, 0), "shared");
}

TEST(DomainTest, FindValueRoundTrip) {
  Domain domain(std::size_t{1});
  domain.InternValue(0, "alpha").value();
  domain.InternValue(0, "beta").value();
  EXPECT_EQ(domain.FindValue(0, "beta").value(), 1u);
  EXPECT_EQ(domain.value_name(0, domain.FindValue(0, "alpha").value()),
            "alpha");
}

TEST(DomainTest, FindValueMissingIsNotFound) {
  Domain domain(std::size_t{1});
  EXPECT_EQ(domain.FindValue(0, "ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(DomainTest, OutOfRangeDimensionIsRejected) {
  Domain domain(std::size_t{1});
  EXPECT_EQ(domain.InternValue(5, "x").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(domain.FindValue(5, "x").status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace skypref
