#include "src/model/preference_generator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::RandomSmallDataset;

Dataset TwoDimDataset() {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 2}).CheckOK();
  data.Append({2, 1}).CheckOK();
  data.Append({3, 3}).CheckOK();
  return data;
}

TEST(PreferenceGeneratorTest, TotalUniformCoversAllPairsValidly) {
  Dataset data = TwoDimDataset();
  TablePreferenceModel model;
  PreferenceGenOptions options;
  options.style = PreferenceGenOptions::Style::kTotalUniform;
  ASSERT_TRUE(GeneratePreferences(data, options, &model).ok());
  // 4 values per dimension -> C(4,2)=6 pairs per dimension, 2 dimensions.
  EXPECT_EQ(model.stored_pairs(), 12u);
  for (DimensionId j = 0; j < 2; ++j) {
    for (ValueId a = 0; a < 4; ++a) {
      for (ValueId b = a + 1; b < 4; ++b) {
        PrefPair pair = model.GetPair(j, a, b);
        EXPECT_TRUE(pair.Validate().ok());
        EXPECT_NEAR(pair.less + pair.greater, 1.0, 1e-12);
      }
    }
  }
}

TEST(PreferenceGeneratorTest, DeterministicPerSeed) {
  Dataset data = TwoDimDataset();
  TablePreferenceModel a, b, c;
  PreferenceGenOptions options;
  options.seed = 5;
  ASSERT_TRUE(GeneratePreferences(data, options, &a).ok());
  ASSERT_TRUE(GeneratePreferences(data, options, &b).ok());
  options.seed = 6;
  ASSERT_TRUE(GeneratePreferences(data, options, &c).ok());
  EXPECT_DOUBLE_EQ(a.GetPair(0, 0, 1).less, b.GetPair(0, 0, 1).less);
  EXPECT_NE(a.GetPair(0, 0, 1).less, c.GetPair(0, 0, 1).less);
}

TEST(PreferenceGeneratorTest, SimplexAllowsIncomparability) {
  Dataset data = RandomSmallDataset(3, 20, 3, 8);
  TablePreferenceModel model;
  PreferenceGenOptions options;
  options.style = PreferenceGenOptions::Style::kSimplexUniform;
  ASSERT_TRUE(GeneratePreferences(data, options, &model).ok());
  bool any_incomparable = false;
  for (DimensionId j = 0; j < 3; ++j) {
    for (ValueId a = 0; a < data.value_bound(j); ++a) {
      for (ValueId b = a + 1; b < data.value_bound(j); ++b) {
        PrefPair pair = model.GetPair(j, a, b);
        ASSERT_TRUE(pair.Validate().ok());
        if (pair.incomparable() > 0.05) any_incomparable = true;
      }
    }
  }
  EXPECT_TRUE(any_incomparable);
}

TEST(PreferenceGeneratorTest, UnanimousHalf) {
  Dataset data = TwoDimDataset();
  TablePreferenceModel model;
  PreferenceGenOptions options;
  options.style = PreferenceGenOptions::Style::kUnanimousHalf;
  ASSERT_TRUE(GeneratePreferences(data, options, &model).ok());
  EXPECT_DOUBLE_EQ(model.GetPair(0, 0, 3).less, 0.5);
  EXPECT_DOUBLE_EQ(model.GetPair(1, 1, 2).greater, 0.5);
}

TEST(PreferenceGeneratorTest, CorrelatedFavoursAscendingIdsEverywhere) {
  Dataset data = TwoDimDataset();
  TablePreferenceModel model;
  PreferenceGenOptions options;
  options.style = PreferenceGenOptions::Style::kCorrelated;
  options.bias = 0.9;
  options.jitter = 0.05;
  ASSERT_TRUE(GeneratePreferences(data, options, &model).ok());
  for (DimensionId j = 0; j < 2; ++j) {
    for (ValueId a = 0; a < 4; ++a) {
      for (ValueId b = a + 1; b < 4; ++b) {
        EXPECT_GE(model.GetPair(j, a, b).less, 0.8);
      }
    }
  }
}

TEST(PreferenceGeneratorTest, AntiCorrelatedFlipsOddDimensions) {
  Dataset data = TwoDimDataset();
  TablePreferenceModel model;
  PreferenceGenOptions options;
  options.style = PreferenceGenOptions::Style::kAntiCorrelated;
  ASSERT_TRUE(GeneratePreferences(data, options, &model).ok());
  EXPECT_GE(model.GetPair(0, 0, 1).less, 0.8);   // even dim: ascending
  EXPECT_LE(model.GetPair(1, 0, 1).less, 0.2);   // odd dim: descending
}

TEST(PreferenceGeneratorTest, RejectsBadArguments) {
  Dataset data = TwoDimDataset();
  PreferenceGenOptions options;
  EXPECT_FALSE(GeneratePreferences(data, options, nullptr).ok());
  options.bias = 1.5;
  TablePreferenceModel model;
  EXPECT_FALSE(GeneratePreferences(data, options, &model).ok());
}

TEST(RationalGeneratorTest, TotalPairsSumToOne) {
  Dataset data = TwoDimDataset();
  RationalPreferenceModel model;
  ASSERT_TRUE(GenerateRationalPreferences(data, 9, 16, &model).ok());
  for (DimensionId j = 0; j < 2; ++j) {
    for (ValueId a = 0; a < 4; ++a) {
      for (ValueId b = a + 1; b < 4; ++b) {
        RationalPrefPair pair = model.GetRational(j, a, b);
        EXPECT_EQ(pair.less + pair.greater, Rational(1));
      }
    }
  }
}

TEST(RationalGeneratorTest, SimplexPairsStayInSimplex) {
  Dataset data = RandomSmallDataset(4, 10, 2, 6);
  RationalPreferenceModel model;
  ASSERT_TRUE(GenerateRationalSimplexPreferences(data, 9, 8, &model).ok());
  for (DimensionId j = 0; j < 2; ++j) {
    for (ValueId a = 0; a < data.value_bound(j); ++a) {
      for (ValueId b = a + 1; b < data.value_bound(j); ++b) {
        RationalPrefPair pair = model.GetRational(j, a, b);
        EXPECT_GE(pair.less, Rational(0));
        EXPECT_GE(pair.greater, Rational(0));
        EXPECT_LE(pair.less + pair.greater, Rational(1));
      }
    }
  }
}

TEST(RationalGeneratorTest, RejectsZeroDenominator) {
  Dataset data = TwoDimDataset();
  RationalPreferenceModel model;
  EXPECT_FALSE(GenerateRationalPreferences(data, 9, 0, &model).ok());
  EXPECT_FALSE(GenerateRationalSimplexPreferences(data, 9, 0, &model).ok());
  EXPECT_FALSE(GenerateRationalPreferences(data, 9, 8, nullptr).ok());
}

}  // namespace
}  // namespace skypref
