#include "src/model/preference_estimation.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace skypref {
namespace {

std::vector<std::tuple<DimensionId, ValueId, ValueId>> PairTuples(
    const VoteAggregator& votes) {
  std::vector<std::tuple<DimensionId, ValueId, ValueId>> out;
  for (const VoteAggregator::VotedPair& pair : votes.VotedPairs()) {
    out.emplace_back(pair.dim, pair.lo, pair.hi);
  }
  return out;
}

TEST(VoteAggregatorTest, RawFrequenciesWithoutSmoothing) {
  VoteAggregator votes(/*smoothing=*/0.0);
  ASSERT_TRUE(votes.AddVotes(0, 1, 2, 30, 10, 10).ok());
  TablePreferenceModel model = votes.BuildModel().value();
  PrefPair pair = model.GetPair(0, 1, 2);
  EXPECT_DOUBLE_EQ(pair.less, 0.6);
  EXPECT_DOUBLE_EQ(pair.greater, 0.2);
  EXPECT_NEAR(pair.incomparable(), 0.2, 1e-12);
}

TEST(VoteAggregatorTest, LaplaceSmoothingPullsTowardUniform) {
  VoteAggregator votes(/*smoothing=*/1.0);
  votes.AddVotes(0, 1, 2, 1, 0, 0).CheckOK();
  TablePreferenceModel model = votes.BuildModel().value();
  PrefPair pair = model.GetPair(0, 1, 2);
  // (1+1)/(1+3) = 1/2 and (0+1)/(1+3) = 1/4.
  EXPECT_DOUBLE_EQ(pair.less, 0.5);
  EXPECT_DOUBLE_EQ(pair.greater, 0.25);
}

TEST(VoteAggregatorTest, SingleVotesAccumulate) {
  VoteAggregator votes(0.0);
  votes.AddVote(0, 3, 4, VoteOutcome::kFirstPreferred).CheckOK();
  votes.AddVote(0, 3, 4, VoteOutcome::kFirstPreferred).CheckOK();
  votes.AddVote(0, 3, 4, VoteOutcome::kSecondPreferred).CheckOK();
  votes.AddVote(0, 3, 4, VoteOutcome::kIncomparable).CheckOK();
  EXPECT_EQ(votes.VoteCount(0, 3, 4), 4u);
  TablePreferenceModel model = votes.BuildModel().value();
  EXPECT_DOUBLE_EQ(model.GetPair(0, 3, 4).less, 0.5);
  EXPECT_DOUBLE_EQ(model.GetPair(0, 3, 4).greater, 0.25);
}

TEST(VoteAggregatorTest, OrientationIsCanonicalized) {
  VoteAggregator votes(0.0);
  // "first preferred" with first = 5 is the same as "second preferred"
  // with the pair flipped.
  votes.AddVote(0, 5, 2, VoteOutcome::kFirstPreferred).CheckOK();
  votes.AddVote(0, 2, 5, VoteOutcome::kSecondPreferred).CheckOK();
  TablePreferenceModel model = votes.BuildModel().value();
  EXPECT_DOUBLE_EQ(model.GetPair(0, 5, 2).less, 1.0);
  EXPECT_DOUBLE_EQ(model.GetPair(0, 2, 5).greater, 1.0);
  EXPECT_EQ(votes.VoteCount(0, 2, 5), 2u);
  EXPECT_EQ(votes.pair_count(), 1u);
}

TEST(VoteAggregatorTest, UnseenPairsUseTheDefault) {
  VoteAggregator votes(1.0);
  votes.AddVotes(0, 1, 2, 5, 5).CheckOK();
  TablePreferenceModel model =
      votes.BuildModel(PrefPair{0.9, 0.1}).value();
  EXPECT_DOUBLE_EQ(model.GetPair(0, 7, 8).less, 0.9);
  EXPECT_EQ(votes.VoteCount(0, 7, 8), 0u);
}

TEST(VoteAggregatorTest, DimensionsAreIndependent) {
  VoteAggregator votes(0.0);
  votes.AddVotes(0, 1, 2, 10, 0).CheckOK();
  votes.AddVotes(1, 1, 2, 0, 10).CheckOK();
  TablePreferenceModel model = votes.BuildModel().value();
  EXPECT_DOUBLE_EQ(model.GetPair(0, 1, 2).less, 1.0);
  EXPECT_DOUBLE_EQ(model.GetPair(1, 1, 2).less, 0.0);
}

TEST(VoteAggregatorTest, ProducedPairsAlwaysValid) {
  VoteAggregator votes(0.5);
  votes.AddVotes(0, 1, 2, 1000, 1, 0).CheckOK();
  votes.AddVotes(0, 1, 3, 0, 0, 1000).CheckOK();
  TablePreferenceModel model = votes.BuildModel().value();
  EXPECT_TRUE(model.GetPair(0, 1, 2).Validate().ok());
  EXPECT_TRUE(model.GetPair(0, 1, 3).Validate().ok());
  EXPECT_GT(model.GetPair(0, 1, 3).incomparable(), 0.99);
}

TEST(VoteAggregatorTest, RejectsSelfComparison) {
  VoteAggregator votes;
  EXPECT_EQ(votes.AddVote(0, 1, 1, VoteOutcome::kFirstPreferred).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(votes.AddVotes(0, 2, 2, 1, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(VoteAggregatorTest, NegativeSmoothingClampedToZero) {
  VoteAggregator votes(-5.0);
  votes.AddVotes(0, 1, 2, 4, 0).CheckOK();
  TablePreferenceModel model = votes.BuildModel().value();
  EXPECT_DOUBLE_EQ(model.GetPair(0, 1, 2).less, 1.0);
}

TEST(VoteAggregatorTest, BuildModelValidatesDefaultPair) {
  VoteAggregator votes;
  EXPECT_FALSE(votes.BuildModel(PrefPair{0.8, 0.8}).ok());
}

TEST(VoteAggregatorTest, VotedPairsSortedRegardlessOfInsertionOrder) {
  // Two aggregators fed the same votes in different orders must expose
  // the identical (dim, lo, hi)-sorted pair stream: the tallies live in
  // a hash map, and BuildModel's emission order (hence the model's
  // internal bookkeeping) must not leak hash/insertion order.
  VoteAggregator forward(1.0);
  forward.AddVotes(0, 1, 2, 3, 1).CheckOK();
  forward.AddVotes(0, 1, 3, 2, 2).CheckOK();
  forward.AddVotes(1, 4, 9, 1, 0).CheckOK();
  forward.AddVotes(2, 0, 7, 0, 5).CheckOK();

  VoteAggregator reversed(1.0);
  reversed.AddVotes(2, 7, 0, 5, 0).CheckOK();  // flipped orientation too
  reversed.AddVotes(1, 4, 9, 1, 0).CheckOK();
  reversed.AddVotes(0, 3, 1, 2, 2).CheckOK();
  reversed.AddVotes(0, 1, 2, 3, 1).CheckOK();

  std::vector<std::tuple<DimensionId, ValueId, ValueId>> expected = {
      {0, 1, 2}, {0, 1, 3}, {1, 4, 9}, {2, 0, 7}};
  EXPECT_EQ(PairTuples(forward), expected);
  EXPECT_EQ(PairTuples(reversed), expected);

  // And the models built from both agree pairwise.
  TablePreferenceModel a = forward.BuildModel().value();
  TablePreferenceModel b = reversed.BuildModel().value();
  for (const auto& [dim, lo, hi] : expected) {
    EXPECT_DOUBLE_EQ(a.GetPair(dim, lo, hi).less, b.GetPair(dim, lo, hi).less);
    EXPECT_DOUBLE_EQ(a.GetPair(dim, lo, hi).greater,
                     b.GetPair(dim, lo, hi).greater);
  }
}

}  // namespace
}  // namespace skypref
