#include "src/model/preference_model.h"

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(PrefPairTest, ValidateAcceptsSimplex) {
  EXPECT_TRUE((PrefPair{0.3, 0.4}.Validate().ok()));
  EXPECT_TRUE((PrefPair{0.0, 1.0}.Validate().ok()));
  EXPECT_TRUE((PrefPair{0.5, 0.5}.Validate().ok()));
  EXPECT_TRUE((PrefPair{0.0, 0.0}.Validate().ok()));  // always incomparable
}

TEST(PrefPairTest, ValidateRejectsOutOfRange) {
  EXPECT_FALSE((PrefPair{-0.1, 0.5}.Validate().ok()));
  EXPECT_FALSE((PrefPair{0.5, 1.1}.Validate().ok()));
  EXPECT_FALSE((PrefPair{0.7, 0.7}.Validate().ok()));  // sums above 1
}

TEST(PrefPairTest, IncomparableMass) {
  EXPECT_DOUBLE_EQ((PrefPair{0.3, 0.4}.incomparable()), 0.3);
  EXPECT_DOUBLE_EQ((PrefPair{0.5, 0.5}.incomparable()), 0.0);
}

TEST(PrefPairTest, SwappedFlipsOrientation) {
  PrefPair pair{0.2, 0.7};
  PrefPair swapped = pair.Swapped();
  EXPECT_DOUBLE_EQ(swapped.less, 0.7);
  EXPECT_DOUBLE_EQ(swapped.greater, 0.2);
}

TEST(TableModelTest, DefaultPairForUnsetEntries) {
  TablePreferenceModel model;
  PrefPair pair = model.GetPair(0, 1, 2);
  EXPECT_DOUBLE_EQ(pair.less, 0.5);
  EXPECT_DOUBLE_EQ(pair.greater, 0.5);
  TablePreferenceModel custom(PrefPair{0.1, 0.2});
  EXPECT_DOUBLE_EQ(custom.GetPair(0, 1, 2).less, 0.1);
}

TEST(TableModelTest, SetAndGetBothOrientations) {
  TablePreferenceModel model;
  ASSERT_TRUE(model.Set(0, 1, 2, 0.7, 0.2).ok());
  EXPECT_DOUBLE_EQ(model.GetPair(0, 1, 2).less, 0.7);
  EXPECT_DOUBLE_EQ(model.GetPair(0, 1, 2).greater, 0.2);
  EXPECT_DOUBLE_EQ(model.GetPair(0, 2, 1).less, 0.2);
  EXPECT_DOUBLE_EQ(model.GetPair(0, 2, 1).greater, 0.7);
}

TEST(TableModelTest, SetInReverseOrientationIsCanonicalized) {
  TablePreferenceModel model;
  ASSERT_TRUE(model.Set(0, 5, 3, 0.9, 0.05).ok());  // Pr(5<3)=0.9
  EXPECT_DOUBLE_EQ(model.GetPair(0, 3, 5).less, 0.05);
  EXPECT_DOUBLE_EQ(model.GetPair(0, 5, 3).less, 0.9);
  EXPECT_EQ(model.stored_pairs(), 1u);
}

TEST(TableModelTest, OverwriteAndContains) {
  TablePreferenceModel model;
  EXPECT_FALSE(model.Contains(0, 1, 2));
  model.Set(0, 1, 2, 0.4, 0.4).CheckOK();
  EXPECT_TRUE(model.Contains(0, 2, 1));
  model.Set(0, 1, 2, 0.1, 0.1).CheckOK();
  EXPECT_DOUBLE_EQ(model.GetPair(0, 1, 2).less, 0.1);
  EXPECT_EQ(model.stored_pairs(), 1u);
}

TEST(TableModelTest, SetRejectsInvalid) {
  TablePreferenceModel model;
  EXPECT_EQ(model.Set(0, 1, 1, 0.5, 0.5).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(model.Set(0, 1, 2, 0.8, 0.8).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(model.Set(0, 1, 2, -0.1, 0.2).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableModelTest, DimensionsAreIndependentKeys) {
  TablePreferenceModel model;
  model.Set(0, 1, 2, 0.9, 0.1).CheckOK();
  model.Set(1, 1, 2, 0.2, 0.8).CheckOK();
  EXPECT_DOUBLE_EQ(model.GetPair(0, 1, 2).less, 0.9);
  EXPECT_DOUBLE_EQ(model.GetPair(1, 1, 2).less, 0.2);
}

TEST(PreferenceModelTest, LessAndLessEqHandleEqualValues) {
  TablePreferenceModel model;
  model.Set(0, 1, 2, 0.7, 0.3).CheckOK();
  EXPECT_DOUBLE_EQ(model.Less(0, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(model.LessEq(0, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.Less(0, 1, 2), 0.7);
  EXPECT_DOUBLE_EQ(model.LessEq(0, 1, 2), 0.7);
}

TEST(HashedModelTest, DeterministicAndOrientationConsistent) {
  HashedPreferenceModel model(99, HashedPreferenceModel::Style::kTotalUniform);
  PrefPair forward = model.GetPair(2, 10, 20);
  PrefPair backward = model.GetPair(2, 20, 10);
  EXPECT_DOUBLE_EQ(forward.less, backward.greater);
  EXPECT_DOUBLE_EQ(forward.greater, backward.less);
  HashedPreferenceModel again(99, HashedPreferenceModel::Style::kTotalUniform);
  EXPECT_DOUBLE_EQ(again.GetPair(2, 10, 20).less, forward.less);
}

TEST(HashedModelTest, SeedsChangeTheTable) {
  HashedPreferenceModel a(1, HashedPreferenceModel::Style::kTotalUniform);
  HashedPreferenceModel b(2, HashedPreferenceModel::Style::kTotalUniform);
  bool any_difference = false;
  for (ValueId v = 1; v < 20 && !any_difference; ++v) {
    any_difference = a.GetPair(0, 0, v).less != b.GetPair(0, 0, v).less;
  }
  EXPECT_TRUE(any_difference);
}

TEST(HashedModelTest, TotalUniformHasNoIncomparability) {
  HashedPreferenceModel model(7, HashedPreferenceModel::Style::kTotalUniform);
  for (ValueId v = 1; v < 50; ++v) {
    PrefPair pair = model.GetPair(0, 0, v);
    EXPECT_TRUE(pair.Validate().ok());
    EXPECT_NEAR(pair.incomparable(), 0.0, 1e-15);
  }
}

TEST(HashedModelTest, SimplexUniformStaysInSimplex) {
  HashedPreferenceModel model(7, HashedPreferenceModel::Style::kSimplexUniform);
  bool some_incomparability = false;
  for (ValueId v = 1; v < 200; ++v) {
    PrefPair pair = model.GetPair(3, 0, v);
    ASSERT_TRUE(pair.Validate().ok());
    if (pair.incomparable() > 0.1) some_incomparability = true;
  }
  EXPECT_TRUE(some_incomparability);
}

TEST(HashedModelTest, UnanimousHalf) {
  HashedPreferenceModel model(7, HashedPreferenceModel::Style::kUnanimousHalf);
  EXPECT_DOUBLE_EQ(model.GetPair(0, 3, 9).less, 0.5);
  EXPECT_DOUBLE_EQ(model.GetPair(0, 3, 9).greater, 0.5);
}

TEST(HashedModelTest, CertainOrderIsAStrictTotalOrder) {
  HashedPreferenceModel model(7, HashedPreferenceModel::Style::kCertainOrder);
  const ValueId n = 12;
  // Antisymmetry and totality.
  for (ValueId a = 0; a < n; ++a) {
    for (ValueId b = a + 1; b < n; ++b) {
      PrefPair pair = model.GetPair(0, a, b);
      EXPECT_TRUE((pair.less == 1.0 && pair.greater == 0.0) ||
                  (pair.less == 0.0 && pair.greater == 1.0));
    }
  }
  // Transitivity of the induced order.
  for (ValueId a = 0; a < n; ++a) {
    for (ValueId b = 0; b < n; ++b) {
      for (ValueId c = 0; c < n; ++c) {
        if (a == b || b == c || a == c) continue;
        if (model.GetPair(0, a, b).less == 1.0 &&
            model.GetPair(0, b, c).less == 1.0) {
          EXPECT_DOUBLE_EQ(model.GetPair(0, a, c).less, 1.0);
        }
      }
    }
  }
}

TEST(RationalModelTest, SetGetExact) {
  RationalPreferenceModel model;
  Rational third = Rational::FromRatio(1, 3).value();
  Rational two_thirds = Rational::FromRatio(2, 3).value();
  ASSERT_TRUE(model.Set(0, 1, 2, third, two_thirds).ok());
  EXPECT_EQ(model.GetRational(0, 1, 2).less, third);
  EXPECT_EQ(model.GetRational(0, 2, 1).less, two_thirds);
  EXPECT_EQ(model.LessEqRational(0, 1, 1), Rational(1));
  EXPECT_EQ(model.LessEqRational(0, 1, 2), third);
}

TEST(RationalModelTest, DefaultIsHalf) {
  RationalPreferenceModel model;
  EXPECT_EQ(model.GetRational(0, 4, 9).less,
            Rational::FromRatio(1, 2).value());
}

TEST(RationalModelTest, DoubleViewMatchesRationals) {
  RationalPreferenceModel model;
  model.Set(1, 0, 1, Rational::FromRatio(3, 8).value(),
            Rational::FromRatio(1, 8).value())
      .CheckOK();
  PrefPair pair = model.GetPair(1, 0, 1);
  EXPECT_DOUBLE_EQ(pair.less, 0.375);
  EXPECT_DOUBLE_EQ(pair.greater, 0.125);
  // As a PreferenceModel it supports incomparability mass too.
  EXPECT_DOUBLE_EQ(pair.incomparable(), 0.5);
}

TEST(RationalModelTest, SetRejectsInvalid) {
  RationalPreferenceModel model;
  Rational half = Rational::FromRatio(1, 2).value();
  EXPECT_FALSE(model.Set(0, 1, 1, half, half).ok());
  EXPECT_FALSE(model
                   .Set(0, 1, 2, Rational::FromRatio(3, 4).value(),
                        Rational::FromRatio(3, 4).value())
                   .ok());
  EXPECT_FALSE(model
                   .Set(0, 1, 2, Rational::FromRatio(-1, 4).value(),
                        Rational::FromRatio(1, 4).value())
                   .ok());
}

// --- PreferenceModel::Validate -------------------------------------------

Dataset TwoByTwoDataset() {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  data.Append({0, 1}).CheckOK();
  return data;
}

TEST(ValidateTest, AcceptsEveryBuiltInModelStyle) {
  Dataset data = TwoByTwoDataset();
  EXPECT_TRUE(TablePreferenceModel().Validate(data).ok());
  EXPECT_TRUE(RationalPreferenceModel().Validate(data).ok());
  for (auto style : {HashedPreferenceModel::Style::kTotalUniform,
                     HashedPreferenceModel::Style::kSimplexUniform,
                     HashedPreferenceModel::Style::kUnanimousHalf,
                     HashedPreferenceModel::Style::kCertainOrder}) {
    EXPECT_TRUE(HashedPreferenceModel(123, style).Validate(data).ok());
  }
}

TEST(ValidateTest, RejectsInvalidDefaultPair) {
  // TablePreferenceModel's constructor accepts the default pair
  // unchecked; Validate is the net that catches it.
  TablePreferenceModel model(PrefPair{0.9, 0.9});
  Status status = model.Validate(TwoByTwoDataset());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("at most 1"), std::string::npos);
}

namespace {
/// A deliberately broken model: the two orientations of the same value
/// pair disagree (the kind of bug a wrong lo/hi swap would introduce).
class AsymmetricModel : public PreferenceModel {
 public:
  PrefPair GetPair(DimensionId, ValueId a, ValueId b) const override {
    return a < b ? PrefPair{0.7, 0.2} : PrefPair{0.1, 0.8};
  }
};
}  // namespace

TEST(ValidateTest, RejectsOrientationAsymmetry) {
  AsymmetricModel model;
  Status status = model.Validate(TwoByTwoDataset());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("orientation-asymmetric"),
            std::string::npos);
}

TEST(ValidateTest, ProbeBudgetIsHonored) {
  // max_pairs = 0 probes nothing, so even the broken model passes: the
  // cap is a real cap.
  AsymmetricModel model;
  EXPECT_TRUE(model.Validate(TwoByTwoDataset(), 0).ok());
}

}  // namespace
}  // namespace skypref
