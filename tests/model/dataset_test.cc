#include "src/model/dataset.h"

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(DatasetTest, StartsEmpty) {
  Dataset data(3);
  EXPECT_EQ(data.dimensions(), 3u);
  EXPECT_EQ(data.size(), 0u);
  EXPECT_TRUE(data.empty());
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset data(2);
  ASSERT_TRUE(data.Append({1, 2}).ok());
  ASSERT_TRUE(data.Append({3, 4}).ok());
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.value(0, 0), 1u);
  EXPECT_EQ(data.value(0, 1), 2u);
  EXPECT_EQ(data.value(1, 0), 3u);
  auto row = data.object(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], 4u);
}

TEST(DatasetTest, AppendRejectsWrongWidth) {
  Dataset data(2);
  EXPECT_EQ(data.Append({1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(data.Append({1, 2, 3}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(data.size(), 0u);
}

TEST(DatasetTest, ValueBound) {
  Dataset data(2);
  data.Append({0, 7}).CheckOK();
  data.Append({3, 2}).CheckOK();
  EXPECT_EQ(data.value_bound(0), 4u);
  EXPECT_EQ(data.value_bound(1), 8u);
  Dataset empty(2);
  EXPECT_EQ(empty.value_bound(0), 0u);
}

TEST(DatasetTest, SameObject) {
  Dataset data(2);
  data.Append({1, 2}).CheckOK();
  data.Append({1, 2}).CheckOK();
  data.Append({1, 3}).CheckOK();
  EXPECT_TRUE(data.SameObject(0, 1));
  EXPECT_FALSE(data.SameObject(0, 2));
  EXPECT_TRUE(data.SameObject(2, 2));
}

TEST(DatasetTest, ValidateAcceptsDistinctObjects) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({0, 1}).CheckOK();
  data.Append({1, 0}).CheckOK();
  EXPECT_TRUE(data.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsDuplicates) {
  Dataset data(2);
  data.Append({5, 6}).CheckOK();
  data.Append({7, 8}).CheckOK();
  data.Append({5, 6}).CheckOK();
  Status status = data.Validate();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
}

TEST(DatasetTest, ValidateRejectsEmpty) {
  Dataset data(2);
  EXPECT_EQ(data.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(DatasetTest, ValidateManyObjectsFastPath) {
  // Hash-based duplicate detection should comfortably handle thousands.
  Dataset data(3);
  for (ValueId i = 0; i < 5000; ++i) {
    data.Append({i, i + 1, i + 2}).CheckOK();
  }
  EXPECT_TRUE(data.Validate().ok());
}

}  // namespace
}  // namespace skypref
