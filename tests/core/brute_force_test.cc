#include "src/core/brute_force.h"

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::Figure1Dataset;
using skypref::testing::UnanimousHalfRational;

TEST(BruteForceTest, Figure1GoldenValues) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  EXPECT_DOUBLE_EQ(BruteForceSkylineProbability(data, 0, model).value(), 0.5);
  EXPECT_DOUBLE_EQ(BruteForceSkylineProbability(data, 1, model).value(), 0.25);
  EXPECT_DOUBLE_EQ(BruteForceSkylineProbability(data, 2, model).value(), 0.5);
}

TEST(BruteForceTest, Example1GoldenValue) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_DOUBLE_EQ(BruteForceSkylineProbability(data, 0, model).value(),
                   3.0 / 16.0);
}

TEST(BruteForceTest, SharedValuesCollapseToOneVariable) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  BruteForceStats stats;
  ASSERT_TRUE(
      BruteForceSkylineProbability(data, 0, model, {}, &stats).ok());
  // Distinct (dim, value) pairs vs O=(0,0): dim0 carries {1,2}, dim1
  // carries {1,2} -> 4 variables, not the 6 per-object-dimension slots.
  EXPECT_EQ(stats.pair_count, 4u);
  EXPECT_EQ(stats.worlds_visited, 16u);
}

TEST(BruteForceTest, ZeroProbabilityBranchesAreSkipped) {
  Dataset data(1);
  data.Append({0}).CheckOK();
  data.Append({1}).CheckOK();
  data.Append({2}).CheckOK();
  TablePreferenceModel model;
  model.Set(0, 1, 0, 1.0, 0.0).CheckOK();  // candidate 1 always dominates
  model.Set(0, 2, 0, 0.5, 0.5).CheckOK();
  BruteForceStats stats;
  double sky =
      BruteForceSkylineProbability(data, 0, model, {}, &stats).value();
  EXPECT_DOUBLE_EQ(sky, 0.0);
  EXPECT_EQ(stats.worlds_visited, 2u);  // only the certain branch splits once
}

TEST(BruteForceTest, MatchesExactOnRationalInstanceExactly) {
  Dataset data = Example1Dataset();
  RationalPreferenceModel model = UnanimousHalfRational(data);
  std::vector<ObjectId> candidates{1, 2, 3, 4};
  RationalOracle oracle(model);
  Rational brute =
      BruteForceSkylineProbability(data, 0, candidates, oracle).value();
  Rational exact =
      ExactSkylineProbability(data, 0, candidates, oracle).value();
  EXPECT_EQ(brute, exact);
  EXPECT_EQ(brute, Rational::FromRatio(3, 16).value());
}

TEST(BruteForceTest, WorldBudgetIsEnforced) {
  Dataset data(3);
  data.Append({0, 0, 0}).CheckOK();
  for (ValueId v = 1; v <= 7; ++v) {
    data.Append({v, v, v}).CheckOK();
  }
  TablePreferenceModel model;
  BruteForceOptions options;
  options.max_worlds = 100;  // 21 binary variables -> ~2M worlds needed
  EXPECT_EQ(
      BruteForceSkylineProbability(data, 0, model, options).status().code(),
      StatusCode::kResourceExhausted);
}

TEST(BruteForceTest, InvalidArgumentsRejected) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  std::vector<ObjectId> self{0};
  EXPECT_EQ(BruteForceSkylineProbability(data, 0, self, DoubleOracle(model))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  std::vector<ObjectId> oob{9};
  EXPECT_EQ(BruteForceSkylineProbability(data, 0, oob, DoubleOracle(model))
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(BruteForceSkylineProbability(data, 9, model).status().code(),
            StatusCode::kOutOfRange);
}

TEST(BruteForceTest, IncomparableMassCountsAgainstDominance) {
  Dataset data(1);
  data.Append({0}).CheckOK();
  data.Append({1}).CheckOK();
  TablePreferenceModel model;
  model.Set(0, 1, 0, 0.25, 0.25).CheckOK();
  // O survives unless 1 < 0 is sampled: probability 3/4.
  EXPECT_DOUBLE_EQ(BruteForceSkylineProbability(data, 0, model).value(), 0.75);
}

}  // namespace
}  // namespace skypref
