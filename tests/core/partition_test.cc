#include "src/core/partition.h"

#include <gtest/gtest.h>

#include "src/core/absorption.h"
#include "src/core/solver.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;
using skypref::testing::UnanimousHalfRational;

std::vector<ObjectId> AllBut(const Dataset& data, ObjectId target) {
  std::vector<ObjectId> ids;
  for (ObjectId i = 0; i < data.size(); ++i) {
    if (i != target) ids.push_back(i);
  }
  return ids;
}

TEST(PartitionTest, Example1AfterAbsorptionGivesThreeSingletons) {
  Dataset data = Example1Dataset();
  std::vector<ObjectId> survivors =
      AbsorbCandidates(data, 0, AllBut(data, 0));
  auto groups = PartitionCandidates(data, 0, survivors);
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& group : groups) EXPECT_EQ(group.size(), 1u);
}

TEST(PartitionTest, Example1WithoutAbsorptionCouplesQ1Q2Q4) {
  // Q1=(1,1) shares dim0-value 1 with Q2 and dim1-value 1 with Q4.
  Dataset data = Example1Dataset();
  auto groups = PartitionCandidates(data, 0, AllBut(data, 0));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<ObjectId>{1, 2, 4}));
  EXPECT_EQ(groups[1], (std::vector<ObjectId>{3}));
}

TEST(PartitionTest, ValuesEqualToTargetDoNotCouple) {
  // Both candidates carry the target's own value on dim 1; that value
  // contributes factor 1 and must not join the groups.
  Dataset data(2);
  data.Append({0, 5}).CheckOK();  // O
  data.Append({1, 5}).CheckOK();
  data.Append({2, 5}).CheckOK();
  auto groups = PartitionCandidates(data, 0, AllBut(data, 0));
  EXPECT_EQ(groups.size(), 2u);
}

TEST(PartitionTest, SharedNonTargetValueCouples) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();  // O
  data.Append({1, 1}).CheckOK();
  data.Append({1, 2}).CheckOK();  // shares dim0-value 1
  data.Append({3, 3}).CheckOK();
  auto groups = PartitionCandidates(data, 0, AllBut(data, 0));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(groups[1], (std::vector<ObjectId>{3}));
}

TEST(PartitionTest, SameValueIdOnDifferentDimensionsDoesNotCouple) {
  // ValueIds are dimension-local: value 7 on dim 0 and value 7 on dim 1
  // are unrelated.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({7, 1}).CheckOK();
  data.Append({2, 7}).CheckOK();
  auto groups = PartitionCandidates(data, 0, AllBut(data, 0));
  EXPECT_EQ(groups.size(), 2u);
}

TEST(PartitionTest, TransitiveCoupling) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();  // O
  data.Append({1, 1}).CheckOK();  // A
  data.Append({1, 2}).CheckOK();  // B shares dim0 with A
  data.Append({3, 2}).CheckOK();  // C shares dim1 with B
  auto groups = PartitionCandidates(data, 0, AllBut(data, 0));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

TEST(PartitionTest, ProductOfGroupsEqualsWholeExactly) {
  for (std::uint64_t seed = 31; seed <= 45; ++seed) {
    Dataset data = RandomSmallDataset(seed, 10, 3, 4);
    RationalPreferenceModel model = UnanimousHalfRational(data);
    RationalOracle oracle(model);
    std::vector<ObjectId> all = AllBut(data, 0);
    Rational whole = ExactSkylineProbability(data, 0, all, oracle).value();
    Rational product(1);
    for (const auto& group : PartitionCandidates(data, 0, all)) {
      product =
          product * ExactSkylineProbability(data, 0, group, oracle).value();
    }
    EXPECT_EQ(whole, product) << "seed=" << seed;
  }
}

TEST(PartitionTest, GroupsCoverAllCandidatesExactlyOnce) {
  Dataset data = RandomSmallDataset(77, 20, 3, 5);
  std::vector<ObjectId> all = AllBut(data, 0);
  auto groups = PartitionCandidates(data, 0, all);
  std::vector<ObjectId> flattened;
  for (const auto& group : groups) {
    flattened.insert(flattened.end(), group.begin(), group.end());
  }
  std::sort(flattened.begin(), flattened.end());
  EXPECT_EQ(flattened, all);
}

TEST(PartitionTest, EmptyCandidates) {
  Dataset data = Example1Dataset();
  std::vector<ObjectId> none;
  EXPECT_TRUE(PartitionCandidates(data, 0, none).empty());
}

}  // namespace
}  // namespace skypref
