#include "src/core/sam_parallel.h"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/util/failpoint.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::Figure1Dataset;
using skypref::testing::RandomSmallDataset;
using skypref::testing::UnanimousHalfRational;

// The thread counts every determinism contract in this repo is pinned
// against (0 = inline execution on the calling thread).
const std::size_t kThreadCounts[] = {0, 1, 2, 8};

TEST(BernoulliThresholdTest, EndpointsAndMonotonicity) {
  EXPECT_EQ(internal::BernoulliThreshold(0.0), 0u);
  EXPECT_EQ(internal::BernoulliThreshold(-1.0), 0u);
  EXPECT_EQ(internal::BernoulliThreshold(1.0),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(internal::BernoulliThreshold(2.0),
            std::numeric_limits<std::uint64_t>::max());
  // The sentinel is unreachable for p < 1: ldexp(p, 64) stays clear of
  // 2^64 - 1 for every representable double below one.
  double just_below_one = std::nextafter(1.0, 0.0);
  EXPECT_LT(internal::BernoulliThreshold(just_below_one),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_LT(internal::BernoulliThreshold(0.25),
            internal::BernoulliThreshold(0.5));
  EXPECT_LT(internal::BernoulliThreshold(0.5),
            internal::BernoulliThreshold(0.75));
  // p = 1/2 is exactly representable: the cut is 2^63.
  EXPECT_EQ(internal::BernoulliThreshold(0.5), std::uint64_t{1} << 63);
}

TEST(BernoulliThresholdTest, ThresholdHitSemantics) {
  EXPECT_FALSE(internal::ThresholdHit(0, 0));
  EXPECT_TRUE(internal::ThresholdHit(0, 1));
  EXPECT_FALSE(internal::ThresholdHit(1, 1));
  // The "always" sentinel hits even for the maximal draw.
  EXPECT_TRUE(internal::ThresholdHit(
      std::numeric_limits<std::uint64_t>::max(),
      std::numeric_limits<std::uint64_t>::max()));
}

TEST(BlockSamTest, BitIdenticalAcrossThreadCounts) {
  Dataset data = RandomSmallDataset(17, 24, 3, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 5000;
  options.block_size = 256;
  options.seed = 99;

  ThreadPool baseline_pool(0);
  auto baseline =
      BlockMonteCarloSkylineProbability(data, 0, model, baseline_pool,
                                        options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_EQ(baseline->samples, 5000u);
  EXPECT_FALSE(baseline->truncated);

  for (std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    auto run =
        BlockMonteCarloSkylineProbability(data, 0, model, pool, options);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->skyline_worlds, baseline->skyline_worlds)
        << "threads=" << threads;
    EXPECT_EQ(run->samples, baseline->samples) << "threads=" << threads;
    EXPECT_EQ(run->pair_draws, baseline->pair_draws) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(run->estimate, baseline->estimate)
        << "threads=" << threads;
  }
}

TEST(BlockSamTest, BlockSizeIsPartOfTheNumericContract) {
  Dataset data = RandomSmallDataset(17, 24, 3, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 4096;
  options.seed = 5;
  ThreadPool pool(2);
  options.block_size = 256;
  auto fine = BlockMonteCarloSkylineProbability(data, 0, model, pool, options);
  options.block_size = 1024;
  auto coarse =
      BlockMonteCarloSkylineProbability(data, 0, model, pool, options);
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(coarse.ok());
  // Different block sizes define different streams (both valid estimates
  // of the same probability).
  EXPECT_NE(fine->skyline_worlds, coarse->skyline_worlds);
}

TEST(BlockSamTest, LastPartialBlockIsCounted) {
  Dataset data = RandomSmallDataset(17, 24, 3, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 1000;  // 3 full blocks of 256 plus one of 232
  options.block_size = 256;
  ThreadPool pool(2);
  auto run = BlockMonteCarloSkylineProbability(data, 0, model, pool, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->samples, 1000u);
  EXPECT_EQ(run->requested_samples, 1000u);
  EXPECT_FALSE(run->truncated);
}

TEST(BlockSamTest, ConvergesToExample1Truth) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 200000;
  options.seed = 34;
  ThreadPool pool(2);
  auto result = BlockMonteCarloSkylineProbability(data, 0, model, pool,
                                                  options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 3.0 / 16.0, 0.005);
  // NOT the independent baseline's 9/64: the flat sampler shares value-
  // pair outcomes across candidates within a world, like the serial one.
  EXPECT_GT(result->estimate, 0.17);
}

TEST(BlockSamTest, CertainPreferencesGiveExactAnswerEveryWorld) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  TablePreferenceModel model;
  model.Set(0, 1, 0, 1.0, 0.0).CheckOK();
  model.Set(1, 1, 0, 1.0, 0.0).CheckOK();
  MonteCarloOptions options;
  options.samples = 100;
  ThreadPool pool(2);
  // The p = 1 sentinel threshold must hit on EVERY draw, and p = 0 on
  // none — otherwise certain preferences would leak wrong worlds.
  auto dominated =
      BlockMonteCarloSkylineProbability(data, 0, model, pool, options);
  ASSERT_TRUE(dominated.ok());
  EXPECT_DOUBLE_EQ(dominated->estimate, 0.0);
  auto dominator =
      BlockMonteCarloSkylineProbability(data, 1, model, pool, options);
  ASSERT_TRUE(dominator.ok());
  EXPECT_DOUBLE_EQ(dominator->estimate, 1.0);
}

TEST(BlockSamTest, HoeffdingBoundHoldsAcrossSeeds) {
  Dataset data = RandomSmallDataset(10, 8, 2, 3);
  TablePreferenceModel model;
  double truth = ExactSkylineProbability(data, 0, model).value();
  const double epsilon = 0.05;
  int violations = 0;
  ThreadPool pool(2);
  for (int seed = 0; seed < 40; ++seed) {
    MonteCarloOptions options;
    options.epsilon = epsilon;
    options.delta = 0.01;
    options.seed = static_cast<std::uint64_t>(seed) + 1;
    auto result =
        BlockMonteCarloSkylineProbability(data, 0, model, pool, options);
    ASSERT_TRUE(result.ok());
    if (std::abs(result->estimate - truth) >= epsilon) ++violations;
  }
  EXPECT_LE(violations, 2);
}

TEST(BlockSamTest, PreExpiredDeadlineTruncatesIdenticallyPerThreadCount) {
  Dataset data = RandomSmallDataset(31, 10, 2, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 10000;
  options.block_size = 512;
  options.deadline = Deadline::At(Deadline::Clock::now() -
                                  std::chrono::seconds(1));

  ThreadPool baseline_pool(0);
  auto baseline =
      BlockMonteCarloSkylineProbability(data, 0, model, baseline_pool,
                                        options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_TRUE(baseline->truncated);
  // Block 0 polls at the serial cadence and keeps its partial prefix, so
  // a pre-expired deadline still yields min(64, samples) worlds — the
  // serial engine's floor.
  EXPECT_EQ(baseline->samples, 64u);
  EXPECT_EQ(baseline->requested_samples, 10000u);

  for (std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    auto run =
        BlockMonteCarloSkylineProbability(data, 0, model, pool, options);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_TRUE(run->truncated) << "threads=" << threads;
    EXPECT_EQ(run->samples, baseline->samples) << "threads=" << threads;
    EXPECT_EQ(run->skyline_worlds, baseline->skyline_worlds)
        << "threads=" << threads;
    EXPECT_EQ(run->pair_draws, baseline->pair_draws) << "threads=" << threads;
  }
}

TEST(BlockSamTest, PreCancelledTokenReturnsCancelled) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  CancelToken token;
  token.RequestCancel();
  MonteCarloOptions options;
  options.samples = 200;
  options.cancel = &token;
  ThreadPool pool(2);
  EXPECT_EQ(BlockMonteCarloSkylineProbability(data, 0, model, pool, options)
                .status()
                .code(),
            StatusCode::kCancelled);
}

TEST(BlockSamTest, InvalidArgumentsRejected) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  ThreadPool pool(0);
  MonteCarloOptions bad;
  bad.samples = 0;
  bad.epsilon = 0.0;
  EXPECT_EQ(BlockMonteCarloSkylineProbability(data, 0, model, pool, bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  MonteCarloOptions zero_block;
  zero_block.samples = 100;
  zero_block.block_size = 0;
  EXPECT_EQ(
      BlockMonteCarloSkylineProbability(data, 0, model, pool, zero_block)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(BlockMonteCarloSkylineProbability(data, 42, model, pool, {})
                .status()
                .code(),
            StatusCode::kOutOfRange);
  std::vector<ObjectId> self{0};
  EXPECT_EQ(BlockMonteCarloSkylineProbability(data, 0, self, model, pool, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

#if defined(SKYPREF_FAILPOINTS) && SKYPREF_FAILPOINTS

TEST(BlockSamTest, FailpointPoisonsTheSameBlockAtEveryThreadCount) {
  Dataset data = RandomSmallDataset(17, 24, 3, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 4096;
  options.block_size = 512;  // 8 blocks
  options.seed = 3;

  // Arming "fire on hit k" poisons block k: the pre-dispatch scan
  // consumes the site serially over block indices 1..7 (block 0 is
  // exempt), so the counted prefix is blocks [0, k) — 512 k worlds —
  // regardless of the pool.
  for (std::uint64_t fire_on_hit : {std::uint64_t{1}, std::uint64_t{3}}) {
    std::vector<MonteCarloResult> runs;
    for (std::size_t threads : kThreadCounts) {
      failpoint::ScopedFailpoint armed("sampler.block", fire_on_hit);
      ThreadPool pool(threads);
      auto run =
          BlockMonteCarloSkylineProbability(data, 0, model, pool, options);
      ASSERT_TRUE(run.ok()) << run.status();
      runs.push_back(*run);
    }
    for (const MonteCarloResult& run : runs) {
      EXPECT_TRUE(run.truncated);
      EXPECT_EQ(run.samples, 512u * fire_on_hit);
      EXPECT_EQ(run.skyline_worlds, runs.front().skyline_worlds);
      EXPECT_EQ(run.pair_draws, runs.front().pair_draws);
    }
  }
}

TEST(BatchSamTest, FailpointTruncatesTheBatchDeterministically) {
  Dataset data = RandomSmallDataset(11, 12, 2, 4);
  TablePreferenceModel model;
  SolverOptions options;
  options.monte_carlo.samples = 2048;
  options.monte_carlo.block_size = 512;  // 4 blocks

  std::vector<std::vector<double>> estimates;
  std::vector<BatchSamStats> stats;
  for (std::size_t threads : kThreadCounts) {
    failpoint::ScopedFailpoint armed("sampler.block", 2);
    ThreadPool pool(threads);
    BatchSamStats s;
    auto run = BatchMonteCarloSkylineProbabilities(data, model, pool, options,
                                                   &s);
    ASSERT_TRUE(run.ok()) << run.status();
    estimates.push_back(*run);
    stats.push_back(s);
  }
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    EXPECT_TRUE(stats[i].truncated);
    EXPECT_EQ(stats[i].samples, 1024u);  // blocks 0 and 1
    EXPECT_EQ(stats[i].pair_draws, stats.front().pair_draws);
    EXPECT_EQ(estimates[i], estimates.front());
  }
}

#endif  // SKYPREF_FAILPOINTS

TEST(BatchSamTest, BitIdenticalAcrossThreadCounts) {
  Dataset data = RandomSmallDataset(23, 20, 3, 4);
  TablePreferenceModel model;
  SolverOptions options;
  options.monte_carlo.samples = 3000;
  options.monte_carlo.block_size = 512;
  options.monte_carlo.seed = 77;

  ThreadPool baseline_pool(0);
  BatchSamStats baseline_stats;
  auto baseline = BatchMonteCarloSkylineProbabilities(
      data, model, baseline_pool, options, &baseline_stats);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_EQ(baseline->size(), data.size());
  EXPECT_EQ(baseline_stats.samples, 3000u);
  EXPECT_FALSE(baseline_stats.truncated);

  for (std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    BatchSamStats stats;
    auto run = BatchMonteCarloSkylineProbabilities(data, model, pool, options,
                                                   &stats);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(*run, *baseline) << "threads=" << threads;
    EXPECT_EQ(stats.pair_draws, baseline_stats.pair_draws)
        << "threads=" << threads;
    EXPECT_EQ(stats.samples, baseline_stats.samples) << "threads=" << threads;
  }
}

TEST(BatchSamTest, MatchesRationalTruthWithinHoeffdingBar) {
  // The rational-referee workload: unanimous-1/2 preferences admit an
  // exact rational answer per target, so every batch estimate can be
  // checked against bit-exact truth at its marginal (epsilon, delta).
  Dataset data = RandomSmallDataset(11, 12, 2, 4);
  RationalPreferenceModel model = UnanimousHalfRational(data);
  SolverOptions options;
  options.monte_carlo.epsilon = 0.05;
  options.monte_carlo.delta = 0.01;
  options.monte_carlo.seed = 2013;
  ThreadPool pool(2);
  auto batch = BatchMonteCarloSkylineProbabilities(data, model, pool, options);
  ASSERT_TRUE(batch.ok()) << batch.status();

  int violations = 0;
  for (ObjectId t = 0; t < data.size(); ++t) {
    auto truth = ExactSkylineProbabilityRational(data, t, model);
    ASSERT_TRUE(truth.ok()) << truth.status();
    if (std::abs((*batch)[t] - truth->ToDouble()) >= 0.05) ++violations;
  }
  // Each of the 12 marginal guarantees fails with probability <= 0.01;
  // allow one unlucky target.
  EXPECT_LE(violations, 1);
}

TEST(BatchSamTest, AgreesWithPerTargetBlockSamAndSharesDraws) {
  Dataset data = RandomSmallDataset(41, 16, 2, 5);
  TablePreferenceModel model;
  SolverOptions options;
  options.monte_carlo.samples = 4096;
  options.monte_carlo.seed = 8;
  ThreadPool pool(2);

  BatchSamStats stats;
  auto batch = BatchMonteCarloSkylineProbabilities(data, model, pool, options,
                                                   &stats);
  ASSERT_TRUE(batch.ok()) << batch.status();

  std::uint64_t per_target_draws = 0;
  for (ObjectId t = 0; t < data.size(); ++t) {
    auto single = BlockMonteCarloSkylineProbability(data, t, model, pool,
                                                    options.monte_carlo);
    ASSERT_TRUE(single.ok()) << single.status();
    per_target_draws += single->pair_draws;
    // Both estimate the same probability from the same world count; with
    // m = 4096 the Hoeffding bar at delta = 0.01 is ~0.025 each, so the
    // estimates must sit within the summed bars of each other.
    double bar = 2.0 * HoeffdingEpsilon(4096, 0.01);
    EXPECT_NEAR((*batch)[t], single->estimate, bar) << "target=" << t;
  }
  // The world-sharing win the batch exists for: one ternary draw serves
  // every target of the world, instead of per-target redraws.
  EXPECT_LT(stats.pair_draws, per_target_draws);
  EXPECT_EQ(stats.samples, 4096u);
  EXPECT_EQ(stats.targets, data.size());
  EXPECT_GT(stats.distinct_pairs, 0u);
}

TEST(BatchSamTest, PreprocessingTogglesAbsorption) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ThreadPool pool(0);
  SolverOptions with;
  with.monte_carlo.samples = 50000;
  SolverOptions without = with;
  without.preprocess = false;
  BatchSamStats with_stats;
  BatchSamStats without_stats;
  auto a = BatchMonteCarloSkylineProbabilities(data, model, pool, with,
                                               &with_stats);
  auto b = BatchMonteCarloSkylineProbabilities(data, model, pool, without,
                                               &without_stats);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Q1 is absorbed by Q2 for target O; absorption never changes the
  // estimated quantity, only the per-world work.
  EXPECT_GT(with_stats.absorbed, 0u);
  EXPECT_EQ(without_stats.absorbed, 0u);
  EXPECT_NEAR((*a)[0], 3.0 / 16.0, 0.01);
  EXPECT_NEAR((*b)[0], 3.0 / 16.0, 0.01);
}

TEST(BatchSamTest, PreCancelledTokenReturnsCancelled) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  CancelToken token;
  token.RequestCancel();
  SolverOptions options;
  options.monte_carlo.samples = 100;
  options.monte_carlo.cancel = &token;
  ThreadPool pool(2);
  EXPECT_EQ(BatchMonteCarloSkylineProbabilities(data, model, pool, options)
                .status()
                .code(),
            StatusCode::kCancelled);
}

TEST(SolverEngineTest, BlockEngineThroughSolverMatchesDirectCall) {
  Dataset data = RandomSmallDataset(13, 14, 2, 4);
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model);
  ASSERT_TRUE(solver.ok());
  SolverOptions options;
  options.monte_carlo.engine = MonteCarloOptions::Engine::kBlock;
  options.monte_carlo.samples = 2000;
  ThreadPool pool(2);
  // Poolless overload runs the block engine inline; both must agree
  // bit for bit (the engine's thread-count contract, surfaced through
  // the facade).
  auto inline_run = solver->MonteCarlo(0, options);
  auto pooled_run = solver->MonteCarlo(0, options, pool);
  ASSERT_TRUE(inline_run.ok()) << inline_run.status();
  ASSERT_TRUE(pooled_run.ok()) << pooled_run.status();
  EXPECT_DOUBLE_EQ(*inline_run, *pooled_run);

  // The serial engine stays the default and ignores the pool entirely.
  SolverOptions serial;
  serial.monte_carlo.samples = 2000;
  auto serial_a = solver->MonteCarlo(0, serial);
  auto serial_b = solver->MonteCarlo(0, serial, pool);
  ASSERT_TRUE(serial_a.ok());
  ASSERT_TRUE(serial_b.ok());
  EXPECT_DOUBLE_EQ(*serial_a, *serial_b);
}

}  // namespace
}  // namespace skypref
