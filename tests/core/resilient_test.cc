/// The resilient solve ladder (src/core/resilient.h). Contract under
/// test, matching the acceptance criteria of the degradation design:
///
///  * when no group exhausts, the result is bit-identical to
///    SkylineSolver::Exact with the same options, at every thread count;
///  * a group that exhausts its subset budget degrades to the sampled
///    rung with the epsilon/delta budget split evenly over the exhausted
///    groups, and the recombined error bar is exactly the sum of the
///    per-group epsilons (telescoping bound);
///  * with the query deadline already spent, the sampled rung is skipped
///    and the certified Bonferroni interval answers — whose product
///    provably sandwiches the exact value;
///  * cancellation aborts the whole ladder with Status::Cancelled;
///  * every degraded estimate is finite and annotated per group.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>

#include "src/core/resilient.h"
#include "src/core/solver.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::RandomSmallDataset;

/// Target (0,0) plus `blob` candidates (1, i) — pairwise connected
/// through the shared dim-0 value, so partition yields ONE group of size
/// `blob` that costs 2^blob - 1 DFS visits under unanimous preferences —
/// plus `singletons` candidates with globally unique values, each its own
/// trivially-exact group.
Dataset BlobAndSingletonsDataset(std::size_t blob, std::size_t singletons) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  for (std::size_t i = 0; i < blob; ++i) {
    data.Append({1, static_cast<ValueId>(i + 1)}).CheckOK();
  }
  for (std::size_t s = 0; s < singletons; ++s) {
    ValueId v = static_cast<ValueId>(100 + s);
    data.Append({v, v}).CheckOK();
  }
  return data;
}

/// Two independent blobs (dim-0 values 1 and 2) of `blob` candidates
/// each, plus two singleton groups.
Dataset TwoBlobDataset(std::size_t blob) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  for (std::size_t i = 0; i < blob; ++i) {
    data.Append({1, static_cast<ValueId>(i + 1)}).CheckOK();
    data.Append({2, static_cast<ValueId>(50 + i)}).CheckOK();
  }
  data.Append({200, 200}).CheckOK();
  data.Append({201, 201}).CheckOK();
  return data;
}

TEST(ResilientTest, FullyExactMatchesPlainSolverBitwise) {
  Dataset data = RandomSmallDataset(61, 18, 3, 4);
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  for (std::size_t threads : {0u, 2u, 8u}) {
    ThreadPool pool(threads);
    for (ObjectId target = 0; target < data.size(); ++target) {
      auto run = ResilientSkylineProbability(data, target, model, pool);
      ASSERT_TRUE(run.ok()) << run.status();
      double exact = solver.Exact(target).value();
      EXPECT_EQ(run->estimate, exact)
          << "target " << target << " threads " << threads;
      EXPECT_TRUE(run->fully_exact);
      EXPECT_EQ(run->epsilon, 0.0);
      EXPECT_EQ(run->delta, 0.0);
      EXPECT_EQ(run->lower, run->upper);
      for (const GroupReport& g : run->groups) {
        EXPECT_EQ(g.quality, GroupQuality::kExact);
        EXPECT_TRUE(g.exact_status.ok());
      }
    }
  }
}

TEST(ResilientTest, ExhaustedGroupFallsBackToSampling) {
  Dataset data = BlobAndSingletonsDataset(12, 3);
  TablePreferenceModel model;
  ResilientOptions options;
  options.solver.exact.max_subsets = 500;  // the blob needs 4095 visits
  options.solver.monte_carlo.epsilon = 0.1;
  options.solver.monte_carlo.delta = 0.05;
  auto run = ResilientSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FALSE(run->fully_exact);
  ASSERT_EQ(run->groups.size(), 4u);

  std::size_t sampled = 0;
  double epsilon_sum = 0.0;
  for (const GroupReport& g : run->groups) {
    epsilon_sum += g.epsilon;
    if (g.quality == GroupQuality::kSampled) {
      ++sampled;
      EXPECT_EQ(g.size, 12u);
      // Only one group exhausted, so it keeps the whole budget.
      EXPECT_EQ(g.epsilon, 0.1);
      EXPECT_EQ(g.delta, 0.05);
      EXPECT_GT(g.samples, 0u);
      EXPECT_EQ(g.exact_status.code(), StatusCode::kResourceExhausted);
    } else {
      EXPECT_EQ(g.quality, GroupQuality::kExact);
      EXPECT_EQ(g.epsilon, 0.0);
    }
  }
  EXPECT_EQ(sampled, 1u);
  // The recombined bar is the sum of the per-group bars (telescoping).
  EXPECT_EQ(run->epsilon, epsilon_sum);
  EXPECT_EQ(run->delta, 0.05);

  // The estimate stays within the annotated bar of the true value
  // (Hoeffding with a fixed seed; deterministic).
  auto solver = SkylineSolver::Create(data, model).value();
  double exact = solver.Exact(0).value();
  EXPECT_NEAR(run->estimate, exact, run->epsilon);
  EXPECT_GE(run->estimate, run->lower);
  EXPECT_LE(run->estimate, run->upper);
}

TEST(ResilientTest, ErrorBudgetSplitsAcrossExhaustedGroups) {
  Dataset data = TwoBlobDataset(10);
  TablePreferenceModel model;
  ResilientOptions options;
  options.solver.exact.max_subsets = 500;  // each blob needs 1023 visits
  options.solver.monte_carlo.epsilon = 0.1;
  options.solver.monte_carlo.delta = 0.02;
  auto run = ResilientSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(run.ok()) << run.status();
  std::size_t sampled = 0;
  double epsilon_sum = 0.0;
  for (const GroupReport& g : run->groups) {
    epsilon_sum += g.epsilon;
    if (g.quality != GroupQuality::kSampled) continue;
    ++sampled;
    // Both blobs exhausted: each gets half the epsilon and delta budget.
    EXPECT_EQ(g.epsilon, 0.05);
    EXPECT_EQ(g.delta, 0.01);
  }
  EXPECT_EQ(sampled, 2u);
  EXPECT_EQ(run->epsilon, epsilon_sum);
  EXPECT_EQ(run->epsilon, 0.1);
  EXPECT_EQ(run->delta, 0.02);
}

TEST(ResilientTest, ExpiredDeadlineFallsBackToCertifiedBounds) {
  Dataset data = BlobAndSingletonsDataset(12, 2);
  TablePreferenceModel model;
  ResilientOptions options;
  options.solver.exact.max_subsets = 500;
  options.solver.exact.deadline =
      Deadline::At(Deadline::Clock::now() - std::chrono::seconds(1));
  auto run = ResilientSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FALSE(run->fully_exact);
  std::size_t bounded = 0;
  for (const GroupReport& g : run->groups) {
    if (g.quality != GroupQuality::kBounded) continue;
    ++bounded;
    EXPECT_EQ(g.size, 12u);
    EXPECT_LE(g.lower, g.upper);
    EXPECT_EQ(g.delta, 0.0);  // the interval is certified, not probabilistic
    EXPECT_EQ(g.epsilon, 0.5 * (g.upper - g.lower));
    EXPECT_EQ(g.samples, 0u);
  }
  EXPECT_EQ(bounded, 1u);
  // The certified interval product sandwiches the exact value.
  auto solver = SkylineSolver::Create(data, model).value();
  double exact = solver.Exact(0).value();
  EXPECT_LE(run->lower, exact);
  EXPECT_GE(run->upper, exact);
  EXPECT_EQ(run->delta, 0.0);
}

TEST(ResilientTest, ThreadCountInvarianceUnderDegradation) {
  Dataset data = TwoBlobDataset(10);
  TablePreferenceModel model;
  ResilientOptions options;
  options.solver.exact.max_subsets = 500;
  options.solver.monte_carlo.epsilon = 0.1;
  options.solver.monte_carlo.delta = 0.02;
  ThreadPool pool0(0), pool1(1), pool2(2), pool8(8);
  auto a = ResilientSkylineProbability(data, 0, model, pool0, options);
  auto b = ResilientSkylineProbability(data, 0, model, pool1, options);
  auto c = ResilientSkylineProbability(data, 0, model, pool2, options);
  auto d = ResilientSkylineProbability(data, 0, model, pool8, options);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  for (const auto* other : {&*b, &*c, &*d}) {
    EXPECT_EQ(a->estimate, other->estimate);
    EXPECT_EQ(a->epsilon, other->epsilon);
    EXPECT_EQ(a->lower, other->lower);
    EXPECT_EQ(a->upper, other->upper);
    ASSERT_EQ(a->groups.size(), other->groups.size());
    for (std::size_t g = 0; g < a->groups.size(); ++g) {
      EXPECT_EQ(a->groups[g].quality, other->groups[g].quality);
      EXPECT_EQ(a->groups[g].survival, other->groups[g].survival);
      EXPECT_EQ(a->groups[g].samples, other->groups[g].samples);
    }
  }
}

TEST(ResilientTest, PreCancelledTokenAbortsAtEveryThreadCount) {
  Dataset data = BlobAndSingletonsDataset(10, 2);
  TablePreferenceModel model;
  CancelToken token;
  token.RequestCancel();
  ResilientOptions options;
  options.cancel = &token;
  for (std::size_t threads : {0u, 1u, 2u, 8u}) {
    ThreadPool pool(threads);
    auto run = ResilientSkylineProbability(data, 0, model, pool, options);
    EXPECT_EQ(run.status().code(), StatusCode::kCancelled)
        << "threads " << threads;
  }
}

TEST(ResilientTest, SingleObjectDatasetIsCertainSkyline) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  TablePreferenceModel model;
  auto run = ResilientSkylineProbability(data, 0, model);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->estimate, 1.0);
  EXPECT_TRUE(run->fully_exact);
  EXPECT_TRUE(run->groups.empty());
}

TEST(ResilientTest, OutOfRangeTargetIsRejected) {
  Dataset data = BlobAndSingletonsDataset(3, 0);
  TablePreferenceModel model;
  auto run = ResilientSkylineProbability(data, data.size(), model);
  EXPECT_EQ(run.status().code(), StatusCode::kOutOfRange);
}

TEST(ResilientTest, QualityNamesAreStable) {
  EXPECT_STREQ(GroupQualityToString(GroupQuality::kExact), "exact");
  EXPECT_STREQ(GroupQualityToString(GroupQuality::kSampled), "sampled");
  EXPECT_STREQ(GroupQualityToString(GroupQuality::kBounded), "bounded");
}

TEST(ResilientBatchTest, SalvagesEveryBudgetStarvedTarget) {
  Dataset data = RandomSmallDataset(73, 12, 2, 4);
  TablePreferenceModel model;
  ThreadPool pool(2);
  ResilientOptions options;
  // Groups of size >= 2 exceed one visit; singletons still finish, so
  // targets degrade only where a multi-candidate group exists.
  options.solver.exact.max_subsets = 1;
  options.solver.monte_carlo.samples = 300;
  auto run = ResilientBatchSkylineProbabilities(data, model, pool, options);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run->estimates.size(), data.size());
  auto solver = SkylineSolver::Create(data, model).value();
  SolverOptions tight = options.solver;
  std::size_t degraded = 0;
  for (ObjectId t = 0; t < data.size(); ++t) {
    EXPECT_TRUE(std::isfinite(run->estimates[t])) << "target " << t;
    EXPECT_GE(run->estimates[t], 0.0);
    EXPECT_LE(run->estimates[t], 1.0);
    if (run->batch_stats.target_status[t].ok()) {
      // Bit-identical to the plain exact solve under the same options.
      EXPECT_EQ(run->estimates[t], solver.Exact(t, tight).value());
      EXPECT_EQ(run->quality[t], GroupQuality::kExact);
      EXPECT_EQ(run->epsilons[t], 0.0);
    } else {
      ++degraded;
      EXPECT_NE(run->quality[t], GroupQuality::kExact);
      EXPECT_GT(run->epsilons[t], 0.0);
      // The salvaged estimate is within its annotated bar of the true
      // value (fixed seed; deterministic).
      EXPECT_NEAR(run->estimates[t], solver.Exact(t).value(),
                  run->epsilons[t])
          << "target " << t;
    }
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(run->degraded_targets, degraded);
}

}  // namespace
}  // namespace skypref
