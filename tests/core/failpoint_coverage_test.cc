/// Registry coverage: every site in the canonical table (kKnownSites,
/// src/util/failpoint.cc) must be consulted by at least one workload in
/// this battery. A site that nothing reaches is dead weight — or worse,
/// a typo'd registration hiding an unguarded literal — and the chaos
/// sweep (tools/skypref_chaos.cc) would silently skip it. Runs only in
/// SKYPREF_FAILPOINTS builds (the sanitizer presets); elsewhere the one
/// test skips.

#include <gtest/gtest.h>

#include <cstddef>

#include "src/core/monte_carlo.h"
#include "src/core/parallel.h"
#include "src/core/sam_bitslice.h"
#include "src/core/sam_parallel.h"
#include "src/core/solver.h"
#include "src/util/failpoint.h"
#include "src/util/thread_pool.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::RandomSmallDataset;

TEST(FailpointCoverageTest, EveryRegisteredSiteIsConsultedBySomeWorkload) {
#if !defined(SKYPREF_FAILPOINTS) || !SKYPREF_FAILPOINTS
  GTEST_SKIP() << "built without SKYPREF_FAILPOINTS";
#else
  failpoint::DisarmAll();
  failpoint::EnableCoverage(true);
  failpoint::ResetCoverage();

  Dataset data = RandomSmallDataset(73, 12, 2, 4);
  TablePreferenceModel model;
  ThreadPool pool(2);

  // exact.dfs + alloc.exact.flat_instance: one flat-engine solve.
  ASSERT_TRUE(ExactSkylineProbability(data, 0, model).ok());

  // parallel.task (+ threadpool.serial / threadpool.wait): the
  // intra-group task engine engages only for a splittable group of
  // >= 16 candidates dispatched onto live workers.
  {
    Dataset splittable(2);
    splittable.Append({0, 0}).CheckOK();
    for (std::size_t i = 0; i < 18; ++i) {
      splittable.Append({1, static_cast<ValueId>(i + 1)}).CheckOK();
    }
    ASSERT_TRUE(
        ParallelExactSkylineProbability(splittable, 0, model, pool).ok());
  }

  // batch.target + alloc.batch.partition: the batch solver with its
  // default preprocessing phase.
  ASSERT_TRUE(BatchExactSkylineProbabilities(data, model, pool).ok());

  // batch.retry is consulted only while salvaging a transient casualty,
  // so manufacture one: a single injected scheduler fault.
  {
    failpoint::ScopedFailpoint armed("batch.target");
    ASSERT_TRUE(BatchExactSkylineProbabilities(data, model, pool).ok());
  }

  // sampler.world: the serial sampler consults it at every 64-world
  // deadline poll.
  {
    MonteCarloOptions mc;
    mc.samples = 128;
    ASSERT_TRUE(MonteCarloSkylineProbability(data, 0, model, mc).ok());
  }

  // sampler.block + alloc.sam.instance: the block engine, several
  // blocks' worth of worlds.
  {
    MonteCarloOptions mc;
    mc.samples = 256;
    mc.block_size = 64;
    ASSERT_TRUE(
        BlockMonteCarloSkylineProbability(data, 0, model, pool, mc).ok());
  }

  // alloc.sam.slice_arena: the bit-sliced engine's up-front arena probe.
  {
    MonteCarloOptions mc;
    mc.samples = 256;
    mc.block_size = 64;
    ASSERT_TRUE(
        BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, mc).ok());
  }

  // alloc.sam.batch_plan: the shared-world batch estimator.
  {
    SolverOptions options;
    options.monte_carlo.samples = 256;
    options.monte_carlo.block_size = 64;
    ASSERT_TRUE(
        BatchMonteCarloSkylineProbabilities(data, model, pool, options).ok());
  }

  for (const failpoint::KnownSite& site : failpoint::KnownSites()) {
    EXPECT_GE(failpoint::CoverageCount(site.name), 1u)
        << "registered site '" << site.name
        << "' was never consulted — dead registration or missing workload";
  }

  failpoint::EnableCoverage(false);
  failpoint::DisarmAll();
#endif
}

}  // namespace
}  // namespace skypref
