/// Randomized, seeded cross-validation of the Det hot-path rework.
///
/// For every seeded instance the rational oracle is the referee:
///
///   * flat and lookup DFS engines agree bit-exactly with
///     ExactSkylineProbabilityRational (rational instantiations) and
///     with each other in doubles;
///   * ParallelExactEngine reproduces the serial rational sum EXACTLY
///     (rational addition is associative, so the fixed-order reduction
///     cannot drift) at every thread count;
///   * ParallelExactSkylineProbability — forced onto the intra-group
///     split path — is bit-identical across 0/1/2/8-thread pools and
///     tracks the rational truth to 1e-12 in doubles;
///   * subset-budget exhaustion is deterministic, and empty candidate
///     sets short-circuit to probability 1.

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "src/core/parallel.h"
#include "src/core/solver.h"
#include "src/model/preference_generator.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::RandomSmallDataset;

struct HotpathSpec {
  std::uint64_t seed;
  std::size_t objects;
  std::size_t dimensions;
  ValueId values;
  bool simplex;
};

class HotpathPropertyTest : public ::testing::TestWithParam<HotpathSpec> {
 protected:
  void SetUp() override {
    const HotpathSpec& spec = GetParam();
    data_ = RandomSmallDataset(spec.seed, spec.objects, spec.dimensions,
                               spec.values);
    Status status =
        spec.simplex
            ? GenerateRationalSimplexPreferences(data_, spec.seed ^ 0xfeed, 8,
                                                 &model_)
            : GenerateRationalPreferences(data_, spec.seed ^ 0xfeed, 8,
                                          &model_);
    status.CheckOK();
  }

  std::vector<ObjectId> Candidates(ObjectId target) const {
    std::vector<ObjectId> ids;
    for (ObjectId i = 0; i < data_.size(); ++i) {
      if (i != target) ids.push_back(i);
    }
    return ids;
  }

  Dataset data_{1};
  RationalPreferenceModel model_;
};

TEST_P(HotpathPropertyTest, EnginesMatchTheRationalReferee) {
  RationalOracle oracle(model_);
  ExactOptions flat;
  flat.engine = ExactOptions::Engine::kFlat;
  ExactOptions lookup;
  lookup.engine = ExactOptions::Engine::kLookup;
  for (ObjectId target = 0; target < data_.size(); ++target) {
    std::vector<ObjectId> candidates = Candidates(target);
    Rational reference =
        ExactSkylineProbabilityRational(data_, target, model_, false).value();
    EXPECT_EQ(
        ExactSkylineProbability(data_, target, candidates, oracle, flat)
            .value(),
        reference)
        << "target=" << target;
    EXPECT_EQ(
        ExactSkylineProbability(data_, target, candidates, oracle, lookup)
            .value(),
        reference)
        << "target=" << target;
    // Doubles: the two engines are bit-identical to each other and track
    // the rational truth within compensated-summation tolerance.
    DoubleOracle doubles(model_);
    double via_flat =
        ExactSkylineProbability(data_, target, candidates, doubles, flat)
            .value();
    double via_lookup =
        ExactSkylineProbability(data_, target, candidates, doubles, lookup)
            .value();
    EXPECT_EQ(via_flat, via_lookup) << "target=" << target;
    EXPECT_NEAR(via_flat, reference.ToDouble(), 1e-12) << "target=" << target;
  }
}

TEST_P(HotpathPropertyTest, ParallelEngineIsExactInRationals) {
  RationalOracle oracle(model_);
  ThreadPool inline_pool(0);
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  for (ObjectId target = 0; target < data_.size(); ++target) {
    std::vector<ObjectId> candidates = Candidates(target);
    Rational reference =
        ExactSkylineProbabilityRational(data_, target, model_, false).value();
    internal::FlatInstance<RationalOracle> instance =
        internal::BuildFlatInstance(
            data_, target, std::span<const ObjectId>(candidates), oracle);
    for (ThreadPool* pool : {&inline_pool, &pool2, &pool8}) {
      internal::ParallelExactEngine<RationalOracle> engine(instance, {}, 5);
      auto result = engine.Run(*pool);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result.value(), reference)
          << "target=" << target
          << " threads=" << pool->thread_count();
    }
  }
}

TEST_P(HotpathPropertyTest, ParallelSolverThreadCountInvariance) {
  ParallelOptions split;
  split.exact_tasks = 5;
  split.min_split_candidates = 2;  // force the intra-group engine
  ThreadPool pool0(0), pool1(1), pool2(2), pool8(8);
  for (ObjectId target = 0; target < data_.size(); ++target) {
    Rational reference =
        ExactSkylineProbabilityRational(data_, target, model_, true).value();
    auto baseline = ParallelExactSkylineProbability(data_, target, model_,
                                                    pool0, {}, split);
    ASSERT_TRUE(baseline.ok());
    EXPECT_NEAR(baseline.value(), reference.ToDouble(), 1e-12)
        << "target=" << target;
    for (ThreadPool* pool : {&pool1, &pool2, &pool8}) {
      auto run = ParallelExactSkylineProbability(data_, target, model_, *pool,
                                                 {}, split);
      ASSERT_TRUE(run.ok());
      EXPECT_EQ(run.value(), baseline.value())
          << "target=" << target << " threads=" << pool->thread_count();
    }
  }
}

TEST_P(HotpathPropertyTest, BudgetExhaustionIsDeterministic) {
  ParallelOptions split;
  split.exact_tasks = 5;
  split.min_split_candidates = 2;
  ThreadPool pool(4);
  ExactOptions tight;
  tight.max_subsets = 1;  // any group with >= 2 candidates needs >= 3
  SolveStats stats;
  auto run = ParallelExactSkylineProbability(data_, 0, model_, pool, tight,
                                             split, &stats);
  bool has_multi_candidate_group = false;
  for (std::size_t size : stats.group_sizes) {
    if (size >= 2) has_multi_candidate_group = true;
  }
  if (run.ok()) {
    // Every surviving group was a singleton; re-running must succeed the
    // same way (stats only fill on success).
    EXPECT_FALSE(has_multi_candidate_group);
    auto again = ParallelExactSkylineProbability(data_, 0, model_, pool,
                                                 tight, split);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value(), run.value());
  } else {
    EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(ParallelExactSkylineProbability(data_, 0, model_, pool, tight,
                                              split)
                  .status()
                  .code(),
              StatusCode::kResourceExhausted);
  }
}

TEST_P(HotpathPropertyTest, GroupSizeStatsAreConsistent) {
  ThreadPool pool(2);
  SolveStats stats;
  auto run =
      ParallelExactSkylineProbability(data_, 0, model_, pool, {}, {}, &stats);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(stats.group_sizes.size(), stats.groups);
  std::size_t total = 0, largest = 0;
  for (std::size_t size : stats.group_sizes) {
    total += size;
    largest = std::max(largest, size);
  }
  EXPECT_EQ(total, stats.after_absorption);
  EXPECT_EQ(largest, stats.largest_group);
}

TEST(HotpathEdgeCaseTest, SingleObjectHasNoCandidates) {
  Dataset data(3);
  data.Append({0, 1, 2}).CheckOK();
  TablePreferenceModel model;
  ThreadPool pool(2);
  SolveStats stats;
  auto run =
      ParallelExactSkylineProbability(data, 0, model, pool, {}, {}, &stats);
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run.value(), 1.0);
  EXPECT_EQ(stats.groups, 0u);
  EXPECT_TRUE(stats.group_sizes.empty());
}

TEST(HotpathEdgeCaseTest, ParallelEngineHandlesEmptyInstance) {
  internal::FlatInstance<DoubleOracle> empty;
  empty.offsets.push_back(0);
  ThreadPool pool(2);
  internal::ParallelExactEngine<DoubleOracle> engine(empty, {}, 8);
  auto result = engine.Run(pool);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 1.0);  // only the k = 0 term
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, HotpathPropertyTest,
    ::testing::Values(HotpathSpec{21, 7, 2, 3, false},
                      HotpathSpec{22, 8, 3, 3, false},
                      HotpathSpec{23, 9, 2, 4, false},
                      HotpathSpec{24, 6, 4, 2, false},
                      HotpathSpec{25, 8, 2, 4, true},
                      HotpathSpec{26, 7, 3, 3, true}),
    [](const ::testing::TestParamInfo<HotpathSpec>& param_info) {
      const HotpathSpec& s = param_info.param;
      return "seed" + std::to_string(s.seed) + "_n" +
             std::to_string(s.objects) + "_d" + std::to_string(s.dimensions) +
             "_v" + std::to_string(s.values) +
             (s.simplex ? "_simplex" : "_total");
    });

}  // namespace
}  // namespace skypref
