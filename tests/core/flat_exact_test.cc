/// The flattened Det hot path against the original lookup engine.
///
/// FlatExactEngine's contract is strict bit-identity: it discovers the
/// distinct (dim, value) factors in the same candidate-major order the
/// lookup engine multiplies them, so both engines produce the same
/// doubles (and the same subsets_visited) on every instance — not just
/// values within an epsilon.

#include "src/core/exact.h"

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/solver.h"
#include "src/model/preference_generator.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;
using skypref::testing::UnanimousHalfRational;

std::vector<ObjectId> AllBut(const Dataset& data, ObjectId target) {
  std::vector<ObjectId> ids;
  for (ObjectId i = 0; i < data.size(); ++i) {
    if (i != target) ids.push_back(i);
  }
  return ids;
}

TEST(FlatExactTest, GoldenExample1) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ExactOptions flat;
  flat.engine = ExactOptions::Engine::kFlat;
  EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, 0, model, flat).value(),
                   3.0 / 16.0);
  ExactOptions lookup;
  lookup.engine = ExactOptions::Engine::kLookup;
  EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, 0, model, lookup).value(),
                   3.0 / 16.0);
}

TEST(FlatExactTest, MatchesLookupBitwiseOnRandomInstances) {
  for (std::uint64_t seed : {3u, 7u, 19u, 23u}) {
    Dataset data = RandomSmallDataset(seed, 12, 3, 4);
    TablePreferenceModel model;
    ExactOptions flat;
    flat.engine = ExactOptions::Engine::kFlat;
    ExactOptions lookup;
    lookup.engine = ExactOptions::Engine::kLookup;
    for (ObjectId target = 0; target < data.size(); ++target) {
      ExactStats flat_stats, lookup_stats;
      double via_flat =
          ExactSkylineProbability(data, target, model, flat, &flat_stats)
              .value();
      double via_lookup =
          ExactSkylineProbability(data, target, model, lookup, &lookup_stats)
              .value();
      EXPECT_EQ(via_flat, via_lookup)
          << "seed=" << seed << " target=" << target;
      EXPECT_EQ(flat_stats.subsets_visited, lookup_stats.subsets_visited)
          << "seed=" << seed << " target=" << target;
    }
  }
}

TEST(FlatExactTest, RationalEnginesAgreeExactly) {
  Dataset data = RandomSmallDataset(11, 8, 2, 4);
  RationalPreferenceModel model;
  GenerateRationalPreferences(data, 99, 8, &model).CheckOK();
  RationalOracle oracle(model);
  ExactOptions flat;
  flat.engine = ExactOptions::Engine::kFlat;
  ExactOptions lookup;
  lookup.engine = ExactOptions::Engine::kLookup;
  for (ObjectId target = 0; target < data.size(); ++target) {
    std::vector<ObjectId> candidates = AllBut(data, target);
    EXPECT_EQ(
        ExactSkylineProbability(data, target, candidates, oracle, flat)
            .value(),
        ExactSkylineProbability(data, target, candidates, oracle, lookup)
            .value())
        << "target=" << target;
  }
}

TEST(FlatExactTest, EmptyCandidateListIsCertainSkyline) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  DoubleOracle oracle(model);
  std::vector<ObjectId> empty;
  ExactStats stats;
  auto result = ExactSkylineProbability(data, 0, empty, oracle, {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 1.0);
  EXPECT_EQ(stats.subsets_visited, 0u);
}

TEST(FlatExactTest, SubsetBudgetTripsBothEngines) {
  Dataset data = RandomSmallDataset(5, 10, 2, 4);
  TablePreferenceModel model;
  for (auto engine :
       {ExactOptions::Engine::kFlat, ExactOptions::Engine::kLookup}) {
    ExactOptions tight;
    tight.engine = engine;
    tight.max_subsets = 3;
    EXPECT_EQ(ExactSkylineProbability(data, 0, model, tight).status().code(),
              StatusCode::kResourceExhausted);
  }
}

TEST(FlatExactTest, PreExpiredSharedDeadlineAborts) {
  // The deadline is polled every 4096 visits, so the instance must be
  // big enough to reach a poll: 14 objects = 13 candidates = 8191 visits
  // under unanimous preferences (no zero factors to prune).
  Dataset data = RandomSmallDataset(31, 14, 3, 4);
  TablePreferenceModel model;
  for (auto engine :
       {ExactOptions::Engine::kFlat, ExactOptions::Engine::kLookup}) {
    ExactOptions expired;
    expired.engine = engine;
    expired.deadline = Deadline::At(std::chrono::steady_clock::now() -
                                    std::chrono::seconds(1));
    EXPECT_EQ(
        ExactSkylineProbability(data, 0, model, expired).status().code(),
        StatusCode::kResourceExhausted);
  }
}

TEST(FlatExactTest, FlatInstanceDeduplicatesSharedPairs) {
  // Example 1: candidates Q1..Q4 contribute values (1,1), (1,0), (2,2),
  // (0,1) against target (0,0) — seven differing slots but only five
  // distinct (dim, value) factors (dim0:1, dim1:1, dim0:2, dim1:2).
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  DoubleOracle oracle(model);
  std::vector<ObjectId> candidates = AllBut(data, 0);
  internal::FlatInstance<DoubleOracle> instance =
      internal::BuildFlatInstance(data, 0,
                                  std::span<const ObjectId>(candidates),
                                  oracle);
  EXPECT_EQ(instance.candidate_count(), 4u);
  EXPECT_EQ(instance.pair_count(), 4u);
  EXPECT_EQ(instance.pair_ids.size(), 6u);  // Q1:2, Q2:1, Q3:2, Q4:1
}

TEST(FlatExactTest, RationalGoldenOnExample1) {
  Dataset data = Example1Dataset();
  RationalPreferenceModel model = UnanimousHalfRational(data);
  RationalOracle oracle(model);
  std::vector<ObjectId> candidates = AllBut(data, 0);
  Rational sky =
      ExactSkylineProbability(data, 0, candidates, oracle).value();
  EXPECT_EQ(sky, Rational(BigInt(3), BigInt(16)));
}

}  // namespace
}  // namespace skypref
