#include "src/core/lineage_dp.h"

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "src/core/solver.h"
#include "src/workload/uniform_generator.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::Figure1Dataset;
using skypref::testing::RandomSmallDataset;

std::vector<ObjectId> AllBut(const Dataset& data, ObjectId target) {
  std::vector<ObjectId> ids;
  for (ObjectId i = 0; i < data.size(); ++i) {
    if (i != target) ids.push_back(i);
  }
  return ids;
}

TEST(LineageDpTest, PaperGoldenValues) {
  Dataset fig1 = Figure1Dataset();
  Dataset ex1 = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_DOUBLE_EQ(
      LineageExactSkylineProbability(fig1, 0, AllBut(fig1, 0), model).value(),
      0.5);
  EXPECT_DOUBLE_EQ(
      LineageExactSkylineProbability(ex1, 0, AllBut(ex1, 0), model).value(),
      3.0 / 16.0);
}

TEST(LineageDpTest, MatchesInclusionExclusionOnRandomInstances) {
  for (std::uint64_t seed = 1001; seed < 1021; ++seed) {
    Dataset data = RandomSmallDataset(seed, 11, 3, 4);
    TablePreferenceModel model;
    for (ObjectId target = 0; target < 3; ++target) {
      double subset_dfs =
          ExactSkylineProbability(data, target, model).value();
      double lineage = LineageExactSkylineProbability(
                           data, target, AllBut(data, target), model)
                           .value();
      EXPECT_NEAR(lineage, subset_dfs, 1e-12)
          << "seed=" << seed << " target=" << target;
    }
  }
}

TEST(LineageDpTest, PreprocessedVariantMatchesDetPlus) {
  Dataset data = RandomSmallDataset(31, 14, 3, 4);
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  for (ObjectId target = 0; target < 4; ++target) {
    EXPECT_NEAR(
        LineageExactWithPreprocessing(data, target, model).value(),
        solver.Exact(target).value(), 1e-12);
  }
}

TEST(LineageDpTest, SolvesUniformFiftyWhereSubsetDfsCannot) {
  // n=50, d=5, 10 values/dim: 2^49 subsets for Algorithm 1; at most 45
  // shared variables for the lineage DP. This must finish fast and agree
  // with a Monte-Carlo cross-check.
  UniformOptions gen;
  gen.objects = 50;
  gen.dimensions = 5;
  gen.values_per_dimension = 10;
  gen.seed = 77;
  Dataset data = GenerateUniform(gen).value();
  HashedPreferenceModel model(9, HashedPreferenceModel::Style::kTotalUniform);

  LineageDpStats stats;
  double exact =
      LineageExactWithPreprocessing(data, 0, model, {}, &stats).value();
  EXPECT_GE(exact, 0.0);
  EXPECT_LE(exact, 1.0);
  EXPECT_LE(stats.variables, 45u);

  MonteCarloOptions mc;
  mc.samples = 200000;
  mc.seed = 4;
  auto estimate = MonteCarloSkylineProbability(data, 0, model, mc).value();
  EXPECT_NEAR(exact, estimate.estimate, 0.01);
}

TEST(LineageDpTest, CertainPreferencesShortCircuit) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  data.Append({2, 2}).CheckOK();
  TablePreferenceModel model;
  model.Set(0, 1, 0, 1.0, 0.0).CheckOK();
  model.Set(1, 1, 0, 1.0, 0.0).CheckOK();  // candidate 1 always dominates
  model.Set(0, 2, 0, 0.0, 1.0).CheckOK();  // candidate 2 never does
  model.Set(1, 2, 0, 0.5, 0.5).CheckOK();
  EXPECT_DOUBLE_EQ(
      LineageExactSkylineProbability(data, 0, AllBut(data, 0), model).value(),
      0.0);
}

TEST(LineageDpTest, StateBudgetIsEnforced) {
  Dataset data = RandomSmallDataset(3, 20, 3, 6);
  TablePreferenceModel model;
  LineageDpOptions tight;
  tight.max_states = 2;
  auto result = LineageExactSkylineProbability(data, 0, AllBut(data, 0),
                                               model, tight);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(LineageDpTest, RejectsOversizedAndInvalidInputs) {
  Dataset data(1);
  for (ValueId v = 0; v < 70; ++v) data.Append({v}).CheckOK();
  TablePreferenceModel model;
  EXPECT_EQ(LineageExactSkylineProbability(data, 0, AllBut(data, 0), model)
                .status()
                .code(),
            StatusCode::kResourceExhausted);  // 69 candidates > 64
  Dataset small = Example1Dataset();
  std::vector<ObjectId> self{0};
  EXPECT_EQ(LineageExactSkylineProbability(small, 0, self, model)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LineageExactSkylineProbability(small, 9, {}, model)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(LineageDpTest, EmptyCandidateListIsOne) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  std::vector<ObjectId> none;
  EXPECT_DOUBLE_EQ(
      LineageExactSkylineProbability(data, 0, none, model).value(), 1.0);
}

}  // namespace
}  // namespace skypref
