/// Property-based cross-validation of all solver paths.
///
/// For each seeded random instance (small n, d, dense value domains so
/// shared values — and thus dependent dominance events — are common):
///
///   * inclusion-exclusion (Algorithm 1) == possible-world enumeration,
///     bit-exactly in rational arithmetic;
///   * absorption + partition preprocessing leaves the answer unchanged;
///   * the double-precision path agrees with the rational path to 1e-12;
///   * the Monte-Carlo estimate lands within its Hoeffding envelope;
///   * adding a candidate never increases sky(O) (monotonicity).

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/exact.h"
#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/model/preference_generator.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::RandomSmallDataset;

struct InstanceSpec {
  std::uint64_t seed;
  std::size_t objects;
  std::size_t dimensions;
  ValueId values;
  bool simplex;  // allow incomparability mass
};

class RandomInstanceTest : public ::testing::TestWithParam<InstanceSpec> {
 protected:
  void SetUp() override {
    const InstanceSpec& spec = GetParam();
    data_ = RandomSmallDataset(spec.seed, spec.objects, spec.dimensions,
                               spec.values);
    Status status =
        spec.simplex
            ? GenerateRationalSimplexPreferences(data_, spec.seed ^ 0xbeef, 8,
                                                 &model_)
            : GenerateRationalPreferences(data_, spec.seed ^ 0xbeef, 8,
                                          &model_);
    status.CheckOK();
  }

  std::vector<ObjectId> Candidates(ObjectId target) const {
    std::vector<ObjectId> ids;
    for (ObjectId i = 0; i < data_.size(); ++i) {
      if (i != target) ids.push_back(i);
    }
    return ids;
  }

  Dataset data_{1};
  RationalPreferenceModel model_;
};

TEST_P(RandomInstanceTest, ExactEqualsBruteForceBitExactly) {
  RationalOracle oracle(model_);
  for (ObjectId target = 0; target < data_.size(); ++target) {
    std::vector<ObjectId> candidates = Candidates(target);
    Rational exact =
        ExactSkylineProbability(data_, target, candidates, oracle).value();
    Rational brute =
        BruteForceSkylineProbability(data_, target, candidates, oracle)
            .value();
    EXPECT_EQ(exact, brute) << "target=" << target;
    EXPECT_GE(exact, Rational(0));
    EXPECT_LE(exact, Rational(1));
  }
}

TEST_P(RandomInstanceTest, PreprocessingPreservesTheAnswer) {
  for (ObjectId target = 0; target < data_.size(); ++target) {
    Rational plain =
        ExactSkylineProbabilityRational(data_, target, model_, false).value();
    Rational preprocessed =
        ExactSkylineProbabilityRational(data_, target, model_, true).value();
    EXPECT_EQ(plain, preprocessed) << "target=" << target;
  }
}

TEST_P(RandomInstanceTest, DoublePathTracksRationalPath) {
  auto solver = SkylineSolver::Create(data_, model_).value();
  for (ObjectId target = 0; target < data_.size(); ++target) {
    Rational exact =
        ExactSkylineProbabilityRational(data_, target, model_, false).value();
    SolverOptions options;
    options.preprocess = true;
    double via_doubles = solver.Exact(target, options).value();
    EXPECT_NEAR(via_doubles, exact.ToDouble(), 1e-12) << "target=" << target;
  }
}

TEST_P(RandomInstanceTest, MonteCarloLandsNearTruth) {
  auto solver = SkylineSolver::Create(data_, model_).value();
  // Only spot-check target 0 to keep the suite fast; the estimator's
  // statistical guarantee is tested exhaustively in monte_carlo_test.
  Rational exact =
      ExactSkylineProbabilityRational(data_, 0, model_, false).value();
  SolverOptions options;
  options.preprocess = false;
  options.monte_carlo.samples = 60000;
  options.monte_carlo.seed = GetParam().seed * 31 + 7;
  double estimate = solver.MonteCarlo(0, options).value();
  EXPECT_NEAR(estimate, exact.ToDouble(), 0.015);
}

TEST_P(RandomInstanceTest, AddingACandidateNeverRaisesSkyProbability) {
  RationalOracle oracle(model_);
  std::vector<ObjectId> candidates = Candidates(0);
  Rational previous(1);
  std::vector<ObjectId> prefix;
  for (ObjectId id : candidates) {
    prefix.push_back(id);
    Rational current =
        ExactSkylineProbability(data_, 0, prefix, oracle).value();
    EXPECT_LE(current, previous) << "after adding candidate " << id;
    previous = current;
  }
}

TEST_P(RandomInstanceTest, CandidatePermutationInvariance) {
  RationalOracle oracle(model_);
  std::vector<ObjectId> candidates = Candidates(0);
  Rational reference =
      ExactSkylineProbability(data_, 0, candidates, oracle).value();
  std::reverse(candidates.begin(), candidates.end());
  EXPECT_EQ(ExactSkylineProbability(data_, 0, candidates, oracle).value(),
            reference);
  std::rotate(candidates.begin(), candidates.begin() + 1, candidates.end());
  EXPECT_EQ(ExactSkylineProbability(data_, 0, candidates, oracle).value(),
            reference);
}

TEST_P(RandomInstanceTest, IndependentBaselineIsNotBelowHalfTruthHere) {
  // Not a correctness claim about Sac — just a sanity check that both
  // numbers are probabilities and the instance exercises dependence.
  auto solver = SkylineSolver::Create(data_, model_).value();
  double sac = solver.Independent(0).value();
  EXPECT_GE(sac, 0.0);
  EXPECT_LE(sac, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, RandomInstanceTest,
    ::testing::Values(
        InstanceSpec{1, 5, 2, 3, false}, InstanceSpec{2, 6, 2, 3, false},
        InstanceSpec{3, 7, 3, 3, false}, InstanceSpec{4, 8, 2, 4, false},
        InstanceSpec{5, 6, 4, 2, false}, InstanceSpec{6, 5, 1, 6, false},
        InstanceSpec{7, 8, 3, 2, false}, InstanceSpec{8, 7, 2, 4, true},
        InstanceSpec{9, 6, 3, 3, true}, InstanceSpec{10, 8, 2, 3, true},
        InstanceSpec{11, 5, 4, 3, true}, InstanceSpec{12, 7, 1, 8, true},
        InstanceSpec{13, 9, 2, 4, false}, InstanceSpec{14, 9, 2, 4, true},
        InstanceSpec{15, 4, 5, 2, false}, InstanceSpec{16, 10, 2, 4, true}),
    [](const ::testing::TestParamInfo<InstanceSpec>& param_info) {
      const InstanceSpec& s = param_info.param;
      return "seed" + std::to_string(s.seed) + "_n" +
             std::to_string(s.objects) + "_d" + std::to_string(s.dimensions) +
             "_v" + std::to_string(s.values) +
             (s.simplex ? "_simplex" : "_total");
    });

}  // namespace
}  // namespace skypref
