#include "src/core/adaptive_sampling.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "src/core/monte_carlo.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;

TEST(AdaptiveSamplingTest, EstimateWithinEpsilonOfTruth) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  AdaptiveOptions options;
  options.epsilon = 0.02;
  options.delta = 0.01;
  options.seed = 5;
  AdaptiveResult result =
      AdaptiveMonteCarloSkylineProbability(data, 0, model, options).value();
  EXPECT_NEAR(result.estimate, 3.0 / 16.0, options.epsilon);
  EXPECT_LE(result.radius, options.epsilon + 1e-12);
  EXPECT_GT(result.samples, 0u);
}

TEST(AdaptiveSamplingTest, StopsEarlyWhenProbabilityIsExtreme) {
  // A target that is always dominated: sky = 0 with zero variance, so
  // the Bernstein stop fires long before the Hoeffding count.
  Dataset data(2);
  data.Append({1, 1}).CheckOK();  // target, certainly dominated
  data.Append({0, 0}).CheckOK();
  TablePreferenceModel model;
  model.Set(0, 0, 1, 1.0, 0.0).CheckOK();
  model.Set(1, 0, 1, 1.0, 0.0).CheckOK();

  AdaptiveOptions options;
  options.epsilon = 0.01;
  options.delta = 0.01;
  AdaptiveResult result =
      AdaptiveMonteCarloSkylineProbability(data, 0, model, options).value();
  EXPECT_DOUBLE_EQ(result.estimate, 0.0);
  EXPECT_FALSE(result.hit_cap);
  // Fixed-size Hoeffding would need 26,492 samples; with zero variance
  // the Bernstein radius is ~3 ln(3/delta_k)/t, firing around t ~ 4000.
  EXPECT_LT(result.samples, HoeffdingSampleSize(0.01, 0.01) / 5);
}

TEST(AdaptiveSamplingTest, NeverExceedsTheHoeffdingCap) {
  // sky = 1/2 has maximal variance: the adaptive rule cannot do much
  // better than Hoeffding, and must stop at the cap with the guarantee
  // intact.
  Dataset data(1);
  data.Append({0}).CheckOK();
  data.Append({1}).CheckOK();
  TablePreferenceModel model;  // Pr = 1/2 both ways
  AdaptiveOptions options;
  options.epsilon = 0.02;
  options.delta = 0.05;
  AdaptiveResult result =
      AdaptiveMonteCarloSkylineProbability(data, 0, model, options).value();
  EXPECT_LE(result.samples,
            HoeffdingSampleSize(options.epsilon, options.delta / 2.0));
  EXPECT_NEAR(result.estimate, 0.5, options.epsilon);
}

TEST(AdaptiveSamplingTest, GuaranteeHoldsAcrossSeeds) {
  Dataset data = RandomSmallDataset(33, 8, 2, 3);
  TablePreferenceModel model;
  double truth = ExactSkylineProbability(data, 0, model).value();
  const double epsilon = 0.03;
  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    AdaptiveOptions options;
    options.epsilon = epsilon;
    options.delta = 0.05;
    options.seed = seed;
    AdaptiveResult result =
        AdaptiveMonteCarloSkylineProbability(data, 0, model, options).value();
    if (std::abs(result.estimate - truth) > epsilon) ++violations;
  }
  EXPECT_LE(violations, 3);  // expectation is <= 1.5 at delta = 0.05
}

TEST(AdaptiveSamplingTest, ExtremeProbabilitySavesSamples) {
  // Compare sample counts on a low-probability target vs a fair coin.
  Dataset low(1);
  low.Append({0}).CheckOK();
  low.Append({1}).CheckOK();
  TablePreferenceModel low_model;
  low_model.Set(0, 1, 0, 0.99, 0.01).CheckOK();  // sky(target) = 0.01

  Dataset fair(1);
  fair.Append({0}).CheckOK();
  fair.Append({1}).CheckOK();
  TablePreferenceModel fair_model;  // sky = 1/2

  AdaptiveOptions options;
  options.epsilon = 0.01;
  options.delta = 0.01;
  options.seed = 11;
  AdaptiveResult low_result =
      AdaptiveMonteCarloSkylineProbability(low, 0, low_model, options).value();
  AdaptiveResult fair_result =
      AdaptiveMonteCarloSkylineProbability(fair, 0, fair_model, options)
          .value();
  EXPECT_LT(low_result.samples, fair_result.samples / 2);
}

TEST(AdaptiveSamplingTest, CandidateSubsetOverload) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  std::vector<ObjectId> subset{2};  // Pr(e2) = 1/2 -> sky = 1/2
  AdaptiveOptions options;
  options.epsilon = 0.05;
  options.delta = 0.05;
  AdaptiveResult result =
      AdaptiveMonteCarloSkylineProbability(data, 0, subset, model, options)
          .value();
  EXPECT_NEAR(result.estimate, 0.5, 0.05);
}

TEST(AdaptiveSamplingTest, RejectsBadOptions) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  AdaptiveOptions bad;
  bad.epsilon = 0.0;
  EXPECT_EQ(AdaptiveMonteCarloSkylineProbability(data, 0, model, bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  bad.epsilon = 0.01;
  bad.delta = 1.0;
  EXPECT_EQ(AdaptiveMonteCarloSkylineProbability(data, 0, model, bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  bad.delta = 0.01;
  bad.initial_batch = 0;
  EXPECT_EQ(AdaptiveMonteCarloSkylineProbability(data, 0, model, bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace skypref
