#include "src/core/topk_race.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;

/// True top-k object set by exact skyline probabilities (ties broken by
/// id, like the race's stable sort).
std::vector<ObjectId> ExactTopK(const Dataset& data,
                                const PreferenceModel& model, std::size_t k) {
  std::vector<std::pair<double, ObjectId>> ranked;
  for (ObjectId i = 0; i < data.size(); ++i) {
    ranked.emplace_back(ExactSkylineProbability(data, i, model).value(), i);
  }
  std::stable_sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < k; ++i) ids.push_back(ranked[i].second);
  return ids;
}

TEST(TopKRaceTest, FindsTheSeparatedWinnerOnExample1) {
  // Exact values: [3/16, 3/16, 3/16, 7/16, 3/16] — Q3 is the clear
  // winner, the rest is a four-way tie. k=1 must resolve to Q3; k=2 must
  // contain Q3, while the second slot is an unresolvable tie (so the race
  // must NOT claim it resolved the set).
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  TopKRaceOptions options;
  options.seed = 3;
  TopKRaceResult one = TopKSkylineRace(data, model, 1, options).value();
  ASSERT_EQ(one.topk.size(), 1u);
  EXPECT_EQ(one.topk[0], 3u);
  EXPECT_TRUE(one.resolved);

  TopKRaceResult two = TopKSkylineRace(data, model, 2, options).value();
  ASSERT_EQ(two.topk.size(), 2u);
  EXPECT_NE(std::find(two.topk.begin(), two.topk.end(), 3u), two.topk.end());
  EXPECT_FALSE(two.resolved);
}

TEST(TopKRaceTest, MatchesExactTopKOnRandomInstances) {
  for (std::uint64_t seed = 501; seed < 509; ++seed) {
    Dataset data = RandomSmallDataset(seed, 9, 2, 4);
    TablePreferenceModel model;
    TopKRaceOptions options;
    options.seed = seed;
    options.epsilon_floor = 0.01;
    for (std::size_t k : {1u, 3u}) {
      TopKRaceResult result = TopKSkylineRace(data, model, k, options).value();
      ASSERT_EQ(result.topk.size(), k) << "seed=" << seed;
      if (!result.resolved) continue;  // ties within the floor may flip
      std::vector<ObjectId> truth = ExactTopK(data, model, k);
      EXPECT_EQ(std::set<ObjectId>(result.topk.begin(), result.topk.end()),
                std::set<ObjectId>(truth.begin(), truth.end()))
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(TopKRaceTest, KEqualsNReturnsEverything) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  TopKRaceResult result = TopKSkylineRace(data, model, 5).value();
  EXPECT_EQ(result.topk.size(), 5u);
  EXPECT_TRUE(result.resolved);
}

TEST(TopKRaceTest, SettledObjectsStopCostingEvaluations) {
  // With a clear separation the race settles most objects early; total
  // evaluations must be well below worlds * n.
  Dataset data = RandomSmallDataset(77, 20, 2, 6);
  TablePreferenceModel model;
  TopKRaceOptions options;
  options.seed = 9;
  TopKRaceResult result = TopKSkylineRace(data, model, 3, options).value();
  EXPECT_GT(result.worlds, 0u);
  EXPECT_LT(result.evaluations,
            result.worlds * data.size());
}

TEST(TopKRaceTest, EstimatesTrackExactValues) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  TopKRaceOptions options;
  options.seed = 21;
  options.epsilon_floor = 0.02;
  TopKRaceResult result = TopKSkylineRace(data, model, 1, options).value();
  // The winner's estimate must be near its true probability.
  ObjectId winner = result.topk[0];
  double truth = ExactSkylineProbability(data, winner, model).value();
  EXPECT_NEAR(result.estimates[winner], truth, 0.05);
}

TEST(TopKRaceTest, RejectsBadArguments) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_EQ(TopKSkylineRace(data, model, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TopKSkylineRace(data, model, 6).status().code(),
            StatusCode::kInvalidArgument);
  TopKRaceOptions bad;
  bad.delta = 0.0;
  EXPECT_EQ(TopKSkylineRace(data, model, 1, bad).status().code(),
            StatusCode::kInvalidArgument);
  bad.delta = 0.01;
  bad.batch = 0;
  EXPECT_EQ(TopKSkylineRace(data, model, 1, bad).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace skypref
