#include "src/core/sam_bitslice.h"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/adaptive_sampling.h"
#include "src/core/monte_carlo.h"
#include "src/core/sam_parallel.h"
#include "src/core/solver.h"
#include "src/util/failpoint.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::Figure1Dataset;
using skypref::testing::RandomSmallDataset;
using skypref::testing::UnanimousHalfRational;

// The thread counts every determinism contract in this repo is pinned
// against (0 = inline execution on the calling thread).
const std::size_t kThreadCounts[] = {0, 1, 2, 8};

TEST(BitSlicedSamTest, BitIdenticalAcrossThreadCounts) {
  Dataset data = RandomSmallDataset(17, 24, 3, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 5000;
  options.block_size = 256;
  options.seed = 99;

  ThreadPool baseline_pool(0);
  auto baseline = BitSlicedMonteCarloSkylineProbability(data, 0, model,
                                                        baseline_pool, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_EQ(baseline->samples, 5000u);
  EXPECT_FALSE(baseline->truncated);

  for (std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    auto run =
        BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, options);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->skyline_worlds, baseline->skyline_worlds)
        << "threads=" << threads;
    EXPECT_EQ(run->samples, baseline->samples) << "threads=" << threads;
    EXPECT_EQ(run->pair_draws, baseline->pair_draws) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(run->estimate, baseline->estimate)
        << "threads=" << threads;
  }
}

TEST(BitSlicedSamTest, RejectsBlockSizeNotAMultipleOf64) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  ThreadPool pool(0);
  for (std::uint64_t block_size : {std::uint64_t{0}, std::uint64_t{100},
                                   std::uint64_t{63}}) {
    MonteCarloOptions options;
    options.samples = 128;
    options.block_size = block_size;
    EXPECT_EQ(
        BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, options)
            .status()
            .code(),
        StatusCode::kInvalidArgument)
        << "block_size=" << block_size;
  }
}

TEST(BitSlicedSamTest, PartialTrailingChunkCountsOnlyValidLanes) {
  Dataset data = RandomSmallDataset(17, 24, 3, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 1000;  // 3 full blocks of 256 plus 232 = 3 chunks + 40
  options.block_size = 256;
  ThreadPool pool(2);
  auto run =
      BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->samples, 1000u);
  EXPECT_FALSE(run->truncated);
  EXPECT_LE(run->skyline_worlds, 1000u);
}

TEST(BitSlicedSamTest, ConvergesToExample1Truth) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 200000;
  options.seed = 34;
  ThreadPool pool(2);
  auto result =
      BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 3.0 / 16.0, 0.005);
  // NOT the independent baseline's 9/64: mask memoization shares value-
  // pair outcomes across candidates within every world of a chunk.
  EXPECT_GT(result->estimate, 0.17);
}

TEST(BitSlicedSamTest, CertainPreferencesGiveExactAnswerEveryWorld) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  TablePreferenceModel model;
  model.Set(0, 1, 0, 1.0, 0.0).CheckOK();
  model.Set(1, 1, 0, 1.0, 0.0).CheckOK();
  MonteCarloOptions options;
  options.samples = 100;
  ThreadPool pool(2);
  // The p = 1 sentinel must produce the all-ones mask and p = 0 the zero
  // mask on every chunk — certain preferences may not leak wrong lanes.
  auto dominated =
      BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, options);
  ASSERT_TRUE(dominated.ok());
  EXPECT_DOUBLE_EQ(dominated->estimate, 0.0);
  auto dominator =
      BitSlicedMonteCarloSkylineProbability(data, 1, model, pool, options);
  ASSERT_TRUE(dominator.ok());
  EXPECT_DOUBLE_EQ(dominator->estimate, 1.0);
}

TEST(BitSlicedSamTest, RationalRefereeHoeffdingBoundHoldsAcrossSeeds) {
  // The rational-referee check: unanimous-1/2 preferences admit a
  // bit-exact rational truth, so the engine's estimates can be judged
  // against the real answer, not another sampler. Each run certifies
  // |estimate - truth| < epsilon with probability 0.99; over 40 seeds,
  // more than 2 violations would be a broken sampler, not bad luck.
  Dataset data = RandomSmallDataset(10, 8, 2, 3);
  RationalPreferenceModel model = UnanimousHalfRational(data);
  auto truth = ExactSkylineProbabilityRational(data, 0, model);
  ASSERT_TRUE(truth.ok()) << truth.status();
  const double epsilon = 0.05;
  int violations = 0;
  ThreadPool pool(2);
  for (int seed = 0; seed < 40; ++seed) {
    MonteCarloOptions options;
    options.epsilon = epsilon;
    options.delta = 0.01;
    options.seed = static_cast<std::uint64_t>(seed) + 1;
    auto result =
        BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, options);
    ASSERT_TRUE(result.ok());
    if (std::abs(result->estimate - truth->ToDouble()) >= epsilon) {
      ++violations;
    }
  }
  EXPECT_LE(violations, 2);
}

TEST(BitSlicedSamTest, EagerModeEstimatesTheSameProbability) {
  // lazy = false draws every pair mask per chunk (a different, equally
  // valid stream); both modes must agree within their summed error bars.
  Dataset data = RandomSmallDataset(17, 24, 3, 4);
  TablePreferenceModel model;
  MonteCarloOptions lazy;
  lazy.samples = 50000;
  MonteCarloOptions eager = lazy;
  eager.lazy = false;
  ThreadPool pool(2);
  auto a = BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, lazy);
  auto b = BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, eager);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->estimate, b->estimate, 2.0 * HoeffdingEpsilon(50000, 0.01));
  // Eager materializes every mask; lazy must never draw more.
  EXPECT_LE(a->pair_draws, b->pair_draws);
}

TEST(BitSlicedSamTest, PreExpiredDeadlineTruncatesIdenticallyPerThreadCount) {
  Dataset data = RandomSmallDataset(31, 10, 2, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 10000;
  options.block_size = 512;
  options.deadline = Deadline::At(Deadline::Clock::now() -
                                  std::chrono::seconds(1));

  ThreadPool baseline_pool(0);
  auto baseline = BitSlicedMonteCarloSkylineProbability(data, 0, model,
                                                        baseline_pool, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_TRUE(baseline->truncated);
  // Block 0 polls after its first 64-world chunk and keeps the partial
  // prefix: a pre-expired deadline still yields exactly one chunk — the
  // same min(64, samples) floor as the scalar engines.
  EXPECT_EQ(baseline->samples, 64u);
  EXPECT_EQ(baseline->requested_samples, 10000u);

  for (std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    auto run =
        BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, options);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_TRUE(run->truncated) << "threads=" << threads;
    EXPECT_EQ(run->samples, baseline->samples) << "threads=" << threads;
    EXPECT_EQ(run->skyline_worlds, baseline->skyline_worlds)
        << "threads=" << threads;
    EXPECT_EQ(run->pair_draws, baseline->pair_draws) << "threads=" << threads;
  }
}

TEST(BitSlicedSamTest, PreCancelledTokenReturnsCancelled) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  CancelToken token;
  token.RequestCancel();
  MonteCarloOptions options;
  options.samples = 200;
  options.cancel = &token;
  ThreadPool pool(2);
  EXPECT_EQ(
      BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, options)
          .status()
          .code(),
      StatusCode::kCancelled);
}

#if defined(SKYPREF_FAILPOINTS) && SKYPREF_FAILPOINTS

TEST(BitSlicedSamTest, FailpointPoisonsTheSameBlockAtEveryThreadCount) {
  Dataset data = RandomSmallDataset(17, 24, 3, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 4096;
  options.block_size = 512;  // 8 blocks
  options.seed = 3;

  // Arming "fire on hit k" poisons block k through the same serial
  // pre-dispatch scan as the scalar block engine: the counted prefix is
  // blocks [0, k) — 512 k worlds — regardless of the pool.
  for (std::uint64_t fire_on_hit : {std::uint64_t{1}, std::uint64_t{3}}) {
    std::vector<MonteCarloResult> runs;
    for (std::size_t threads : kThreadCounts) {
      failpoint::ScopedFailpoint armed("sampler.block", fire_on_hit);
      ThreadPool pool(threads);
      auto run =
          BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, options);
      ASSERT_TRUE(run.ok()) << run.status();
      runs.push_back(*run);
    }
    for (const MonteCarloResult& run : runs) {
      EXPECT_TRUE(run.truncated);
      EXPECT_EQ(run.samples, 512u * fire_on_hit);
      EXPECT_EQ(run.skyline_worlds, runs.front().skyline_worlds);
      EXPECT_EQ(run.pair_draws, runs.front().pair_draws);
    }
  }
}

#endif  // SKYPREF_FAILPOINTS

TEST(BitSlicedBatchTest, BitIdenticalAcrossThreadCounts) {
  Dataset data = RandomSmallDataset(23, 20, 3, 4);
  TablePreferenceModel model;
  SolverOptions options;
  options.monte_carlo.engine = MonteCarloOptions::Engine::kBitSliced;
  options.monte_carlo.samples = 3008;  // 47 chunks: exercises 5+ blocks
  options.monte_carlo.block_size = 512;
  options.monte_carlo.seed = 77;

  ThreadPool baseline_pool(0);
  BatchSamStats baseline_stats;
  auto baseline = BatchMonteCarloSkylineProbabilities(
      data, model, baseline_pool, options, &baseline_stats);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_EQ(baseline->size(), data.size());
  EXPECT_EQ(baseline_stats.samples, 3008u);
  EXPECT_FALSE(baseline_stats.truncated);

  for (std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    BatchSamStats stats;
    auto run = BatchMonteCarloSkylineProbabilities(data, model, pool, options,
                                                   &stats);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(*run, *baseline) << "threads=" << threads;
    EXPECT_EQ(stats.pair_draws, baseline_stats.pair_draws)
        << "threads=" << threads;
    EXPECT_EQ(stats.samples, baseline_stats.samples) << "threads=" << threads;
  }
}

TEST(BitSlicedBatchTest, EngineEnumDispatchEqualsDirectCall) {
  Dataset data = RandomSmallDataset(11, 12, 2, 4);
  TablePreferenceModel model;
  SolverOptions options;
  options.monte_carlo.samples = 2048;
  options.monte_carlo.block_size = 512;
  ThreadPool pool(2);
  auto direct =
      BitSlicedBatchMonteCarloSkylineProbabilities(data, model, pool, options);
  options.monte_carlo.engine = MonteCarloOptions::Engine::kBitSliced;
  auto dispatched =
      BatchMonteCarloSkylineProbabilities(data, model, pool, options);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_TRUE(dispatched.ok()) << dispatched.status();
  EXPECT_EQ(*direct, *dispatched);
}

TEST(BitSlicedBatchTest, AgreesWithScalarBatchWithinSummedBars) {
  Dataset data = RandomSmallDataset(41, 16, 2, 5);
  TablePreferenceModel model;
  SolverOptions scalar;
  scalar.monte_carlo.samples = 4096;
  scalar.monte_carlo.seed = 8;
  SolverOptions sliced = scalar;
  sliced.monte_carlo.engine = MonteCarloOptions::Engine::kBitSliced;
  ThreadPool pool(2);

  auto a = BatchMonteCarloSkylineProbabilities(data, model, pool, scalar);
  auto b = BatchMonteCarloSkylineProbabilities(data, model, pool, sliced);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  const double bar = 2.0 * HoeffdingEpsilon(4096, 0.01);
  for (ObjectId t = 0; t < data.size(); ++t) {
    EXPECT_NEAR((*a)[t], (*b)[t], bar) << "target=" << t;
  }
}

TEST(SolverEngineTest, BitSlicedEngineThroughSolverMatchesDirectCall) {
  Dataset data = RandomSmallDataset(13, 14, 2, 4);
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model);
  ASSERT_TRUE(solver.ok());
  SolverOptions options;
  options.monte_carlo.engine = MonteCarloOptions::Engine::kBitSliced;
  options.monte_carlo.samples = 2048;
  ThreadPool pool(2);
  // Poolless overload runs the bit-sliced engine inline; both must agree
  // bit for bit (the engine's thread-count contract, surfaced through
  // the facade).
  auto inline_run = solver->MonteCarlo(0, options);
  auto pooled_run = solver->MonteCarlo(0, options, pool);
  ASSERT_TRUE(inline_run.ok()) << inline_run.status();
  ASSERT_TRUE(pooled_run.ok()) << pooled_run.status();
  EXPECT_DOUBLE_EQ(*inline_run, *pooled_run);
}

TEST(AdaptiveBitSlicedTest, BatchesAreRoundedToWholeChunks) {
  Dataset data = RandomSmallDataset(19, 18, 2, 5);
  TablePreferenceModel model;
  AdaptiveOptions options;
  options.epsilon = 0.05;
  options.delta = 0.05;
  options.initial_batch = 100;  // deliberately not a multiple of 64
  options.engine = MonteCarloOptions::Engine::kBitSliced;
  ThreadPool pool(2);
  auto run =
      AdaptiveMonteCarloSkylineProbability(data, 0, model, pool, options);
  ASSERT_TRUE(run.ok()) << run.status();
  // Every checkpoint batch is rounded up to whole 64-world mask words, so
  // the total is one too — the engine never ran a partial-word remainder.
  EXPECT_EQ(run->samples % 64, 0u);
  EXPECT_GT(run->samples, 0u);
  EXPECT_LE(run->radius, options.epsilon);

  // The kBlock default is untouched by the rounding (regression guard).
  AdaptiveOptions scalar = options;
  scalar.engine = MonteCarloOptions::Engine::kBlock;
  auto block_run =
      AdaptiveMonteCarloSkylineProbability(data, 0, model, pool, scalar);
  ASSERT_TRUE(block_run.ok()) << block_run.status();
  EXPECT_LE(block_run->radius, options.epsilon);
}

}  // namespace
}  // namespace skypref
