#include "src/core/dominance.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::Figure1Dataset;
using skypref::testing::UnanimousHalfRational;

TEST(DominanceTest, Figure1PaperValues) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;  // defaults to unanimous 1/2
  // Pr(P2 < P1) = 1/2 (differ on one dimension).
  EXPECT_DOUBLE_EQ(DominanceProbability(data, 1, 0, model), 0.5);
  // Pr(P3 < P1) = 1/4 (differ on both dimensions).
  EXPECT_DOUBLE_EQ(DominanceProbability(data, 2, 0, model), 0.25);
}

TEST(DominanceTest, Example1PaperValues) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_DOUBLE_EQ(DominanceProbability(data, 1, 0, model), 0.25);  // e1
  EXPECT_DOUBLE_EQ(DominanceProbability(data, 2, 0, model), 0.5);   // e2
  EXPECT_DOUBLE_EQ(DominanceProbability(data, 3, 0, model), 0.25);  // e3
  EXPECT_DOUBLE_EQ(DominanceProbability(data, 4, 0, model), 0.5);   // e4
}

TEST(DominanceTest, SharedDimensionContributesFactorOne) {
  Dataset data(3);
  data.Append({0, 0, 0}).CheckOK();
  data.Append({1, 0, 0}).CheckOK();  // differs only on dim 0
  TablePreferenceModel model;
  model.Set(0, 1, 0, 0.8, 0.2).CheckOK();
  EXPECT_DOUBLE_EQ(DominanceProbability(data, 1, 0, model), 0.8);
}

TEST(DominanceTest, FactorsMultiplyAcrossDimensions) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  TablePreferenceModel model;
  model.Set(0, 1, 0, 0.5, 0.5).CheckOK();
  model.Set(1, 1, 0, 0.3, 0.7).CheckOK();
  EXPECT_DOUBLE_EQ(DominanceProbability(data, 1, 0, model), 0.15);
}

TEST(DominanceTest, IncomparabilityLowersDominance) {
  Dataset data(1);
  data.Append({0}).CheckOK();
  data.Append({1}).CheckOK();
  TablePreferenceModel model;
  model.Set(0, 1, 0, 0.3, 0.3).CheckOK();  // 0.4 incomparable
  EXPECT_DOUBLE_EQ(DominanceProbability(data, 1, 0, model), 0.3);
  EXPECT_DOUBLE_EQ(DominanceProbability(data, 0, 1, model), 0.3);
}

TEST(DominanceTest, ZeroFactorShortCircuits) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  TablePreferenceModel model;
  model.Set(0, 1, 0, 0.0, 1.0).CheckOK();  // target always wins dim 0
  EXPECT_DOUBLE_EQ(DominanceProbability(data, 1, 0, model), 0.0);
}

TEST(DominanceTest, RationalOracleMatchesDoubleOracle) {
  Dataset data = Example1Dataset();
  RationalPreferenceModel model = UnanimousHalfRational(data);
  for (ObjectId i = 1; i < data.size(); ++i) {
    Rational exact =
        DominanceProbability(data, i, 0, RationalOracle(model));
    double approx = DominanceProbability(data, i, 0, model);
    EXPECT_DOUBLE_EQ(exact.ToDouble(), approx);
  }
}

TEST(DominanceTest, CertainPreferencesGiveZeroOrOne) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  HashedPreferenceModel model(3,
                              HashedPreferenceModel::Style::kCertainOrder);
  double p = DominanceProbability(data, 1, 0, model);
  EXPECT_TRUE(p == 0.0 || p == 1.0);
}

}  // namespace
}  // namespace skypref
