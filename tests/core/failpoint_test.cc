/// Deterministic fault injection (src/util/failpoint.h): the facility
/// itself, and every armed site forcing its engine down the intended
/// degradation path — exact DFS, sampler loop, parallel task, batch
/// target dispatch, thread-pool serial fallback. Site-driven tests skip
/// in builds without SKYPREF_FAILPOINTS (the release presets); the
/// sanitizer presets compile the sites in and run the full file under
/// the `failpoint` ctest label.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/core/parallel.h"
#include "src/core/resilient.h"
#include "src/core/solver.h"
#include "src/util/failpoint.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::RandomSmallDataset;

#if defined(SKYPREF_FAILPOINTS) && SKYPREF_FAILPOINTS
constexpr bool kFailpointsCompiledIn = true;
#else
constexpr bool kFailpointsCompiledIn = false;
#endif

#define SKYPREF_REQUIRE_FAILPOINTS()                                \
  do {                                                              \
    if (!kFailpointsCompiledIn) {                                   \
      GTEST_SKIP() << "built without SKYPREF_FAILPOINTS";           \
    }                                                               \
  } while (false)

class FailpointTest : public ::testing::Test {
 protected:
  // Belt and braces: no test may leak an armed site into the next one.
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, FacilityFiresOnTheNthHitExactlyOnce) {
  failpoint::Arm("test.site", 3);
  EXPECT_FALSE(failpoint::Hit("test.site"));
  EXPECT_FALSE(failpoint::Hit("test.site"));
  EXPECT_TRUE(failpoint::Hit("test.site"));   // the armed 3rd hit
  EXPECT_FALSE(failpoint::Hit("test.site"));  // fires exactly once
  EXPECT_EQ(failpoint::HitCount("test.site"), 4u);
  failpoint::Disarm("test.site");
  EXPECT_FALSE(failpoint::Hit("test.site"));
  EXPECT_EQ(failpoint::HitCount("test.site"), 0u);
}

TEST_F(FailpointTest, UnarmedSitesPassThrough) {
  EXPECT_FALSE(failpoint::Hit("never.armed"));
  EXPECT_EQ(failpoint::HitCount("never.armed"), 0u);
}

TEST_F(FailpointTest, RearmingRestartsTheCountdown) {
  failpoint::Arm("test.rearm", 2);
  EXPECT_FALSE(failpoint::Hit("test.rearm"));
  failpoint::Arm("test.rearm", 2);  // restart
  EXPECT_FALSE(failpoint::Hit("test.rearm"));
  EXPECT_TRUE(failpoint::Hit("test.rearm"));
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    failpoint::ScopedFailpoint armed("test.scoped");
    EXPECT_TRUE(failpoint::Hit("test.scoped"));
  }
  EXPECT_FALSE(failpoint::Hit("test.scoped"));
}

TEST_F(FailpointTest, ExactDfsSiteForcesResourceExhaustedInBothEngines) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(31, 10, 2, 4);
  TablePreferenceModel model;
  for (auto engine :
       {ExactOptions::Engine::kFlat, ExactOptions::Engine::kLookup}) {
    ExactOptions options;
    options.engine = engine;
    {
      failpoint::ScopedFailpoint armed("exact.dfs");
      auto run = ExactSkylineProbability(data, 0, model, options);
      EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
      EXPECT_NE(run.status().message().find("failpoint"), std::string::npos);
    }
    // Disarmed, the same solve succeeds.
    EXPECT_TRUE(ExactSkylineProbability(data, 0, model, options).ok());
  }
}

TEST_F(FailpointTest, SamplerSiteTruncatesAtThePollBoundary) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(31, 10, 2, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 1000;
  failpoint::ScopedFailpoint armed("sampler.world");
  auto run = MonteCarloSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->truncated);
  EXPECT_EQ(run->samples, 64u);  // first deadline poll, every 64 worlds
  EXPECT_EQ(run->requested_samples, 1000u);
  EXPECT_GE(run->estimate, 0.0);
  EXPECT_LE(run->estimate, 1.0);
}

TEST_F(FailpointTest, ParallelTaskSiteAbortsTheQueryAtEveryThreadCount) {
  SKYPREF_REQUIRE_FAILPOINTS();
  // The "parallel.task" site lives in the intra-group task engine, which
  // engages only for groups of >= min_split_candidates (16): one
  // 18-candidate group connected through the shared dim-0 value.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  for (std::size_t i = 0; i < 18; ++i) {
    data.Append({1, static_cast<ValueId>(i + 1)}).CheckOK();
  }
  TablePreferenceModel model;
  for (std::size_t threads : {0u, 1u, 2u, 8u}) {
    ThreadPool pool(threads);
    failpoint::ScopedFailpoint armed("parallel.task");
    auto run = ParallelExactSkylineProbability(data, 0, model, pool);
    // Whichever task absorbs the hit, the query-level outcome is the
    // same at every thread count.
    EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
        << "threads " << threads;
  }
}

TEST_F(FailpointTest, BatchTargetSiteFailsExactlyOneTargetAndSalvagesTheRest) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(73, 12, 2, 4);
  TablePreferenceModel model;
  ThreadPool pool(2);
  auto clean = BatchExactSkylineProbabilities(data, model, pool);
  ASSERT_TRUE(clean.ok());

  failpoint::ScopedFailpoint armed("batch.target");
  BatchExactStats stats;
  auto run = BatchExactSkylineProbabilities(data, model, pool, {}, &stats);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(stats.failed_targets, 1u);
  std::size_t failed = 0;
  for (ObjectId t = 0; t < data.size(); ++t) {
    if (stats.target_status[t].ok()) {
      // Surviving targets keep their bit-identical exact values.
      EXPECT_EQ((*run)[t], (*clean)[t]) << "target " << t;
    } else {
      ++failed;
      EXPECT_EQ(stats.target_status[t].code(),
                StatusCode::kResourceExhausted);
      EXPECT_TRUE(std::isnan((*run)[t]));
    }
  }
  EXPECT_EQ(failed, 1u);
}

TEST_F(FailpointTest, DegradedThreadPoolRunsInlineWithIdenticalResults) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(61, 14, 3, 4);
  TablePreferenceModel model;
  ThreadPool pool(4);
  auto clean = BatchExactSkylineProbabilities(data, model, pool);
  ASSERT_TRUE(clean.ok());
  failpoint::ScopedFailpoint armed("threadpool.serial");
  auto degraded = BatchExactSkylineProbabilities(data, model, pool);
  ASSERT_TRUE(degraded.ok());
  // The determinism contract: a dispatch forced inline on the caller
  // changes nothing about the results.
  EXPECT_EQ(*clean, *degraded);
}

TEST_F(FailpointTest, ResilientLadderDegradesExactlyTheInjectedGroup) {
  SKYPREF_REQUIRE_FAILPOINTS();
  // Target (0,0); one 10-candidate blob connected through dim-0 value 1,
  // plus two singleton groups. Serial pool: the exact rung runs
  // longest-first, so the armed first DFS visit lands in the blob.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  for (std::size_t i = 0; i < 10; ++i) {
    data.Append({1, static_cast<ValueId>(i + 1)}).CheckOK();
  }
  data.Append({100, 100}).CheckOK();
  data.Append({101, 101}).CheckOK();
  TablePreferenceModel model;
  ResilientOptions options;
  options.solver.monte_carlo.samples = 200;
  failpoint::ScopedFailpoint armed("exact.dfs");
  auto run = ResilientSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FALSE(run->fully_exact);
  std::size_t sampled = 0;
  for (const GroupReport& g : run->groups) {
    if (g.quality == GroupQuality::kSampled) {
      ++sampled;
      EXPECT_EQ(g.size, 10u);
      EXPECT_NE(g.exact_status.message().find("failpoint"),
                std::string::npos);
    } else {
      EXPECT_EQ(g.quality, GroupQuality::kExact);
    }
  }
  EXPECT_EQ(sampled, 1u);
  EXPECT_GE(run->estimate, 0.0);
  EXPECT_LE(run->estimate, 1.0);
}

}  // namespace
}  // namespace skypref
