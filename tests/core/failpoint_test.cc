/// Deterministic fault injection (src/util/failpoint.h): the facility
/// itself, and every armed site forcing its engine down the intended
/// degradation path — exact DFS, sampler loop, parallel task, batch
/// target dispatch (plus its retry salvage pass), allocation failure,
/// delay and spurious-wake schedules, seeded chaos reproducibility, and
/// the arm-under-fire atomicity contract. Site-driven tests skip in
/// builds without SKYPREF_FAILPOINTS (the release presets); the
/// sanitizer presets compile the sites in and run the full file under
/// the `failpoint` ctest label.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/resilient.h"
#include "src/core/solver.h"
#include "src/util/failpoint.h"
#include "src/util/thread_pool.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::RandomSmallDataset;

#if defined(SKYPREF_FAILPOINTS) && SKYPREF_FAILPOINTS
constexpr bool kFailpointsCompiledIn = true;
#else
constexpr bool kFailpointsCompiledIn = false;
#endif

#define SKYPREF_REQUIRE_FAILPOINTS()                                \
  do {                                                              \
    if (!kFailpointsCompiledIn) {                                   \
      GTEST_SKIP() << "built without SKYPREF_FAILPOINTS";           \
    }                                                               \
  } while (false)

class FailpointTest : public ::testing::Test {
 protected:
  // Belt and braces: no test may leak an armed site into the next one.
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, FacilityFiresOnTheNthHitExactlyOnce) {
  failpoint::Arm("test.site", 3);
  EXPECT_FALSE(failpoint::Hit("test.site"));
  EXPECT_FALSE(failpoint::Hit("test.site"));
  EXPECT_TRUE(failpoint::Hit("test.site"));   // the armed 3rd hit
  EXPECT_FALSE(failpoint::Hit("test.site"));  // fires exactly once
  EXPECT_EQ(failpoint::HitCount("test.site"), 4u);
  failpoint::Disarm("test.site");
  EXPECT_FALSE(failpoint::Hit("test.site"));
  EXPECT_EQ(failpoint::HitCount("test.site"), 0u);
}

TEST_F(FailpointTest, UnarmedSitesPassThrough) {
  EXPECT_FALSE(failpoint::Hit("never.armed"));
  EXPECT_EQ(failpoint::HitCount("never.armed"), 0u);
}

TEST_F(FailpointTest, RearmingRestartsTheCountdown) {
  failpoint::Arm("test.rearm", 2);
  EXPECT_FALSE(failpoint::Hit("test.rearm"));
  failpoint::Arm("test.rearm", 2);  // restart
  EXPECT_FALSE(failpoint::Hit("test.rearm"));
  EXPECT_TRUE(failpoint::Hit("test.rearm"));
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    failpoint::ScopedFailpoint armed("test.scoped");
    EXPECT_TRUE(failpoint::Hit("test.scoped"));
  }
  EXPECT_FALSE(failpoint::Hit("test.scoped"));
}

TEST_F(FailpointTest, ExactDfsSiteForcesResourceExhaustedInBothEngines) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(31, 10, 2, 4);
  TablePreferenceModel model;
  for (auto engine :
       {ExactOptions::Engine::kFlat, ExactOptions::Engine::kLookup}) {
    ExactOptions options;
    options.engine = engine;
    {
      failpoint::ScopedFailpoint armed("exact.dfs");
      auto run = ExactSkylineProbability(data, 0, model, options);
      EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
      EXPECT_NE(run.status().message().find("failpoint"), std::string::npos);
    }
    // Disarmed, the same solve succeeds.
    EXPECT_TRUE(ExactSkylineProbability(data, 0, model, options).ok());
  }
}

TEST_F(FailpointTest, SamplerSiteTruncatesAtThePollBoundary) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(31, 10, 2, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 1000;
  failpoint::ScopedFailpoint armed("sampler.world");
  auto run = MonteCarloSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->truncated);
  EXPECT_EQ(run->samples, 64u);  // first deadline poll, every 64 worlds
  EXPECT_EQ(run->requested_samples, 1000u);
  EXPECT_GE(run->estimate, 0.0);
  EXPECT_LE(run->estimate, 1.0);
}

TEST_F(FailpointTest, ParallelTaskSiteAbortsTheQueryAtEveryThreadCount) {
  SKYPREF_REQUIRE_FAILPOINTS();
  // The "parallel.task" site lives in the intra-group task engine, which
  // engages only for groups of >= min_split_candidates (16): one
  // 18-candidate group connected through the shared dim-0 value.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  for (std::size_t i = 0; i < 18; ++i) {
    data.Append({1, static_cast<ValueId>(i + 1)}).CheckOK();
  }
  TablePreferenceModel model;
  for (std::size_t threads : {0u, 1u, 2u, 8u}) {
    ThreadPool pool(threads);
    failpoint::ScopedFailpoint armed("parallel.task");
    auto run = ParallelExactSkylineProbability(data, 0, model, pool);
    // Whichever task absorbs the hit, the query-level outcome is the
    // same at every thread count.
    EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
        << "threads " << threads;
  }
}

TEST_F(FailpointTest, BatchTargetSiteCasualtyIsSalvagedByTheRetryPass) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(73, 12, 2, 4);
  TablePreferenceModel model;
  ThreadPool pool(2);
  auto clean = BatchExactSkylineProbabilities(data, model, pool);
  ASSERT_TRUE(clean.ok());

  // A single injected scheduler fault is transient: the default retry
  // pass re-dispatches the casualty once, and the salvaged value is
  // bit-identical to the fault-free run.
  failpoint::ScopedFailpoint armed("batch.target");
  BatchExactStats stats;
  auto run = BatchExactSkylineProbabilities(data, model, pool, {}, &stats);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(stats.failed_targets, 0u);
  EXPECT_EQ(stats.retried_targets, 1u);
  EXPECT_EQ(stats.salvaged_targets, 1u);
  EXPECT_EQ(*run, *clean);
  for (ObjectId t = 0; t < data.size(); ++t) {
    EXPECT_TRUE(stats.target_status[t].ok()) << "target " << t;
  }
}

TEST_F(FailpointTest, BatchTargetSiteWithRetryDisabledFailsExactlyOneTarget) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(73, 12, 2, 4);
  TablePreferenceModel model;
  ThreadPool pool(2);
  auto clean = BatchExactSkylineProbabilities(data, model, pool);
  ASSERT_TRUE(clean.ok());

  SolverOptions options;
  options.retry_failed_targets = false;
  failpoint::ScopedFailpoint armed("batch.target");
  BatchExactStats stats;
  auto run =
      BatchExactSkylineProbabilities(data, model, pool, options, &stats);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(stats.failed_targets, 1u);
  EXPECT_EQ(stats.retried_targets, 0u);
  EXPECT_EQ(stats.salvaged_targets, 0u);
  std::size_t failed = 0;
  for (ObjectId t = 0; t < data.size(); ++t) {
    if (stats.target_status[t].ok()) {
      // Surviving targets keep their bit-identical exact values.
      EXPECT_EQ((*run)[t], (*clean)[t]) << "target " << t;
    } else {
      ++failed;
      EXPECT_EQ(stats.target_status[t].code(),
                StatusCode::kResourceExhausted);
      EXPECT_TRUE(std::isnan((*run)[t]));
    }
  }
  EXPECT_EQ(failed, 1u);
}

TEST_F(FailpointTest, BatchRetrySiteDoubleFaultStampsNaNWithRetryStatus) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(73, 12, 2, 4);
  TablePreferenceModel model;
  ThreadPool pool(2);
  // First fault kills one target's dispatch; the second kills its one
  // salvage attempt. The slot must end as NaN plus the RETRY failure —
  // never a stale or fabricated value.
  failpoint::ScopedFailpoint primary("batch.target");
  failpoint::ScopedFailpoint secondary("batch.retry");
  BatchExactStats stats;
  auto run = BatchExactSkylineProbabilities(data, model, pool, {}, &stats);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(stats.failed_targets, 1u);
  EXPECT_EQ(stats.retried_targets, 1u);
  EXPECT_EQ(stats.salvaged_targets, 0u);
  std::size_t failed = 0;
  for (ObjectId t = 0; t < data.size(); ++t) {
    if (stats.target_status[t].ok()) continue;
    ++failed;
    EXPECT_EQ(stats.target_status[t].code(), StatusCode::kResourceExhausted);
    EXPECT_NE(stats.target_status[t].message().find("batch.retry"),
              std::string::npos);
    EXPECT_TRUE(std::isnan((*run)[t]));
  }
  EXPECT_EQ(failed, 1u);
}

TEST_F(FailpointTest, AllocSiteFailsTheFlatExactDispatch) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(31, 10, 2, 4);
  TablePreferenceModel model;
  failpoint::Schedule alloc_once;
  alloc_once.kind = failpoint::FaultKind::kAllocFail;
  {
    failpoint::ScopedFailpoint armed("alloc.exact.flat_instance", alloc_once);
    auto run = ExactSkylineProbability(data, 0, model);
    EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(run.status().message().find("allocation failed"),
              std::string::npos);
  }
  // Disarmed, the same solve succeeds.
  EXPECT_TRUE(ExactSkylineProbability(data, 0, model).ok());
}

TEST_F(FailpointTest, AllocFailureDegradesThroughTheResilientLadder) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(47, 12, 2, 4);
  TablePreferenceModel model;
  ResilientOptions options;
  options.solver.monte_carlo.samples = 200;
  failpoint::Schedule alloc_once;
  alloc_once.kind = failpoint::FaultKind::kAllocFail;
  failpoint::ScopedFailpoint armed("alloc.exact.flat_instance", alloc_once);
  auto run = ResilientSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(run.ok()) << run.status();
  // Exactly one group's flat-instance build failed (kSingle fires once);
  // the ladder sampled that group instead of failing the query.
  std::size_t sampled = 0;
  for (const GroupReport& g : run->groups) {
    if (g.quality != GroupQuality::kSampled) continue;
    ++sampled;
    EXPECT_EQ(g.exact_status.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(g.exact_status.message().find("allocation failed"),
              std::string::npos);
  }
  EXPECT_EQ(sampled, 1u);
  EXPECT_GE(run->estimate, 0.0);
  EXPECT_LE(run->estimate, 1.0);
}

TEST_F(FailpointTest, DelayScheduleChangesNoResult) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(73, 12, 2, 4);
  TablePreferenceModel model;
  ThreadPool pool(2);
  auto clean = BatchExactSkylineProbabilities(data, model, pool);
  ASSERT_TRUE(clean.ok());

  // Period 2 because exact.dfs hit ordinals are solve entries plus
  // amortized poll crossings — a dozen-target batch yields tens of
  // hits, not thousands.
  failpoint::Schedule delay;
  delay.kind = failpoint::FaultKind::kDelay;
  delay.pattern = failpoint::Schedule::Pattern::kPeriodic;
  delay.n = 2;
  delay.delay_micros = 100;
  const std::uint64_t fired_before = failpoint::FiredCount();
  failpoint::ScopedFailpoint armed("exact.dfs", delay);
  BatchExactStats stats;
  auto run = BatchExactSkylineProbabilities(data, model, pool, {}, &stats);
  ASSERT_TRUE(run.ok()) << run.status();
  // Delays open race windows but must be behaviorally invisible.
  EXPECT_EQ(*run, *clean);
  EXPECT_EQ(stats.failed_targets, 0u);
  EXPECT_GT(failpoint::FiredCount(), fired_before);
}

TEST_F(FailpointTest, SeededSchedulesAreReproducibleFromTheSeed) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(91, 8, 2, 3);
  TablePreferenceModel model;
  ThreadPool pool(0);  // serial: full run-to-run determinism contract

  constexpr std::uint64_t kSeed = 0x5eed5eed5eed5eedULL;
  const std::size_t armed_first = failpoint::ArmSeededSchedule(kSeed);
  BatchExactStats stats_first;
  auto first = BatchExactSkylineProbabilities(data, model, pool, {},
                                              &stats_first);
  failpoint::DisarmAll();

  const std::size_t armed_second = failpoint::ArmSeededSchedule(kSeed);
  BatchExactStats stats_second;
  auto second = BatchExactSkylineProbabilities(data, model, pool, {},
                                               &stats_second);
  failpoint::DisarmAll();

  // Same seed, same derived schedules, same casualties, same bits.
  EXPECT_EQ(armed_first, armed_second);
  ASSERT_EQ(first.ok(), second.ok());
  if (!first.ok()) return;  // a seed may legitimately cancel the batch
  ASSERT_EQ(first->size(), second->size());
  for (ObjectId t = 0; t < data.size(); ++t) {
    if (std::isnan((*first)[t])) {
      EXPECT_TRUE(std::isnan((*second)[t])) << "target " << t;
    } else {
      EXPECT_EQ((*first)[t], (*second)[t]) << "target " << t;
    }
    EXPECT_EQ(stats_first.target_status[t].code(),
              stats_second.target_status[t].code())
        << "target " << t;
  }
  EXPECT_EQ(stats_first.failed_targets, stats_second.failed_targets);
  EXPECT_EQ(stats_first.retried_targets, stats_second.retried_targets);
  EXPECT_EQ(stats_first.salvaged_targets, stats_second.salvaged_targets);
}

TEST_F(FailpointTest, SpuriousWakeStormPerturbsNoParallelForIndex) {
  SKYPREF_REQUIRE_FAILPOINTS();
  ThreadPool pool(4);
  failpoint::Schedule storm;
  storm.kind = failpoint::FaultKind::kSpuriousWake;
  storm.pattern = failpoint::Schedule::Pattern::kPeriodic;
  storm.n = 1;  // every dispatch raises the storm
  failpoint::ScopedFailpoint armed("threadpool.wait", storm);
  constexpr std::size_t kItems = 512;
  for (int round = 0; round < 4; ++round) {
    std::vector<std::atomic<int>> counts(kItems);
    pool.ParallelFor(kItems, [&counts](std::size_t i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    // Every wait in the pool re-checks its predicate under the lock, so
    // a notification flood must never drop or double-run an index.
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(counts[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST_F(FailpointTest, WakeStormLeavesBatchResultsIdentical) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(73, 12, 2, 4);
  TablePreferenceModel model;
  ThreadPool pool(4);
  auto clean = BatchExactSkylineProbabilities(data, model, pool);
  ASSERT_TRUE(clean.ok());
  failpoint::Schedule storm;
  storm.kind = failpoint::FaultKind::kSpuriousWake;
  storm.pattern = failpoint::Schedule::Pattern::kPeriodic;
  storm.n = 1;
  failpoint::ScopedFailpoint armed("threadpool.wait", storm);
  auto stormy = BatchExactSkylineProbabilities(data, model, pool);
  ASSERT_TRUE(stormy.ok()) << stormy.status();
  EXPECT_EQ(*clean, *stormy);
}

TEST_F(FailpointTest, RearmingUnderConcurrentHitsFiresAtMostOncePerArming) {
  SKYPREF_REQUIRE_FAILPOINTS();
  // Each arming publishes a fresh counter; a thread mid-site keeps
  // charging the counter it snapshotted. The kSingle contract — at most
  // one fire per arming — must survive re-arming races (this is the
  // TSan half of the contract; the count bound is the functional half).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> fires{0};
  std::vector<std::thread> hammers;
  hammers.reserve(4);
  for (int i = 0; i < 4; ++i) {
    hammers.emplace_back([&stop, &fires] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (failpoint::Hit("test.race")) {
          fires.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  constexpr std::uint64_t kArmings = 200;
  for (std::uint64_t a = 0; a < kArmings; ++a) {
    failpoint::Arm("test.race", 1);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  failpoint::Disarm("test.race");
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : hammers) t.join();
  EXPECT_GE(fires.load(), 1u);
  EXPECT_LE(fires.load(), kArmings);
}

TEST_F(FailpointTest, DegradedThreadPoolRunsInlineWithIdenticalResults) {
  SKYPREF_REQUIRE_FAILPOINTS();
  Dataset data = RandomSmallDataset(61, 14, 3, 4);
  TablePreferenceModel model;
  ThreadPool pool(4);
  auto clean = BatchExactSkylineProbabilities(data, model, pool);
  ASSERT_TRUE(clean.ok());
  failpoint::ScopedFailpoint armed("threadpool.serial");
  auto degraded = BatchExactSkylineProbabilities(data, model, pool);
  ASSERT_TRUE(degraded.ok());
  // The determinism contract: a dispatch forced inline on the caller
  // changes nothing about the results.
  EXPECT_EQ(*clean, *degraded);
}

TEST_F(FailpointTest, ResilientLadderDegradesExactlyTheInjectedGroup) {
  SKYPREF_REQUIRE_FAILPOINTS();
  // Target (0,0); one 10-candidate blob connected through dim-0 value 1,
  // plus two singleton groups. Serial pool: the exact rung runs
  // longest-first, so the armed first DFS visit lands in the blob.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  for (std::size_t i = 0; i < 10; ++i) {
    data.Append({1, static_cast<ValueId>(i + 1)}).CheckOK();
  }
  data.Append({100, 100}).CheckOK();
  data.Append({101, 101}).CheckOK();
  TablePreferenceModel model;
  ResilientOptions options;
  options.solver.monte_carlo.samples = 200;
  failpoint::ScopedFailpoint armed("exact.dfs");
  auto run = ResilientSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FALSE(run->fully_exact);
  std::size_t sampled = 0;
  for (const GroupReport& g : run->groups) {
    if (g.quality == GroupQuality::kSampled) {
      ++sampled;
      EXPECT_EQ(g.size, 10u);
      EXPECT_NE(g.exact_status.message().find("failpoint"),
                std::string::npos);
    } else {
      EXPECT_EQ(g.quality, GroupQuality::kExact);
    }
  }
  EXPECT_EQ(sampled, 1u);
  EXPECT_GE(run->estimate, 0.0);
  EXPECT_LE(run->estimate, 1.0);
}

}  // namespace
}  // namespace skypref
