#include "src/core/tentative_approx.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;

std::vector<ObjectId> AllBut(const Dataset& data, ObjectId target) {
  std::vector<ObjectId> ids;
  for (ObjectId i = 0; i < data.size(); ++i) {
    if (i != target) ids.push_back(i);
  }
  return ids;
}

TEST(ApproxTopObjectsTest, FullBudgetEqualsExact) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  double approx =
      ApproxTopObjects(data, 0, AllBut(data, 0), model, 4).value();
  EXPECT_DOUBLE_EQ(approx, 3.0 / 16.0);
}

TEST(ApproxTopObjectsTest, ZeroBudgetGivesOne) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_DOUBLE_EQ(
      ApproxTopObjects(data, 0, AllBut(data, 0), model, 0).value(), 1.0);
}

TEST(ApproxTopObjectsTest, PicksTheMostThreateningCandidates) {
  // With t=2 the top objects are Q2 and Q4 (Pr(e)=1/2 each);
  // sky over {Q2,Q4} = (1-1/2)(1-1/2) = 1/4 (they are independent).
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  double approx =
      ApproxTopObjects(data, 0, AllBut(data, 0), model, 2).value();
  EXPECT_DOUBLE_EQ(approx, 0.25);
}

TEST(ApproxTopObjectsTest, ErrorShrinksWithBudget) {
  Dataset data = RandomSmallDataset(21, 14, 3, 4);
  TablePreferenceModel model;
  double truth = ExactSkylineProbability(data, 0, model).value();
  std::vector<ObjectId> candidates = AllBut(data, 0);
  double error_small = std::abs(
      ApproxTopObjects(data, 0, candidates, model, 2).value() - truth);
  double error_full = std::abs(
      ApproxTopObjects(data, 0, candidates, model, candidates.size()).value() -
      truth);
  EXPECT_LE(error_full, error_small + 1e-12);
  EXPECT_NEAR(error_full, 0.0, 1e-12);
}

TEST(ApproxTopObjectsTest, OverestimatesSkylineProbability) {
  // Dropping candidates can only remove dominators, so A1's estimate is
  // always an upper bound on the truth.
  for (std::uint64_t seed = 51; seed < 60; ++seed) {
    Dataset data = RandomSmallDataset(seed, 12, 2, 4);
    TablePreferenceModel model;
    double truth = ExactSkylineProbability(data, 0, model).value();
    for (std::size_t t : {1u, 3u, 6u}) {
      double approx =
          ApproxTopObjects(data, 0, AllBut(data, 0), model, t).value();
      EXPECT_GE(approx, truth - 1e-12) << "seed=" << seed << " t=" << t;
    }
  }
}

TEST(ApproxPartialTermsTest, FullBudgetEqualsExact) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  auto result =
      ApproxPartialTerms(data, 0, AllBut(data, 0), model, 1u << 20).value();
  EXPECT_NEAR(result.estimate, 3.0 / 16.0, 1e-12);
  EXPECT_EQ(result.terms_computed, 15u);  // 2^4 - 1
  EXPECT_EQ(result.deepest_level, 4u);
}

TEST(ApproxPartialTermsTest, TruncationCanLeaveProbabilityRange) {
  // Stopping after level 1 yields 1 - sum Pr(e_i) = 1 - 3/2 = -1/2: the
  // paper's Figure 6(b) point that A2 is not even a probability.
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  auto result = ApproxPartialTerms(data, 0, AllBut(data, 0), model, 4).value();
  EXPECT_NEAR(result.estimate, -0.5, 1e-12);
  EXPECT_EQ(result.terms_computed, 4u);
}

TEST(ApproxPartialTermsTest, MidLevelTruncation) {
  // 4 level-1 terms plus the first two level-2 terms (lexicographic:
  // {Q1,Q2} = 1/4 and {Q1,Q3} = 1/16): 1 - 3/2 + 5/16 = -3/16.
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  auto result = ApproxPartialTerms(data, 0, AllBut(data, 0), model, 6).value();
  EXPECT_NEAR(result.estimate, -3.0 / 16.0, 1e-12);
}

TEST(ApproxPartialTermsTest, RejectsZeroBudget) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_EQ(
      ApproxPartialTerms(data, 0, AllBut(data, 0), model, 0).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(TentativeApproxTest, InvalidArguments) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  std::vector<ObjectId> self{0};
  EXPECT_EQ(ApproxTopObjects(data, 0, self, model, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ApproxPartialTerms(data, 0, self, model, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ApproxTopObjects(data, 9, {}, model, 1).status().code(),
      StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace skypref
