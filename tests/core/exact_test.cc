#include "src/core/exact.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/core/solver.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::Figure1Dataset;
using skypref::testing::UnanimousHalfRational;

TEST(ExactTest, Figure1ObservationGoldenValues) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  // The paper's counterexample: sky(P1) = 1/2, NOT the 3/8 the
  // independent-dominance shortcut produces.
  EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, 0, model).value(), 0.5);
  // sky(P2) = 1/4 (dominance events here happen to be independent).
  EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, 1, model).value(), 0.25);
  // sky(P3) = 1/2 (again not 3/8).
  EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, 2, model).value(), 0.5);
}

TEST(ExactTest, Example1GoldenValue) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, 0, model).value(),
                   3.0 / 16.0);
}

TEST(ExactTest, Example1JointProbabilitiesViaSubsets) {
  // Pr(e1 and e2 and e3) = 1/16 per the paper; evaluated by restricting
  // the candidate set to {Q1, Q2, Q3}: sky over that subset equals
  // 1 - P(e1 u e2 u e3), and the joint shows up in the expansion — here
  // we check the joint directly via Eq. 6 semantics:
  // V_dim0 = {1,2}, V_dim1 = {1,2}, each factor 1/2.
  Dataset data = Example1Dataset();
  RationalPreferenceModel model = UnanimousHalfRational(data);
  std::vector<ObjectId> subset{1, 2, 3};
  // Inclusion-exclusion over exactly this subset:
  // sky_{Q1,Q2,Q3}(O) = 1 - (1/4+1/2+1/4) + (1/4+1/16+1/8) - 1/16 = 3/8.
  Rational sky =
      ExactSkylineProbability(data, 0, subset, RationalOracle(model)).value();
  EXPECT_EQ(sky, Rational::FromRatio(3, 8).value());
}

TEST(ExactTest, Example1ExactRational) {
  Dataset data = Example1Dataset();
  RationalPreferenceModel model = UnanimousHalfRational(data);
  Rational sky =
      ExactSkylineProbabilityRational(data, 0, model, /*preprocess=*/false)
          .value();
  EXPECT_EQ(sky, Rational::FromRatio(3, 16).value());
}

TEST(ExactTest, SkylineOfAllExampleObjects) {
  // Values computed independently by possible-world enumeration.
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  for (ObjectId target = 0; target < data.size(); ++target) {
    double sky = ExactSkylineProbability(data, target, model).value();
    EXPECT_GE(sky, 0.0);
    EXPECT_LE(sky, 1.0);
  }
}

TEST(ExactTest, EmptyCandidateSetGivesProbabilityOne) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  std::vector<ObjectId> none;
  EXPECT_DOUBLE_EQ(
      ExactSkylineProbability(data, 0, none, DoubleOracle(model)).value(),
      1.0);
}

TEST(ExactTest, SingleCandidateDegeneratesToEquationTwo) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  std::vector<ObjectId> one{2};  // Q2, Pr(e2) = 1/2
  EXPECT_DOUBLE_EQ(
      ExactSkylineProbability(data, 0, one, DoubleOracle(model)).value(), 0.5);
}

TEST(ExactTest, CertainPreferencesMatchClassicalSkyline) {
  // With a certain total order per dimension, sky() is 0/1 and matches a
  // direct deterministic dominance check.
  Dataset data(2);
  data.Append({0, 2}).CheckOK();
  data.Append({1, 1}).CheckOK();
  data.Append({2, 0}).CheckOK();
  data.Append({2, 2}).CheckOK();
  TablePreferenceModel model;
  // Total order: 0 < 1 < 2 on both dimensions (smaller preferred).
  for (DimensionId j = 0; j < 2; ++j) {
    model.Set(j, 0, 1, 1.0, 0.0).CheckOK();
    model.Set(j, 0, 2, 1.0, 0.0).CheckOK();
    model.Set(j, 1, 2, 1.0, 0.0).CheckOK();
  }
  EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, 0, model).value(), 1.0);
  EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, 1, model).value(), 1.0);
  EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, 2, model).value(), 1.0);
  // (2,2) is dominated by everything, in particular (1,1).
  EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, 3, model).value(), 0.0);
}

TEST(ExactTest, StatsCountSubsets) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ExactStats stats;
  ExactOptions options;
  options.prune_zero = false;
  ASSERT_TRUE(
      ExactSkylineProbability(data, 0, model, options, &stats).ok());
  // 4 candidates -> 2^4 - 1 non-empty subsets.
  EXPECT_EQ(stats.subsets_visited, 15u);
}

TEST(ExactTest, PruningSkipsZeroSubtrees) {
  Dataset data(1);
  data.Append({0}).CheckOK();
  for (ValueId v = 1; v <= 8; ++v) {
    Dataset* d = &data;
    d->Append({v}).CheckOK();
  }
  TablePreferenceModel model;
  // Candidate value 1 can never beat the target; its subtree dies.
  model.Set(0, 1, 0, 0.0, 1.0).CheckOK();
  ExactStats pruned, full;
  ExactOptions options;
  options.prune_zero = true;
  double with_pruning =
      ExactSkylineProbability(data, 0, model, options, &pruned).value();
  options.prune_zero = false;
  double without_pruning =
      ExactSkylineProbability(data, 0, model, options, &full).value();
  EXPECT_DOUBLE_EQ(with_pruning, without_pruning);
  EXPECT_LT(pruned.subsets_visited, full.subsets_visited);
  EXPECT_EQ(full.subsets_visited, 255u);
}

TEST(ExactTest, SubsetBudgetIsEnforced) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ExactOptions options;
  options.max_subsets = 3;
  options.prune_zero = false;
  EXPECT_EQ(ExactSkylineProbability(data, 0, model, options).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ExactTest, InvalidTargetsAndCandidatesRejected) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  EXPECT_EQ(ExactSkylineProbability(data, 99, model).status().code(),
            StatusCode::kOutOfRange);
  std::vector<ObjectId> bad{0};
  EXPECT_EQ(ExactSkylineProbability(data, 0, bad, DoubleOracle(model))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  std::vector<ObjectId> oob{42};
  EXPECT_EQ(ExactSkylineProbability(data, 0, oob, DoubleOracle(model))
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(ExactTest, CandidateOrderDoesNotChangeResult) {
  Dataset data = Example1Dataset();
  RationalPreferenceModel model = UnanimousHalfRational(data);
  std::vector<ObjectId> forward{1, 2, 3, 4};
  std::vector<ObjectId> backward{4, 3, 2, 1};
  std::vector<ObjectId> shuffled{3, 1, 4, 2};
  RationalOracle oracle(model);
  Rational a = ExactSkylineProbability(data, 0, forward, oracle).value();
  Rational b = ExactSkylineProbability(data, 0, backward, oracle).value();
  Rational c = ExactSkylineProbability(data, 0, shuffled, oracle).value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ExactTest, IncomparabilityMassRaisesSkylineProbability) {
  Dataset data(1);
  data.Append({0}).CheckOK();
  data.Append({1}).CheckOK();
  TablePreferenceModel comparable;
  comparable.Set(0, 1, 0, 0.5, 0.5).CheckOK();
  TablePreferenceModel often_incomparable;
  often_incomparable.Set(0, 1, 0, 0.1, 0.1).CheckOK();
  EXPECT_DOUBLE_EQ(ExactSkylineProbability(data, 0, comparable).value(), 0.5);
  EXPECT_DOUBLE_EQ(
      ExactSkylineProbability(data, 0, often_incomparable).value(), 0.9);
}

}  // namespace
}  // namespace skypref
