/// BatchExactSkylineProbabilities: the all-objects exact solver with
/// shared preprocessing. Contract under test — element i is bit-identical
/// to SkylineSolver::Exact(i) with the same options, for every thread
/// count of the pool, and ExpectedSkylineCardinality is its plain sum.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/parallel.h"
#include "src/core/solver.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;

TEST(BatchExactTest, MatchesPerTargetSolverBitwise) {
  Dataset data = RandomSmallDataset(61, 18, 3, 4);
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  ThreadPool pool(4);
  BatchExactStats stats;
  auto batch =
      BatchExactSkylineProbabilities(data, model, pool, {}, &stats).value();
  ASSERT_EQ(batch.size(), data.size());
  std::uint64_t serial_visited = 0;
  for (ObjectId target = 0; target < data.size(); ++target) {
    SolveStats solve_stats;
    double serial = solver.Exact(target, {}, &solve_stats).value();
    EXPECT_EQ(batch[target], serial) << "target " << target;
    serial_visited += solve_stats.subsets_visited;
  }
  EXPECT_EQ(stats.targets, data.size());
  EXPECT_EQ(stats.subsets_visited, serial_visited);
  EXPECT_GT(stats.distinct_pair_probs, 0u);
}

TEST(BatchExactTest, ThreadCountInvariance) {
  Dataset data = RandomSmallDataset(67, 16, 2, 5);
  TablePreferenceModel model;
  ThreadPool pool0(0), pool2(2), pool8(8);
  auto a = BatchExactSkylineProbabilities(data, model, pool0).value();
  auto b = BatchExactSkylineProbabilities(data, model, pool2).value();
  auto c = BatchExactSkylineProbabilities(data, model, pool8).value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(BatchExactTest, NoPreprocessMatchesPlainDet) {
  Dataset data = RandomSmallDataset(71, 12, 3, 3);
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  ThreadPool pool(2);
  SolverOptions options;
  options.preprocess = false;
  auto batch =
      BatchExactSkylineProbabilities(data, model, pool, options).value();
  for (ObjectId target = 0; target < data.size(); ++target) {
    EXPECT_EQ(batch[target], solver.Exact(target, options).value())
        << "target " << target;
  }
}

TEST(BatchExactTest, SubsetBudgetFailsTargetsIndividually) {
  // Degradation contract: a target that exhausts its budget gets NaN and
  // a ResourceExhausted in target_status, but the call succeeds and every
  // other target keeps its bit-identical exact value.
  Dataset data = RandomSmallDataset(73, 12, 2, 4);
  TablePreferenceModel model;
  ThreadPool pool(2);
  SolverOptions tight;
  tight.exact.max_subsets = 1;
  BatchExactStats stats;
  auto batch =
      BatchExactSkylineProbabilities(data, model, pool, tight, &stats);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(stats.target_status.size(), data.size());
  auto solver = SkylineSolver::Create(data, model).value();
  std::size_t failed = 0;
  for (ObjectId t = 0; t < data.size(); ++t) {
    auto serial = solver.Exact(t, tight);
    if (stats.target_status[t].ok()) {
      ASSERT_TRUE(serial.ok()) << "target " << t;
      EXPECT_EQ((*batch)[t], *serial) << "target " << t;
    } else {
      ++failed;
      EXPECT_EQ(stats.target_status[t].code(),
                StatusCode::kResourceExhausted)
          << "target " << t;
      EXPECT_TRUE(std::isnan((*batch)[t])) << "target " << t;
      EXPECT_EQ(serial.status().code(), StatusCode::kResourceExhausted)
          << "target " << t;
    }
  }
  EXPECT_GT(failed, 0u);
  EXPECT_EQ(stats.failed_targets, failed);
}

TEST(BatchExactTest, SingleObjectDatasetIsCertainSkyline) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  TablePreferenceModel model;
  ThreadPool pool(2);
  auto batch = BatchExactSkylineProbabilities(data, model, pool).value();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_DOUBLE_EQ(batch[0], 1.0);
}

TEST(BatchExactTest, AbsorptionStatsMatchExample1) {
  // Example 1 for target O: Q1 absorbed by Q2, three singleton groups.
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ThreadPool pool(0);
  BatchExactStats stats;
  auto batch =
      BatchExactSkylineProbabilities(data, model, pool, {}, &stats).value();
  EXPECT_DOUBLE_EQ(batch[0], 3.0 / 16.0);
  EXPECT_EQ(stats.targets, 5u);
  EXPECT_GT(stats.absorbed, 0u);
  EXPECT_LE(stats.largest_group, 4u);
}

TEST(ExpectedSkylineCardinalityTest, PoolOverloadMatchesLegacy) {
  Dataset data = RandomSmallDataset(79, 14, 3, 4);
  TablePreferenceModel model;
  double legacy = ExpectedSkylineCardinality(data, model).value();
  ThreadPool pool(4);
  double pooled = ExpectedSkylineCardinality(data, model, pool).value();
  EXPECT_EQ(pooled, legacy);
}

}  // namespace
}  // namespace skypref
