#include "src/core/independent_baseline.h"

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::Figure1Dataset;

TEST(IndependentBaselineTest, Figure1ReproducesTheWrongSacValues) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  // Sac computes sky(P1) = (1 - 1/2)(1 - 1/4) = 3/8 — the paper's
  // motivating counterexample (truth: 1/2).
  EXPECT_DOUBLE_EQ(IndependentSkylineProbability(data, 0, model).value(),
                   3.0 / 8.0);
  EXPECT_DOUBLE_EQ(IndependentSkylineProbability(data, 2, model).value(),
                   3.0 / 8.0);
}

TEST(IndependentBaselineTest, Figure1AgreesWhereEventsAreIndependent) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  // P1 and P3 share no values, so Sac is correct for sky(P2) = 1/4.
  double sac = IndependentSkylineProbability(data, 1, model).value();
  double truth = ExactSkylineProbability(data, 1, model).value();
  EXPECT_DOUBLE_EQ(sac, 0.25);
  EXPECT_DOUBLE_EQ(sac, truth);
}

TEST(IndependentBaselineTest, Example1ReproducesNineSixtyFourths) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_DOUBLE_EQ(IndependentSkylineProbability(data, 0, model).value(),
                   9.0 / 64.0);
  EXPECT_NE(IndependentSkylineProbability(data, 0, model).value(),
            ExactSkylineProbability(data, 0, model).value());
}

TEST(IndependentBaselineTest, ExactWhenNoValuesAreShared) {
  // Three candidates with pairwise-disjoint non-target values: singleton
  // partition groups, so Sac equals the exact answer (Theorem 4).
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  data.Append({2, 2}).CheckOK();
  data.Append({3, 3}).CheckOK();
  TablePreferenceModel model;
  double sac = IndependentSkylineProbability(data, 0, model).value();
  double truth = ExactSkylineProbability(data, 0, model).value();
  EXPECT_DOUBLE_EQ(sac, truth);
  EXPECT_DOUBLE_EQ(sac, 27.0 / 64.0);  // (1 - 1/4)^3
}

TEST(IndependentBaselineTest, CandidateSubsetOverload) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  std::vector<ObjectId> subset{2};
  EXPECT_DOUBLE_EQ(
      IndependentSkylineProbability(data, 0, subset, model).value(), 0.5);
}

TEST(IndependentBaselineTest, InvalidArgumentsRejected) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  EXPECT_EQ(IndependentSkylineProbability(data, 7, model).status().code(),
            StatusCode::kOutOfRange);
  std::vector<ObjectId> self{1};
  EXPECT_EQ(
      IndependentSkylineProbability(data, 1, self, model).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace skypref
