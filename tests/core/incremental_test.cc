#include "src/core/incremental.h"

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::RandomSmallDataset;

TEST(IncrementalTest, StartsAtOne) {
  TablePreferenceModel model;
  IncrementalSkylineProbability inc({0, 0}, model);
  EXPECT_DOUBLE_EQ(inc.probability(), 1.0);
  EXPECT_EQ(inc.candidate_count(), 0u);
  EXPECT_EQ(inc.group_count(), 0u);
}

TEST(IncrementalTest, ReplaysExample1InsertionByInsertion) {
  // Inserting Q1..Q4 of the running example one at a time must track the
  // exact prefix values; the final answer is 3/16.
  TablePreferenceModel model;
  IncrementalSkylineProbability inc({0, 0}, model);
  // After Q1=(1,1): sky = 1 - 1/4 = 3/4.
  EXPECT_DOUBLE_EQ(inc.AddCandidate({1, 1}).value(), 0.75);
  // After Q2=(1,0): shares dim0 value 1 with Q1 -> merged group.
  // sky over {Q1,Q2} = 1 - (1/4 + 1/2) + 1/4 = 1/2.
  EXPECT_DOUBLE_EQ(inc.AddCandidate({1, 0}).value(), 0.5);
  // After Q3=(2,2): independent group. sky = 1/2 * 3/4 = 3/8.
  EXPECT_DOUBLE_EQ(inc.AddCandidate({2, 2}).value(), 3.0 / 8.0);
  // After Q4=(0,1): shares dim1 value 1 with Q1 -> merges with {Q1,Q2}.
  EXPECT_DOUBLE_EQ(inc.AddCandidate({0, 1}).value(), 3.0 / 16.0);
  EXPECT_EQ(inc.group_count(), 2u);
  EXPECT_EQ(inc.exact_solves(), 4u);
}

TEST(IncrementalTest, AbsorptionKeepsGroupsSmall) {
  TablePreferenceModel model;
  IncrementalSkylineProbability inc({0, 0, 0}, model);
  // Absorber: differs from the target on dim 0 only.
  inc.AddCandidate({1, 0, 0}).value();
  // Both are absorbed by it (match value 1 on dim 0).
  inc.AddCandidate({1, 2, 0}).value();
  inc.AddCandidate({1, 0, 3}).value();
  EXPECT_EQ(inc.candidate_count(), 1u);
  // sky is still just 1 - Pr(absorber dominates) = 1 - 1/2.
  EXPECT_DOUBLE_EQ(inc.probability(), 0.5);
}

TEST(IncrementalTest, AbsorbedCandidateValuesStillCoupleGroups) {
  TablePreferenceModel model;
  IncrementalSkylineProbability inc({0, 0}, model);
  inc.AddCandidate({1, 0}).value();  // A: differs on dim 0 only
  inc.AddCandidate({1, 7}).value();  // B: absorbed by A, carries value 7
  ASSERT_EQ(inc.candidate_count(), 1u);
  // C shares dim-1 value 7 with the ABSORBED B; the groups must merge so
  // that a future exact solve sees the dependence.
  inc.AddCandidate({2, 7}).value();
  EXPECT_EQ(inc.group_count(), 1u);
  // Reference: full recomputation over {A, B, C}.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 0}).CheckOK();
  data.Append({1, 7}).CheckOK();
  data.Append({2, 7}).CheckOK();
  EXPECT_NEAR(inc.probability(),
              ExactSkylineProbability(data, 0, model).value(), 1e-12);
}

TEST(IncrementalTest, MatchesBatchSolverOnRandomStreams) {
  for (std::uint64_t seed = 901; seed < 913; ++seed) {
    Dataset data = RandomSmallDataset(seed, 12, 3, 4);
    TablePreferenceModel model;
    std::vector<ValueId> target(data.object(0).begin(),
                                data.object(0).end());
    IncrementalSkylineProbability inc(target, model);
    for (ObjectId row = 1; row < data.size(); ++row) {
      auto incremental = inc.AddCandidate(data.object(row));
      ASSERT_TRUE(incremental.ok());
      // Reference over the prefix seen so far.
      std::vector<ObjectId> prefix;
      for (ObjectId i = 1; i <= row; ++i) prefix.push_back(i);
      double batch = ExactSkylineProbability(data, 0, prefix,
                                             DoubleOracle(model))
                         .value();
      EXPECT_NEAR(incremental.value(), batch, 1e-12)
          << "seed=" << seed << " after row " << row;
    }
  }
}

TEST(IncrementalTest, RejectsDuplicatesAndBadShapes) {
  TablePreferenceModel model;
  IncrementalSkylineProbability inc({0, 0}, model);
  EXPECT_EQ(inc.AddCandidate({0, 0}).status().code(),
            StatusCode::kAlreadyExists);  // duplicates the target
  ASSERT_TRUE(inc.AddCandidate({1, 1}).ok());
  EXPECT_EQ(inc.AddCandidate({1, 1}).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(inc.AddCandidate({1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(inc.AddCandidate({1, 2, 3}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IncrementalTest, BudgetFailureLeavesStateConsistent) {
  TablePreferenceModel model;
  ExactOptions tight;
  tight.max_subsets = 2;  // absurdly small: any 2+-member group fails
  IncrementalSkylineProbability inc({0, 0}, model, tight);
  ASSERT_TRUE(inc.AddCandidate({1, 1}).ok());
  double before = inc.probability();
  // Shares value 1 on dim 0 -> merged group of 2 -> 3 subsets > budget.
  EXPECT_EQ(inc.AddCandidate({1, 2}).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(inc.probability(), before);
  EXPECT_EQ(inc.candidate_count(), 1u);
  // Unrelated candidates still insert fine afterwards.
  EXPECT_TRUE(inc.AddCandidate({5, 5}).ok());
}

TEST(IncrementalTest, GroupCountTracksPartition) {
  TablePreferenceModel model;
  IncrementalSkylineProbability inc({0, 0}, model);
  inc.AddCandidate({1, 1}).value();
  inc.AddCandidate({2, 2}).value();
  inc.AddCandidate({3, 3}).value();
  EXPECT_EQ(inc.group_count(), 3u);
  // A bridging candidate touching values 1 (dim0) and 2 (dim1) merges
  // two of them.
  inc.AddCandidate({1, 2}).value();
  EXPECT_EQ(inc.group_count(), 2u);
}

}  // namespace
}  // namespace skypref
