#include "src/core/bounds.h"

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::Figure1Dataset;
using skypref::testing::RandomSmallDataset;

TEST(BoundsTest, LevelOneGivesUnionBoundLowerBound) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  BoundsOptions options;
  options.max_level = 1;
  SkylineBounds bounds = BoundedSkylineProbability(data, 0, model, options)
                             .value();
  // 1 - S1 = 1 - 3/2 = -1/2, clamped to 0.
  EXPECT_DOUBLE_EQ(bounds.lower, 0.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 1.0);  // no even level yet
  EXPECT_EQ(bounds.level, 1u);
  EXPECT_FALSE(bounds.exact);
}

TEST(BoundsTest, LevelTwoGivesUpperBound) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  BoundsOptions options;
  options.max_level = 2;
  SkylineBounds bounds = BoundedSkylineProbability(data, 0, model, options)
                             .value();
  // 1 - S1 + S2 = 1 - 24/16 + 17/16 = 9/16.
  EXPECT_DOUBLE_EQ(bounds.upper, 9.0 / 16.0);
  EXPECT_GE(3.0 / 16.0, bounds.lower);
  EXPECT_LE(3.0 / 16.0, bounds.upper);
}

TEST(BoundsTest, LevelThreeTightensLowerBound) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  BoundsOptions options;
  options.max_level = 3;
  SkylineBounds bounds = BoundedSkylineProbability(data, 0, model, options)
                             .value();
  // 1 - S1 + S2 - S3 = 2/16.
  EXPECT_DOUBLE_EQ(bounds.lower, 2.0 / 16.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 9.0 / 16.0);
}

TEST(BoundsTest, AllLevelsYieldTheExactValue) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  BoundsOptions options;
  options.max_level = 10;  // clamped to n = 4
  SkylineBounds bounds = BoundedSkylineProbability(data, 0, model, options)
                             .value();
  EXPECT_TRUE(bounds.exact);
  EXPECT_DOUBLE_EQ(bounds.lower, 3.0 / 16.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 3.0 / 16.0);
  EXPECT_EQ(bounds.level, 4u);
  EXPECT_EQ(bounds.terms_computed, 15u);
}

TEST(BoundsTest, IntervalAlwaysContainsTheTruth) {
  for (std::uint64_t seed = 201; seed < 221; ++seed) {
    Dataset data = RandomSmallDataset(seed, 10, 3, 4);
    TablePreferenceModel model;
    double truth = ExactSkylineProbability(data, 0, model).value();
    for (std::size_t level = 1; level <= 5; ++level) {
      BoundsOptions options;
      options.max_level = level;
      SkylineBounds bounds =
          BoundedSkylineProbability(data, 0, model, options).value();
      EXPECT_LE(bounds.lower, truth + 1e-12)
          << "seed=" << seed << " level=" << level;
      EXPECT_GE(bounds.upper, truth - 1e-12)
          << "seed=" << seed << " level=" << level;
    }
  }
}

TEST(BoundsTest, IntervalsTightenWithLevel) {
  Dataset data = RandomSmallDataset(404, 12, 3, 4);
  TablePreferenceModel model;
  double previous_width = 1.0;
  for (std::size_t level = 2; level <= 8; level += 2) {
    BoundsOptions options;
    options.max_level = level;
    SkylineBounds bounds =
        BoundedSkylineProbability(data, 0, model, options).value();
    EXPECT_LE(bounds.width(), previous_width + 1e-12) << "level " << level;
    previous_width = bounds.width();
  }
}

TEST(BoundsTest, TermBudgetStopsEscalation) {
  Dataset data = RandomSmallDataset(7, 14, 2, 4);
  TablePreferenceModel model;
  BoundsOptions options;
  options.max_level = 6;
  options.term_budget = 20;  // level 1 costs 13, level 2 costs 78
  SkylineBounds bounds =
      BoundedSkylineProbability(data, 0, model, options).value();
  EXPECT_EQ(bounds.level, 1u);
  EXPECT_EQ(bounds.terms_computed, 13u);
}

TEST(BoundsTest, EmptyCandidatesExactOne) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  std::vector<ObjectId> none;
  SkylineBounds bounds =
      BoundedSkylineProbability(data, 0, none, model, {}).value();
  EXPECT_TRUE(bounds.exact);
  EXPECT_DOUBLE_EQ(bounds.lower, 1.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 1.0);
}

TEST(BoundsTest, InvalidArguments) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  EXPECT_EQ(BoundedSkylineProbability(data, 9, model, {}).status().code(),
            StatusCode::kOutOfRange);
  std::vector<ObjectId> self{0};
  EXPECT_EQ(
      BoundedSkylineProbability(data, 0, self, model, {}).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(BoundsTest, PreprocessedBoundsAreExactOnExample1) {
  // After absorption + partition, Example 1 is three singleton groups:
  // every group finishes all its levels, so the interval collapses to
  // the exact value even at max_level = 1.
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  BoundsOptions options;
  options.max_level = 1;
  SkylineBounds bounds =
      BoundedSkylineProbabilityPreprocessed(data, 0, model, options).value();
  EXPECT_TRUE(bounds.exact);
  EXPECT_DOUBLE_EQ(bounds.lower, 3.0 / 16.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 3.0 / 16.0);
}

TEST(BoundsTest, PreprocessedIntervalContainsTruthOnRandomInstances) {
  for (std::uint64_t seed = 701; seed < 716; ++seed) {
    Dataset data = RandomSmallDataset(seed, 12, 3, 4);
    TablePreferenceModel model;
    double truth = ExactSkylineProbability(data, 0, model).value();
    for (std::size_t level = 1; level <= 4; ++level) {
      BoundsOptions options;
      options.max_level = level;
      SkylineBounds bounds =
          BoundedSkylineProbabilityPreprocessed(data, 0, model, options)
              .value();
      EXPECT_LE(bounds.lower, truth + 1e-12) << "seed=" << seed;
      EXPECT_GE(bounds.upper, truth - 1e-12) << "seed=" << seed;
    }
  }
}

TEST(BoundsTest, PreprocessedTighterThanFlatBounds) {
  // Partitioning multiplies per-group intervals, which is never looser
  // and usually much tighter than bounding the whole candidate set.
  Dataset data = RandomSmallDataset(808, 14, 3, 5);
  TablePreferenceModel model;
  BoundsOptions options;
  options.max_level = 2;
  SkylineBounds flat =
      BoundedSkylineProbability(data, 0, model, options).value();
  SkylineBounds preprocessed =
      BoundedSkylineProbabilityPreprocessed(data, 0, model, options).value();
  EXPECT_LE(preprocessed.width(), flat.width() + 1e-12);
}

TEST(DecideThresholdTest, MatchesExactOnExample1) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  // sky(O) = 3/16 = 0.1875.
  EXPECT_TRUE(DecideThreshold(data, 0, model, 0.1).value());
  EXPECT_TRUE(DecideThreshold(data, 0, model, 0.1875).value());
  EXPECT_FALSE(DecideThreshold(data, 0, model, 0.19).value());
  EXPECT_FALSE(DecideThreshold(data, 0, model, 0.5).value());
}

TEST(DecideThresholdTest, AgreesWithExactOnRandomInstances) {
  for (std::uint64_t seed = 301; seed < 316; ++seed) {
    Dataset data = RandomSmallDataset(seed, 10, 3, 4);
    TablePreferenceModel model;
    for (ObjectId target = 0; target < 4; ++target) {
      double truth = ExactSkylineProbability(data, target, model).value();
      for (double tau : {0.05, 0.25, 0.5, 0.9}) {
        bool decided = DecideThreshold(data, target, model, tau).value();
        EXPECT_EQ(decided, truth >= tau)
            << "seed=" << seed << " target=" << target << " tau=" << tau;
      }
    }
  }
}

TEST(DecideThresholdTest, ReportsWhetherExactFallbackRan) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  bool used_exact = true;
  // Far-away thresholds are decided by cheap bounds.
  ASSERT_TRUE(DecideThreshold(data, 0, model, 0.99, {}, &used_exact).ok());
  EXPECT_FALSE(used_exact);
}

TEST(DecideThresholdTest, RejectsBadThreshold) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  EXPECT_EQ(DecideThreshold(data, 0, model, -0.1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecideThreshold(data, 0, model, 1.1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace skypref
