#include "src/core/solver.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::Figure1Dataset;
using skypref::testing::RandomSmallDataset;
using skypref::testing::UnanimousHalfRational;

TEST(SolverTest, CreateValidatesDataset) {
  TablePreferenceModel model;
  Dataset empty(2);
  EXPECT_EQ(SkylineSolver::Create(empty, model).status().code(),
            StatusCode::kFailedPrecondition);
  Dataset dup(1);
  dup.Append({1}).CheckOK();
  dup.Append({1}).CheckOK();
  EXPECT_EQ(SkylineSolver::Create(dup, model).status().code(),
            StatusCode::kFailedPrecondition);
  Dataset ok = Figure1Dataset();
  EXPECT_TRUE(SkylineSolver::Create(ok, model).ok());
}

TEST(SolverTest, DetAndDetPlusAgreeOnExample1) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  SolverOptions plain;
  plain.preprocess = false;
  SolverOptions plus;
  plus.preprocess = true;
  EXPECT_DOUBLE_EQ(solver.Exact(0, plain).value(), 3.0 / 16.0);
  EXPECT_DOUBLE_EQ(solver.Exact(0, plus).value(), 3.0 / 16.0);
}

TEST(SolverTest, DetPlusStatsShowAbsorptionAndPartition) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  SolveStats stats;
  SolverOptions options;
  options.preprocess = true;
  ASSERT_TRUE(solver.Exact(0, options, &stats).ok());
  EXPECT_EQ(stats.candidates, 4u);
  EXPECT_EQ(stats.after_absorption, 3u);   // Q1 absorbed
  EXPECT_EQ(stats.groups, 3u);             // three singletons
  EXPECT_EQ(stats.largest_group, 1u);
  EXPECT_EQ(stats.subsets_visited, 3u);    // one subset per singleton
}

TEST(SolverTest, DetStatsWithoutPreprocess) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  SolveStats stats;
  SolverOptions options;
  options.preprocess = false;
  options.exact.prune_zero = false;
  ASSERT_TRUE(solver.Exact(0, options, &stats).ok());
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.largest_group, 4u);
  EXPECT_EQ(stats.subsets_visited, 15u);
}

TEST(SolverTest, SamAndSamPlusConvergeToTruth) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  for (bool preprocess : {false, true}) {
    SolverOptions options;
    options.preprocess = preprocess;
    options.monte_carlo.samples = 100000;
    options.monte_carlo.seed = 3;
    double estimate = solver.MonteCarlo(0, options).value();
    EXPECT_NEAR(estimate, 3.0 / 16.0, 0.01) << "preprocess=" << preprocess;
  }
}

TEST(SolverTest, SamPlusHandlesSingletonGroupsExactly) {
  // After preprocessing, Example 1 is all singletons: Sam+ becomes fully
  // exact and needs zero samples.
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  SolveStats stats;
  SolverOptions options;
  options.preprocess = true;
  double estimate = solver.MonteCarlo(0, options, &stats).value();
  EXPECT_DOUBLE_EQ(estimate, 3.0 / 16.0);
  EXPECT_EQ(stats.samples_drawn, 0u);
}

TEST(SolverTest, IndependentBaselineAccessor) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  EXPECT_DOUBLE_EQ(solver.Independent(0).value(), 9.0 / 64.0);
}

TEST(SolverTest, AllTargetsDetEqualsDetPlus) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    Dataset data = RandomSmallDataset(seed, 10, 3, 4);
    TablePreferenceModel model;
    auto solver = SkylineSolver::Create(data, model).value();
    SolverOptions plain;
    plain.preprocess = false;
    SolverOptions plus;
    plus.preprocess = true;
    for (ObjectId target = 0; target < data.size(); ++target) {
      double det = solver.Exact(target, plain).value();
      double det_plus = solver.Exact(target, plus).value();
      EXPECT_NEAR(det, det_plus, 1e-12)
          << "seed=" << seed << " target=" << target;
    }
  }
}

TEST(SolverTest, RationalHelperWithAndWithoutPreprocess) {
  Dataset data = Example1Dataset();
  RationalPreferenceModel model = UnanimousHalfRational(data);
  Rational plain =
      ExactSkylineProbabilityRational(data, 0, model, false).value();
  Rational plus =
      ExactSkylineProbabilityRational(data, 0, model, true).value();
  EXPECT_EQ(plain, plus);
  EXPECT_EQ(plain, Rational::FromRatio(3, 16).value());
}

TEST(SolverTest, OutOfRangeTargets) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  EXPECT_EQ(solver.Exact(3).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(solver.MonteCarlo(3).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(solver.Independent(3).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(
      ExactSkylineProbabilityRational(data, 3, RationalPreferenceModel())
          .status()
          .code(),
      StatusCode::kOutOfRange);
}

TEST(SolverTest, ExactBudgetPropagatesFromOptions) {
  Dataset data = RandomSmallDataset(7, 14, 2, 4);
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  SolverOptions options;
  options.preprocess = false;
  options.exact.max_subsets = 10;
  options.exact.prune_zero = false;
  EXPECT_EQ(solver.Exact(0, options).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(SolverTest, OneDimensionalDataIsLinearViaPartition) {
  // The paper notes d = 1 is computable in O(n): all values are distinct,
  // so dominance events are independent. Det+ recovers this for free —
  // partition yields only singleton groups, one subset each.
  Dataset data(1);
  for (ValueId v = 0; v < 40; ++v) data.Append({v}).CheckOK();
  HashedPreferenceModel model(5,
                              HashedPreferenceModel::Style::kTotalUniform);
  auto solver = SkylineSolver::Create(data, model).value();
  SolveStats stats;
  double sky = solver.Exact(0, {}, &stats).value();
  EXPECT_EQ(stats.groups, 39u);
  EXPECT_EQ(stats.largest_group, 1u);
  EXPECT_EQ(stats.subsets_visited, 39u);  // one per candidate: linear
  // And it equals the independent product, which IS exact here.
  EXPECT_NEAR(sky, solver.Independent(0).value(), 1e-12);
}

TEST(SolverTest, SingleObjectDatasetIsAlwaysSkyline) {
  Dataset data(2);
  data.Append({3, 4}).CheckOK();
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  EXPECT_DOUBLE_EQ(solver.Exact(0).value(), 1.0);
  EXPECT_DOUBLE_EQ(solver.MonteCarlo(0).value(), 1.0);
}

}  // namespace
}  // namespace skypref
