#include "src/core/absorption.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/core/solver.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;
using skypref::testing::UnanimousHalfRational;

std::vector<ObjectId> AllBut(const Dataset& data, ObjectId target) {
  std::vector<ObjectId> ids;
  for (ObjectId i = 0; i < data.size(); ++i) {
    if (i != target) ids.push_back(i);
  }
  return ids;
}

TEST(AbsorbsTest, Example1Q1AbsorbedByQ2) {
  Dataset data = Example1Dataset();
  // Q2=(1,0) differs from O on dim 0 only; Q1=(1,1) matches Q2 there.
  EXPECT_TRUE(Absorbs(data, 0, /*absorber=*/2, /*absorbed=*/1));
  // Not the other way round: Q1 differs from O on both dims, and Q2
  // differs from Q1 on dim 1.
  EXPECT_FALSE(Absorbs(data, 0, /*absorber=*/1, /*absorbed=*/2));
  // Q3=(2,2) shares nothing.
  EXPECT_FALSE(Absorbs(data, 0, 2, 3));
  EXPECT_FALSE(Absorbs(data, 0, 3, 1));
  // Self-absorption is excluded.
  EXPECT_FALSE(Absorbs(data, 0, 2, 2));
}

TEST(AbsorptionTest, Example1DropsExactlyQ1) {
  Dataset data = Example1Dataset();
  AbsorptionStats stats;
  std::vector<ObjectId> survivors =
      AbsorbCandidates(data, 0, AllBut(data, 0), &stats);
  EXPECT_EQ(survivors, (std::vector<ObjectId>{2, 3, 4}));
  EXPECT_EQ(stats.input_candidates, 4u);
  EXPECT_EQ(stats.absorbed, 1u);
}

TEST(AbsorptionTest, PreservesSkylineProbabilityExactly) {
  Dataset data = Example1Dataset();
  RationalPreferenceModel model = UnanimousHalfRational(data);
  RationalOracle oracle(model);
  std::vector<ObjectId> all = AllBut(data, 0);
  std::vector<ObjectId> survivors = AbsorbCandidates(data, 0, all);
  Rational before = ExactSkylineProbability(data, 0, all, oracle).value();
  Rational after =
      ExactSkylineProbability(data, 0, survivors, oracle).value();
  EXPECT_EQ(before, after);
  EXPECT_EQ(after, Rational::FromRatio(3, 16).value());
}

TEST(AbsorptionTest, TransitiveChainCollapsesInOnePass) {
  // Qa differs from O on dim 0 only; Qb matches Qa there and differs on
  // dim 1 too; Qc matches Qb on both differing dims. Qa absorbs Qb,
  // Qb absorbs Qc, so Qa must absorb Qc (Corollary 1).
  Dataset data(3);
  data.Append({0, 0, 0}).CheckOK();  // O
  data.Append({1, 0, 0}).CheckOK();  // Qa
  data.Append({1, 1, 0}).CheckOK();  // Qb
  data.Append({1, 1, 1}).CheckOK();  // Qc
  EXPECT_TRUE(Absorbs(data, 0, 1, 2));
  EXPECT_TRUE(Absorbs(data, 0, 2, 3));
  EXPECT_TRUE(Absorbs(data, 0, 1, 3));  // transitivity
  std::vector<ObjectId> survivors = AbsorbCandidates(data, 0, AllBut(data, 0));
  EXPECT_EQ(survivors, (std::vector<ObjectId>{1}));
}

TEST(AbsorptionTest, DisjointCandidatesAreUntouched) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  data.Append({2, 2}).CheckOK();
  data.Append({3, 3}).CheckOK();
  std::vector<ObjectId> survivors = AbsorbCandidates(data, 0, AllBut(data, 0));
  EXPECT_EQ(survivors.size(), 3u);
}

TEST(AbsorptionTest, NeverDropsTheStrongestThreat) {
  // The absorber (the candidate whose dominating event contains the
  // others) must survive.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();   // O
  data.Append({1, 0}).CheckOK();   // absorber: differs on dim 0 only
  data.Append({1, 1}).CheckOK();   // absorbed
  data.Append({1, 2}).CheckOK();   // absorbed
  std::vector<ObjectId> survivors = AbsorbCandidates(data, 0, AllBut(data, 0));
  EXPECT_EQ(survivors, (std::vector<ObjectId>{1}));
}

TEST(AbsorptionTest, PropertyNeverChangesExactAnswer) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Dataset data = RandomSmallDataset(seed, 9, 2, 3);
    RationalPreferenceModel model = UnanimousHalfRational(data);
    RationalOracle oracle(model);
    for (ObjectId target = 0; target < 3; ++target) {
      std::vector<ObjectId> all = AllBut(data, target);
      std::vector<ObjectId> survivors = AbsorbCandidates(data, target, all);
      EXPECT_LE(survivors.size(), all.size());
      Rational before =
          ExactSkylineProbability(data, target, all, oracle).value();
      Rational after =
          ExactSkylineProbability(data, target, survivors, oracle).value();
      EXPECT_EQ(before, after) << "seed=" << seed << " target=" << target;
    }
  }
}

TEST(AbsorptionTest, EmptyCandidateList) {
  Dataset data = Example1Dataset();
  std::vector<ObjectId> none;
  EXPECT_TRUE(AbsorbCandidates(data, 0, none).empty());
}

}  // namespace
}  // namespace skypref
