#include "src/core/prob_skyline.h"

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;

std::vector<ObjectId> ReferenceSkyline(const Dataset& data,
                                       const PreferenceModel& model,
                                       double tau) {
  std::vector<ObjectId> skyline;
  for (ObjectId i = 0; i < data.size(); ++i) {
    if (ExactSkylineProbability(data, i, model).value() >= tau) {
      skyline.push_back(i);
    }
  }
  return skyline;
}

TEST(ProbSkylineTest, MatchesPerObjectExactOnExample1) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  for (double tau : {0.1, 0.1875, 0.3, 0.5}) {
    EXPECT_EQ(ExactProbabilisticSkyline(data, model, tau).value(),
              ReferenceSkyline(data, model, tau))
        << "tau=" << tau;
  }
}

TEST(ProbSkylineTest, MatchesPerObjectExactOnRandomInstances) {
  for (std::uint64_t seed = 601; seed < 613; ++seed) {
    Dataset data = RandomSmallDataset(seed, 10, 3, 4);
    TablePreferenceModel model;
    for (double tau : {0.05, 0.3, 0.7}) {
      EXPECT_EQ(ExactProbabilisticSkyline(data, model, tau).value(),
                ReferenceSkyline(data, model, tau))
          << "seed=" << seed << " tau=" << tau;
    }
  }
}

TEST(ProbSkylineTest, BoundsDecideMostObjects) {
  // With extreme thresholds almost every object is screened by cheap
  // bounds; the stats record the split.
  Dataset data = RandomSmallDataset(99, 16, 3, 4);
  TablePreferenceModel model;
  ProbSkylineStats stats;
  ASSERT_TRUE(
      ExactProbabilisticSkyline(data, model, 0.95, {}, &stats).ok());
  EXPECT_EQ(stats.decided_by_bounds + stats.exact_fallbacks, data.size());
  EXPECT_GT(stats.decided_by_bounds, 0u);
}

TEST(ProbSkylineTest, ThresholdOneMeansCertainSkyline) {
  // Only objects that are skyline points with probability exactly 1.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  TablePreferenceModel model;
  model.Set(0, 0, 1, 1.0, 0.0).CheckOK();
  model.Set(1, 0, 1, 1.0, 0.0).CheckOK();
  auto skyline = ExactProbabilisticSkyline(data, model, 1.0).value();
  EXPECT_EQ(skyline, (std::vector<ObjectId>{0}));
}

TEST(ProbSkylineTest, RejectsBadArguments) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_EQ(ExactProbabilisticSkyline(data, model, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ExactProbabilisticSkyline(data, model, 1.5).status().code(),
            StatusCode::kInvalidArgument);
  Dataset empty(1);
  EXPECT_EQ(ExactProbabilisticSkyline(empty, model, 0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace skypref
