#include "src/core/all_worlds.h"

#include <gtest/gtest.h>

#include <chrono>

#include "src/core/exact.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::Figure1Dataset;
using skypref::testing::RandomSmallDataset;

TEST(AllWorldsSampleSizeTest, GrowsWithObjectCount) {
  EXPECT_GT(AllWorldsSampleSize(0.01, 0.01, 100),
            AllWorldsSampleSize(0.01, 0.01, 10));
  EXPECT_EQ(AllWorldsSampleSize(0.0, 0.01, 10), 0u);
  EXPECT_EQ(AllWorldsSampleSize(0.01, 0.0, 10), 0u);
  EXPECT_EQ(AllWorldsSampleSize(0.01, 0.01, 0), 0u);
}

TEST(AllWorldsTest, MatchesPerObjectExactOnFigure1) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  AllWorldsOptions options;
  options.samples = 200000;
  options.seed = 5;
  auto all = EstimateAllSkylineProbabilities(data, model, options).value();
  ASSERT_EQ(all.estimates.size(), 3u);
  EXPECT_NEAR(all.estimates[0], 0.5, 0.005);   // sky(P1)
  EXPECT_NEAR(all.estimates[1], 0.25, 0.005);  // sky(P2)
  EXPECT_NEAR(all.estimates[2], 0.5, 0.005);   // sky(P3)
}

TEST(AllWorldsTest, MatchesPerObjectExactOnExample1) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  AllWorldsOptions options;
  options.samples = 100000;
  options.seed = 17;
  auto all = EstimateAllSkylineProbabilities(data, model, options).value();
  for (ObjectId i = 0; i < data.size(); ++i) {
    double truth = ExactSkylineProbability(data, i, model).value();
    EXPECT_NEAR(all.estimates[i], truth, 0.01) << "object " << i;
  }
}

TEST(AllWorldsTest, ConsistentWorldsAcrossObjects) {
  // Within one world the same pair outcome is shared by all dominance
  // checks; with incomparability mass, estimates must match exact values
  // that the independence shortcut would get wrong.
  Dataset data = RandomSmallDataset(23, 8, 2, 3);
  TablePreferenceModel model;
  model.Set(0, 0, 1, 0.4, 0.3).CheckOK();
  model.Set(0, 0, 2, 0.2, 0.5).CheckOK();
  model.Set(0, 1, 2, 0.6, 0.1).CheckOK();
  model.Set(1, 0, 1, 0.3, 0.3).CheckOK();
  model.Set(1, 0, 2, 0.5, 0.25).CheckOK();
  model.Set(1, 1, 2, 0.45, 0.45).CheckOK();
  AllWorldsOptions options;
  options.samples = 150000;
  options.seed = 29;
  auto all = EstimateAllSkylineProbabilities(data, model, options).value();
  for (ObjectId i = 0; i < data.size(); ++i) {
    double truth = ExactSkylineProbability(data, i, model).value();
    EXPECT_NEAR(all.estimates[i], truth, 0.01) << "object " << i;
  }
}

TEST(AllWorldsTest, DeterministicPerSeed) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  AllWorldsOptions options;
  options.samples = 500;
  options.seed = 3;
  auto a = EstimateAllSkylineProbabilities(data, model, options).value();
  auto b = EstimateAllSkylineProbabilities(data, model, options).value();
  EXPECT_EQ(a.estimates, b.estimates);
}

TEST(AllWorldsTest, RejectsInvalidDataAndOptions) {
  TablePreferenceModel model;
  Dataset empty(1);
  EXPECT_FALSE(EstimateAllSkylineProbabilities(empty, model).ok());
  Dataset data = Figure1Dataset();
  AllWorldsOptions bad;
  bad.samples = 0;
  bad.epsilon = 0.0;
  EXPECT_EQ(
      EstimateAllSkylineProbabilities(data, model, bad).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(ProbabilisticSkylineTest, ThresholdFiltersObjects) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  AllWorldsOptions options;
  options.samples = 50000;
  options.seed = 101;
  // Exact values: sky(O)=3/16=0.1875. Pick tau between strata.
  auto skyline = ProbabilisticSkyline(data, model, 0.3, options).value();
  for (ObjectId id : skyline) {
    double truth = ExactSkylineProbability(data, id, model).value();
    EXPECT_GE(truth, 0.28) << "object " << id;
  }
  auto permissive = ProbabilisticSkyline(data, model, 0.05, options).value();
  EXPECT_GE(permissive.size(), skyline.size());
}

TEST(ProbabilisticSkylineTest, RejectsBadThreshold) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  EXPECT_EQ(ProbabilisticSkyline(data, model, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ProbabilisticSkyline(data, model, 1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TopKSkylineTest, RanksByEstimate) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  AllWorldsOptions options;
  options.samples = 50000;
  options.seed = 13;
  auto top = TopKSkyline(data, model, 3, options).value();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].second, top[1].second);
  EXPECT_GE(top[1].second, top[2].second);
}

TEST(AllWorldsTest, PreCancelledTokenCancelsBeforeSampling) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  CancelToken token;
  token.RequestCancel();
  AllWorldsOptions options;
  options.samples = 100000;
  options.cancel = &token;
  EXPECT_EQ(
      EstimateAllSkylineProbabilities(data, model, options).status().code(),
      StatusCode::kCancelled);
}

TEST(AllWorldsTest, ExpiredDeadlineExhaustsTheEstimate) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  AllWorldsOptions options;
  options.samples = 100000;
  options.deadline = Deadline::At(Deadline::Clock::now() -
                                  std::chrono::seconds(1));
  EXPECT_EQ(
      EstimateAllSkylineProbabilities(data, model, options).status().code(),
      StatusCode::kResourceExhausted);
  // Cancellation wins over an expired deadline.
  CancelToken token;
  token.RequestCancel();
  options.cancel = &token;
  EXPECT_EQ(
      EstimateAllSkylineProbabilities(data, model, options).status().code(),
      StatusCode::kCancelled);
}

TEST(TopKSkylineTest, KLargerThanDatasetReturnsAll) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  AllWorldsOptions options;
  options.samples = 1000;
  auto top = TopKSkyline(data, model, 99, options).value();
  EXPECT_EQ(top.size(), 3u);
  EXPECT_EQ(TopKSkyline(data, model, 0, options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace skypref
