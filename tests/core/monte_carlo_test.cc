#include "src/core/monte_carlo.h"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::Figure1Dataset;
using skypref::testing::RandomSmallDataset;

TEST(HoeffdingTest, PaperSampleSize) {
  // The paper: for epsilon = delta = 0.01 the bound demands 26,492 samples.
  EXPECT_EQ(HoeffdingSampleSize(0.01, 0.01), 26492u);
}

TEST(HoeffdingTest, ShrinksWithLooserRequirements) {
  EXPECT_LT(HoeffdingSampleSize(0.05, 0.05), HoeffdingSampleSize(0.01, 0.01));
  EXPECT_EQ(HoeffdingSampleSize(-1.0, 0.5), 0u);
  EXPECT_EQ(HoeffdingSampleSize(0.1, 0.0), 0u);
}

TEST(HoeffdingTest, TinyEpsilonSaturatesInsteadOfOverflowing) {
  // epsilon = 1e-12 demands ~1e24 samples — far beyond uint64. Casting a
  // double above UINT64_MAX is undefined behavior, so the bound must
  // saturate, not wrap or trap.
  const std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(HoeffdingSampleSize(1e-12, 0.01), kMax);
  EXPECT_EQ(HoeffdingSampleSize(1e-300, 0.5), kMax);
  // Saturation kicks in exactly when the real bound leaves the integer
  // range; a merely-large epsilon still computes the true ceiling.
  EXPECT_LT(HoeffdingSampleSize(1e-6, 0.01), kMax);
  // Monotonicity survives the clamp: tighter epsilon never asks for
  // fewer samples.
  EXPECT_LE(HoeffdingSampleSize(1e-6, 0.01), HoeffdingSampleSize(1e-9, 0.01));
  EXPECT_LE(HoeffdingSampleSize(1e-9, 0.01), HoeffdingSampleSize(1e-12, 0.01));
}

TEST(MonteCarloTest, ConvergesToFigure1Truth) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 200000;
  options.seed = 12;
  auto result = MonteCarloSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 0.5, 0.005);
  EXPECT_EQ(result->samples, 200000u);
}

TEST(MonteCarloTest, ConvergesToExample1Truth) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 200000;
  options.seed = 34;
  auto result = MonteCarloSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 3.0 / 16.0, 0.005);
  // Crucially NOT the independent baseline's 9/64 = 0.1406: the sampler
  // shares value-pair outcomes across candidates within a world.
  EXPECT_GT(result->estimate, 0.17);
}

TEST(MonteCarloTest, DeterministicPerSeed) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 1000;
  options.seed = 7;
  auto a = MonteCarloSkylineProbability(data, 0, model, options);
  auto b = MonteCarloSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->skyline_worlds, b->skyline_worlds);
  options.seed = 8;
  auto c = MonteCarloSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->skyline_worlds, c->skyline_worlds);
}

TEST(MonteCarloTest, EpsilonDeltaDrivesSampleCount) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.epsilon = 0.05;
  options.delta = 0.1;
  auto result = MonteCarloSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->samples, HoeffdingSampleSize(0.05, 0.1));
  EXPECT_NEAR(result->estimate, 0.5, 0.05);
}

TEST(MonteCarloTest, LazySamplingDrawsFewerPairs) {
  Dataset data = RandomSmallDataset(5, 30, 3, 4);
  TablePreferenceModel model;
  MonteCarloOptions lazy;
  lazy.samples = 2000;
  lazy.seed = 9;
  lazy.lazy = true;
  MonteCarloOptions eager = lazy;
  eager.lazy = false;
  auto lazy_result = MonteCarloSkylineProbability(data, 0, model, lazy);
  auto eager_result = MonteCarloSkylineProbability(data, 0, model, eager);
  ASSERT_TRUE(lazy_result.ok());
  ASSERT_TRUE(eager_result.ok());
  EXPECT_LT(lazy_result->pair_draws, eager_result->pair_draws);
}

TEST(MonteCarloTest, LazyAndEagerConvergeToTheSameValue) {
  Dataset data = RandomSmallDataset(6, 10, 2, 4);
  TablePreferenceModel model;
  double truth = ExactSkylineProbability(data, 0, model).value();
  for (bool lazy : {true, false}) {
    MonteCarloOptions options;
    options.samples = 100000;
    options.seed = 21;
    options.lazy = lazy;
    auto result = MonteCarloSkylineProbability(data, 0, model, options);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->estimate, truth, 0.01) << "lazy=" << lazy;
  }
}

TEST(MonteCarloTest, SortingIsAPerformanceNotCorrectnessKnob) {
  Dataset data = RandomSmallDataset(8, 12, 2, 4);
  TablePreferenceModel model;
  double truth = ExactSkylineProbability(data, 0, model).value();
  for (bool sorted : {true, false}) {
    MonteCarloOptions options;
    options.samples = 100000;
    options.seed = 4;
    options.sort_by_dominance = sorted;
    auto result = MonteCarloSkylineProbability(data, 0, model, options);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->estimate, truth, 0.01) << "sorted=" << sorted;
  }
}

TEST(MonteCarloTest, CertainPreferencesGiveExactAnswerEveryWorld) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  TablePreferenceModel model;
  model.Set(0, 1, 0, 1.0, 0.0).CheckOK();
  model.Set(1, 1, 0, 1.0, 0.0).CheckOK();
  MonteCarloOptions options;
  options.samples = 100;
  auto result = MonteCarloSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 0.0);
  auto other = MonteCarloSkylineProbability(data, 1, model, options);
  ASSERT_TRUE(other.ok());
  EXPECT_DOUBLE_EQ(other->estimate, 1.0);
}

TEST(MonteCarloTest, HoeffdingBoundHoldsAcrossSeeds) {
  Dataset data = RandomSmallDataset(10, 8, 2, 3);
  TablePreferenceModel model;
  double truth = ExactSkylineProbability(data, 0, model).value();
  const double epsilon = 0.05;
  const double delta = 0.01;
  int violations = 0;
  const int runs = 40;
  for (int seed = 0; seed < runs; ++seed) {
    MonteCarloOptions options;
    options.epsilon = epsilon;
    options.delta = delta;
    options.seed = static_cast<std::uint64_t>(seed) + 1;
    auto result = MonteCarloSkylineProbability(data, 0, model, options);
    ASSERT_TRUE(result.ok());
    if (std::abs(result->estimate - truth) >= epsilon) ++violations;
  }
  // Expected violations: <= delta * runs = 0.4; allow generous slack.
  EXPECT_LE(violations, 2);
}

TEST(MonteCarloTest, InvalidArgumentsRejected) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  MonteCarloOptions bad;
  bad.samples = 0;
  bad.epsilon = 0.0;
  EXPECT_EQ(MonteCarloSkylineProbability(data, 0, model, bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      MonteCarloSkylineProbability(data, 42, model, {}).status().code(),
      StatusCode::kOutOfRange);
  std::vector<ObjectId> self{0};
  EXPECT_EQ(MonteCarloSkylineProbability(data, 0, self, model, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(HoeffdingTest, EpsilonIsTheInverseOfSampleSize) {
  for (double epsilon : {0.1, 0.05, 0.01}) {
    for (double delta : {0.1, 0.01}) {
      std::uint64_t m = HoeffdingSampleSize(epsilon, delta);
      // The sample count is rounded up, so the certified epsilon is at
      // most the requested one.
      EXPECT_LE(HoeffdingEpsilon(m, delta), epsilon + 1e-12);
      EXPECT_GT(HoeffdingEpsilon(m, delta), 0.0);
    }
  }
}

TEST(HoeffdingTest, EpsilonWidensAsSamplesShrink) {
  EXPECT_GT(HoeffdingEpsilon(64, 0.01), HoeffdingEpsilon(3000, 0.01));
  // Vacuous bound on degenerate inputs: no samples, or no valid delta.
  EXPECT_EQ(HoeffdingEpsilon(0, 0.01), 1.0);
  EXPECT_EQ(HoeffdingEpsilon(100, 0.0), 1.0);
  EXPECT_EQ(HoeffdingEpsilon(100, 1.5), 1.0);
}

TEST(MonteCarloTest, ExpiredDeadlineReturnsPartialResult) {
  Dataset data = RandomSmallDataset(31, 10, 2, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 10000;
  options.deadline = Deadline::At(Deadline::Clock::now() -
                                  std::chrono::seconds(1));
  auto run = MonteCarloSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->truncated);
  // The deadline is polled every 64 worlds, AFTER sampling, so the
  // partial estimate always rests on at least min(64, samples) draws.
  EXPECT_EQ(run->samples, 64u);
  EXPECT_EQ(run->requested_samples, 10000u);
  EXPECT_GE(run->estimate, 0.0);
  EXPECT_LE(run->estimate, 1.0);
}

TEST(MonteCarloTest, UnexpiredTimeLimitDrawsEverySample) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 200;
  options.time_limit_seconds = 3600.0;
  auto run = MonteCarloSkylineProbability(data, 0, model, options);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->truncated);
  EXPECT_EQ(run->samples, 200u);
  EXPECT_EQ(run->requested_samples, 200u);
}

TEST(MonteCarloTest, PreCancelledTokenReturnsCancelled) {
  Dataset data = Figure1Dataset();
  TablePreferenceModel model;
  CancelToken token;
  token.RequestCancel();
  MonteCarloOptions options;
  options.samples = 200;
  options.cancel = &token;
  EXPECT_EQ(MonteCarloSkylineProbability(data, 0, model, options)
                .status()
                .code(),
            StatusCode::kCancelled);
}

}  // namespace
}  // namespace skypref
