#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/parallel.h"
#include "test_util.h"

// ThreadSanitizer-targeted determinism tests: the documented contract is
// that every Parallel* solver seeds its PRNG from the CHUNK index, never
// the executing thread, so results are bit-identical for any thread
// count including the 0-thread inline pool. A data race in the chunk
// fan-out would show up either as a TSan report or as a determinism
// violation here. Run under the `tsan` preset via ctest -L concurrency.

namespace skypref {
namespace {

using skypref::testing::RandomSmallDataset;

TEST(ParallelDeterminismStressTest, MonteCarloThreadCountSweep) {
  Dataset data = RandomSmallDataset(91, 12, 3, 4);
  HashedPreferenceModel model(5,
                              HashedPreferenceModel::Style::kSimplexUniform);
  MonteCarloOptions options;
  options.samples = 4000;
  options.seed = 99;

  ThreadPool reference_pool(0);
  auto reference = ParallelMonteCarloSkylineProbability(
      data, 0, model, reference_pool, options);
  ASSERT_TRUE(reference.ok());

  for (std::size_t threads : {1u, 2u, 3u, 5u, 8u}) {
    ThreadPool pool(threads);
    auto run =
        ParallelMonteCarloSkylineProbability(data, 0, model, pool, options);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    EXPECT_EQ(run->skyline_worlds, reference->skyline_worlds)
        << "threads=" << threads;
    EXPECT_EQ(run->samples, reference->samples) << "threads=" << threads;
    EXPECT_EQ(run->estimate, reference->estimate) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismStressTest, MonteCarloRepeatedRunsOnOnePool) {
  // The same pool must reproduce the same estimate run after run: stale
  // batch state (a leftover next_index_ or current_fn_) would break this
  // long before it segfaults.
  Dataset data = RandomSmallDataset(17, 8, 2, 3);
  HashedPreferenceModel model(3, HashedPreferenceModel::Style::kTotalUniform);
  MonteCarloOptions options;
  options.samples = 2000;
  options.seed = 7;
  ThreadPool pool(4);
  auto first = ParallelMonteCarloSkylineProbability(data, 1, model, pool,
                                                    options);
  ASSERT_TRUE(first.ok());
  for (int round = 0; round < 25; ++round) {
    auto again = ParallelMonteCarloSkylineProbability(data, 1, model, pool,
                                                      options);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->skyline_worlds, first->skyline_worlds)
        << "round " << round;
  }
}

TEST(ParallelDeterminismStressTest, ExactGroupFanOutMatchesInline) {
  Dataset data = RandomSmallDataset(29, 16, 3, 4);
  TablePreferenceModel model;
  ThreadPool inline_pool(0);
  ThreadPool pool(6);
  for (ObjectId target = 0; target < 6; ++target) {
    auto serial =
        ParallelExactSkylineProbability(data, target, model, inline_pool);
    auto parallel = ParallelExactSkylineProbability(data, target, model, pool);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    // Group results multiply in a fixed order, so equality is exact.
    EXPECT_EQ(serial.value(), parallel.value()) << "target " << target;
  }
}

TEST(ParallelDeterminismStressTest, IntraGroupEngineThreadSweep) {
  // One 18-candidate independence group: every candidate shares dim-0
  // value 1 against the target's 0, so the solve runs on the subtree-
  // splitting ParallelExactEngine. Under TSan this exercises the shared
  // budget atomics and the abort flag; determinism-wise the result must
  // be bit-identical for every thread count and every repetition.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  for (std::uint32_t i = 0; i < 18; ++i) {
    data.Append({1, i + 1}).CheckOK();
  }
  TablePreferenceModel model;
  ThreadPool inline_pool(0);
  auto reference = ParallelExactSkylineProbability(data, 0, model,
                                                   inline_pool);
  ASSERT_TRUE(reference.ok());
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 3; ++round) {
      auto run = ParallelExactSkylineProbability(data, 0, model, pool);
      ASSERT_TRUE(run.ok()) << "threads=" << threads << " round=" << round;
      ASSERT_EQ(run.value(), reference.value())
          << "threads=" << threads << " round=" << round;
    }
  }
}

TEST(ParallelDeterminismStressTest, IntraGroupEngineBudgetRace) {
  // A budget that trips mid-solve: every thread count must agree that
  // the solve fails (the total charged against max_subsets is the same
  // full enumeration count regardless of interleaving).
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  for (std::uint32_t i = 0; i < 18; ++i) {
    data.Append({1, i + 1}).CheckOK();
  }
  TablePreferenceModel model;
  ExactOptions tight;
  tight.max_subsets = (1u << 17);  // half of the 2^18 - 1 subsets
  for (std::size_t threads : {0u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(ParallelExactSkylineProbability(data, 0, model, pool, tight)
                  .status()
                  .code(),
              StatusCode::kResourceExhausted)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismStressTest, BatchSolverThreadSweep) {
  Dataset data = RandomSmallDataset(59, 16, 3, 4);
  TablePreferenceModel model;
  ThreadPool reference_pool(0);
  auto reference =
      BatchExactSkylineProbabilities(data, model, reference_pool);
  ASSERT_TRUE(reference.ok());
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    auto run = BatchExactSkylineProbabilities(data, model, pool);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    ASSERT_EQ(run.value(), reference.value()) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismStressTest, AllWorldsSweepAndSharedPoolReuse) {
  Dataset data = RandomSmallDataset(53, 14, 2, 4);
  HashedPreferenceModel model(11, HashedPreferenceModel::Style::kTotalUniform);
  AllWorldsOptions options;
  options.samples = 3000;
  options.seed = 21;

  ThreadPool reference_pool(0);
  auto reference = ParallelEstimateAllSkylineProbabilities(
      data, model, reference_pool, options);
  ASSERT_TRUE(reference.ok());

  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    auto run =
        ParallelEstimateAllSkylineProbabilities(data, model, pool, options);
    ASSERT_TRUE(run.ok());
    ASSERT_EQ(run->estimates, reference->estimates) << "round " << round;
  }
}

}  // namespace
}  // namespace skypref
