#include "src/core/parallel.h"

#include <chrono>
#include <cstddef>

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "src/workload/block_zipf_generator.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;

TEST(ParallelExactTest, MatchesSerialDetPlus) {
  Dataset data = RandomSmallDataset(41, 14, 3, 4);
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  ThreadPool pool(4);
  for (ObjectId target = 0; target < 5; ++target) {
    double serial = solver.Exact(target).value();
    double parallel =
        ParallelExactSkylineProbability(data, target, model, pool).value();
    EXPECT_NEAR(parallel, serial, 1e-12) << "target " << target;
  }
}

TEST(ParallelExactTest, ZeroThreadPoolIsIdentical) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ThreadPool inline_pool(0);
  EXPECT_DOUBLE_EQ(
      ParallelExactSkylineProbability(data, 0, model, inline_pool).value(),
      3.0 / 16.0);
}

TEST(ParallelExactTest, GroupBudgetErrorsPropagate) {
  // A chained group of three candidates that absorption cannot shrink:
  // (1,1)-(1,2) share dim-0 value 1, (1,2)-(3,2) share dim-1 value 2.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  data.Append({1, 2}).CheckOK();
  data.Append({3, 2}).CheckOK();
  TablePreferenceModel model;
  ThreadPool pool(2);
  ExactOptions tight;
  tight.max_subsets = 1;  // the 3-member group needs 7 subsets
  auto result =
      ParallelExactSkylineProbability(data, 0, model, pool, tight);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// One independence group: every candidate shares dim-0 value 1 (vs the
// target's 0) while staying distinct on dim 1, so absorption keeps all
// of them and partition cannot split. Forces the intra-group engine once
// the group passes min_split_candidates.
Dataset SingleGroupDataset(std::size_t candidates) {
  Dataset data(2);
  data.Append({0, 0}).CheckOK();  // target
  for (std::size_t i = 0; i < candidates; ++i) {
    data.Append({1, static_cast<ValueId>(i + 1)}).CheckOK();
  }
  return data;
}

TEST(ParallelExactTest, IntraGroupSplitMatchesSerialEngine) {
  Dataset data = SingleGroupDataset(17);
  TablePreferenceModel model;
  SolveStats stats;
  ThreadPool pool(4);
  auto split = ParallelExactSkylineProbability(data, 0, model, pool, {}, {},
                                               &stats);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.largest_group, 17u);
  auto solver = SkylineSolver::Create(data, model).value();
  SolveStats serial_stats;
  double serial = solver.Exact(0, {}, &serial_stats).value();
  // The task decomposition re-associates the compensated sum, so the
  // split result may differ from the serial one in the last ulps — but
  // never beyond summation tolerance.
  EXPECT_NEAR(split.value(), serial, 1e-12);
  EXPECT_EQ(stats.subsets_visited, serial_stats.subsets_visited);
}

TEST(ParallelExactTest, IntraGroupSplitThreadCountInvariance) {
  Dataset data = SingleGroupDataset(18);
  TablePreferenceModel model;
  ThreadPool pool0(0), pool1(1), pool2(2), pool8(8);
  auto baseline = ParallelExactSkylineProbability(data, 0, model, pool0);
  ASSERT_TRUE(baseline.ok());
  for (ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    auto run = ParallelExactSkylineProbability(data, 0, model, *pool);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.value(), baseline.value())
        << "threads=" << pool->thread_count();
  }
}

TEST(ParallelExactTest, TaskCountIsPartOfTheNumericContract) {
  Dataset data = SingleGroupDataset(18);
  TablePreferenceModel model;
  ThreadPool pool(3);
  ParallelOptions tasks32;
  tasks32.exact_tasks = 32;
  auto a = ParallelExactSkylineProbability(data, 0, model, pool, {}, tasks32);
  auto b = ParallelExactSkylineProbability(data, 0, model, pool, {}, tasks32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(ParallelExactTest, SplitGroupBudgetErrorsPropagate) {
  Dataset data = SingleGroupDataset(18);
  TablePreferenceModel model;
  ThreadPool pool(4);
  ExactOptions tight;
  tight.max_subsets = 1000;  // the group enumerates 2^18 - 1 subsets
  EXPECT_EQ(ParallelExactSkylineProbability(data, 0, model, pool, tight)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(ParallelExactTest, PreExpiredDeadlineAbortsTheWholeQuery) {
  Dataset data = SingleGroupDataset(18);
  TablePreferenceModel model;
  ThreadPool pool(4);
  ExactOptions expired;
  expired.deadline = Deadline::At(std::chrono::steady_clock::now() -
                                  std::chrono::seconds(1));
  EXPECT_EQ(ParallelExactSkylineProbability(data, 0, model, pool, expired)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(ParallelExactTest, RecordsGroupSizesLongestFirstInputOrder) {
  Dataset data = RandomSmallDataset(47, 14, 3, 4);
  TablePreferenceModel model;
  ThreadPool pool(2);
  SolveStats stats;
  auto run =
      ParallelExactSkylineProbability(data, 0, model, pool, {}, {}, &stats);
  ASSERT_TRUE(run.ok());
  // group_sizes stays in partition order (the reduction order), whatever
  // order the scheduler dispatched the groups in.
  EXPECT_EQ(stats.group_sizes.size(), stats.groups);
  std::size_t total = 0;
  for (std::size_t size : stats.group_sizes) total += size;
  EXPECT_EQ(total, stats.after_absorption);
}

TEST(ParallelMonteCarloTest, ThreadCountDoesNotChangeTheEstimate) {
  Dataset data = RandomSmallDataset(43, 10, 2, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 20000;
  options.seed = 17;
  ThreadPool pool0(0), pool2(2), pool6(6);
  auto a =
      ParallelMonteCarloSkylineProbability(data, 0, model, pool0, options);
  auto b =
      ParallelMonteCarloSkylineProbability(data, 0, model, pool2, options);
  auto c =
      ParallelMonteCarloSkylineProbability(data, 0, model, pool6, options);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->skyline_worlds, b->skyline_worlds);
  EXPECT_EQ(a->skyline_worlds, c->skyline_worlds);
  EXPECT_EQ(a->samples, 20000u);
}

TEST(ParallelMonteCarloTest, ConvergesToExact) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ThreadPool pool(4);
  MonteCarloOptions options;
  options.samples = 150000;
  options.seed = 23;
  auto result =
      ParallelMonteCarloSkylineProbability(data, 0, model, pool, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 3.0 / 16.0, 0.01);
}

TEST(ParallelMonteCarloTest, ChunkCountIsPartOfTheContract) {
  // Different chunk counts legitimately produce different (but equally
  // valid) estimates; the same chunk count always reproduces.
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ThreadPool pool(3);
  MonteCarloOptions options;
  options.samples = 5000;
  ParallelOptions chunks16;
  chunks16.sample_chunks = 16;
  auto a = ParallelMonteCarloSkylineProbability(data, 0, model, pool,
                                                options, chunks16);
  auto b = ParallelMonteCarloSkylineProbability(data, 0, model, pool,
                                                options, chunks16);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->skyline_worlds, b->skyline_worlds);
  ParallelOptions bad;
  bad.sample_chunks = 0;
  EXPECT_EQ(ParallelMonteCarloSkylineProbability(data, 0, model, pool,
                                                 options, bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ParallelAllWorldsTest, ThreadCountInvariantAndAccurate) {
  BlockZipfOptions gen;
  gen.objects = 60;
  gen.dimensions = 2;
  gen.block_size = 6;
  gen.values_per_block = 4;
  gen.seed = 3;
  Dataset data = GenerateBlockZipf(gen).value();
  HashedPreferenceModel base(7, HashedPreferenceModel::Style::kTotalUniform);
  BlockLocalPreferenceModel prefs(base, 4);

  AllWorldsOptions options;
  options.samples = 40000;
  options.seed = 11;
  ThreadPool pool0(0), pool4(4);
  auto serial = ParallelEstimateAllSkylineProbabilities(data, prefs, pool0,
                                                        options);
  auto parallel = ParallelEstimateAllSkylineProbabilities(data, prefs, pool4,
                                                          options);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->estimates, parallel->estimates);

  auto solver = SkylineSolver::Create(data, prefs).value();
  for (ObjectId i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(parallel->estimates[i], solver.Exact(i).value(), 0.015)
        << "object " << i;
  }
}

TEST(ParallelExactTest, PreCancelledTokenCancelsAtEveryThreadCount) {
  // Cancellation is observed at deterministic work boundaries, so a
  // token cancelled before the solve starts yields Status::Cancelled —
  // not ResourceExhausted, not a partial answer — at any thread count.
  Dataset data = RandomSmallDataset(47, 14, 3, 4);
  TablePreferenceModel model;
  CancelToken token;
  token.RequestCancel();
  ExactOptions cancelled;
  cancelled.cancel = &token;
  for (std::size_t threads : {0u, 1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(ParallelExactSkylineProbability(data, 0, model, pool, cancelled)
                  .status()
                  .code(),
              StatusCode::kCancelled)
        << "threads " << threads;
  }
}

TEST(ParallelMonteCarloTest, SharedDeadlineTruncatesEveryChunk) {
  Dataset data = RandomSmallDataset(31, 10, 2, 4);
  TablePreferenceModel model;
  ThreadPool pool(4);
  MonteCarloOptions options;
  options.samples = 8192;
  options.deadline = Deadline::At(Deadline::Clock::now() -
                                  std::chrono::seconds(1));
  auto run = ParallelMonteCarloSkylineProbability(data, 0, model, pool,
                                                  options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->truncated);
  EXPECT_LT(run->samples, 8192u);
  EXPECT_GT(run->samples, 0u);
  EXPECT_EQ(run->requested_samples, 8192u);
  EXPECT_GE(run->estimate, 0.0);
  EXPECT_LE(run->estimate, 1.0);
}

TEST(ParallelMonteCarloTest, PreCancelledTokenCancels) {
  Dataset data = RandomSmallDataset(31, 10, 2, 4);
  TablePreferenceModel model;
  ThreadPool pool(2);
  CancelToken token;
  token.RequestCancel();
  MonteCarloOptions options;
  options.samples = 1000;
  options.cancel = &token;
  EXPECT_EQ(ParallelMonteCarloSkylineProbability(data, 0, model, pool, options)
                .status()
                .code(),
            StatusCode::kCancelled);
}

TEST(ParallelAllWorldsTest, PreCancelledTokenCancelsAtEveryThreadCount) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  CancelToken token;
  token.RequestCancel();
  AllWorldsOptions options;
  options.samples = 40000;
  options.cancel = &token;
  for (std::size_t threads : {0u, 1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(
        ParallelEstimateAllSkylineProbabilities(data, model, pool, options)
            .status()
            .code(),
        StatusCode::kCancelled)
        << "threads " << threads;
  }
}

TEST(ParallelAllWorldsTest, ExpiredDeadlineExhaustsEveryChunk) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ThreadPool pool(4);
  AllWorldsOptions options;
  options.samples = 40000;
  options.deadline = Deadline::At(Deadline::Clock::now() -
                                  std::chrono::seconds(1));
  EXPECT_EQ(
      ParallelEstimateAllSkylineProbabilities(data, model, pool, options)
          .status()
          .code(),
      StatusCode::kResourceExhausted);
}

TEST(ParallelAllWorldsTest, RejectsInvalidInputs) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ThreadPool pool(2);
  AllWorldsOptions zero;
  zero.samples = 0;
  zero.epsilon = 0.0;
  EXPECT_EQ(
      ParallelEstimateAllSkylineProbabilities(data, model, pool, zero)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace skypref
