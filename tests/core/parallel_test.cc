#include "src/core/parallel.h"

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "src/workload/block_zipf_generator.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;

TEST(ParallelExactTest, MatchesSerialDetPlus) {
  Dataset data = RandomSmallDataset(41, 14, 3, 4);
  TablePreferenceModel model;
  auto solver = SkylineSolver::Create(data, model).value();
  ThreadPool pool(4);
  for (ObjectId target = 0; target < 5; ++target) {
    double serial = solver.Exact(target).value();
    double parallel =
        ParallelExactSkylineProbability(data, target, model, pool).value();
    EXPECT_NEAR(parallel, serial, 1e-12) << "target " << target;
  }
}

TEST(ParallelExactTest, ZeroThreadPoolIsIdentical) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ThreadPool inline_pool(0);
  EXPECT_DOUBLE_EQ(
      ParallelExactSkylineProbability(data, 0, model, inline_pool).value(),
      3.0 / 16.0);
}

TEST(ParallelExactTest, GroupBudgetErrorsPropagate) {
  // A chained group of three candidates that absorption cannot shrink:
  // (1,1)-(1,2) share dim-0 value 1, (1,2)-(3,2) share dim-1 value 2.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  data.Append({1, 2}).CheckOK();
  data.Append({3, 2}).CheckOK();
  TablePreferenceModel model;
  ThreadPool pool(2);
  ExactOptions tight;
  tight.max_subsets = 1;  // the 3-member group needs 7 subsets
  auto result =
      ParallelExactSkylineProbability(data, 0, model, pool, tight);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParallelMonteCarloTest, ThreadCountDoesNotChangeTheEstimate) {
  Dataset data = RandomSmallDataset(43, 10, 2, 4);
  TablePreferenceModel model;
  MonteCarloOptions options;
  options.samples = 20000;
  options.seed = 17;
  ThreadPool pool0(0), pool2(2), pool6(6);
  auto a =
      ParallelMonteCarloSkylineProbability(data, 0, model, pool0, options);
  auto b =
      ParallelMonteCarloSkylineProbability(data, 0, model, pool2, options);
  auto c =
      ParallelMonteCarloSkylineProbability(data, 0, model, pool6, options);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->skyline_worlds, b->skyline_worlds);
  EXPECT_EQ(a->skyline_worlds, c->skyline_worlds);
  EXPECT_EQ(a->samples, 20000u);
}

TEST(ParallelMonteCarloTest, ConvergesToExact) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ThreadPool pool(4);
  MonteCarloOptions options;
  options.samples = 150000;
  options.seed = 23;
  auto result =
      ParallelMonteCarloSkylineProbability(data, 0, model, pool, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 3.0 / 16.0, 0.01);
}

TEST(ParallelMonteCarloTest, ChunkCountIsPartOfTheContract) {
  // Different chunk counts legitimately produce different (but equally
  // valid) estimates; the same chunk count always reproduces.
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ThreadPool pool(3);
  MonteCarloOptions options;
  options.samples = 5000;
  ParallelOptions chunks16;
  chunks16.sample_chunks = 16;
  auto a = ParallelMonteCarloSkylineProbability(data, 0, model, pool,
                                                options, chunks16);
  auto b = ParallelMonteCarloSkylineProbability(data, 0, model, pool,
                                                options, chunks16);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->skyline_worlds, b->skyline_worlds);
  ParallelOptions bad;
  bad.sample_chunks = 0;
  EXPECT_EQ(ParallelMonteCarloSkylineProbability(data, 0, model, pool,
                                                 options, bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ParallelAllWorldsTest, ThreadCountInvariantAndAccurate) {
  BlockZipfOptions gen;
  gen.objects = 60;
  gen.dimensions = 2;
  gen.block_size = 6;
  gen.values_per_block = 4;
  gen.seed = 3;
  Dataset data = GenerateBlockZipf(gen).value();
  HashedPreferenceModel base(7, HashedPreferenceModel::Style::kTotalUniform);
  BlockLocalPreferenceModel prefs(base, 4);

  AllWorldsOptions options;
  options.samples = 40000;
  options.seed = 11;
  ThreadPool pool0(0), pool4(4);
  auto serial = ParallelEstimateAllSkylineProbabilities(data, prefs, pool0,
                                                        options);
  auto parallel = ParallelEstimateAllSkylineProbabilities(data, prefs, pool4,
                                                          options);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->estimates, parallel->estimates);

  auto solver = SkylineSolver::Create(data, prefs).value();
  for (ObjectId i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(parallel->estimates[i], solver.Exact(i).value(), 0.015)
        << "object " << i;
  }
}

TEST(ParallelAllWorldsTest, RejectsInvalidInputs) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  ThreadPool pool(2);
  AllWorldsOptions zero;
  zero.samples = 0;
  zero.epsilon = 0.0;
  EXPECT_EQ(
      ParallelEstimateAllSkylineProbabilities(data, model, pool, zero)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace skypref
