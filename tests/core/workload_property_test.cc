/// Parameterized end-to-end sweep across workload generators: for every
/// (generator, n, d, preference style) configuration small enough to
/// solve exactly, all solver paths must agree:
///
///   Det == Det+ == incremental replay   (1e-12)
///   Sam within sampling tolerance of Det
///   Bonferroni interval contains Det
///   independent baseline equals Det whenever partition yields
///   singletons only (Theorem 4's exactness condition).

#include <string>

#include <gtest/gtest.h>

#include "src/skypref.h"

namespace skypref {
namespace {

struct SweepSpec {
  const char* workload;  // "uniform" | "blockzipf"
  std::size_t objects;
  std::size_t dimensions;
  ValueId values;  // per dimension (uniform) or per block (blockzipf)
  HashedPreferenceModel::Style style;
  std::uint64_t seed;
};

class WorkloadSweepTest : public ::testing::TestWithParam<SweepSpec> {
 protected:
  void SetUp() override {
    const SweepSpec& spec = GetParam();
    if (std::string(spec.workload) == "uniform") {
      UniformOptions options;
      options.objects = spec.objects;
      options.dimensions = spec.dimensions;
      options.values_per_dimension = spec.values;
      options.seed = spec.seed;
      data_ = GenerateUniform(options).value();
    } else {
      BlockZipfOptions options;
      options.objects = spec.objects;
      options.dimensions = spec.dimensions;
      options.block_size = 5;
      options.values_per_block = spec.values;
      options.seed = spec.seed;
      data_ = GenerateBlockZipf(options).value();
    }
    prefs_ = HashedPreferenceModel(spec.seed ^ 0xabcd, spec.style);
  }

  Dataset data_{1};
  HashedPreferenceModel prefs_{1, HashedPreferenceModel::Style::kTotalUniform};
};

TEST_P(WorkloadSweepTest, AllSolverPathsAgree) {
  auto solver = SkylineSolver::Create(data_, prefs_).value();
  SolverOptions det;
  det.preprocess = false;
  SolverOptions det_plus;
  SolverOptions sam;
  sam.preprocess = false;
  sam.monte_carlo.samples = 40000;
  sam.monte_carlo.seed = 99;

  for (ObjectId target = 0; target < 3 && target < data_.size(); ++target) {
    double truth = solver.Exact(target, det).value();
    EXPECT_NEAR(solver.Exact(target, det_plus).value(), truth, 1e-12);
    EXPECT_NEAR(solver.MonteCarlo(target, sam).value(), truth, 0.02);

    SkylineBounds bounds =
        BoundedSkylineProbabilityPreprocessed(data_, target, prefs_).value();
    EXPECT_LE(bounds.lower, truth + 1e-12);
    EXPECT_GE(bounds.upper, truth - 1e-12);
  }
}

TEST_P(WorkloadSweepTest, IncrementalReplayMatchesBatch) {
  std::vector<ValueId> target(data_.object(0).begin(), data_.object(0).end());
  IncrementalSkylineProbability incremental(target, prefs_);
  for (ObjectId row = 1; row < data_.size(); ++row) {
    ASSERT_TRUE(incremental.AddCandidate(data_.object(row)).ok());
  }
  SolverOptions det;
  det.preprocess = false;
  auto solver = SkylineSolver::Create(data_, prefs_).value();
  EXPECT_NEAR(incremental.probability(), solver.Exact(0, det).value(), 1e-12);
}

TEST_P(WorkloadSweepTest, BaselineExactWhenGroupsAreSingletons) {
  auto solver = SkylineSolver::Create(data_, prefs_).value();
  for (ObjectId target = 0; target < 2 && target < data_.size(); ++target) {
    std::vector<ObjectId> candidates;
    for (ObjectId i = 0; i < data_.size(); ++i) {
      if (i != target) candidates.push_back(i);
    }
    auto groups = PartitionCandidates(data_, target, candidates);
    bool all_singletons = true;
    for (const auto& group : groups) {
      all_singletons = all_singletons && group.size() == 1;
    }
    if (!all_singletons) continue;
    SolverOptions det;
    det.preprocess = false;
    EXPECT_NEAR(solver.Independent(target).value(),
                solver.Exact(target, det).value(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WorkloadSweepTest,
    ::testing::Values(
        SweepSpec{"uniform", 10, 2, 5, HashedPreferenceModel::Style::kTotalUniform, 1},
        SweepSpec{"uniform", 12, 3, 4, HashedPreferenceModel::Style::kTotalUniform, 2},
        SweepSpec{"uniform", 10, 4, 3, HashedPreferenceModel::Style::kSimplexUniform, 3},
        SweepSpec{"uniform", 14, 2, 8, HashedPreferenceModel::Style::kSimplexUniform, 4},
        SweepSpec{"uniform", 10, 3, 4, HashedPreferenceModel::Style::kUnanimousHalf, 5},
        SweepSpec{"uniform", 12, 2, 6, HashedPreferenceModel::Style::kCertainOrder, 6},
        SweepSpec{"blockzipf", 12, 2, 5, HashedPreferenceModel::Style::kTotalUniform, 7},
        SweepSpec{"blockzipf", 15, 3, 4, HashedPreferenceModel::Style::kSimplexUniform, 8},
        SweepSpec{"blockzipf", 12, 3, 4, HashedPreferenceModel::Style::kUnanimousHalf, 9},
        SweepSpec{"blockzipf", 15, 2, 5, HashedPreferenceModel::Style::kCertainOrder, 10}),
    [](const ::testing::TestParamInfo<SweepSpec>& param_info) {
      const SweepSpec& s = param_info.param;
      std::string style;
      switch (s.style) {
        case HashedPreferenceModel::Style::kTotalUniform: style = "total"; break;
        case HashedPreferenceModel::Style::kSimplexUniform: style = "simplex"; break;
        case HashedPreferenceModel::Style::kUnanimousHalf: style = "half"; break;
        case HashedPreferenceModel::Style::kCertainOrder: style = "certain"; break;
      }
      return std::string(s.workload) + "_n" + std::to_string(s.objects) +
             "_d" + std::to_string(s.dimensions) + "_" + style;
    });

}  // namespace
}  // namespace skypref
