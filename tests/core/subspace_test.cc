#include "src/core/subspace.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "test_util.h"

namespace skypref {
namespace {

using skypref::testing::Example1Dataset;
using skypref::testing::RandomSmallDataset;

TEST(SubspaceTest, FullMaskEqualsFullSpaceSolve) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_DOUBLE_EQ(
      SubspaceSkylineProbability(data, 0, 0b11, model).value(), 3.0 / 16.0);
}

TEST(SubspaceTest, SingleDimensionSubspacesOfExample1) {
  // Dimension 0 values vs O's 0: candidates carry {1, 1, 2, 0}; the
  // candidate equal to O (Q4 on dim 0) is excluded; the rest dominate O
  // iff their value is preferred. Survivors after dedup: {1, 2}.
  // sky = (1-1/2)(1-1/2) = 1/4; same by symmetry on dimension 1.
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_DOUBLE_EQ(SubspaceSkylineProbability(data, 0, 0b01, model).value(),
                   0.25);
  EXPECT_DOUBLE_EQ(SubspaceSkylineProbability(data, 0, 0b10, model).value(),
                   0.25);
}

TEST(SubspaceTest, EqualProjectionNeverDominates) {
  // In subspace {dim0}, a candidate equal to the target on dim0 must be
  // ignored even though it differs elsewhere.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();  // target
  data.Append({0, 1}).CheckOK();  // equal on dim 0
  TablePreferenceModel model;
  EXPECT_DOUBLE_EQ(SubspaceSkylineProbability(data, 0, 0b01, model).value(),
                   1.0);
  // ... but counts fully in subspace {dim1}.
  EXPECT_DOUBLE_EQ(SubspaceSkylineProbability(data, 0, 0b10, model).value(),
                   0.5);
}

TEST(SubspaceTest, CoincidingCandidateProjectionsCollapse) {
  // Two candidates that coincide after projecting to dim0 describe the
  // SAME dominance event; the probability must not be double-counted.
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  data.Append({1, 1}).CheckOK();
  data.Append({1, 2}).CheckOK();  // same dim0 projection as the previous
  TablePreferenceModel model;
  EXPECT_DOUBLE_EQ(SubspaceSkylineProbability(data, 0, 0b01, model).value(),
                   0.5);  // one event of probability 1/2, not (1/2)^2
}

TEST(SubspaceTest, MatchesBruteForceOnProjections) {
  for (std::uint64_t seed = 961; seed < 971; ++seed) {
    Dataset data = RandomSmallDataset(seed, 9, 3, 3);
    TablePreferenceModel model;
    for (SubspaceMask mask = 1; mask < 8; ++mask) {
      // Reference: manual projection + brute force with equal-projection
      // candidates excluded.
      std::vector<DimensionId> dims;
      for (DimensionId j = 0; j < 3; ++j) {
        if (mask & (1u << j)) dims.push_back(j);
      }
      Dataset projected(dims.size());
      std::vector<ValueId> row(dims.size());
      for (std::size_t k = 0; k < dims.size(); ++k) {
        row[k] = data.value(0, dims[k]);
      }
      projected.Append(row).CheckOK();
      std::vector<ObjectId> candidates;
      for (ObjectId id = 1; id < data.size(); ++id) {
        bool equal = true;
        for (std::size_t k = 0; k < dims.size(); ++k) {
          row[k] = data.value(id, dims[k]);
          equal = equal && row[k] == data.value(0, dims[k]);
        }
        if (equal) continue;
        projected.Append(row).CheckOK();
        candidates.push_back(projected.size() - 1);
      }
      TablePreferenceModel projected_model;
      for (std::size_t k = 0; k < dims.size(); ++k) {
        for (ValueId a = 0; a < 3; ++a) {
          for (ValueId b = a + 1; b < 3; ++b) {
            PrefPair pair = model.GetPair(dims[k], a, b);
            projected_model
                .Set(static_cast<DimensionId>(k), a, b, pair.less,
                     pair.greater)
                .CheckOK();
          }
        }
      }
      double reference =
          BruteForceSkylineProbability(projected, 0, candidates,
                                       DoubleOracle(projected_model))
              .value();
      double subspace =
          SubspaceSkylineProbability(data, 0, mask, model).value();
      EXPECT_NEAR(subspace, reference, 1e-12)
          << "seed=" << seed << " mask=" << mask;
    }
  }
}

TEST(SkycubeTest, EnumeratesAllSubspacesOrderedByDimension) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  auto cells = ProbabilisticSkycube(data, 0, model).value();
  ASSERT_EQ(cells.size(), 3u);  // 2^2 - 1
  EXPECT_EQ(cells[0].dimensions, 1u);
  EXPECT_EQ(cells[1].dimensions, 1u);
  EXPECT_EQ(cells[2].dimensions, 2u);
  EXPECT_DOUBLE_EQ(cells[2].probability, 3.0 / 16.0);
}

TEST(SkycubeTest, InvalidArguments) {
  Dataset data = Example1Dataset();
  TablePreferenceModel model;
  EXPECT_EQ(SubspaceSkylineProbability(data, 0, 0, model).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SubspaceSkylineProbability(data, 0, 0b100, model).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SubspaceSkylineProbability(data, 9, 1, model).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace skypref
