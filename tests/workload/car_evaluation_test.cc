#include "src/workload/car_evaluation.h"

#include <gtest/gtest.h>

#include "src/core/solver.h"
#include "src/model/preference_model.h"

namespace skypref {
namespace {

TEST(CarEvaluationTest, FullDatasetHasUciCardinality) {
  CarEvaluationVariant car = GenerateCarEvaluation().value();
  EXPECT_EQ(car.dataset.size(), 1728u);  // 4*4*4*3*3*3
  EXPECT_EQ(car.dataset.dimensions(), 6u);
  EXPECT_TRUE(car.dataset.Validate().ok());
}

TEST(CarEvaluationTest, DomainMatchesUciSchema) {
  Domain domain = CarEvaluationDomain();
  EXPECT_EQ(domain.dimensions(), 6u);
  EXPECT_EQ(domain.dimension_name(0), "buying");
  EXPECT_EQ(domain.dimension_name(5), "safety");
  EXPECT_EQ(domain.value_count(0), 4u);
  EXPECT_EQ(domain.value_count(3), 3u);
  EXPECT_EQ(domain.value_name(0, 3), "low");
  EXPECT_EQ(domain.FindValue(5, "high").value(), 2u);
}

TEST(CarEvaluationTest, ProjectionCardinalities) {
  EXPECT_EQ(GenerateCarEvaluationProjection(1).value().dataset.size(), 4u);
  EXPECT_EQ(GenerateCarEvaluationProjection(3).value().dataset.size(), 64u);
  EXPECT_EQ(GenerateCarEvaluationProjection(6).value().dataset.size(),
            1728u);
  EXPECT_FALSE(GenerateCarEvaluationProjection(0).ok());
  EXPECT_FALSE(GenerateCarEvaluationProjection(7).ok());
}

TEST(CarEvaluationTest, SolvesEndToEndLikeNursery) {
  // Full-product structure: absorption must collapse to the per-dimension
  // one-value-different rivals (sum over dims of (|D_j| - 1) = 15).
  CarEvaluationVariant car = GenerateCarEvaluation().value();
  HashedPreferenceModel prefs(3, HashedPreferenceModel::Style::kTotalUniform);
  auto solver = SkylineSolver::Create(car.dataset, prefs).value();
  SolveStats stats;
  double sky = solver.Exact(864, {}, &stats).value();
  EXPECT_GE(sky, 0.0);
  EXPECT_LE(sky, 1.0);
  EXPECT_EQ(stats.after_absorption, 15u);
  EXPECT_EQ(stats.groups, 15u);
}

TEST(ExpectedSkylineCardinalityTest, MatchesManualSum) {
  CarEvaluationVariant car = GenerateCarEvaluationProjection(2).value();
  HashedPreferenceModel prefs(9, HashedPreferenceModel::Style::kTotalUniform);
  double expected = 0.0;
  auto solver = SkylineSolver::Create(car.dataset, prefs).value();
  for (ObjectId i = 0; i < car.dataset.size(); ++i) {
    expected += solver.Exact(i).value();
  }
  EXPECT_NEAR(ExpectedSkylineCardinality(car.dataset, prefs).value(),
              expected, 1e-12);
  EXPECT_GE(expected, 0.0);
  EXPECT_LE(expected, static_cast<double>(car.dataset.size()));
}

TEST(ExpectedSkylineCardinalityTest, ValidatesDataset) {
  Dataset empty(1);
  TablePreferenceModel model;
  EXPECT_EQ(ExpectedSkylineCardinality(empty, model).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace skypref
