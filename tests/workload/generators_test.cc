#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/partition.h"
#include "src/workload/block_zipf_generator.h"
#include "src/workload/uniform_generator.h"

namespace skypref {
namespace {

TEST(UniformGeneratorTest, ProducesRequestedShape) {
  UniformOptions options;
  options.objects = 100;
  options.dimensions = 4;
  options.values_per_dimension = 10;
  options.seed = 3;
  Dataset data = GenerateUniform(options).value();
  EXPECT_EQ(data.size(), 100u);
  EXPECT_EQ(data.dimensions(), 4u);
  EXPECT_TRUE(data.Validate().ok());
  for (DimensionId j = 0; j < 4; ++j) {
    EXPECT_LE(data.value_bound(j), 10u);
  }
}

TEST(UniformGeneratorTest, DeterministicPerSeed) {
  UniformOptions options;
  options.objects = 30;
  options.seed = 7;
  Dataset a = GenerateUniform(options).value();
  Dataset b = GenerateUniform(options).value();
  for (ObjectId i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a.SameObject(i, i));
    for (DimensionId j = 0; j < a.dimensions(); ++j) {
      EXPECT_EQ(a.value(i, j), b.value(i, j));
    }
  }
  options.seed = 8;
  Dataset c = GenerateUniform(options).value();
  bool differs = false;
  for (ObjectId i = 0; i < a.size() && !differs; ++i) {
    for (DimensionId j = 0; j < a.dimensions(); ++j) {
      if (a.value(i, j) != c.value(i, j)) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(UniformGeneratorTest, ExhaustsTinyDomainsExactly) {
  UniformOptions options;
  options.objects = 8;
  options.dimensions = 3;
  options.values_per_dimension = 2;
  Dataset data = GenerateUniform(options).value();
  EXPECT_EQ(data.size(), 8u);  // the full {0,1}^3 cube
  EXPECT_TRUE(data.Validate().ok());
}

TEST(UniformGeneratorTest, RejectsImpossibleRequests) {
  UniformOptions options;
  options.objects = 9;
  options.dimensions = 3;
  options.values_per_dimension = 2;  // capacity 8 < 9
  EXPECT_EQ(GenerateUniform(options).status().code(),
            StatusCode::kInvalidArgument);
  options.objects = 0;
  EXPECT_FALSE(GenerateUniform(options).ok());
}

TEST(BlockZipfTest, ProducesRequestedShape) {
  BlockZipfOptions options;
  options.objects = 200;
  options.dimensions = 3;
  options.block_size = 10;
  options.values_per_block = 6;
  options.seed = 5;
  Dataset data = GenerateBlockZipf(options).value();
  EXPECT_EQ(data.size(), 200u);
  EXPECT_EQ(data.dimensions(), 3u);
  EXPECT_TRUE(data.Validate().ok());
}

TEST(BlockZipfTest, BlocksAreValueDisjoint) {
  BlockZipfOptions options;
  options.objects = 120;
  options.dimensions = 2;
  options.block_size = 8;
  options.values_per_block = 5;
  options.seed = 11;
  Dataset data = GenerateBlockZipf(options).value();
  // Object i belongs to block i / block_size; its values must sit in the
  // block's dedicated id range.
  for (ObjectId i = 0; i < data.size(); ++i) {
    ValueId base = static_cast<ValueId>(i / options.block_size) *
                   options.values_per_block;
    for (DimensionId j = 0; j < data.dimensions(); ++j) {
      EXPECT_GE(data.value(i, j), base);
      EXPECT_LT(data.value(i, j), base + options.values_per_block);
    }
  }
}

TEST(BlockZipfTest, PartitionRecoversBlocksOrFiner) {
  BlockZipfOptions options;
  options.objects = 60;
  options.dimensions = 3;
  options.block_size = 6;
  options.values_per_block = 4;
  options.seed = 2;
  Dataset data = GenerateBlockZipf(options).value();
  std::vector<ObjectId> candidates;
  for (ObjectId i = 1; i < data.size(); ++i) candidates.push_back(i);
  auto groups = PartitionCandidates(data, 0, candidates);
  // No group may span two blocks.
  for (const auto& group : groups) {
    std::set<std::size_t> blocks;
    for (ObjectId id : group) blocks.insert(id / options.block_size);
    EXPECT_EQ(blocks.size(), 1u);
  }
  // And there are at least as many groups as blocks among the candidates.
  EXPECT_GE(groups.size(), 10u - 1u);
}

TEST(BlockZipfTest, ZipfSkewConcentratesOnSmallIds) {
  BlockZipfOptions options;
  options.objects = 2000;
  options.dimensions = 2;
  options.block_size = 10;
  options.values_per_block = 8;
  options.theta = 1.0;
  options.seed = 21;
  Dataset data = GenerateBlockZipf(options).value();
  // Aggregate the within-block value offsets across all blocks.
  std::vector<int> counts(8, 0);
  for (ObjectId i = 0; i < data.size(); ++i) {
    ++counts[data.value(i, 0) % options.values_per_block];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[7]);
}

TEST(BlockZipfTest, LastPartialBlockIsHandled) {
  BlockZipfOptions options;
  options.objects = 25;
  options.block_size = 10;
  options.values_per_block = 6;
  options.dimensions = 2;
  Dataset data = GenerateBlockZipf(options).value();
  EXPECT_EQ(data.size(), 25u);
  EXPECT_TRUE(data.Validate().ok());
}

TEST(BlockZipfTest, RejectsImpossibleBlocks) {
  BlockZipfOptions options;
  options.block_size = 10;
  options.values_per_block = 3;
  options.dimensions = 2;  // capacity 9 < 10
  EXPECT_EQ(GenerateBlockZipf(options).status().code(),
            StatusCode::kInvalidArgument);
  options.values_per_block = 0;
  EXPECT_FALSE(GenerateBlockZipf(options).ok());
}

}  // namespace
}  // namespace skypref
