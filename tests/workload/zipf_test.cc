#include "src/workload/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(ZipfTest, RejectsBadParameters) {
  EXPECT_FALSE(ZipfDistribution::Create(0, 1.0).ok());
  EXPECT_FALSE(ZipfDistribution::Create(10, -0.5).ok());
}

TEST(ZipfTest, MassSumsToOne) {
  auto zipf = ZipfDistribution::Create(20, 1.0).value();
  double total = 0.0;
  for (std::size_t k = 0; k < 20; ++k) total += zipf.Mass(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(zipf.Mass(20), 0.0);
}

TEST(ZipfTest, MassIsMonotoneDecreasing) {
  auto zipf = ZipfDistribution::Create(16, 1.0).value();
  for (std::size_t k = 1; k < 16; ++k) {
    EXPECT_LE(zipf.Mass(k), zipf.Mass(k - 1) + 1e-15);
  }
}

TEST(ZipfTest, Theta1MatchesHarmonicRatios) {
  auto zipf = ZipfDistribution::Create(8, 1.0).value();
  // Mass(k) / Mass(0) == 1 / (k+1) for theta = 1.
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(zipf.Mass(k) / zipf.Mass(0), 1.0 / static_cast<double>(k + 1),
                1e-12);
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  auto zipf = ZipfDistribution::Create(10, 0.0).value();
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.Mass(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, SampleStaysInUniverse) {
  auto zipf = ZipfDistribution::Create(5, 1.0).value();
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 5u);
  }
}

TEST(ZipfTest, EmpiricalFrequenciesMatchMass) {
  auto zipf = ZipfDistribution::Create(6, 1.0).value();
  Rng rng(12);
  const int n = 200000;
  std::vector<int> counts(6, 0);
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (std::size_t k = 0; k < 6; ++k) {
    double expected = zipf.Mass(k) * n;
    EXPECT_NEAR(static_cast<double>(counts[k]), expected,
                5.0 * std::sqrt(expected) + 5.0);
  }
}

TEST(ZipfTest, SingletonUniverse) {
  auto zipf = ZipfDistribution::Create(1, 1.0).value();
  Rng rng(1);
  EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.Mass(0), 1.0);
}

}  // namespace
}  // namespace skypref
