#include "src/workload/nursery.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace skypref {
namespace {

TEST(NurseryTest, FullDatasetHasUciCardinality) {
  NurseryVariant nursery = GenerateNursery().value();
  EXPECT_EQ(nursery.dataset.size(), 12960u);  // 3*5*4*4*3*2*3*3
  EXPECT_EQ(nursery.dataset.dimensions(), 8u);
  EXPECT_TRUE(nursery.dataset.Validate().ok());
}

TEST(NurseryTest, DomainMatchesUciSchema) {
  Domain domain = NurseryDomain();
  EXPECT_EQ(domain.dimensions(), 8u);
  EXPECT_EQ(domain.dimension_name(0), "parents");
  EXPECT_EQ(domain.dimension_name(7), "health");
  EXPECT_EQ(domain.value_count(0), 3u);   // parents
  EXPECT_EQ(domain.value_count(1), 5u);   // has_nurs
  EXPECT_EQ(domain.value_count(2), 4u);   // form
  EXPECT_EQ(domain.value_count(3), 4u);   // children
  EXPECT_EQ(domain.value_count(4), 3u);   // housing
  EXPECT_EQ(domain.value_count(5), 2u);   // finance
  EXPECT_EQ(domain.value_count(6), 3u);   // social
  EXPECT_EQ(domain.value_count(7), 3u);   // health
  EXPECT_EQ(domain.value_name(0, 0), "usual");
  EXPECT_EQ(domain.value_name(5, 1), "inconv");
  EXPECT_EQ(domain.FindValue(7, "not_recom").value(), 2u);
}

TEST(NurseryTest, ProjectionCardinalities) {
  EXPECT_EQ(GenerateNurseryProjection(1).value().dataset.size(), 3u);
  EXPECT_EQ(GenerateNurseryProjection(2).value().dataset.size(), 15u);
  EXPECT_EQ(GenerateNurseryProjection(4).value().dataset.size(), 240u);
  EXPECT_EQ(GenerateNurseryProjection(8).value().dataset.size(), 12960u);
}

TEST(NurseryTest, ProjectionIsDuplicateFree) {
  NurseryVariant projected = GenerateNurseryProjection(4).value();
  EXPECT_TRUE(projected.dataset.Validate().ok());
  EXPECT_EQ(projected.dataset.dimensions(), 4u);
  EXPECT_EQ(projected.domain.dimensions(), 4u);
}

TEST(NurseryTest, EveryCombinationAppearsExactlyOnce) {
  NurseryVariant nursery = GenerateNurseryProjection(3).value();
  std::set<std::vector<ValueId>> combos;
  for (ObjectId i = 0; i < nursery.dataset.size(); ++i) {
    auto row = nursery.dataset.object(i);
    combos.insert(std::vector<ValueId>(row.begin(), row.end()));
  }
  EXPECT_EQ(combos.size(), 60u);  // 3*5*4
}

TEST(NurseryTest, RejectsBadDimensionCounts) {
  EXPECT_FALSE(GenerateNurseryProjection(0).ok());
  EXPECT_FALSE(GenerateNurseryProjection(9).ok());
}

TEST(NurseryTest, ValueBoundsMatchDomainSizes) {
  NurseryVariant nursery = GenerateNursery().value();
  for (DimensionId j = 0; j < 8; ++j) {
    EXPECT_EQ(nursery.dataset.value_bound(j), nursery.domain.value_count(j));
  }
}

}  // namespace
}  // namespace skypref
