// Extension bench — adaptive stopping vs the fixed Hoeffding sample size
// of Theorem 2 (src/core/adaptive_sampling.h).
//
// Both estimators satisfy the same (eps, delta) guarantee; the adaptive
// one spends samples proportional to the actual variance:
//
//  * on uniform data with global preferences, skyline probabilities
//    collapse toward 0 (every object has many potential dominators), the
//    variance vanishes, and the adaptive stop saves ~4x;
//  * on block-zipf data with block-local preferences the probabilities
//    are mid-range, variance is near-maximal, and the adaptive rule
//    honestly degrades to the Hoeffding cap plus a ~13% union-bound
//    premium (the price of adaptivity when it cannot help).
//
// The counter samples_vs_hoeffding reports the ratio.

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

void RunAdaptive(benchmark::State& state, const Dataset& data,
                 const PreferenceModel& prefs) {
  const double epsilon = 0.01;
  const double delta = 0.01;
  std::vector<ObjectId> targets = SampleTargets(data.size(), 8);

  std::uint64_t total_samples = 0;
  std::uint64_t caps_hit = 0;
  for (auto _ : state) {
    total_samples = 0;
    caps_hit = 0;
    std::size_t i = 0;
    for (ObjectId target : targets) {
      AdaptiveOptions options;
      options.epsilon = epsilon;
      options.delta = delta;
      options.seed = 97 * i++ + 13;
      AdaptiveResult result =
          AdaptiveMonteCarloSkylineProbability(data, target, prefs, options)
              .value();
      total_samples += result.samples;
      caps_hit += result.hit_cap ? 1 : 0;
      Keep(result.estimate);
    }
  }
  double avg = static_cast<double>(total_samples) /
               static_cast<double>(targets.size());
  state.counters["avg_samples"] = avg;
  state.counters["samples_vs_hoeffding"] =
      avg / static_cast<double>(HoeffdingSampleSize(epsilon, delta));
  state.counters["caps_hit"] = static_cast<double>(caps_hit);
}

void BM_Adaptive_VsFixed(benchmark::State& state) {
  Dataset data = GenerateBlockZipf(BlockZipfConfig(
                     static_cast<std::size_t>(state.range(0)), 5))
                     .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  RunAdaptive(state, data, prefs);
}

void BM_Adaptive_VsFixed_UniformNearZero(benchmark::State& state) {
  UniformOptions config = UniformConfig(
      static_cast<std::size_t>(state.range(0)), 5);
  Dataset data = GenerateUniform(config).value();
  HashedPreferenceModel prefs = PaperPreferences();
  RunAdaptive(state, data, prefs);
}

void BM_Fixed_Hoeffding(benchmark::State& state) {
  // The fixed-size estimator at the same (eps, delta), for wall-clock
  // comparison.
  const double epsilon = 0.01;
  const double delta = 0.01;
  Dataset data = GenerateBlockZipf(BlockZipfConfig(
                     static_cast<std::size_t>(state.range(0)), 5))
                     .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  std::vector<ObjectId> targets = SampleTargets(data.size(), 8);

  for (auto _ : state) {
    std::size_t i = 0;
    for (ObjectId target : targets) {
      MonteCarloOptions options;
      options.epsilon = epsilon;
      options.delta = delta;
      options.seed = 97 * i++ + 13;
      auto result =
          MonteCarloSkylineProbability(data, target, prefs, options).value();
      Keep(result.estimate);
    }
  }
  state.counters["samples_each"] =
      static_cast<double>(HoeffdingSampleSize(epsilon, delta));
}

BENCHMARK(BM_Adaptive_VsFixed)
    ->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Adaptive_VsFixed_UniformNearZero)
    ->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fixed_Hoeffding)
    ->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Extension: adaptive (empirical-Bernstein) stopping vs "
              "fixed Hoeffding sample size, eps=delta=0.01 ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
