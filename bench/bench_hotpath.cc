/// The canonical hot-path perf harness: emits BENCH_exact.json, the
/// machine-readable perf trajectory of the exact engine.
///
/// Four measurements, all at quick scale by default
/// (SKYPREF_BENCH_SCALE=full enlarges them):
///
///   1. flatten     — one Det solve, lookup engine vs flattened engine
///                    on identical inputs (subsets/sec and speedup);
///   2. intra_group — one single-group Det+ solve across 1/2/4/8-thread
///                    pools via ParallelExactEngine (scaling curve);
///   3. batch       — all-objects exact solve, per-target SkylineSolver
///                    loop vs BatchExactSkylineProbabilities;
///   4. resilience  — the same Det solve with and without an armed
///                    CancelToken + deadline (cost of cooperative
///                    cancellation polls in the DFS hot loop);
///   4b. chaos_quiet — the same Det solve with every failpoint site
///                    armed on a never-firing schedule (cost of the
///                    armed-consult slow path; ~0 in release builds
///                    where the sites compile out).
///
/// Every section cross-checks bit-identity so a perf number can never
/// quietly come from a wrong answer. The binary is plain chrono + JSON —
/// no google-benchmark — so CI can upload the artifact as-is.
///
/// A second artifact, BENCH_sam.json, tracks the Monte-Carlo engine:
///
///   5. sam_scaling — one block-Sam solve across 1/2/4/8-thread pools
///                    (worlds/sec curve), cross-checked bit-identical to
///                    the single-thread run and timed against the serial
///                    Sam engine on the same seed/sample budget;
///   6. batch_sam   — all-objects estimation, per-target block-Sam loop
///                    vs BatchMonteCarloSkylineProbabilities (wall time
///                    and the pair_draws world-sharing ratio).
///
/// A third artifact, BENCH_sam_bitslice.json, tracks the bit-sliced
/// engine against the scalar block engine:
///
///   7. bitslice    — single-thread worlds/sec of kBlock vs kBitSliced
///                    on the block-Zipf workload (the ≥8x tentpole
///                    number), a kBitSliced thread curve cross-checked
///                    bit-identical, and statistical agreement between
///                    the two engines' estimates.
///
/// Usage: bench_hotpath [exact.json] [sam.json] [sam_bitslice.json]
///        (defaults BENCH_exact.json / BENCH_sam.json /
///         BENCH_sam_bitslice.json)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/exact.h"
#include "src/core/monte_carlo.h"
#include "src/core/parallel.h"
#include "src/core/sam_bitslice.h"
#include "src/core/sam_parallel.h"
#include "src/core/solver.h"
#include "src/model/preference_model.h"
#include "src/util/failpoint.h"
#include "src/util/cancel.h"
#include "src/util/check.h"
#include "src/workload/block_zipf_generator.h"
#include "src/workload/uniform_generator.h"

namespace skypref::bench {
namespace {

bool FullScale() {
  const char* scale = std::getenv("SKYPREF_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "full";
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-reps wall time of one action (reps small; the workloads are
/// deterministic, so best-of filters scheduler noise).
template <typename Fn>
double TimeBest(int reps, const Fn& fn) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    double start = Now();
    fn();
    double elapsed = Now() - start;
    if (best < 0.0 || elapsed < best) best = elapsed;
  }
  return best;
}

std::string FormatDouble(double value) {
  std::ostringstream out;
  out.precision(6);
  out << value;
  return out.str();
}

/// Section 1: the flattening ablation. Large value domains make every
/// subset pay d oracle lookups on the old path (no pair is ever shared),
/// which is exactly the regime the pair table removes.
std::string BenchFlatten() {
  UniformOptions gen;
  gen.objects = FullScale() ? 25 : 21;
  gen.dimensions = 6;
  gen.values_per_dimension = 50;
  gen.seed = 7;
  Dataset data = GenerateUniform(gen).value();
  HashedPreferenceModel model(2013,
                              HashedPreferenceModel::Style::kTotalUniform);

  ExactOptions lookup;
  lookup.engine = ExactOptions::Engine::kLookup;
  lookup.prune_zero = false;  // fixed subset count for clean subsets/sec
  ExactOptions flat = lookup;
  flat.engine = ExactOptions::Engine::kFlat;

  double lookup_value = 0.0, flat_value = 0.0;
  ExactStats stats;
  const int reps = 3;
  double lookup_seconds = TimeBest(reps, [&] {
    lookup_value = ExactSkylineProbability(data, 0, model, lookup, &stats)
                       .value();
  });
  double flat_seconds = TimeBest(reps, [&] {
    flat_value = ExactSkylineProbability(data, 0, model, flat, &stats)
                     .value();
  });
  SKYPREF_CHECK(lookup_value == flat_value);  // bit-identity is the contract

  double subsets = static_cast<double>(stats.subsets_visited);
  std::ostringstream json;
  json << "  \"flatten\": {\n"
       << "    \"objects\": " << gen.objects << ",\n"
       << "    \"dimensions\": " << gen.dimensions << ",\n"
       << "    \"subsets\": " << stats.subsets_visited << ",\n"
       << "    \"lookup_seconds\": " << FormatDouble(lookup_seconds) << ",\n"
       << "    \"flat_seconds\": " << FormatDouble(flat_seconds) << ",\n"
       << "    \"lookup_subsets_per_sec\": "
       << FormatDouble(subsets / lookup_seconds) << ",\n"
       << "    \"flat_subsets_per_sec\": "
       << FormatDouble(subsets / flat_seconds) << ",\n"
       << "    \"speedup\": " << FormatDouble(lookup_seconds / flat_seconds)
       << ",\n"
       << "    \"bit_identical\": true\n"
       << "  }";
  return json.str();
}

/// Section 2: intra-group scaling. One independence group (every
/// candidate shares dim-0 value 1 against the target's 0) forces the
/// whole solve through ParallelExactEngine's subtree tasks.
std::string BenchIntraGroup() {
  const std::size_t group = FullScale() ? 24 : 20;
  Dataset data(2);
  data.Append({0, 0}).CheckOK();
  for (std::size_t i = 0; i < group; ++i) {
    data.Append({1, static_cast<ValueId>(i + 1)}).CheckOK();
  }
  HashedPreferenceModel model(2013,
                              HashedPreferenceModel::Style::kTotalUniform);

  std::ostringstream json;
  json << "  \"intra_group_scaling\": {\n"
       << "    \"group_size\": " << group << ",\n";
  double base_seconds = 0.0;
  double reference = -1.0;
  bool bit_identical = true;
  std::uint64_t subsets = 0;
  json << "    \"threads\": [\n";
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    ThreadPool pool(thread_counts[t]);
    double value = 0.0;
    SolveStats stats;
    double seconds = TimeBest(2, [&] {
      value = ParallelExactSkylineProbability(data, 0, model, pool, {}, {},
                                              &stats)
                  .value();
    });
    subsets = stats.subsets_visited;
    if (reference < 0.0) {
      reference = value;
      base_seconds = seconds;
    } else if (value != reference) {
      bit_identical = false;
    }
    json << "      {\"threads\": " << thread_counts[t]
         << ", \"seconds\": " << FormatDouble(seconds)
         << ", \"subsets_per_sec\": "
         << FormatDouble(static_cast<double>(subsets) / seconds)
         << ", \"speedup_vs_1\": " << FormatDouble(base_seconds / seconds)
         << "}" << (t + 1 < thread_counts.size() ? "," : "") << "\n";
  }
  json << "    ],\n"
       << "    \"subsets\": " << subsets << ",\n"
       << "    \"bit_identical_across_threads\": "
       << (bit_identical ? "true" : "false") << "\n"
       << "  }";
  SKYPREF_CHECK(bit_identical);
  return json.str();
}

/// Section 3: all-objects throughput — the per-target SkylineSolver loop
/// against the shared-preprocessing batch solver on the same pool count.
std::string BenchBatch() {
  BlockZipfOptions gen;
  gen.objects = FullScale() ? 2000 : 400;
  gen.dimensions = 3;
  gen.block_size = 12;
  gen.values_per_block = 6;
  gen.theta = 1.0;
  gen.seed = 7;
  Dataset data = GenerateBlockZipf(gen).value();
  HashedPreferenceModel base(2013,
                             HashedPreferenceModel::Style::kTotalUniform);
  BlockLocalPreferenceModel model(base, gen.values_per_block);

  auto solver = SkylineSolver::Create(data, model).value();
  std::vector<double> serial(data.size(), 0.0);
  double serial_seconds = TimeBest(2, [&] {
    for (ObjectId target = 0; target < data.size(); ++target) {
      serial[target] = solver.Exact(target).value();
    }
  });

  ThreadPool pool(ThreadPool::DefaultThreads());
  std::vector<double> batch;
  BatchExactStats stats;
  double batch_seconds = TimeBest(2, [&] {
    batch = BatchExactSkylineProbabilities(data, model, pool, {}, &stats)
                .value();
  });
  bool bit_identical = batch == serial;
  SKYPREF_CHECK(bit_identical);

  double targets = static_cast<double>(data.size());
  std::ostringstream json;
  json << "  \"batch_all_objects\": {\n"
       << "    \"objects\": " << data.size() << ",\n"
       << "    \"dimensions\": " << gen.dimensions << ",\n"
       << "    \"pool_threads\": " << pool.thread_count() << ",\n"
       << "    \"per_target_seconds\": " << FormatDouble(serial_seconds)
       << ",\n"
       << "    \"batch_seconds\": " << FormatDouble(batch_seconds) << ",\n"
       << "    \"per_target_targets_per_sec\": "
       << FormatDouble(targets / serial_seconds) << ",\n"
       << "    \"batch_targets_per_sec\": "
       << FormatDouble(targets / batch_seconds) << ",\n"
       << "    \"speedup\": " << FormatDouble(serial_seconds / batch_seconds)
       << ",\n"
       << "    \"distinct_pair_probs\": " << stats.distinct_pair_probs
       << ",\n"
       << "    \"subsets_visited\": " << stats.subsets_visited << ",\n"
       << "    \"bit_identical\": true\n"
       << "  }";
  return json.str();
}

/// Section 4: resilience overhead. The cancellation/deadline polls in
/// the DFS hot loop are always compiled in, so the measurable cost is
/// armed-vs-unarmed: a solve with no token and no deadline (the polls
/// reduce to a null check every 0xfff visits) against the same solve
/// carrying a live CancelToken and a far-future deadline (every poll
/// does the atomic load and clock comparison). The ladder's contract is
/// that arming costs < ~2% on a Det workload.
std::string BenchResilience() {
  UniformOptions gen;
  gen.objects = FullScale() ? 25 : 21;
  gen.dimensions = 6;
  gen.values_per_dimension = 50;
  gen.seed = 7;
  Dataset data = GenerateUniform(gen).value();
  HashedPreferenceModel model(2013,
                              HashedPreferenceModel::Style::kTotalUniform);

  ExactOptions unarmed;
  unarmed.engine = ExactOptions::Engine::kFlat;
  unarmed.prune_zero = false;  // fixed subset count for clean comparison
  ExactOptions armed = unarmed;
  armed.time_limit_seconds = 3600.0;  // never expires, always polled
  CancelToken token;
  armed.cancel = &token;

  double unarmed_value = 0.0, armed_value = 0.0;
  ExactStats stats;
  const int reps = 5;
  double unarmed_seconds = TimeBest(reps, [&] {
    unarmed_value =
        ExactSkylineProbability(data, 0, model, unarmed, &stats).value();
  });
  double armed_seconds = TimeBest(reps, [&] {
    armed_value =
        ExactSkylineProbability(data, 0, model, armed, &stats).value();
  });
  SKYPREF_CHECK(unarmed_value == armed_value);  // polls never change math

  double overhead_percent =
      100.0 * (armed_seconds - unarmed_seconds) / unarmed_seconds;
  std::ostringstream json;
  json << "  \"resilience_overhead\": {\n"
       << "    \"objects\": " << gen.objects << ",\n"
       << "    \"subsets\": " << stats.subsets_visited << ",\n"
       << "    \"unarmed_seconds\": " << FormatDouble(unarmed_seconds)
       << ",\n"
       << "    \"armed_seconds\": " << FormatDouble(armed_seconds) << ",\n"
       << "    \"overhead_percent\": " << FormatDouble(overhead_percent)
       << ",\n"
       << "    \"bit_identical\": true\n"
       << "  }";
  return json.str();
}

/// Section 4b: chaos-armed-but-quiet overhead. The chaos sweep's cost
/// model only holds if ARMING sites is cheap: a schedule that never
/// fires (kSingle at an unreachable hit ordinal) still pays the armed
/// slow path — registry snapshot plus one atomic increment per consult
/// — at every site the solve crosses. The contract is < ~2% on the Det
/// workload in failpoint builds; in release builds the macros compile
/// to `false` and the row documents the (near-zero) baseline with
/// failpoints_compiled_in = false.
std::string BenchChaosQuiet() {
  UniformOptions gen;
  gen.objects = FullScale() ? 25 : 21;
  gen.dimensions = 6;
  gen.values_per_dimension = 50;
  gen.seed = 7;
  Dataset data = GenerateUniform(gen).value();
  HashedPreferenceModel model(2013,
                              HashedPreferenceModel::Style::kTotalUniform);

  ExactOptions options;
  options.engine = ExactOptions::Engine::kFlat;
  options.prune_zero = false;  // fixed subset count for clean comparison

  // Arm EVERY registered site with a schedule that can never fire: the
  // kSingle pattern matches one exact hit ordinal, and no solve reaches
  // 2^64 - 1 hits. Quiet and armed reps are interleaved (arming toggled
  // per rep) so both mins sample the same machine-noise distribution —
  // a sub-percent delta would otherwise drown on a shared runner.
  failpoint::Schedule never;
  never.kind = failpoint::FaultKind::kFail;
  never.pattern = failpoint::Schedule::Pattern::kSingle;
  never.n = ~std::uint64_t{0};
  double quiet_value = 0.0, armed_value = 0.0;
  ExactStats stats;
  const int reps = 15;
  double quiet_seconds = -1.0, armed_seconds = -1.0;
  for (int r = 0; r < reps; ++r) {
    failpoint::DisarmAll();
    double quiet = TimeBest(1, [&] {
      quiet_value =
          ExactSkylineProbability(data, 0, model, options, &stats).value();
    });
    if (quiet_seconds < 0.0 || quiet < quiet_seconds) quiet_seconds = quiet;
    for (const failpoint::KnownSite& site : failpoint::KnownSites()) {
      failpoint::ArmSchedule(site.name, never);
    }
    double armed = TimeBest(1, [&] {
      armed_value =
          ExactSkylineProbability(data, 0, model, options, &stats).value();
    });
    if (armed_seconds < 0.0 || armed < armed_seconds) armed_seconds = armed;
  }
  failpoint::DisarmAll();
  SKYPREF_CHECK(quiet_value == armed_value);  // quiet sites change no math

#if defined(SKYPREF_FAILPOINTS) && SKYPREF_FAILPOINTS
  const bool compiled_in = true;
#else
  const bool compiled_in = false;
#endif
  double overhead_percent =
      100.0 * (armed_seconds - quiet_seconds) / quiet_seconds;
  std::ostringstream json;
  json << "  \"chaos_armed_quiet\": {\n"
       << "    \"objects\": " << gen.objects << ",\n"
       << "    \"subsets\": " << stats.subsets_visited << ",\n"
       << "    \"sites_armed\": " << failpoint::KnownSites().size() << ",\n"
       << "    \"unarmed_seconds\": " << FormatDouble(quiet_seconds) << ",\n"
       << "    \"armed_seconds\": " << FormatDouble(armed_seconds) << ",\n"
       << "    \"overhead_percent\": " << FormatDouble(overhead_percent)
       << ",\n"
       << "    \"failpoints_compiled_in\": "
       << (compiled_in ? "true" : "false") << ",\n"
       << "    \"bit_identical\": true\n"
       << "  }";
  return json.str();
}

/// Section 5: block-Sam thread scaling on one hard target. The dataset
/// is the BenchBatch block-Zipf workload, whose correlated blocks leave
/// large independence groups — exactly where Sam replaces Det+. The
/// estimate is checked bit-identical across pools (the block-seeding
/// contract) and the serial engine runs the same budget for reference.
std::string BenchSamScaling() {
  BlockZipfOptions gen;
  gen.objects = FullScale() ? 2000 : 400;
  gen.dimensions = 3;
  gen.block_size = 12;
  gen.values_per_block = 6;
  gen.theta = 1.0;
  gen.seed = 7;
  Dataset data = GenerateBlockZipf(gen).value();
  HashedPreferenceModel base(2013,
                             HashedPreferenceModel::Style::kTotalUniform);
  BlockLocalPreferenceModel model(base, gen.values_per_block);

  MonteCarloOptions options;
  options.samples = FullScale() ? 2000000 : 400000;
  options.seed = 7;

  double serial_value = 0.0;
  double serial_seconds = TimeBest(2, [&] {
    serial_value =
        MonteCarloSkylineProbability(data, 0, model, options)->estimate;
  });

  std::ostringstream json;
  json << "  \"sam_scaling\": {\n"
       << "    \"objects\": " << data.size() << ",\n"
       << "    \"samples\": " << options.samples << ",\n"
       << "    \"serial_engine_seconds\": " << FormatDouble(serial_seconds)
       << ",\n";
  double base_seconds = 0.0;
  std::uint64_t reference_worlds = 0;
  double block_estimate = 0.0;
  bool bit_identical = true;
  double worlds = static_cast<double>(options.samples);
  json << "    \"threads\": [\n";
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    ThreadPool pool(thread_counts[t]);
    MonteCarloResult result;
    double seconds = TimeBest(2, [&] {
      result =
          BlockMonteCarloSkylineProbability(data, 0, model, pool, options)
              .value();
    });
    if (t == 0) {
      reference_worlds = result.skyline_worlds;
      block_estimate = result.estimate;
      base_seconds = seconds;
    } else if (result.skyline_worlds != reference_worlds) {
      bit_identical = false;
    }
    json << "      {\"threads\": " << thread_counts[t]
         << ", \"seconds\": " << FormatDouble(seconds)
         << ", \"worlds_per_sec\": " << FormatDouble(worlds / seconds)
         << ", \"speedup_vs_1\": " << FormatDouble(base_seconds / seconds)
         << "}" << (t + 1 < thread_counts.size() ? "," : "") << "\n";
  }
  json << "    ],\n"
       << "    \"serial_vs_1_thread_block\": "
       << FormatDouble(serial_seconds / base_seconds) << ",\n"
       << "    \"serial_estimate\": " << FormatDouble(serial_value) << ",\n"
       << "    \"block_estimate\": " << FormatDouble(block_estimate) << ",\n"
       << "    \"bit_identical_across_threads\": "
       << (bit_identical ? "true" : "false") << "\n"
       << "  }";
  SKYPREF_CHECK(bit_identical);
  // Both engines estimate the same probability; their streams differ, so
  // agreement is statistical, not bit-exact. At these sample counts a
  // divergence past 0.02 means a broken sampler, not noise.
  SKYPREF_CHECK(std::abs(serial_value - block_estimate) < 0.02);
  return json.str();
}

/// Section 6: world sharing. The batch sampler draws each distinct value
/// pair once per world and reuses it for every target; the per-target
/// loop redraws. pair_draws counts both sides of that ledger exactly.
std::string BenchBatchSam() {
  BlockZipfOptions gen;
  gen.objects = FullScale() ? 600 : 150;
  gen.dimensions = 3;
  gen.block_size = 12;
  gen.values_per_block = 6;
  gen.theta = 1.0;
  gen.seed = 7;
  Dataset data = GenerateBlockZipf(gen).value();
  HashedPreferenceModel base(2013,
                             HashedPreferenceModel::Style::kTotalUniform);
  BlockLocalPreferenceModel model(base, gen.values_per_block);

  SolverOptions options;
  options.monte_carlo.samples = FullScale() ? 40000 : 10000;
  options.monte_carlo.seed = 7;
  ThreadPool pool(ThreadPool::DefaultThreads());

  std::uint64_t per_target_draws = 0;
  double per_target_seconds = TimeBest(2, [&] {
    per_target_draws = 0;
    for (ObjectId target = 0; target < data.size(); ++target) {
      per_target_draws +=
          BlockMonteCarloSkylineProbability(data, target, model, pool,
                                            options.monte_carlo)
              ->pair_draws;
    }
  });

  BatchSamStats stats;
  std::vector<double> batch;
  double batch_seconds = TimeBest(2, [&] {
    batch = BatchMonteCarloSkylineProbabilities(data, model, pool, options,
                                                &stats)
                .value();
  });
  SKYPREF_CHECK(batch.size() == data.size());

  double targets = static_cast<double>(data.size());
  std::ostringstream json;
  json << "  \"batch_sam\": {\n"
       << "    \"objects\": " << data.size() << ",\n"
       << "    \"samples\": " << options.monte_carlo.samples << ",\n"
       << "    \"pool_threads\": " << pool.thread_count() << ",\n"
       << "    \"distinct_pairs\": " << stats.distinct_pairs << ",\n"
       << "    \"per_target_seconds\": " << FormatDouble(per_target_seconds)
       << ",\n"
       << "    \"batch_seconds\": " << FormatDouble(batch_seconds) << ",\n"
       << "    \"per_target_targets_per_sec\": "
       << FormatDouble(targets / per_target_seconds) << ",\n"
       << "    \"batch_targets_per_sec\": "
       << FormatDouble(targets / batch_seconds) << ",\n"
       << "    \"speedup\": "
       << FormatDouble(per_target_seconds / batch_seconds) << ",\n"
       << "    \"per_target_pair_draws\": " << per_target_draws << ",\n"
       << "    \"batch_pair_draws\": " << stats.pair_draws << ",\n"
       << "    \"pair_draw_ratio\": "
       << FormatDouble(static_cast<double>(per_target_draws) /
                       static_cast<double>(stats.pair_draws))
       << "\n"
       << "  }";
  SKYPREF_CHECK(stats.pair_draws < per_target_draws);
  return json.str();
}

/// Section 7: the bit-slicing tentpole. Same hard target and workload
/// family as BenchSamScaling (block-Zipf, correlated blocks, big
/// groups) at the n = 150 scale the tentpole is pinned against. The
/// headline number is single-thread worlds/sec, scalar block engine vs
/// bit-sliced engine on the same sample budget; the thread curve then
/// shows the two parallel axes compose (64 lanes per word x blocks per
/// pool).
std::string BenchBitslice() {
  BlockZipfOptions gen;
  gen.objects = FullScale() ? 600 : 150;
  gen.dimensions = 3;
  gen.block_size = 12;
  gen.values_per_block = 6;
  gen.theta = 1.0;
  gen.seed = 7;
  Dataset data = GenerateBlockZipf(gen).value();
  HashedPreferenceModel base(2013,
                             HashedPreferenceModel::Style::kTotalUniform);
  BlockLocalPreferenceModel model(base, gen.values_per_block);

  MonteCarloOptions options;
  options.samples = FullScale() ? 2000000 : 400000;
  options.seed = 7;
  double worlds = static_cast<double>(options.samples);

  ThreadPool single(1);
  MonteCarloResult scalar_result;
  double scalar_seconds = TimeBest(2, [&] {
    scalar_result =
        BlockMonteCarloSkylineProbability(data, 0, model, single, options)
            .value();
  });
  MonteCarloResult sliced_result;
  double sliced_seconds = TimeBest(2, [&] {
    sliced_result =
        BitSlicedMonteCarloSkylineProbability(data, 0, model, single, options)
            .value();
  });
  // Different streams, same probability: divergence past 0.02 at these
  // sample counts means a broken sampler, not noise.
  SKYPREF_CHECK(std::abs(scalar_result.estimate - sliced_result.estimate) <
                0.02);

  std::ostringstream json;
  json << "  \"bitslice\": {\n"
       << "    \"objects\": " << data.size() << ",\n"
       << "    \"samples\": " << options.samples << ",\n"
       << "    \"block_1thread_seconds\": " << FormatDouble(scalar_seconds)
       << ",\n"
       << "    \"block_1thread_worlds_per_sec\": "
       << FormatDouble(worlds / scalar_seconds) << ",\n"
       << "    \"bitslice_1thread_seconds\": " << FormatDouble(sliced_seconds)
       << ",\n"
       << "    \"bitslice_1thread_worlds_per_sec\": "
       << FormatDouble(worlds / sliced_seconds) << ",\n"
       << "    \"speedup_vs_block\": "
       << FormatDouble(scalar_seconds / sliced_seconds) << ",\n"
       << "    \"block_pair_draws\": " << scalar_result.pair_draws << ",\n"
       << "    \"bitslice_pair_draws\": " << sliced_result.pair_draws << ",\n"
       << "    \"block_estimate\": " << FormatDouble(scalar_result.estimate)
       << ",\n"
       << "    \"bitslice_estimate\": "
       << FormatDouble(sliced_result.estimate) << ",\n";

  double base_seconds = 0.0;
  std::uint64_t reference_worlds = 0;
  bool bit_identical = true;
  json << "    \"threads\": [\n";
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    ThreadPool pool(thread_counts[t]);
    MonteCarloResult result;
    double seconds = TimeBest(2, [&] {
      result =
          BitSlicedMonteCarloSkylineProbability(data, 0, model, pool, options)
              .value();
    });
    if (t == 0) {
      reference_worlds = result.skyline_worlds;
      base_seconds = seconds;
    } else if (result.skyline_worlds != reference_worlds) {
      bit_identical = false;
    }
    json << "      {\"threads\": " << thread_counts[t]
         << ", \"seconds\": " << FormatDouble(seconds)
         << ", \"worlds_per_sec\": " << FormatDouble(worlds / seconds)
         << ", \"speedup_vs_1\": " << FormatDouble(base_seconds / seconds)
         << "}" << (t + 1 < thread_counts.size() ? "," : "") << "\n";
  }
  json << "    ],\n"
       << "    \"bit_identical_across_threads\": "
       << (bit_identical ? "true" : "false") << "\n"
       << "  }";
  SKYPREF_CHECK(bit_identical);
  return json.str();
}

int Main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_exact.json";
  const std::string sam_path = argc > 2 ? argv[2] : "BENCH_sam.json";
  const std::string bitslice_path =
      argc > 3 ? argv[3] : "BENCH_sam_bitslice.json";
  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"bench_hotpath\",\n"
       << "  \"scale\": \"" << (FullScale() ? "full" : "quick") << "\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n";
  std::fprintf(stderr, "bench_hotpath: flatten...\n");
  json << BenchFlatten() << ",\n";
  std::fprintf(stderr, "bench_hotpath: intra-group scaling...\n");
  json << BenchIntraGroup() << ",\n";
  std::fprintf(stderr, "bench_hotpath: batch all-objects...\n");
  json << BenchBatch() << ",\n";
  std::fprintf(stderr, "bench_hotpath: resilience overhead...\n");
  json << BenchResilience() << ",\n";
  std::fprintf(stderr, "bench_hotpath: chaos armed-but-quiet overhead...\n");
  json << BenchChaosQuiet() << "\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_hotpath: cannot open %s\n", path.c_str());
    return 1;
  }
  out << json.str();
  out.close();
  std::fprintf(stderr, "bench_hotpath: wrote %s\n", path.c_str());

  std::ostringstream sam_json;
  sam_json << "{\n"
           << "  \"bench\": \"bench_hotpath\",\n"
           << "  \"scale\": \"" << (FullScale() ? "full" : "quick")
           << "\",\n"
           << "  \"hardware_threads\": "
           << std::thread::hardware_concurrency() << ",\n";
  std::fprintf(stderr, "bench_hotpath: sam thread scaling...\n");
  sam_json << BenchSamScaling() << ",\n";
  std::fprintf(stderr, "bench_hotpath: batch sam world sharing...\n");
  sam_json << BenchBatchSam() << "\n}\n";

  std::ofstream sam_out(sam_path);
  if (!sam_out) {
    std::fprintf(stderr, "bench_hotpath: cannot open %s\n", sam_path.c_str());
    return 1;
  }
  sam_out << sam_json.str();
  sam_out.close();
  std::fprintf(stderr, "bench_hotpath: wrote %s\n", sam_path.c_str());

  std::ostringstream bitslice_json;
  bitslice_json << "{\n"
                << "  \"bench\": \"bench_hotpath\",\n"
                << "  \"scale\": \"" << (FullScale() ? "full" : "quick")
                << "\",\n"
                << "  \"hardware_threads\": "
                << std::thread::hardware_concurrency() << ",\n";
  std::fprintf(stderr, "bench_hotpath: bit-sliced engine...\n");
  bitslice_json << BenchBitslice() << "\n}\n";

  std::ofstream bitslice_out(bitslice_path);
  if (!bitslice_out) {
    std::fprintf(stderr, "bench_hotpath: cannot open %s\n",
                 bitslice_path.c_str());
    return 1;
  }
  bitslice_out << bitslice_json.str();
  bitslice_out.close();
  std::fprintf(stderr, "bench_hotpath: wrote %s\n", bitslice_path.c_str());
  return 0;
}

}  // namespace
}  // namespace skypref::bench

int main(int argc, char** argv) { return skypref::bench::Main(argc, argv); }
