// Figure 13 — efficiency of the approximate algorithms while varying the
// number of objects, with Det+ included as the reference series.
//
//   (a) Uniform, 5-d, n = 10..50: on small/dense data Det+ can beat the
//       sampling algorithms (a paper observation), since sampling always
//       pays the fixed 3000-world cost.
//   (b) Block-zipf, 5-d, n = 1k..100k (quick: 20k): sampling scales
//       linearly and wins as n grows.

#include <chrono>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

enum class Algo { kDetPlus, kSam, kSamPlus };

void RunTimed(benchmark::State& state, const Dataset& data,
              const PreferenceModel& prefs, Algo algo) {
  auto solver = SkylineSolver::Create(data, prefs).value();
  std::vector<ObjectId> targets =
      SampleTargets(data.size(), TargetCount(data.size()));

  SolverOptions options;
  options.preprocess = algo != Algo::kSam;
  options.monte_carlo.samples = 3000;
  options.exact = PaperExactOptions(ExactCutoffSeconds() /
                                    static_cast<double>(targets.size()));

  double elapsed_ms = 0.0;
  std::uint64_t solves = 0;
  for (auto _ : state) {
    std::size_t i = 0;
    for (ObjectId target : targets) {
      options.monte_carlo.seed = 17 * i++ + 3;
      auto start = std::chrono::steady_clock::now();
      Result<double> sky = algo == Algo::kDetPlus
                               ? solver.Exact(target, options)
                               : solver.MonteCarlo(target, options);
      elapsed_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      ++solves;
      if (!sky.ok()) {
        state.counters["dnf"] = 1;
        state.SkipWithError(("cutoff: " + sky.status().ToString()).c_str());
        return;
      }
      Keep(sky.value());
    }
  }
  state.counters["per_target_ms"] = elapsed_ms / static_cast<double>(solves);
}

void BM_Fig13a_DetPlus_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(
                     UniformConfig(static_cast<std::size_t>(state.range(0)), 5))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  RunTimed(state, data, prefs, Algo::kDetPlus);
}
void BM_Fig13a_Sam_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(
                     UniformConfig(static_cast<std::size_t>(state.range(0)), 5))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  RunTimed(state, data, prefs, Algo::kSam);
}
void BM_Fig13a_SamPlus_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(
                     UniformConfig(static_cast<std::size_t>(state.range(0)), 5))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  RunTimed(state, data, prefs, Algo::kSamPlus);
}

void BM_Fig13b_DetPlus_BlockZipf(benchmark::State& state) {
  Dataset data =
      GenerateBlockZipf(
          BlockZipfConfig(static_cast<std::size_t>(state.range(0)), 5))
          .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  RunTimed(state, data, prefs, Algo::kDetPlus);
}
void BM_Fig13b_Sam_BlockZipf(benchmark::State& state) {
  Dataset data =
      GenerateBlockZipf(
          BlockZipfConfig(static_cast<std::size_t>(state.range(0)), 5))
          .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  RunTimed(state, data, prefs, Algo::kSam);
}
void BM_Fig13b_SamPlus_BlockZipf(benchmark::State& state) {
  Dataset data =
      GenerateBlockZipf(
          BlockZipfConfig(static_cast<std::size_t>(state.range(0)), 5))
          .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  RunTimed(state, data, prefs, Algo::kSamPlus);
}

BENCHMARK(BM_Fig13a_DetPlus_Uniform)
    ->Arg(10)->Arg(20)->Arg(30)->Arg(40)->Arg(50)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig13a_Sam_Uniform)
    ->Arg(10)->Arg(20)->Arg(30)->Arg(40)->Arg(50)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig13a_SamPlus_Uniform)
    ->Arg(10)->Arg(20)->Arg(30)->Arg(40)->Arg(50)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 13: approximate algorithms (+ Det+ reference), "
              "running time vs n (5-d, 3000 samples) ==\n");
  const std::int64_t max_n = skypref::bench::FullScale() ? 100000 : 20000;
  for (auto [name, fn] :
       {std::pair<const char*, void (*)(benchmark::State&)>{
            "BM_Fig13b_DetPlus_BlockZipf", &BM_Fig13b_DetPlus_BlockZipf},
        {"BM_Fig13b_Sam_BlockZipf", &BM_Fig13b_Sam_BlockZipf},
        {"BM_Fig13b_SamPlus_BlockZipf", &BM_Fig13b_SamPlus_BlockZipf}}) {
    benchmark::RegisterBenchmark(name, fn)
        ->Arg(1000)->Arg(10000)->Arg(max_n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
