// Figure 6 — the two tentative approximate solutions the paper evaluates
// and rejects before proposing the Monte-Carlo estimator.
//
//   (a) A1 "important objects": exact inclusion-exclusion over only the
//       t most threatening candidates. Error decreases with t but time
//       grows exponentially (the paper: >1 hour to reach t = 25).
//   (b) A2 "partial joint probabilities": Eq. 4 truncated after a budget
//       of terms. The truncated alternating sum is not even a
//       probability — absolute errors well above 1 appear, worse than a
//       random guess.
//
// Setup mirrors the paper: a uniform 5-d dataset with 1000 objects. The
// reference value is Sam with a large sample budget (Det cannot finish
// n = 1000; the reference's own error is ~1e-3, far below the effects
// measured here).

#include <chrono>
#include <cmath>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

struct Fig06Fixture {
  Fig06Fixture()
      : data(GenerateUniform(MakeConfig()).value()),
        prefs(PaperPreferences()) {
    for (ObjectId i = 1; i < data.size(); ++i) candidates.push_back(i);
    MonteCarloOptions reference_options;
    reference_options.samples = FullScale() ? 2000000 : 400000;
    reference_options.seed = 99;
    reference = MonteCarloSkylineProbability(data, kTarget, candidates, prefs,
                                             reference_options)
                    .value()
                    .estimate;
  }

  static UniformOptions MakeConfig() {
    UniformOptions options = UniformConfig(1000, 5);
    options.values_per_dimension = 20;
    return options;
  }

  static constexpr ObjectId kTarget = 0;
  Dataset data;
  HashedPreferenceModel prefs;
  std::vector<ObjectId> candidates;
  double reference = 0.0;
};

Fig06Fixture& Fixture() {
  static Fig06Fixture* fixture = new Fig06Fixture();
  return *fixture;
}

void BM_Fig06a_A1_TopObjects(benchmark::State& state) {
  Fig06Fixture& fixture = Fixture();
  const std::size_t top_t = static_cast<std::size_t>(state.range(0));
  double error = 0.0;
  for (auto _ : state) {
    auto approx = ApproxTopObjects(fixture.data, Fig06Fixture::kTarget,
                                   fixture.candidates, fixture.prefs, top_t);
    if (!approx.ok()) {
      state.SkipWithError(approx.status().ToString().c_str());
      return;
    }
    error = std::abs(approx.value() - fixture.reference);
    Keep(error);
  }
  state.counters["abs_error"] = error;
}

void BM_Fig06b_A2_PartialTerms(benchmark::State& state) {
  Fig06Fixture& fixture = Fixture();
  const std::uint64_t budget = static_cast<std::uint64_t>(state.range(0));
  double error = 0.0;
  std::uint64_t terms = 0;
  for (auto _ : state) {
    auto approx =
        ApproxPartialTerms(fixture.data, Fig06Fixture::kTarget,
                           fixture.candidates, fixture.prefs, budget);
    if (!approx.ok()) {
      state.SkipWithError(approx.status().ToString().c_str());
      return;
    }
    error = std::abs(approx->estimate - fixture.reference);
    terms = approx->terms_computed;
    Keep(error);
  }
  state.counters["abs_error"] = error;
  state.counters["terms"] = static_cast<double>(terms);
}

BENCHMARK(BM_Fig06a_A1_TopObjects)
    ->Arg(5)->Arg(10)->Arg(15)->Arg(20)->Arg(25)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig06b_A2_PartialTerms)
    ->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)->Arg(5000000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 6: tentative approximations A1/A2 "
              "(uniform, n=1000, d=5; reference = high-budget Sam) ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
