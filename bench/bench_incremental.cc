// Extension bench — incremental maintenance under insertions
// (src/core/incremental.h) vs recomputing Det+ from scratch after every
// arrival.
//
// Workload: a block-zipf stream (block-local preferences). The
// incremental structure re-solves only the merged group an insertion
// touches, so maintaining sky(O) across the whole stream costs about as
// much as ONE final Det+ solve, while naive maintenance pays a full
// solve per arrival (quadratic in the stream length).

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

void BM_Incremental_Stream(benchmark::State& state) {
  Dataset data = GenerateBlockZipf(BlockZipfConfig(
                     static_cast<std::size_t>(state.range(0)), 4))
                     .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  std::vector<ValueId> target(data.object(0).begin(), data.object(0).end());

  double final_sky = 0.0;
  std::uint64_t solves = 0;
  for (auto _ : state) {
    IncrementalSkylineProbability incremental(target, prefs);
    for (ObjectId row = 1; row < data.size(); ++row) {
      final_sky = incremental.AddCandidate(data.object(row)).value();
    }
    solves = incremental.exact_solves();
    Keep(final_sky);
  }
  state.counters["final_sky"] = final_sky;
  state.counters["exact_solves"] = static_cast<double>(solves);
}

void BM_Recompute_Stream(benchmark::State& state) {
  Dataset data = GenerateBlockZipf(BlockZipfConfig(
                     static_cast<std::size_t>(state.range(0)), 4))
                     .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);

  double final_sky = 0.0;
  for (auto _ : state) {
    // After each arrival, recompute Det+ over the prefix.
    std::vector<ObjectId> prefix;
    for (ObjectId row = 1; row < data.size(); ++row) {
      prefix.push_back(row);
      std::vector<ObjectId> survivors = AbsorbCandidates(data, 0, prefix);
      double sky = 1.0;
      for (const auto& group : PartitionCandidates(data, 0, survivors)) {
        sky *= ExactSkylineProbability(data, 0, group, DoubleOracle(prefs))
                   .value();
      }
      final_sky = sky;
    }
    Keep(final_sky);
  }
  state.counters["final_sky"] = final_sky;
}

BENCHMARK(BM_Incremental_Stream)
    ->Arg(240)->Arg(960)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Recompute_Stream)
    ->Arg(240)->Arg(960)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Extension: incremental maintenance vs per-arrival Det+ "
              "recomputation over an insertion stream ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
