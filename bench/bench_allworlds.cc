// Extension bench — pricing EVERY object's skyline probability.
//
// The paper's conclusion names the naive approach (run Algorithm 2 once
// per object) and leaves better probabilistic-skyline evaluation as
// future work. This bench compares:
//
//   * per-object Sam: n independent estimator runs, m worlds each;
//   * shared worlds:  one stream of m worlds scoring all n objects at
//     once (src/core/all_worlds.h).
//
// Both see m worlds per object, so their errors are comparable; the
// shared-world pass avoids re-sorting and re-sampling per target and is
// the clear winner as n grows.

#include <cmath>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

constexpr std::uint64_t kWorlds = 1000;

Dataset MakeData(std::size_t objects) {
  BlockZipfOptions options = BlockZipfConfig(objects, 3);
  options.block_size = 10;
  options.values_per_block = 6;
  return GenerateBlockZipf(options).value();
}

void BM_AllObjects_PerObjectSam(benchmark::State& state) {
  Dataset data = MakeData(static_cast<std::size_t>(state.range(0)));
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  MonteCarloOptions options;
  options.samples = kWorlds;
  double checksum = 0.0;
  for (auto _ : state) {
    checksum = 0.0;
    for (ObjectId target = 0; target < data.size(); ++target) {
      options.seed = target + 1;
      checksum +=
          MonteCarloSkylineProbability(data, target, prefs, options)
              .value()
              .estimate;
    }
    Keep(checksum);
  }
  state.counters["expected_skyline_objects"] = checksum;
}

void BM_AllObjects_SharedWorlds(benchmark::State& state) {
  Dataset data = MakeData(static_cast<std::size_t>(state.range(0)));
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  AllWorldsOptions options;
  options.samples = kWorlds;
  options.seed = 77;
  double checksum = 0.0;
  for (auto _ : state) {
    auto all = EstimateAllSkylineProbabilities(data, prefs, options).value();
    checksum = 0.0;
    for (double estimate : all.estimates) checksum += estimate;
    Keep(checksum);
  }
  state.counters["expected_skyline_objects"] = checksum;
}

void BM_AllObjects_SharedWorldsError(benchmark::State& state) {
  // Accuracy check against Det+ on a size where exact is immediate.
  Dataset data = MakeData(200);
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  auto solver = SkylineSolver::Create(data, prefs).value();
  AllWorldsOptions options;
  options.samples = static_cast<std::uint64_t>(state.range(0));
  options.seed = 31;
  double max_error = 0.0;
  for (auto _ : state) {
    auto all = EstimateAllSkylineProbabilities(data, prefs, options).value();
    max_error = 0.0;
    for (ObjectId i = 0; i < data.size(); ++i) {
      double truth = solver.Exact(i).value();
      max_error = std::max(max_error, std::abs(all.estimates[i] - truth));
    }
    Keep(max_error);
  }
  state.counters["max_abs_error"] = max_error;
}

BENCHMARK(BM_AllObjects_PerObjectSam)
    ->Arg(100)->Arg(300)->Arg(1000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_AllObjects_SharedWorlds)
    ->Arg(100)->Arg(300)->Arg(1000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_AllObjects_SharedWorldsError)
    ->Arg(500)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Extension: probabilistic skyline over all objects — "
              "per-object Sam vs shared-world estimation ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
